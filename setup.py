"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for PEP 660
editable installs; this shim lets the legacy path (``--no-use-pep517``)
work offline.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
