"""The fluid backend: engine behaviour, programs, packet cross-validation.

The cross-validation class is the backend's contract: on scenarios with
a known steady state (two flows sharing a bottleneck, a synchronized
incast) the fluid model must reproduce the packet simulator's *goodput
shares* and *fairness* within tolerance for every scheme, and absolute
FCT slowdowns within tolerance for the schemes whose packet dynamics
are themselves smooth (HPCC, DCTCP).  Schemes whose packet behaviour is
dominated by sub-RTT burst overshoot (DCQCN's min-rate collapse) keep
share/fairness agreement only — that divergence is inherent to fluid
approximation and documented in README's "Simulation backends".
"""

from __future__ import annotations

import pytest

from repro import Network, NetworkConfig
from repro.fluid import FluidEngine, fluid_supported
from repro.runner import RunRecord, ScenarioSpec, execute_spec
from repro.sim.flow import FlowSpec
from repro.sim.units import US
from repro.topology import star

BASE_RTT = 9 * US
DEADLINE = 200e6


def _topology():
    return star(n_hosts=5, host_rate="10Gbps", link_delay="1us")


def packet_records(cc: str, flows: list[FlowSpec]) -> list:
    net = Network(_topology(), NetworkConfig(cc_name=cc, base_rtt=BASE_RTT))
    for flow in flows:
        net.add_flow(flow)
    assert net.run_until_done(deadline=DEADLINE)
    return sorted(net.metrics.fct_records, key=lambda r: r.spec.flow_id)


def fluid_records(cc: str, flows: list[FlowSpec]) -> list:
    engine = FluidEngine(_topology(), cc_name=cc, base_rtt=BASE_RTT)
    engine.add_flows(flows)
    assert engine.run(deadline=DEADLINE)
    return sorted(engine.fct_records, key=lambda r: r.spec.flow_id)


def two_flows(size: int = 600_000) -> list[FlowSpec]:
    return [FlowSpec(1, 0, 4, size, 0.0), FlowSpec(2, 1, 4, size, 0.0)]


def incast_flows(size: int = 200_000) -> list[FlowSpec]:
    return [FlowSpec(i, i - 1, 4, size, 0.0) for i in range(1, 5)]


def shares(records) -> list[float]:
    """Each flow's goodput share of the total (size/fct, normalized)."""
    rates = [r.spec.size / r.fct for r in records]
    total = sum(rates)
    return [rate / total for rate in rates]


def jain(records) -> float:
    rates = [r.spec.size / r.fct for r in records]
    return sum(rates) ** 2 / (len(rates) * sum(r * r for r in rates))


class TestFluidEngine:
    def test_solo_flow_near_ideal(self):
        [record] = fluid_records("hpcc", [FlowSpec(1, 0, 4, 1_000_000, 0.0)])
        assert record.slowdown == pytest.approx(1.0, abs=0.1)

    def test_two_flows_share_the_bottleneck(self):
        records = fluid_records("hpcc", two_flows())
        assert [r.slowdown for r in records] == pytest.approx([2.0, 2.0], rel=0.25)

    def test_deterministic(self):
        first = fluid_records("hpcc", two_flows())
        second = fluid_records("hpcc", two_flows())
        assert [(r.start, r.finish) for r in first] == \
            [(r.start, r.finish) for r in second]

    @pytest.mark.parametrize("cc", [
        "hpcc", "hpcc-perack", "hpcc-perrtt", "hpcc-rxrate",
        "dcqcn", "dcqcn+win", "timely", "timely+win", "dctcp",
    ])
    def test_every_paper_scheme_completes(self, cc):
        records = fluid_records(cc, two_flows(size=200_000))
        assert len(records) == 2
        assert all(r.fct > 0 and r.slowdown >= 0.999 for r in records)

    def test_fluid_supported(self):
        assert fluid_supported("hpcc")
        with pytest.raises(KeyError, match="unknown CC scheme"):
            fluid_supported("quantum-cc")

    def test_late_start_fast_forwards_idle_time(self):
        engine = FluidEngine(_topology(), cc_name="hpcc", base_rtt=BASE_RTT)
        engine.add_flow(FlowSpec(1, 0, 4, 100_000, start_time=50e6))
        assert engine.run(deadline=100e6)
        [record] = engine.fct_records
        assert record.start == 50e6
        assert record.slowdown == pytest.approx(1.0, abs=0.1)
        # The idle 50ms cost no steps.
        assert engine.steps < 100

    def test_queue_sampling(self):
        engine = FluidEngine(
            _topology(), cc_name="hpcc", base_rtt=BASE_RTT,
            sample_interval=BASE_RTT,
        )
        engine.add_flows(two_flows())
        engine.run(deadline=DEADLINE)
        label = "sw5->4"                      # switch egress to the receiver
        series = engine.queue_samples[label]
        assert len(series["times"]) == len(series["qlens"]) > 0
        assert max(series["qlens"]) > 0       # 2:1 share builds queue

    def test_queues_respect_buffer_cap(self):
        engine = FluidEngine(
            _topology(), cc_name="dcqcn", base_rtt=BASE_RTT,
            buffer_bytes=50_000,
        )
        engine.add_flows(incast_flows())
        engine.run(deadline=DEADLINE)
        assert all(
            l.queue <= 50_000 + 1e-6 for l in engine.graph.links.values()
        )


class TestCrossValidation:
    """Fluid vs packet on scenarios with a known steady state."""

    @pytest.mark.parametrize("cc", ["hpcc", "dctcp"])
    def test_two_flow_slowdowns_agree(self, cc):
        packet = packet_records(cc, two_flows())
        fluid = fluid_records(cc, two_flows())
        for p, f in zip(packet, fluid):
            assert f.slowdown == pytest.approx(p.slowdown, rel=0.30)

    @pytest.mark.parametrize("cc", ["hpcc", "dcqcn", "timely", "dctcp"])
    def test_two_flow_goodput_shares_agree(self, cc):
        packet = shares(packet_records(cc, two_flows()))
        fluid = shares(fluid_records(cc, two_flows()))
        for p, f in zip(packet, fluid):
            assert f == pytest.approx(p, abs=0.05)

    @pytest.mark.parametrize("cc", ["hpcc", "timely"])
    def test_incast_fairness_agrees(self, cc):
        packet = packet_records(cc, incast_flows())
        fluid = fluid_records(cc, incast_flows())
        assert jain(fluid) > 0.99
        assert jain(fluid) == pytest.approx(jain(packet), abs=0.02)
        for p, f in zip(shares(packet), shares(fluid)):
            assert f == pytest.approx(p, abs=0.05)

    def test_incast_hpcc_slowdowns_agree(self):
        packet = packet_records("hpcc", incast_flows())
        fluid = fluid_records("hpcc", incast_flows())
        packet_mean = sum(r.slowdown for r in packet) / len(packet)
        fluid_mean = sum(r.slowdown for r in fluid) / len(fluid)
        assert fluid_mean == pytest.approx(packet_mean, rel=0.30)


class TestFailoverCrossValidation:
    """Dual-trunk failover: the fluid goodput-recovery trajectory must
    agree with the packet backend within documented bounds.

    After the cut both models have a single 50G trunk, so the post-cut
    trajectory is directly comparable: post-recovery aggregate goodput
    within 20%, recovery time within two goodput bins (200us).  *Pre*-cut
    goodput is bounded one-sidedly: fluid pools the parallel trunks into
    one 100G link while packet ECMP can hash 4 flows 3-1 across members,
    so fluid >= packet there by construction (README "Network dynamics").
    DCQCN is excluded: its packet behaviour is dominated by sub-RTT
    min-rate collapse, the same divergence the steady-state
    cross-validation class documents.
    """

    BOUNDS = {"after_rel": 0.20, "recovery_slack_us": 200.0}

    @pytest.fixture(scope="class")
    def results(self):
        from repro.experiments.failover import SCHEMES, run_failover

        schemes = tuple(
            cc for cc in SCHEMES if cc.name in ("hpcc", "dctcp")
        )
        return {
            backend: run_failover(schemes=schemes, backend=backend)
            for backend in ("packet", "fluid")
        }

    @pytest.mark.parametrize("scheme", ["HPCC", "DCTCP"])
    def test_post_cut_goodput_agrees(self, results, scheme):
        packet = results["packet"].goodput_after[scheme]
        fluid = results["fluid"].goodput_after[scheme]
        assert fluid == pytest.approx(packet, rel=self.BOUNDS["after_rel"])

    @pytest.mark.parametrize("scheme", ["HPCC", "DCTCP"])
    def test_recovery_time_agrees(self, results, scheme):
        packet = results["packet"].recovery_time_us[scheme]
        fluid = results["fluid"].recovery_time_us[scheme]
        assert packet != float("inf") and fluid != float("inf")
        assert abs(fluid - packet) <= self.BOUNDS["recovery_slack_us"]

    @pytest.mark.parametrize("scheme", ["HPCC", "DCTCP"])
    def test_pre_cut_goodput_bounded_by_pooling(self, results, scheme):
        packet = results["packet"].goodput_before[scheme]
        fluid = results["fluid"].goodput_before[scheme]
        payload_capacity = 100 * (1000 / 1048)      # 2 trunks, wire factor
        assert packet * 0.95 <= fluid <= payload_capacity * 1.01

    def test_fluid_failover_runs_and_drains(self, results):
        fluid = results["fluid"]
        assert all(fluid.drained.values())


def load_spec(backend: str = "fluid", **updates) -> ScenarioSpec:
    spec = ScenarioSpec(
        program="load",
        topology="star",
        topology_params={"n_hosts": 4, "host_rate": "10Gbps"},
        workload={"cdf": "fbhadoop", "size_scale": 0.1,
                  "load": 0.2, "n_flows": 15},
        config={"base_rtt": BASE_RTT},
        seed=2,
        backend=backend,
        label="fluid-load",
    )
    return spec.replaced(**updates) if updates else spec


def flows_spec(backend: str = "fluid", **updates) -> ScenarioSpec:
    spec = ScenarioSpec(
        program="flows",
        topology="star",
        topology_params={"n_hosts": 3, "host_rate": "10Gbps"},
        workload={"flows": [[0, 2, 60_000, 0.0, "a"], [1, 2, 60_000, 0.0, "b"]],
                  "deadline": 5e6},
        config={"base_rtt": BASE_RTT},
        measure={"sample_interval": 10_000.0, "windows": True},
        backend=backend,
        label="fluid-flows",
    )
    return spec.replaced(**updates) if updates else spec


class TestFluidPrograms:
    def test_load_program_record(self):
        record = execute_spec(load_spec())
        assert record.spec.backend == "fluid"
        assert record.fct
        assert record.events_processed > 0          # RTT steps
        assert record.extras["n_hosts"] == 4
        assert record.extras["pause_total_ns"] == 0.0
        fct = record.fct_records()
        assert all(r.slowdown > 0 for r in fct)

    def test_same_workload_as_packet(self):
        """Both backends simulate the identical seeded flow population."""
        fluid = execute_spec(load_spec())
        packet = execute_spec(load_spec(backend="packet"))
        fluid_specs = {(r["flow_id"], r["src"], r["dst"], r["size"],
                        r["start_time"]) for r in fluid.fct}
        packet_specs = {(r["flow_id"], r["src"], r["dst"], r["size"],
                         r["start_time"]) for r in packet.fct}
        assert fluid_specs == packet_specs

    def test_flows_program_record(self):
        record = execute_spec(flows_spec())
        assert len(record.fct) == 2
        assert record.flow_ids("a") == [1] and record.flow_ids("b") == [2]
        assert set(record.final_windows()) == {1, 2}
        assert record.queues                       # sampled series present
        label, series = next(iter(record.queues.items()))
        assert len(series["times"]) == len(series["qlens"]) > 0

    def test_legacy_link_events_run_on_fluid(self):
        """The legacy ``workload["events"]`` shim executes on fluid now
        (pre-dynamics PRs it raised ValueError): cutting the receiver's
        uplink parks both flows, so the run ends incomplete — blackholed,
        not crashed, like the packet backend."""
        spec = flows_spec(
            **{"workload.events": [["fail_link", 1.0, 3, 2]]}
        )
        record = execute_spec(spec)
        [event] = record.link_events()
        assert event["type"] == "fail_link" and event["fired"]
        assert not record.completed        # host 2 is unreachable: flows park

    def test_ignored_config_recorded(self):
        record = execute_spec(load_spec(**{"config.transport": "irn"}))
        assert record.extras["fluid_ignored_config"] == ["transport"]

    def test_record_roundtrip_preserves_backend(self):
        import json

        record = execute_spec(flows_spec())
        back = RunRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert back.spec.backend == "fluid"
        assert back.spec == record.spec
        assert back.fct == record.fct

    def test_figure_grids_run_on_fluid(self):
        """A figure11-style FatTree cell end-to-end on the fluid engine."""
        from repro.experiments import figure11
        from repro.runner import CcChoice

        [spec] = figure11.scenarios(
            scale="bench", cases=("50%",),
            schemes=(CcChoice("hpcc", label="HPCC"),),
        )
        record = execute_spec(spec.replaced(backend="fluid"))
        assert record.spec.backend == "fluid"
        assert len(record.fct) > 100
        slowdowns = [r.slowdown for r in record.fct_records()]
        assert all(s >= 0.999 for s in slowdowns)   # float-exact ideal
