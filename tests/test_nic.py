"""Host NIC behaviour: pacing, window limits, round-robin, retransmission."""

import pytest

from repro.network import Network, NetworkConfig
from repro.sim.packet import PacketType
from repro.sim.units import MS, US, gbps
from repro.topology import star


def one_switch_net(cc="hpcc", n=4, **cfg):
    return Network(star(n, host_rate="100Gbps"),
                   NetworkConfig(cc_name=cc, base_rtt=9 * US, **cfg))


class TestPacing:
    def test_paced_flow_spreads_packets(self):
        """A flow paced at half line rate must leave inter-packet gaps."""
        net = one_switch_net()
        emits = []
        nic = net.nics[0]
        original_kick = nic.port.on_emit

        def spy(pkt, port):
            if pkt.ptype is PacketType.DATA:
                emits.append(net.sim.now)

        nic.port.on_emit = spy
        spec = net.make_flow(src=0, dst=2, size=50_000)
        net.add_flow(spec)
        # Halve the rate right after start and freeze the CC so it cannot
        # override the pacing rate on subsequent ACKs.
        def slow_down():
            flow = nic.flows.get(spec.flow_id)
            if flow:
                flow.cc.on_ack = lambda *args, **kwargs: None
                flow.rate = gbps(50)
                flow.window = None
        net.sim.schedule(1.0, slow_down)
        net.run_until_done(deadline=1 * MS)
        gaps = [b - a for a, b in zip(emits[5:], emits[6:])]
        wire = 1000 + net.header
        expected_gap = wire / gbps(50)
        assert min(gaps) >= wire / gbps(100) - 1e-6
        assert sum(gaps) / len(gaps) == pytest.approx(expected_gap, rel=0.2)

    def test_window_limits_inflight(self):
        """A 4KB window must cap unacknowledged bytes at 4KB."""
        net = one_switch_net()
        spec = net.make_flow(src=0, dst=2, size=60_000)
        net.add_flow(spec)
        nic = net.nics[0]
        peak = {"v": 0}

        def clamp_and_watch():
            flow = nic.flows.get(spec.flow_id)
            if flow is not None:
                flow.cc.on_ack = lambda *args, **kwargs: None
                flow.window = 4000.0
                peak["v"] = max(peak["v"], flow.inflight)
            if net.sim.now < 100 * US:
                net.sim.schedule(5.0, clamp_and_watch)

        net.sim.schedule(0.0, clamp_and_watch)
        net.run_until_done(deadline=10 * MS)
        assert peak["v"] <= 4000

    def test_zero_window_still_probes_one_packet(self):
        # The window check never deadlocks: inflight==0 always sends one.
        net = one_switch_net()
        spec = net.make_flow(src=0, dst=2, size=10_000)
        net.add_flow(spec)
        nic = net.nics[0]

        def clamp():
            flow = nic.flows.get(spec.flow_id)
            if flow is not None:
                flow.window = 0.0
            if net.sim.now < 2 * MS:
                net.sim.schedule(1000.0, clamp)

        net.sim.schedule(0.0, clamp)
        assert net.run_until_done(deadline=10 * MS)


class TestRoundRobin:
    def test_two_flows_share_nic_evenly(self):
        net = one_switch_net()
        net.add_flow(net.make_flow(src=0, dst=2, size=500_000))
        net.add_flow(net.make_flow(src=0, dst=3, size=500_000))
        net.run_until_done(deadline=10 * MS)
        records = net.metrics.fct_records
        assert len(records) == 2
        fcts = [r.fct for r in records]
        assert max(fcts) / min(fcts) < 1.3

    def test_duplicate_flow_id_rejected(self):
        net = one_switch_net()
        spec = net.make_flow(src=0, dst=2, size=1000)
        net.nics[0].start_flow(spec)
        with pytest.raises(ValueError):
            net.nics[0].start_flow(spec)


class TestCompletion:
    def test_fct_recorded_once(self):
        net = one_switch_net()
        spec = net.make_flow(src=0, dst=2, size=10_000)
        net.add_flow(spec)
        net.run_until_done(deadline=1 * MS)
        assert len(net.metrics.fct_records) == 1
        record = net.metrics.fct_records[0]
        assert record.spec.flow_id == spec.flow_id
        assert record.fct > 0

    def test_single_flow_slowdown_near_one(self):
        net = one_switch_net()
        net.add_flow(net.make_flow(src=0, dst=2, size=1_000_000))
        net.run_until_done(deadline=5 * MS)
        assert net.metrics.fct_records[0].slowdown < 1.3

    def test_receiver_state_complete(self):
        net = one_switch_net()
        spec = net.make_flow(src=0, dst=2, size=25_000)
        net.add_flow(spec)
        net.run_until_done(deadline=1 * MS)
        rf = net.nics[2].recv_flows[spec.flow_id]
        assert rf.state.expected == 25_000
        assert rf.bytes_received >= 25_000


class TestRetransmission:
    def test_gbn_recovers_from_forced_drop(self):
        net = one_switch_net(transport="gbn", rto=200 * US)
        spec = net.make_flow(src=0, dst=2, size=100_000)
        net.add_flow(spec)
        # Drop one data packet in flight by intercepting the switch once.
        switch = net.switches[4]
        original = switch.receive
        state = {"dropped": False}

        def lossy(pkt, in_port):
            if (not state["dropped"] and pkt.ptype is PacketType.DATA
                    and pkt.seq == 20_000):
                state["dropped"] = True
                return
            original(pkt, in_port)

        switch.receive = lossy
        assert net.run_until_done(deadline=20 * MS)
        assert state["dropped"]
        assert net.nics[0].flows[spec.flow_id].sender.rewinds >= 1

    def test_irn_recovers_selectively(self):
        net = one_switch_net(transport="irn", rto=200 * US)
        spec = net.make_flow(src=0, dst=2, size=100_000)
        net.add_flow(spec)
        switch = net.switches[4]
        original = switch.receive
        state = {"dropped": 0}

        def lossy(pkt, in_port):
            if (pkt.ptype is PacketType.DATA and pkt.seq == 30_000
                    and state["dropped"] == 0):
                state["dropped"] += 1
                return
            original(pkt, in_port)

        switch.receive = lossy
        assert net.run_until_done(deadline=20 * MS)
        sender = net.nics[0].flows[spec.flow_id].sender
        # Only the missing packet went out again (IRN, not go-back-N).
        assert sender.retransmissions <= 2

    def test_rto_fires_when_all_acks_lost(self):
        net = one_switch_net(rto=100 * US)
        spec = net.make_flow(src=0, dst=2, size=5_000)
        net.add_flow(spec)
        # Swallow everything the receiver sends back for a while.
        receiver = net.nics[2]
        original = receiver.port.enqueue
        cutoff = {"until": 300 * US}

        def muzzle(pkt):
            if net.sim.now < cutoff["until"]:
                return
            original(pkt)

        receiver.port.enqueue = muzzle
        assert net.run_until_done(deadline=50 * MS)
