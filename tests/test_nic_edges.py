"""NIC edge cases: CNP pacing, pause accounting at hosts, goodput slices."""

import pytest

from repro.metrics.timeseries import GoodputTracker
from repro.network import Network, NetworkConfig
from repro.sim.packet import PacketType
from repro.sim.units import MS, US
from repro.topology import star


class TestCnpPacing:
    def test_cnp_interval_rate_limits(self):
        """The NP may emit at most one CNP per Td per flow, no matter how
        many marked packets arrive."""
        net = Network(star(4, host_rate="100Gbps"),
                      NetworkConfig(cc_name="dcqcn", base_rtt=9 * US,
                                    cc_params={"td": 50 * US}))
        cnp_times = []
        nic = net.nics[0]
        original = nic.receive

        def spy(pkt, in_port):
            if pkt.ptype is PacketType.CNP:
                cnp_times.append(net.sim.now)
            original(pkt, in_port)

        nic.receive = spy
        for s in range(3):
            net.add_flow(net.make_flow(src=s, dst=3, size=400_000))
        net.run_until_done(deadline=30 * MS)
        flow0_cnps = sorted(cnp_times)
        gaps = [b - a for a, b in zip(flow0_cnps, flow0_cnps[1:])]
        assert all(gap >= 50 * US - 1e-6 for gap in gaps)

    def test_unmarked_traffic_generates_no_cnps(self):
        net = Network(star(3, host_rate="100Gbps"),
                      NetworkConfig(cc_name="dcqcn", base_rtt=9 * US))
        seen = []
        original = net.nics[0].receive

        def spy(pkt, in_port):
            if pkt.ptype is PacketType.CNP:
                seen.append(1)
            original(pkt, in_port)

        net.nics[0].receive = spy
        # A single flow cannot congest its own bottleneck-free path.
        net.add_flow(net.make_flow(0, 2, 200_000))
        net.run_until_done(deadline=5 * MS)
        assert not seen


class TestHostPauses:
    def test_host_pause_fraction_counts_incast_pauses(self):
        net = Network(star(9, host_rate="100Gbps"),
                      NetworkConfig(cc_name="dcqcn", base_rtt=9 * US,
                                    buffer_bytes=500_000))
        for s in range(8):
            net.add_flow(net.make_flow(s, 8, 400_000))
        net.run_until_done(deadline=50 * MS)
        duration = net.sim.now
        if net.metrics.pause_tracker.pause_count() > 0:
            assert net.host_pause_fraction(duration) > 0

    def test_pause_tracker_sees_host_devices(self):
        net = Network(star(9, host_rate="100Gbps"),
                      NetworkConfig(cc_name="dcqcn", base_rtt=9 * US,
                                    buffer_bytes=500_000))
        for s in range(8):
            net.add_flow(net.make_flow(s, 8, 400_000))
        net.run_until_done(deadline=50 * MS)
        devices = {iv.device for iv in net.metrics.pause_tracker.intervals}
        # Pauses land on host uplinks (devices 0..8), not just switches.
        assert devices & set(range(9))


class TestGoodputSlices:
    def test_total_series_selected_flows(self):
        tracker = GoodputTracker(1000.0)
        tracker.record(1, 100.0, 1000)
        tracker.record(2, 100.0, 3000)
        _, only_one = tracker.total_series([1])
        _, both = tracker.total_series()
        assert only_one[0] == pytest.approx(8.0)
        assert both[0] == pytest.approx(32.0)

    def test_total_series_unknown_flow(self):
        tracker = GoodputTracker(1000.0)
        assert tracker.total_series([42]) == ([], [])
