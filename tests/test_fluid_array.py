"""Array engine vs scalar reference: numerical equivalence contracts.

The vectorized :class:`~repro.fluid.FluidEngine` and the loop-per-flow
:class:`~repro.fluid.ScalarFluidEngine` implement the same fluid model;
this module pins *how* equal they must stay:

* **Bit-exact** when steps are never shortened (simultaneous starts, no
  dynamics): the array kernels were built to replay the scalar
  arithmetic operation-for-operation (flow-major accumulation order,
  matching division/branch structure), so every scheme's FCTs and
  goodput bins must match to the last bit.
* **Pinned tolerances** when arrivals shorten steps: the engines then
  fire CC at different cadences (the reference fires every mini-step,
  the array engine once per accumulated RTT — the cadence the schemes
  are defined at), so trajectories drift by a bounded, *pinned* amount.
  A tolerance regression here means the engines diverged beyond the
  documented cadence effect.
* **Identical dynamics decisions**: fail/restore + reconvergence must
  produce the same reroute counts and parked-flow behaviour — routing
  is topology + deterministic ECMP hash, never numerical.

Plus regression tests for the supporting cast: the O(1) goodput
recorder against a brute-force bin fill across thousands of bins, the
cached link labels/egress list, the k-ary FatTree builder, and the
``fluid_engine`` config knob that selects the implementation per spec.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.fluid import FluidEngine, GoodputRecorder, ScalarFluidEngine
from repro.fluid.programs import _make_engine
from repro.runner import ScenarioSpec
from repro.sim.flow import FlowSpec
from repro.sim.units import US
from repro.topology import star
from repro.topology.fattree import bench_fattree, fattree_k

BASE_RTT = 9 * US
DEADLINE = 200e6

ALL_SCHEMES = (
    "hpcc", "hpcc-perack", "hpcc-perrtt", "hpcc-rxrate",
    "dcqcn", "dcqcn+win", "timely", "timely+win", "dctcp",
)

#: Max per-flow relative FCT difference with *staggered* arrivals, per
#: scheme, on the workload below.  Staggering shortens steps at every
#: arrival, so the reference's per-mini-step CC fires diverge from the
#: array engine's per-RTT fires; these bounds pin that cadence effect
#: (measured worst cases ~0.06 for HPCC, ~0.44 for the rxrate ablation
#: whose window is hypersensitive to fire timing, ~0.02 TIMELY, ~0.11
#: DCTCP; DCQCN's trajectory is cadence-insensitive and stays exact).
STAGGER_TOLERANCE = {
    "hpcc": 0.10, "hpcc-perack": 0.10, "hpcc-perrtt": 0.10,
    "hpcc-rxrate": 0.50,
    "dcqcn": 0.0, "dcqcn+win": 0.0,
    "timely": 0.05, "timely+win": 0.05,
    "dctcp": 0.15,
}


def _fattree_flows(n: int = 12, stagger_ns: float = 0.0) -> list[FlowSpec]:
    rng = random.Random(7)
    hosts = bench_fattree().hosts
    return [
        FlowSpec(
            flow_id=i, src=(pair := rng.sample(hosts, 2))[0], dst=pair[1],
            size=rng.randint(20_000, 400_000), start_time=i * stagger_ns,
        )
        for i in range(n)
    ]


def _run(engine_cls, cc: str, flows: list[FlowSpec], **kwargs):
    engine = engine_cls(bench_fattree(), cc_name=cc, **kwargs)
    engine.add_flows(flows)
    assert engine.run(deadline=DEADLINE)
    return engine


class TestBitExactEquivalence:
    """Unshortened steps: the two engines are the same computation."""

    @pytest.mark.parametrize("cc", ALL_SCHEMES)
    def test_fcts_bit_identical_on_simultaneous_starts(self, cc):
        flows = _fattree_flows()
        array = _run(FluidEngine, cc, flows)
        scalar = _run(ScalarFluidEngine, cc, flows)
        array_fct = {r.spec.flow_id: r.finish for r in array.fct_records}
        scalar_fct = {r.spec.flow_id: r.finish for r in scalar.fct_records}
        assert array_fct == scalar_fct       # == : bit-exact, no tolerance

    def test_goodput_bins_bit_identical(self):
        flows = _fattree_flows()
        array = _run(FluidEngine, "hpcc", flows, goodput_bin=10_000.0)
        scalar = _run(ScalarFluidEngine, "hpcc", flows, goodput_bin=10_000.0)
        assert array.goodput_bins == scalar.goodput_bins
        assert array.goodput_payload() == scalar.goodput_payload()


class TestStaggeredTolerance:
    @pytest.mark.parametrize("cc", ALL_SCHEMES)
    def test_staggered_arrivals_within_pinned_tolerance(self, cc):
        flows = _fattree_flows(stagger_ns=2_500.0)
        array = _run(FluidEngine, cc, flows)
        scalar = _run(ScalarFluidEngine, cc, flows)
        array_fct = {r.spec.flow_id: r.finish for r in array.fct_records}
        scalar_fct = {r.spec.flow_id: r.finish for r in scalar.fct_records}
        assert array_fct.keys() == scalar_fct.keys()
        tol = STAGGER_TOLERANCE[cc]
        if tol == 0.0:
            assert array_fct == scalar_fct
        else:
            worst = max(
                abs(array_fct[fid] - scalar_fct[fid]) / scalar_fct[fid]
                for fid in scalar_fct
            )
            assert worst <= tol, f"{cc}: worst rel diff {worst:.3e} > {tol}"


class TestDynamicsEquivalence:
    """Fail + restore: same reroutes, same parking, both engines."""

    @staticmethod
    def _run_dynamics(engine_cls, cc: str):
        engine = engine_cls(
            star(n_hosts=5, host_rate="10Gbps", link_delay="1us"),
            cc_name=cc, base_rtt=BASE_RTT,
        )
        engine.add_flows([
            FlowSpec(1, 0, 4, 2_000_000, 0.0),
            FlowSpec(2, 1, 4, 2_000_000, 0.0),
            FlowSpec(3, 0, 3, 1_500_000, 0.0),
        ])
        reroutes = []
        parked_during_cut = []

        def fail():
            engine.fail_link(5, 4)
            reroutes.append(engine.reconverge())
            parked_during_cut.append(len(engine._parked))

        def restore():
            engine.restore_link(5, 4)
            reroutes.append(engine.reconverge())
            parked_during_cut.append(len(engine._parked))

        engine.schedule_event(0.5e6, fail)
        engine.schedule_event(1.5e6, restore)
        assert engine.run(deadline=DEADLINE)
        return (
            reroutes, parked_during_cut,
            {r.spec.flow_id: r.finish for r in engine.fct_records},
        )

    @pytest.mark.parametrize("cc", ["hpcc", "dcqcn"])
    def test_fail_restore_identical_reroutes_and_parking(self, cc):
        a_routes, a_parked, a_fct = self._run_dynamics(FluidEngine, cc)
        s_routes, s_parked, s_fct = self._run_dynamics(ScalarFluidEngine, cc)
        # Both flows to host 4 park at the cut and re-admit at restore.
        assert a_routes == s_routes == [2, 2]
        assert a_parked == s_parked == [2, 0]
        assert a_fct.keys() == s_fct.keys() == {1, 2, 3}
        for fid in s_fct:
            assert a_fct[fid] == pytest.approx(s_fct[fid], rel=1e-2)

    def test_engine_state_consistent_after_dynamics(self):
        _, _, fct = self._run_dynamics(FluidEngine, "hpcc")
        # The cut stalls the parked flows for ~1ms; the untouched flow
        # must finish well before them.
        assert fct[3] < fct[1] and fct[3] < fct[2]


class TestGoodputRecorder:
    def _reference_fill(self, segments, bin_ns):
        """The old per-bin Python loop, kept as the oracle."""
        bins: dict[int, float] = {}
        for t0, t1, payload in segments:
            if t1 <= t0:
                bins[int(t0 // bin_ns)] = (
                    bins.get(int(t0 // bin_ns), 0.0) + payload
                )
                continue
            i0, i1 = int(t0 // bin_ns), int(t1 // bin_ns)
            if i0 == i1:
                bins[i0] = bins.get(i0, 0.0) + payload
                continue
            rate = payload / (t1 - t0)
            for idx in range(i0, i1 + 1):
                lo = max(t0, idx * bin_ns)
                hi = min(t1, (idx + 1) * bin_ns)
                if hi > lo:
                    bins[idx] = bins.get(idx, 0.0) + rate * (hi - lo)
        return bins

    def test_multi_thousand_bin_segment_matches_reference(self):
        rec = GoodputRecorder(bin_ns=1_000.0)
        rng = random.Random(11)
        segments = []
        # One segment spanning ~5000 bins plus a pile of short and
        # degenerate ones, overlapping arbitrarily.
        segments.append((123.0, 5_000_456.0, 9e6))
        for _ in range(200):
            t0 = rng.uniform(0, 4e6)
            t1 = t0 + rng.uniform(0, 50_000)
            segments.append((t0, t1, rng.uniform(1, 1e5)))
        segments.append((777.0, 777.0, 1234.0))      # zero-width
        for seg in segments:
            rec.record(42, *seg)
        [(flow_id, got)] = rec.bins().items()
        expect = self._reference_fill(segments, 1_000.0)
        assert flow_id == 42
        assert got.keys() == expect.keys()
        for idx in expect:
            assert got[idx] == pytest.approx(expect[idx], rel=1e-12)

    def test_recording_is_constant_size_per_call(self):
        rec = GoodputRecorder(bin_ns=1.0)
        # A million-bin span records as ONE stored segment, not 1e6 dict
        # entries — the regression the recorder exists to prevent.
        rec.record(1, 0.0, 1_000_000.0, 5.0)
        assert len(rec._segments[1]) == 1
        assert len(rec.bins()[1]) == 1_000_000

    def test_single_bin_segment_credits_payload_exactly(self):
        rec = GoodputRecorder(bin_ns=1_000.0)
        rec.record(7, 100.0, 900.0, 0.1 + 0.2)       # float-dust payload
        assert rec.bins()[7] == {0: 0.1 + 0.2}       # exact, no rate trip


class TestStateCaches:
    def test_link_labels_precomputed_and_stable(self):
        engine = FluidEngine(bench_fattree(), cc_name="hpcc")
        for link in engine.graph.link_list:
            assert link.label == f"sw{link.a}->{link.b}"

    def test_switch_egress_links_cached(self):
        engine = FluidEngine(bench_fattree(), cc_name="hpcc")
        first = engine.graph.switch_egress_links()
        assert engine.graph.switch_egress_links() is first
        assert all(l.is_switch_egress for l in first)

    def test_link_indices_match_arrays(self):
        engine = FluidEngine(bench_fattree(), cc_name="hpcc")
        arrays = engine.arrays
        for i, link in enumerate(engine.graph.link_list):
            assert link.index == i
            assert arrays.capacity[i] == link.capacity


class TestFatTreeK:
    def test_k16_has_1024_hosts(self):
        topo = fattree_k(16)
        assert topo.n_hosts == 16 ** 3 // 4 == 1024
        assert topo.n_switches == 16 * 8 + 16 * 8 + 64

    def test_k4_structure(self):
        topo = fattree_k(4)
        assert topo.n_hosts == 16
        assert topo.n_switches == 8 + 8 + 4
        # Classic k-ary: every agg has k/2 core uplinks, every pod
        # reaches the whole core layer.
        engine = FluidEngine(topo, cc_name="hpcc")
        path = engine.graph.path(1, 0, 15, mtu_wire=1048, ack_size=60)
        assert len(path.links) == 6              # host-tor-agg-core-agg-tor-host

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError, match="even"):
            fattree_k(5)


class TestEngineSelection:
    def _spec(self, **config) -> ScenarioSpec:
        return ScenarioSpec(
            program="load", topology="star",
            topology_params={"n_hosts": 4},
            workload={"cdf": "fbhadoop", "load": 0.3, "n_flows": 5},
            config=config, backend="fluid",
        )

    def test_default_is_array_engine(self):
        engine, _ = _make_engine(
            star(n_hosts=4), self._spec(base_rtt=BASE_RTT)
        )
        assert type(engine) is FluidEngine

    def test_scalar_knob_selects_reference(self):
        engine, ignored = _make_engine(
            star(n_hosts=4), self._spec(base_rtt=BASE_RTT, fluid_engine="scalar")
        )
        assert type(engine) is ScalarFluidEngine
        assert "fluid_engine" not in ignored     # consumed, not "ignored"

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError):
            _make_engine(star(n_hosts=4), self._spec(fluid_engine="quantum"))


class TestArrayInternals:
    """Spot checks of the struct-of-arrays invariants."""

    def test_hop_matrix_pads_with_dummy(self):
        engine = _run(FluidEngine, "hpcc", _fattree_flows(n=4))
        dummy = engine._dummy
        assert dummy == engine.arrays.n
        hopm = engine._hopm[:engine._n]
        lens = (hopm != dummy).sum(axis=1)
        assert (lens >= 2).all()                 # every path has >= 2 links
        # Padding is contiguous on the right.
        for row, k in zip(hopm, lens):
            assert (row[int(k):] == dummy).all()

    def test_dead_rows_compact_away(self):
        flows = [
            FlowSpec(i, src=i % 8, dst=8 + (i % 8), size=2_000,
                     start_time=i * 40_000.0)
            for i in range(300)
        ]
        engine = FluidEngine(bench_fattree(), cc_name="dcqcn")
        engine.add_flows(flows)
        assert engine.run(deadline=DEADLINE)
        # Short staggered flows die continuously; compaction keeps the
        # live row block from growing monotonically to 300.
        assert engine._n < 200
        assert len(engine.fct_records) == 300

    def test_arrays_synced_back_after_run(self):
        engine = _run(FluidEngine, "dcqcn", _fattree_flows(), goodput_bin=None)
        arrays = engine.arrays
        for i, link in enumerate(engine.graph.link_list):
            assert link.queue == arrays.queue[i]
            assert link.tx_bytes == arrays.tx[i]
