"""Conservation properties every backend must honour, packet to hybrid.

Hypothesis throws random small star scenarios at all three backends and
checks the physics no model is allowed to break, whatever its
approximation level:

* nothing beats the wire — aggregate goodput through the receiver's
  downlink, and each sender's uplink, never exceeds link capacity;
* admitted flows complete (or park under an unmet deadline) — they
  never vanish, duplicate, or finish before they start;
* sampled queues are nonnegative and the completion flag is truthful.

The hybrid backend additionally draws a random foreground count, so the
degenerate partitions (0 and n) and the mixed path are all exercised by
the same invariants.  One previously-interesting draw is pinned via
``@example`` so it runs on every invocation, shrunk or not.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.runner import CcChoice, ScenarioSpec, execute_spec
from repro.sim.units import US

BACKENDS = ("packet", "fluid", "hybrid")

#: 10Gbps in bytes/ns — every generated star runs at this host rate.
HOST_RATE_BPNS = 1.25
#: Serialization slack: goodput is payload-only but sits inside wired
#: frames (headers, INT), and FCT windows include the first-byte RTT.
UTIL_SLACK = 1.02


@st.composite
def star_scenarios(draw):
    """A handful of flows into one star receiver, any sizes/offsets."""
    n_hosts = draw(st.integers(3, 5))
    dst = n_hosts - 1
    n_flows = draw(st.integers(1, 5))
    flows = []
    for i in range(n_flows):
        src = draw(st.integers(0, n_hosts - 2))
        # >=10KB: sub-RTT flows legitimately undercut the ideal-FCT
        # model's fixed RTT term, which would fail the slowdown floor.
        size = draw(st.integers(10_000, 100_000))
        start = float(draw(st.integers(0, 100))) * US
        flows.append((src, dst, size, start, f"f{i}"))
    fg_count = draw(st.integers(0, n_flows))
    return n_hosts, tuple(flows), fg_count


#: The pinned draw: staggered starts, a shared source, and a 1-flow
#: foreground — the shape that once exposed the coupler's first-epoch
#: staleness most clearly.
PINNED = (
    4,
    ((0, 3, 60_000, 0.0, "f0"),
     (1, 3, 60_000, 100_000.0, "f1"),
     (0, 3, 30_000, 0.0, "f2")),
    1,
)


def build_spec(backend: str, scenario, cc: str) -> ScenarioSpec:
    n_hosts, flows, fg_count = scenario
    workload = {"flows": [list(f) for f in flows], "deadline": 50e6}
    if backend == "hybrid":
        workload["foreground"] = {"kind": "count", "n": fg_count}
    return ScenarioSpec(
        program="flows",
        topology="star",
        topology_params={"n_hosts": n_hosts, "host_rate": "10Gbps"},
        cc=CcChoice(cc),
        workload=workload,
        config={"base_rtt": 9 * US},
        measure={"sample_interval": 20_000.0},
        backend=backend,
        label=f"prop-{backend}",
    )


class TestConservationInvariants:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(deadline=None, max_examples=6,
              suppress_health_check=[HealthCheck.too_slow])
    @given(star_scenarios(), st.sampled_from(["hpcc", "dctcp"]))
    @example(PINNED, "hpcc")
    def test_conservation(self, backend, scenario, cc):
        n_hosts, flows, _ = scenario
        record = execute_spec(build_spec(backend, scenario, cc))

        # Admitted flows complete — the deadline is far beyond any fair
        # completion, so nothing may park, vanish or double-finish.
        assert record.completed
        assert sorted(r["flow_id"] for r in record.fct) == \
            list(range(1, len(flows) + 1))
        for r in record.fct:
            assert r["finish"] > r["start"] >= r["start_time"]
        for fct in record.fct_records():
            assert fct.fct > 0
            assert fct.slowdown >= 0.9      # can't beat the ideal by much

        # Nothing beats the wire: the receiver's downlink over the busy
        # window, and each sender's uplink over its own window.
        def window_util(entries):
            total = sum(e["size"] for e in entries)
            window = max(e["finish"] for e in entries) - \
                min(e["start"] for e in entries)
            return total / window if window > 0 else 0.0

        assert window_util(record.fct) <= UTIL_SLACK * HOST_RATE_BPNS
        by_src: dict[int, list] = {}
        for entry in record.fct:
            by_src.setdefault(entry["src"], []).append(entry)
        for entries in by_src.values():
            assert window_util(entries) <= UTIL_SLACK * HOST_RATE_BPNS

        # Sampled queues never go negative.
        for series in record.queues.values():
            assert all(q >= 0 for q in series["qlens"])

    @settings(deadline=None, max_examples=6,
              suppress_health_check=[HealthCheck.too_slow])
    @given(star_scenarios(), st.sampled_from(["hpcc", "dctcp"]))
    @example(PINNED, "hpcc")
    def test_hybrid_partition_is_exhaustive(self, scenario, cc):
        """Every generated flow lands in exactly one half."""
        n_hosts, flows, fg_count = scenario
        record = execute_spec(build_spec("hybrid", scenario, cc))
        assert record.extras["foreground_flows"] + \
            record.extras["background_flows"] == len(flows)
        assert record.extras["foreground_flows"] == min(fg_count, len(flows))
        mode = record.extras["hybrid_mode"]
        if fg_count == 0:
            assert mode == "all_background"
        elif fg_count == len(flows):
            assert mode == "all_foreground"
        else:
            assert mode == "mixed"
            fg_ids = set(record.extras["foreground_flow_ids"])
            assert len(fg_ids) == fg_count
            assert fg_ids <= {r["flow_id"] for r in record.fct}
