"""Leftover helper coverage: format_cdf, goodput introspection, units."""

import pytest

from repro.metrics.reporter import format_cdf, format_table
from repro.metrics.timeseries import GoodputTracker
from repro.sim.units import fmt_bytes, fmt_time


class TestFormatCdf:
    def test_percentile_points(self):
        values = list(range(1, 101))
        probs = [i / 100 for i in values]
        out = format_cdf(values, probs, points=(0.5, 0.99))
        assert "p50=50.0" in out
        assert "p99=99.0" in out

    def test_empty(self):
        assert format_cdf([], []) == "(no samples)"

    def test_custom_format(self):
        out = format_cdf([1000.0], [1.0], points=(1.0,),
                         value_fmt="{:.0f}B")
        assert "p100=1000B" in out


class TestFormatTableEdges:
    def test_single_column(self):
        out = format_table(["x"], [[1], [22]])
        assert out.splitlines()[0] == "x "

    def test_floats_rendered_two_places(self):
        out = format_table(["v"], [[1.2345]])
        assert "1.23" in out


class TestGoodputIntrospection:
    def test_flow_ids_sorted(self):
        tracker = GoodputTracker(1000.0)
        tracker.record(5, 10.0, 100)
        tracker.record(2, 10.0, 100)
        assert tracker.flow_ids() == [2, 5]

    def test_zero_bytes_ignored(self):
        tracker = GoodputTracker(1000.0)
        tracker.record(1, 10.0, 0)
        assert tracker.flow_ids() == []

    def test_window_narrower_than_bin_uses_covering_bin(self):
        tracker = GoodputTracker(1000.0)
        tracker.record(1, 500.0, 1000)
        assert tracker.mean_gbps(1, 400.0, 600.0) == pytest.approx(8.0)


class TestUnitFormatEdges:
    def test_fmt_time_ns(self):
        assert fmt_time(5.0) == "5.0ns"

    def test_fmt_time_seconds(self):
        assert fmt_time(2.5e9) == "2.500s"

    def test_fmt_bytes_plain(self):
        assert fmt_bytes(999) == "999B"

    def test_fmt_bytes_gb(self):
        assert fmt_bytes(3.2e9) == "3.20GB"
