"""Golden determinism fixtures for the packet engine.

One small congestive scenario per CC scheme, run under a fixed seed, with
``events_processed`` and a digest of the FCT records pinned to values
captured on the pre-refactor engine.  Any engine change that alters event
*ordering* or timer semantics — not just timing bugs, but accidental
reorderings from heap or timer refactors — fails these loudly.

The DCQCN scenario intentionally includes an RTO firing (flow 1 stalls
behind CNP-driven rate cuts and recovers via timeout), so retransmission-
timer refactors are covered, not just the happy path.

``events_processed`` counts *logical* simulation events — the canonical
serialize-done / propagate / deliver event structure — which the engine
guarantees is invariant to internal optimizations (event fusion, lazy
timer re-arming).  That is what makes these values stable across engine
implementations.  The guarantee is exact for runs that complete (all
golden scenarios do); a run truncated mid-serialization by a deadline may
lead the canonical count by the ports still serializing (see
``sim/queues.py``).
"""

import hashlib

import pytest

from repro.network import Network, NetworkConfig
from repro.sim.units import MS, US
from repro.topology import star

# cc_name -> (events_processed, sha256 of FCT records).
# Captured on the seed tuple-heap-free engine (PR 2 tip); see the digest
# helper below for the exact digest input format.
GOLDEN = {
    "hpcc": (19632, "5686e6ce3972315d03a3a28f0b9631a063d37b722290bc0faa65101d9dcf6a0f"),
    "dcqcn": (18105, "12a45cde9f85e722f4eb89bbbccc3cf67673e0878cd72d7acca5d7b6a89e5fa3"),
    "timely": (17980, "21ede42fa0d70b8fbada2eea0d56708b5d4f7c50891c28d9c2ea8a3a5b994a0e"),
    "dctcp": (17603, "7c9a9a6916b8bfa648a8fb883fb6a97a91be2c0b37a897c0bf47484269cc6dc9"),
}


def fct_digest(records) -> str:
    """Full-precision digest of (flow, start, finish) for every FCT record."""
    recs = sorted(records, key=lambda r: r.spec.flow_id)
    text = ";".join(f"{r.spec.flow_id}:{r.start!r}:{r.finish!r}" for r in recs)
    return hashlib.sha256(text.encode()).hexdigest()


def golden_run(cc_name: str):
    """3 staggered flows incast into host 3 of a 100Gbps star."""
    net = Network(
        star(4, host_rate="100Gbps"),
        NetworkConfig(cc_name=cc_name, base_rtt=9 * US, seed=3),
    )
    net.add_flow(net.make_flow(0, 3, 1_000_000, start_time=1_000.0))
    net.add_flow(net.make_flow(1, 3, 700_000, start_time=1_003.0))
    net.add_flow(net.make_flow(2, 3, 500_000, start_time=1_007.0))
    done = net.run_until_done(deadline=5 * MS)
    assert done, f"{cc_name} golden scenario did not finish"
    return net


@pytest.mark.parametrize("cc_name", sorted(GOLDEN))
def test_golden_determinism(cc_name):
    expected_events, expected_digest = GOLDEN[cc_name]
    net = golden_run(cc_name)
    assert net.sim.events_processed == expected_events, (
        f"{cc_name}: events_processed changed "
        f"({net.sim.events_processed} vs golden {expected_events}) — "
        "the engine refactor altered event structure or ordering"
    )
    assert fct_digest(net.metrics.fct_records) == expected_digest, (
        f"{cc_name}: FCT records diverged from the golden capture — "
        "the engine refactor is not bit-identical"
    )


def test_golden_run_is_repeatable():
    """Same-process re-runs are bit-identical (no hidden global state)."""
    first = golden_run("hpcc")
    second = golden_run("hpcc")
    assert first.sim.events_processed == second.sim.events_processed
    assert fct_digest(first.metrics.fct_records) == fct_digest(
        second.metrics.fct_records
    )


# cc_name -> (events_processed, sha256 of FCT records) for the failover
# scenario below, captured at the PR-3 tip — before the incremental
# routing-reconvergence layer replaced the one-shot table rebuild.  Any
# divergence means the scoped recompute is not equivalent to the full
# rebuild (tables, member ordering, or event structure changed).
GOLDEN_FAILOVER = {
    "hpcc": (51960, "20feb4669239d1d18e699fbe4b0816168f1c71f911f22fc8789bab57f95e818b"),
    "dcqcn": (48032, "69ac64505a7e2c37b9244f99641cc48b65a7fdd59462b7ed9af5a1fe51a95404"),
}


def golden_failover_run(cc_name: str):
    """2 cross-rack flows on a dual trunk; one trunk cut at 0.2ms and
    restored at 0.6ms — fail *and* restore both exercise reconvergence."""
    from repro.topology.simple import dual_trunk

    net = Network(
        dual_trunk(n_pairs=2),
        NetworkConfig(cc_name=cc_name, base_rtt=9 * US, rto=300 * US, seed=3),
    )
    net.add_flow(net.make_flow(0, 2, 2_000_000, start_time=1_000.0))
    net.add_flow(net.make_flow(1, 3, 2_000_000, start_time=1_003.0))
    net.sim.at(0.2 * MS, net.fail_link, 4, 5)
    net.sim.at(0.6 * MS, net.restore_link, 4, 5)
    done = net.run_until_done(deadline=50 * MS)
    assert done, f"{cc_name} golden failover scenario did not finish"
    return net


@pytest.mark.parametrize("cc_name", sorted(GOLDEN_FAILOVER))
def test_golden_failover_determinism(cc_name):
    expected_events, expected_digest = GOLDEN_FAILOVER[cc_name]
    net = golden_failover_run(cc_name)
    assert net.sim.events_processed == expected_events, (
        f"{cc_name}: failover events_processed changed "
        f"({net.sim.events_processed} vs golden {expected_events}) — "
        "incremental reconvergence altered event structure or ordering"
    )
    assert fct_digest(net.metrics.fct_records) == expected_digest, (
        f"{cc_name}: failover FCT records diverged from the golden "
        "capture — the scoped recompute is not bit-identical to the "
        "one-shot table rebuild"
    )
