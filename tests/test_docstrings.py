"""Docstring-presence gate: every module under src/repro documents itself.

The two newest subsystems (``dynamics``, ``fluid``) were the motivating
gap — they carry the subtlest semantics (two-phase failure application,
analytic INT synthesis) and were at one point documented only in README
prose.  The gate is repo-wide so the next subsystem cannot regress the
same way; CI runs this file as part of tier-1.
"""

import ast
from pathlib import Path

import pytest

SRC_ROOT = Path(__file__).parent.parent / "src" / "repro"

MODULES = sorted(
    p for p in SRC_ROOT.rglob("*.py") if "__pycache__" not in p.parts
)

#: Modules newer docs pressure applies to most: the subsystems the
#: docstring satellite named.  Asserted explicitly so a glob change
#: cannot silently drop them from coverage.
NAMED_SUBSYSTEMS = ("dynamics", "fluid")


def module_docstring(path: Path) -> str | None:
    return ast.get_docstring(ast.parse(path.read_text()))


def test_collects_the_whole_tree():
    assert len(MODULES) > 60
    for name in NAMED_SUBSYSTEMS:
        members = [p for p in MODULES if p.parent.name == name]
        assert len(members) >= 3, f"src/repro/{name} missing from collection"


@pytest.mark.parametrize(
    "path", MODULES, ids=lambda p: str(p.relative_to(SRC_ROOT))
)
def test_module_has_docstring(path):
    doc = module_docstring(path)
    assert doc, f"{path.relative_to(SRC_ROOT)} has no module docstring"


@pytest.mark.parametrize("subsystem", NAMED_SUBSYSTEMS)
def test_named_subsystems_have_substantive_docstrings(subsystem):
    """dynamics/* and fluid/* must explain themselves, not just exist."""
    for path in (SRC_ROOT / subsystem).glob("*.py"):
        doc = module_docstring(path)
        assert doc and len(doc) > 120, (
            f"{path.relative_to(SRC_ROOT)}: module docstring too thin "
            "for a core subsystem"
        )
