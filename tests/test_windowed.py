"""+win wrappers: fixed BDP cap over a rate-based scheme."""

import pytest

from repro.core.dcqcn import Dcqcn
from repro.core.timely import Timely
from repro.core.windowed import WindowedCc
from repro.sim.units import US

from tests.helpers import FakeFlow, plain_ack


def make_windowed(env, inner_cls, **kw):
    cc = WindowedCc(env, inner_cls(env, **kw))
    flow = FakeFlow()
    cc.install(flow)
    return cc, flow


class TestWindowEnforcement:
    def test_install_sets_bdp_window(self, env):
        cc, flow = make_windowed(env, Dcqcn)
        assert flow.window == pytest.approx(env.bdp)
        assert flow.rate == pytest.approx(env.line_rate)

    def test_window_enforced_after_cnp(self, env):
        cc, flow = make_windowed(env, Dcqcn)
        cc.on_cnp(flow, now=0.0)
        assert flow.window == pytest.approx(env.bdp)
        assert flow.rate < env.line_rate            # inner DCQCN still cut

    def test_window_enforced_after_ack(self, env):
        cc, flow = make_windowed(env, Timely)
        cc.on_ack(flow, plain_ack(0, 1000, ts_tx=0.0), now=50 * US)
        cc.on_ack(flow, plain_ack(1000, 2000, ts_tx=0.0), now=900 * US)
        assert flow.window == pytest.approx(env.bdp)

    def test_inner_rate_drives_pacing(self, env):
        cc, flow = make_windowed(env, Dcqcn)
        cc.on_cnp(flow, now=0.0)
        assert flow.rate == pytest.approx(env.line_rate / 2)


class TestDelegation:
    def test_cnp_interval_passthrough(self, env):
        cc = WindowedCc(env, Dcqcn(env, td=7 * US))
        assert cc.cnp_interval == 7 * US

    def test_timely_has_no_cnp(self, env):
        cc = WindowedCc(env, Timely(env))
        assert cc.cnp_interval is None

    def test_needs_int_follows_inner(self, env):
        assert WindowedCc(env, Dcqcn(env)).needs_int is False

    def test_flow_done_propagates(self, env):
        cc, flow = make_windowed(env, Dcqcn, ti=10 * US)
        cc.on_flow_done(flow, now=0.0)
        env.sim.run(until=100 * US)
        assert cc.inner.t_stage == 0

    def test_packet_sent_feeds_byte_counter(self, env):
        from repro.sim.packet import Packet, PacketType
        cc, flow = make_windowed(env, Dcqcn, byte_counter=5000)
        cc.on_cnp(flow, now=0.0)
        for _ in range(6):
            cc.on_packet_sent(
                flow, Packet(PacketType.DATA, 1, 0, 1, payload=1000, header=0),
                now=0.0,
            )
        assert cc.inner.b_stage == 1
