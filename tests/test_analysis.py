"""Appendix A models: the Lemma, AI equilibria, ND/D/1 queueing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.convergence import RateNetwork, random_network
from repro.analysis.fairness import (
    alpha_fair_limits,
    alpha_fair_rate,
    equilibrium_rate,
    equilibrium_utilization,
    fairness_convergence_time,
    iterate_single_resource,
    max_stable_ai,
    wai_rule_of_thumb,
)
from repro.analysis.queueing import (
    PeriodicSourcesQueue,
    mean_queue_full_load,
    overflow_probability,
)


class TestRateNetworkBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateNetwork(np.array([[2.0]]), np.array([1.0]))   # non-binary
        with pytest.raises(ValueError):
            RateNetwork(np.array([[1.0]]), np.array([0.0]))   # zero capacity
        with pytest.raises(ValueError):
            RateNetwork(np.array([[0.0]]), np.array([1.0]))   # unused path

    def test_single_bottleneck_one_step(self):
        # One resource, two paths: one step lands exactly on capacity.
        net = RateNetwork(np.array([[1.0, 1.0]]), np.array([10.0]))
        r1 = net.step(np.array([20.0, 20.0]))
        assert net.loads(r1)[0] == pytest.approx(10.0)
        assert r1 == pytest.approx([5.0, 5.0])

    def test_step_scales_up_underloaded(self):
        net = RateNetwork(np.array([[1.0]]), np.array([10.0]))
        r1 = net.step(np.array([2.0]))
        assert r1[0] == pytest.approx(10.0)

    def test_nonpositive_rates_rejected(self):
        net = RateNetwork(np.array([[1.0]]), np.array([1.0]))
        with pytest.raises(ValueError):
            net.step(np.array([0.0]))


class TestLemma:
    """The Appendix A.2 Lemma, checked numerically.

    (iii) is checked at a 1% saturation tolerance: when a later bottleneck
    carries paths clamped by an earlier one it saturates geometrically
    rather than in one exact step (see EXPERIMENTS.md).
    """

    @settings(deadline=None, max_examples=40)
    @given(st.integers(0, 10_000))
    def test_feasible_after_one_step(self, seed):
        rng = np.random.default_rng(seed)
        net = random_network(int(rng.integers(2, 7)),
                             int(rng.integers(2, 9)), rng)
        r0 = rng.uniform(0.05, 8.0, size=net.n_paths)
        assert net.is_feasible(net.step(r0))

    @settings(deadline=None, max_examples=40)
    @given(st.integers(0, 10_000))
    def test_monotone_after_first_step(self, seed):
        rng = np.random.default_rng(seed)
        net = random_network(int(rng.integers(2, 7)),
                             int(rng.integers(2, 9)), rng)
        trajectory = net.iterate(rng.uniform(0.05, 8.0, size=net.n_paths), 8)
        for a, b in zip(trajectory[1:], trajectory[2:]):
            assert (b >= a - 1e-9).all()

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000))
    def test_converges_to_pareto(self, seed):
        # The saturation of later bottlenecks is geometric when they carry
        # paths clamped by earlier ones, so the finite-I claim holds only
        # approximately; the asymptotic claim holds always.
        rng = np.random.default_rng(seed)
        net = random_network(int(rng.integers(2, 6)),
                             int(rng.integers(2, 8)), rng)
        r0 = rng.uniform(0.05, 8.0, size=net.n_paths)
        final = net.iterate(r0, 200)[-1]
        assert net.is_pareto_optimal(final, tol=0.01)

    def test_paper_example_parking_lot(self):
        # Two resources, three paths: path 2 crosses both.
        a = np.array([[1.0, 0.0, 1.0],
                      [0.0, 1.0, 1.0]])
        net = RateNetwork(a, np.array([10.0, 10.0]))
        rates = net.converged_rates(np.array([1.0, 1.0, 1.0]))
        assert net.is_feasible(rates)
        assert net.is_pareto_optimal(rates, tol=0.01)

    def test_fixed_point_is_stable(self):
        net = RateNetwork(np.array([[1.0, 1.0]]), np.array([10.0]))
        fixed = np.array([4.0, 6.0])        # already saturating
        assert net.step(fixed) == pytest.approx(fixed)


class TestFairnessEquilibria:
    def test_rate_utilization_duality(self):
        # R = a/(1 - Ut/U)  <=>  U = Ut/(1 - a/R).
        a, ut = 0.05, 0.95
        u = 0.97
        r = equilibrium_rate(a, ut, u)
        assert equilibrium_utilization(a, ut, r) == pytest.approx(u)

    def test_fixed_point_iteration_matches_closed_form(self):
        a, ut, n, c = 0.01, 0.95, 10, 10.0
        r, u = iterate_single_resource(n, c, a, ut, n_steps=5000)
        assert r == pytest.approx(equilibrium_rate(a, ut, u), rel=1e-3)
        assert u == pytest.approx(equilibrium_utilization(a, ut, r), rel=1e-3)

    def test_utilization_grows_with_ai_step(self):
        _, u_small = iterate_single_resource(10, 10.0, 0.005, 0.95)
        _, u_large = iterate_single_resource(10, 10.0, 0.02, 0.95)
        assert u_large > u_small > 0.95

    def test_max_stable_ai_bound(self):
        # a < R(1) x (1 - Utarget) keeps U below 100% (Appendix A.3).
        bound = max_stable_ai(0.95, min_rate=1.0)
        assert bound == pytest.approx(0.05)
        _, u = iterate_single_resource(10, 10.0, bound * 0.9, 0.95)
        assert u < 1.0

    def test_equilibrium_validation(self):
        with pytest.raises(ValueError):
            equilibrium_rate(0.1, 0.95, 0.90)
        with pytest.raises(ValueError):
            equilibrium_utilization(0.1, 0.95, 0.05)


class TestAlphaFairness:
    def test_limits(self):
        rates = [1.0, 2.0, 4.0]
        limits = alpha_fair_limits(rates)
        assert limits["max_min (alpha->inf)"] == 1.0
        # alpha=1: harmonic-style combination of per-resource rates.
        assert limits["proportional (alpha=1)"] == pytest.approx(
            1.0 / (1 / 1 + 1 / 2 + 1 / 4)
        )

    def test_alpha_to_infinity_approaches_min(self):
        rates = [1.0, 2.0, 4.0]
        assert alpha_fair_rate(rates, 50.0) == pytest.approx(1.0, rel=0.05)

    def test_monotone_decreasing_in_alpha_below_min(self):
        rates = [1.0, 3.0]
        values = [alpha_fair_rate(rates, a) for a in (0.5, 1.0, 2.0, 8.0)]
        assert all(v <= rates[0] + 1e-9 for v in values[1:])

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_fair_rate([], 1.0)
        with pytest.raises(ValueError):
            alpha_fair_rate([1.0], 0.0)
        with pytest.raises(ValueError):
            alpha_fair_rate([-1.0], 1.0)

    def test_wai_rule(self):
        # Footnote 4: 80B for Winit at 100G x T with N=100... shape check:
        assert wai_rule_of_thumb(160_000, 0.95, 100) == pytest.approx(80.0)

    def test_convergence_time_monotone(self):
        fast = fairness_convergence_time(0, 10_000, wai=100, base_rtt=9000)
        slow = fairness_convergence_time(0, 10_000, wai=10, base_rtt=9000)
        assert slow > fast


class TestQueueing:
    def test_mean_queue_formula(self):
        # sqrt(pi N / 8): about 4.4 packets for N=50 ("less than 5").
        assert mean_queue_full_load(50) == pytest.approx(4.43, abs=0.01)
        assert mean_queue_full_load(50) < 5

    def test_overflow_probability_tiny_at_95(self):
        # The paper: ~1e-9 for 20 packets, 50 sources, 95% load.
        p = overflow_probability(50, 0.95, 20)
        assert p < 1e-7

    def test_overflow_increases_with_load(self):
        assert overflow_probability(50, 0.99, 10) > \
               overflow_probability(50, 0.90, 10)

    def test_simulated_mean_below_formula_at_95(self):
        sim = PeriodicSourcesQueue(50, 0.95, seed=3)
        assert sim.mean_queue(n_periods=100) < mean_queue_full_load(50) + 1

    def test_simulated_full_load_near_formula(self):
        sim = PeriodicSourcesQueue(50, 1.0, seed=3)
        mean = sim.mean_queue(n_periods=200)
        assert mean == pytest.approx(mean_queue_full_load(50), rel=0.5)

    def test_simulated_tail_negligible(self):
        sim = PeriodicSourcesQueue(50, 0.95, seed=3)
        assert sim.tail_probability(20, n_periods=100) < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicSourcesQueue(0, 0.5)
        with pytest.raises(ValueError):
            PeriodicSourcesQueue(5, 1.5)
        with pytest.raises(ValueError):
            overflow_probability(5, 0.0, 1)
        with pytest.raises(ValueError):
            mean_queue_full_load(0)
