"""`hpcc-repro report` end-to-end: the --fastest fluid build.

This is the acceptance smoke for the report subsystem: offline, no
matplotlib, builds index.html + per-figure SVGs, and the two headline
figures (Fig. 11 and Fig. 13) score "pass" against the digitized
reference data on the fluid backend.
"""

import json

import pytest

from repro.cli import main
from repro.report.build import (
    FASTEST_FIGURES,
    REPORT_FIGURES,
    load_bench_trajectory,
    resolve_figures,
)


class TestResolveFigures:
    def test_fastest_subset(self):
        assert resolve_figures(None, fastest=True) == list(FASTEST_FIGURES)

    def test_default_is_all(self):
        assert resolve_figures(None, fastest=False) == list(REPORT_FIGURES)

    def test_aliases_resolve(self):
        assert resolve_figures(["figure11", "fig13"], False) == [
            "fig11", "fig13",
        ]

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            resolve_figures(["fig99"], False)

    def test_fastest_conflicts_with_explicit_figures(self):
        # Silently ignoring --figures would build the wrong report.
        with pytest.raises(SystemExit, match="fastest"):
            resolve_figures(["fig10"], fastest=True)

    def test_fastest_figures_are_fluid_eligible_and_scored(self):
        from repro.report import available_refdata

        refdata = set(available_refdata())
        for key in FASTEST_FIGURES:
            assert REPORT_FIGURES[key].fluid_ok, key
            assert key in refdata, key

    def test_packet_only_figures_flagged(self):
        assert not REPORT_FIGURES["fig1"].fluid_ok
        assert not REPORT_FIGURES["fig12"].fluid_ok


class TestBenchTrajectory:
    def test_reads_snapshots(self, tmp_path):
        for pr, wall in ((3, 1.5), (4, 1.2)):
            (tmp_path / f"BENCH_pr{pr}.json").write_text(json.dumps({
                "results": [{"name": "engine_events", "wall_time_s": wall}],
            }))
        panel = load_bench_trajectory(tmp_path)
        [series] = panel.series
        assert series.name == "engine_events"
        assert series.x == [3.0, 4.0]
        assert series.y == [1.5, 1.2]

    def test_no_snapshots_returns_none(self, tmp_path):
        assert load_bench_trajectory(tmp_path) is None

    def test_corrupt_snapshot_skipped(self, tmp_path):
        (tmp_path / "BENCH_pr3.json").write_text("{not json")
        assert load_bench_trajectory(tmp_path) is None

    def test_missing_prs_render_as_nan_gaps(self, tmp_path):
        """pr5/pr7-style snapshot gaps become NaN points, not bridges."""
        import math

        (tmp_path / "BENCH_pr3.json").write_text(json.dumps({
            "results": [{"name": "engine_events", "wall_time_s": 1.5}],
        }))                                      # unstamped v1 snapshot
        (tmp_path / "BENCH_pr6.json").write_text(json.dumps({
            "schema": 2,
            "results": [{"name": "engine_events", "wall_time_s": 1.1}],
        }))
        panel = load_bench_trajectory(tmp_path)
        [series] = panel.series
        assert series.x == [3.0, 4.0, 5.0, 6.0]  # full PR axis
        assert series.y[0] == 1.5 and series.y[3] == 1.1
        assert math.isnan(series.y[1]) and math.isnan(series.y[2])

    def test_unknown_schema_stamp_skipped(self, tmp_path):
        (tmp_path / "BENCH_pr3.json").write_text(json.dumps({
            "schema": 99,
            "results": [{"name": "engine_events", "wall_time_s": 1.5}],
        }))
        assert load_bench_trajectory(tmp_path) is None

    def test_engine_rate_trajectory_gap_axis(self, tmp_path):
        import math

        from repro.report.build import load_engine_rate_trajectory

        for pr, wall in ((3, 2.0), (5, 1.0)):
            (tmp_path / f"BENCH_pr{pr}.json").write_text(json.dumps({
                "results": [{"name": "engine_events", "wall_time_s": wall,
                             "params": {"events": 200_000}}],
            }))
        panel = load_engine_rate_trajectory(tmp_path)
        [series] = panel.series
        assert series.x == [3.0, 4.0, 5.0]
        assert series.y[0] == 100_000.0 and series.y[2] == 200_000.0
        assert math.isnan(series.y[1])


class TestFailedCells:
    """Quarantined sweep cells must badge the figure, not kill the build."""

    @pytest.mark.chaos
    def test_all_cells_failed_degrades_to_empty_figure(self, tmp_path):
        from repro.report.build import build_figure
        from repro.runner import SweepRunner

        def explode(spec, telemetry=False):
            raise RuntimeError("cell down")

        runner = SweepRunner(execute=explode)
        fig = build_figure("fig13", backend="fluid", scale="bench",
                           runner=runner)
        assert fig.n_failed == fig.n_specs > 0
        assert any("cells failed" in note for note in fig.notes)

    def test_failure_badge_in_html(self):
        from repro.report.build import FigureReport
        from repro.report.figures import FigureRender
        from repro.report.html import _figure_section

        fig = FigureReport(
            key="figX", title="T", backend="packet", scale="bench",
            render=FigureRender(figure="figX", title="T", panels=[]),
            score=None, ref=None, n_specs=3, n_cached=0,
            wall_time_s=0.1, n_failed=2,
        )
        section = _figure_section(fig)
        assert "2 CELLS FAILED" in section
        assert "2 failed" in section


class TestReportCliSmoke:
    @pytest.fixture(scope="class")
    def report_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("report")
        status = main([
            "report", "--fastest", "--out", str(out), "--quiet",
        ])
        assert status == 0
        return out

    def test_emits_index_html(self, report_dir):
        html = (report_dir / "index.html").read_text()
        assert "<svg" in html
        for key in FASTEST_FIGURES:
            assert key in html

    def test_emits_per_figure_svgs(self, report_dir):
        produced = {p.name for p in report_dir.glob("*.svg")}
        for key in FASTEST_FIGURES:
            assert any(name.startswith(f"{key}_") for name in produced), key

    def test_fig11_and_fig13_pass_on_fluid(self, report_dir):
        summary = json.loads((report_dir / "report.json").read_text())
        for key in ("fig11", "fig13"):
            entry = summary["figures"][key]
            assert entry["backend"] == "fluid"
            assert entry["verdict"] == "pass", (key, entry)

    def test_every_fastest_figure_is_scored(self, report_dir):
        summary = json.loads((report_dir / "report.json").read_text())
        for key in FASTEST_FIGURES:
            entry = summary["figures"][key]
            assert entry["verdict"] in ("pass", "warn", "fail")
            assert entry["checks_total"] > 0

    def test_report_json_is_strict(self, report_dir):
        # Stats legitimately hold inf/nan (un-drained queues, empty
        # percentiles); they must encode as strings, not bare Infinity
        # tokens that strict parsers reject.
        text = (report_dir / "report.json").read_text()
        assert "Infinity" not in text and "NaN" not in text
        json.loads(text)

    def test_fastest_carries_hybrid_fig11_cell(self, report_dir):
        # --fastest additionally runs one fig11 cell on the hybrid
        # backend (10% foreground) and ships it as hybrid_fig11.json.
        cell = json.loads((report_dir / "hybrid_fig11.json").read_text())
        assert cell["backend"] == "hybrid"
        assert cell["hybrid_mode"] == "mixed"
        assert cell["foreground_flows"] > 0
        assert cell["background_flows"] > cell["foreground_flows"]
        assert cell["hybrid_epochs"] > 0 and cell["n_fct"] > 0
        summary = json.loads((report_dir / "report.json").read_text())
        assert "hybrid_fig11.json" in summary["metadata"]["hybrid cell"]

    def test_rerun_hits_cache(self, report_dir, capsys):
        assert main([
            "report", "--fastest", "--out", str(report_dir), "--quiet",
        ]) == 0
        summary = json.loads((report_dir / "report.json").read_text())
        for key in FASTEST_FIGURES:
            entry = summary["figures"][key]
            assert entry["cached"] == entry["scenarios"], key

    def test_bench_trajectory_found_from_repo_root(self, report_dir):
        # The suite runs from the repo root, where BENCH_pr*.json live.
        summary = json.loads((report_dir / "report.json").read_text())
        note = summary["metadata"]["bench trajectory"]
        assert "BENCH_pr*.json" in note and "no BENCH" not in note
        assert (report_dir / "bench_trajectory.svg").exists()

    def test_missing_bench_snapshots_noted_not_silent(self, tmp_path):
        # Built against a directory with no BENCH_pr*.json: the chart
        # is legitimately absent but the report must say why.
        from repro.report.build import build_report

        report = build_report([], out=tmp_path / "out",
                              bench_root=tmp_path)
        assert "no BENCH_pr*.json" in report.metadata["bench trajectory"]
        html = (tmp_path / "out" / "index.html").read_text()
        assert "no BENCH_pr*.json" in html

    def test_png_flag_is_gated_on_matplotlib(self, report_dir):
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            with pytest.raises(SystemExit, match="matplotlib"):
                main(["report", "--fastest", "--out", str(report_dir),
                      "--quiet", "--png"])
        else:
            assert main(["report", "--fastest", "--out", str(report_dir),
                         "--quiet", "--png"]) == 0
            assert list(report_dir.glob("*.png"))


class TestHybridReportCells:
    """Mixed fluid+hybrid grids: coherent panels, honest badges, and a
    skipped (never crashing) divergence drilldown."""

    @staticmethod
    def _mixed_specs():
        from repro.runner import ScenarioSpec
        from repro.sim.units import US

        base = ScenarioSpec(
            program="flows",
            topology="star",
            topology_params={"n_hosts": 3, "host_rate": "10Gbps"},
            workload={"flows": [[0, 2, 60_000, 0.0, "a"],
                                [1, 2, 60_000, 0.0, "b"]],
                      "deadline": 5e6},
            config={"base_rtt": 9 * US},
            label="cell",
        )
        return [
            base.replaced(backend="fluid", label="fluid-cell"),
            base.replaced(backend="hybrid", label="hybrid-cell",
                          **{"workload.foreground": {"kind": "count",
                                                     "n": 1}}),
        ]

    def test_mixed_grid_badge_and_drilldown_skip(self, tmp_path, monkeypatch):
        from repro.experiments import figure13
        from repro.report.build import build_report
        from repro.report.figures import FigureRender, Panel, Series

        specs = self._mixed_specs()
        monkeypatch.setattr(figure13, "scenarios",
                            lambda scale: list(specs))

        def render(ok_specs, ok_records):
            # One panel per grid: a series per cell, whatever its
            # backend — the render sees one coherent (spec, record) set.
            assert [s.label for s in ok_specs] == ["fluid-cell",
                                                   "hybrid-cell"]
            assert all(r.ok for r in ok_records)
            return FigureRender(figure="fig13", title="Fig 13 (mixed)",
                                panels=[Panel(
                                    key="fct", title="fct",
                                    series=[Series(name=s.backend,
                                                   x=[0.0, 1.0],
                                                   y=[1.0, 2.0])
                                            for s in ok_specs],
                                )])

        monkeypatch.setattr(figure13, "render", render)
        report = build_report(["fig13"], backend="fluid",
                              out=tmp_path / "out",
                              cache_dir=tmp_path / "cache",
                              bench_root=tmp_path)
        [fig] = report.figures
        # The badge reflects what actually ran, not what was requested.
        assert fig.backend == "fluid+hybrid"
        assert fig.n_failed == 0
        # The drilldown skipped with a note instead of crashing on the
        # hybrid cell (there is no second pure backend to diff).
        assert fig.divergence is None
        assert any("drilldown skipped" in note for note in fig.notes)
        assert not (tmp_path / "out" / "divergence.json").exists()
        # One coherent panel set rendered and landed on disk.
        assert (tmp_path / "out" / "fig13_fct.svg").exists()
        html = (tmp_path / "out" / "index.html").read_text()
        assert "fluid+hybrid" in html
