"""Topology builders: counts, speeds, structure, validation."""

import pytest

from repro.sim.units import gbps
from repro.topology import (
    FatTreeSpec,
    LinkSpec,
    Topology,
    bench_fattree,
    dumbbell,
    fattree,
    intree,
    paper_fattree,
    parking_lot,
    star,
)
from repro.topology import testbed as make_testbed


class TestValidation:
    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            Topology("bad", n_hosts=1, n_switches=1,
                     links=[LinkSpec(0, 5, 1.0, 1.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology("bad", n_hosts=2, n_switches=0,
                     links=[LinkSpec(0, 0, 1.0, 1.0)])


class TestStar:
    def test_counts(self):
        topo = star(8)
        assert topo.n_hosts == 8
        assert topo.n_switches == 1
        assert len(topo.links) == 8

    def test_host_rate(self):
        topo = star(4, host_rate="25Gbps")
        assert topo.host_rate(0) == pytest.approx(gbps(25))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            star(1)


class TestDumbbell:
    def test_structure(self):
        topo = dumbbell(3, 2)
        assert topo.n_hosts == 5
        assert topo.n_switches == 2
        # 5 host links + 1 trunk
        assert len(topo.links) == 6

    def test_trunk_rate(self):
        topo = dumbbell(2, 2, trunk_rate="400Gbps")
        trunk = [l for l in topo.links if l.a >= 4 and l.b >= 4][0]
        assert trunk.rate == pytest.approx(gbps(400))


class TestParkingLot:
    def test_counts(self):
        topo = parking_lot(3)
        assert topo.n_switches == 3
        assert topo.n_hosts == 8
        adj = topo.adjacency()
        # Chain: middle switch has 2 switch neighbors + 2 hosts.
        mid = topo.switch_tiers["tor"][1]
        assert len(adj[mid]) == 4

    def test_minimum(self):
        with pytest.raises(ValueError):
            parking_lot(1)


class TestIntree:
    def test_64_to_1_shape(self):
        topo = intree(fan_in=8, depth=2)
        assert topo.n_hosts == 65          # 64 senders + receiver
        assert topo.n_switches == 1 + 8

    def test_receiver_attached_to_root(self):
        topo = intree(fan_in=2, depth=2)
        receiver = 4
        root = topo.n_hosts
        assert any(
            {l.a, l.b} == {receiver, root} for l in topo.links
        )

    def test_all_hosts_have_links(self):
        topo = intree(fan_in=3, depth=2)
        for host in topo.hosts:
            topo.host_link(host)


class TestTestbed:
    def test_paper_shape(self):
        topo = make_testbed()
        assert topo.n_hosts == 32
        assert topo.n_switches == 5        # 4 ToRs + 1 Agg
        assert topo.host_rate(0) == pytest.approx(gbps(25))

    def test_base_rtt_close_to_paper(self):
        # The paper: 5.4us intra-rack, 8.5us cross-rack, T=9us.  The
        # estimate includes per-hop MTU serialization, so it sits slightly
        # above the cross-rack RTT; experiments set T=9us explicitly.
        topo = make_testbed()
        rtt = topo.base_rtt_estimate()
        assert 6_000 < rtt < 9_600

    def test_scaling_knobs(self):
        topo = make_testbed(servers_per_tor=4, n_tors=2, host_rate="10Gbps")
        assert topo.n_hosts == 8
        assert topo.host_rate(3) == pytest.approx(gbps(10))


class TestFatTree:
    def test_paper_scale(self):
        topo = paper_fattree()
        assert topo.n_hosts == 320
        assert topo.n_switches == 20 + 20 + 16
        assert topo.host_rate(0) == pytest.approx(gbps(100))

    def test_bench_scale_is_small(self):
        topo = bench_fattree()
        assert topo.n_hosts == 16
        assert topo.n_switches == 4 + 4 + 2

    def test_tier_labels(self):
        topo = bench_fattree()
        tiers = topo.switch_tiers
        assert len(tiers["tor"]) == 4
        assert len(tiers["agg"]) == 4
        assert len(tiers["core"]) == 2

    def test_pod_bipartite_wiring(self):
        spec = FatTreeSpec(n_pods=2, tors_per_pod=2, aggs_per_pod=2,
                           n_core=2, hosts_per_tor=2)
        topo = fattree(spec)
        adj = topo.adjacency()
        for tor in topo.switch_tiers["tor"]:
            agg_neighbors = [
                p for p, _ in adj[tor] if p in set(topo.switch_tiers["agg"])
            ]
            assert len(agg_neighbors) == spec.aggs_per_pod

    def test_every_agg_reaches_core(self):
        topo = bench_fattree()
        adj = topo.adjacency()
        cores = set(topo.switch_tiers["core"])
        for agg in topo.switch_tiers["agg"]:
            assert any(p in cores for p, _ in adj[agg])

    def test_scaled_factory(self):
        scaled = FatTreeSpec().scaled(4)
        assert scaled.hosts_per_tor == 4
        assert scaled.n_pods >= 2


class TestTopologyHelpers:
    def test_adjacency_symmetric(self):
        topo = dumbbell(2, 2)
        adj = topo.adjacency()
        for node, peers in adj.items():
            for peer, _ in peers:
                assert any(q == node for q, _ in adj[peer])

    def test_min_host_rate(self):
        topo = star(4, host_rate="25Gbps")
        assert topo.min_host_rate() == pytest.approx(gbps(25))

    def test_host_link_missing_raises(self):
        topo = Topology("lonely", n_hosts=1, n_switches=1, links=[])
        with pytest.raises(ValueError):
            topo.host_link(0)
