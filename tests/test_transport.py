"""Go-back-N and IRN state machines."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.transport import (
    GbnReceiver,
    GbnSender,
    IrnReceiver,
    IrnSender,
    make_receiver,
    make_sender,
)


class TestGbnSender:
    def test_sends_in_order(self):
        s = GbnSender(3000)
        assert s.peek_next(1000) == (0, 1000)
        s.mark_sent(0, 1000)
        assert s.peek_next(1000) == (1000, 1000)

    def test_last_packet_truncated(self):
        s = GbnSender(2500)
        s.mark_sent(0, 1000)
        s.mark_sent(1000, 1000)
        assert s.peek_next(1000) == (2000, 500)

    def test_nothing_left(self):
        s = GbnSender(1000)
        s.mark_sent(0, 1000)
        assert s.peek_next(1000) is None
        assert not s.has_pending()

    def test_out_of_order_send_rejected(self):
        s = GbnSender(3000)
        with pytest.raises(AssertionError):
            s.mark_sent(1000, 1000)

    def test_ack_advances_una(self):
        s = GbnSender(3000)
        s.mark_sent(0, 1000)
        assert s.on_ack(1000) == 1000
        assert s.snd_una == 1000
        assert s.inflight == 0

    def test_stale_ack_ignored(self):
        s = GbnSender(3000)
        s.mark_sent(0, 1000)
        s.on_ack(1000)
        assert s.on_ack(500) == 0
        assert s.snd_una == 1000

    def test_complete_at_size(self):
        s = GbnSender(1500)
        s.mark_sent(0, 1000)
        s.mark_sent(1000, 500)
        s.on_ack(1500)
        assert s.complete

    def test_nack_rewinds(self):
        s = GbnSender(5000)
        for seq in range(0, 5000, 1000):
            s.mark_sent(seq, 1000)
        s.on_nack(2000, 3000, now=100.0)
        assert s.snd_nxt == 2000
        assert s.rewinds == 1

    def test_rewind_storm_suppressed(self):
        s = GbnSender(5000, min_rewind_gap=1000.0)
        for seq in range(0, 5000, 1000):
            s.mark_sent(seq, 1000)
        s.on_nack(2000, 3000, now=0.0)
        s.mark_sent(2000, 1000)
        s.mark_sent(3000, 1000)
        s.on_nack(2000, 3000, now=500.0)     # within the gap: ignored
        assert s.rewinds == 1
        s.on_nack(2000, 3000, now=2000.0)    # past the gap: honored
        assert s.rewinds == 2

    def test_nack_never_rewinds_before_una(self):
        s = GbnSender(5000)
        for seq in range(0, 3000, 1000):
            s.mark_sent(seq, 1000)
        s.on_ack(2000)
        s.on_nack(1000, 2500, now=10.0)
        assert s.snd_nxt >= s.snd_una

    def test_timeout_rewinds_to_una(self):
        s = GbnSender(5000)
        for seq in range(0, 4000, 1000):
            s.mark_sent(seq, 1000)
        s.on_ack(1000)
        s.on_timeout(now=1.0)
        assert s.snd_nxt == 1000


class TestGbnReceiver:
    def test_in_order_acks(self):
        r = GbnReceiver()
        assert r.on_data(0, 1000) == (False, 1000)
        assert r.on_data(1000, 1000) == (False, 2000)

    def test_gap_nacks_expected(self):
        r = GbnReceiver()
        r.on_data(0, 1000)
        assert r.on_data(3000, 1000) == (True, 1000)

    def test_duplicate_reacked(self):
        r = GbnReceiver()
        r.on_data(0, 1000)
        r.on_data(1000, 1000)
        assert r.on_data(0, 1000) == (False, 2000)


class TestIrnSender:
    def test_rtx_range_served_first(self):
        s = IrnSender(10_000)
        for seq in range(0, 5000, 1000):
            s.mark_sent(seq, 1000)
        s.on_nack(1000, 3000, now=1.0)       # [1000, 3000) missing
        assert s.snd_una == 1000
        assert s.peek_next(1000) == (1000, 1000)
        s.mark_sent(1000, 1000)
        assert s.peek_next(1000) == (2000, 1000)
        s.mark_sent(2000, 1000)
        assert s.peek_next(1000) == (5000, 1000)   # back to new data
        assert s.retransmissions == 2

    def test_duplicate_nacks_deduped(self):
        s = IrnSender(10_000)
        for seq in range(0, 6000, 1000):
            s.mark_sent(seq, 1000)
        s.on_nack(1000, 3000, now=1.0)
        s.on_nack(1000, 4000, now=2.0)       # only [3000,4000) is new
        total_rtx = sum(e - st for st, e in s._rtx)
        assert total_rtx == 3000

    def test_frontier_clears_stale_rtx(self):
        s = IrnSender(10_000)
        for seq in range(0, 5000, 1000):
            s.mark_sent(seq, 1000)
        s.on_nack(1000, 3000, now=1.0)
        s.on_ack(3000)                       # receiver got it after all
        assert s.peek_next(1000) == (5000, 1000)

    def test_timeout_requests_head(self):
        s = IrnSender(5000)
        for seq in range(0, 3000, 1000):
            s.mark_sent(seq, 1000)
        s.on_timeout(now=1.0)
        assert s.peek_next(1000)[0] == 0

    def test_complete(self):
        s = IrnSender(2000)
        s.mark_sent(0, 1000)
        s.mark_sent(1000, 1000)
        s.on_ack(2000)
        assert s.complete


class TestIrnReceiver:
    def test_in_order(self):
        r = IrnReceiver()
        assert r.on_data(0, 1000) == (False, 1000)

    def test_gap_buffers_and_nacks(self):
        r = IrnReceiver()
        r.on_data(0, 1000)
        is_gap, frontier = r.on_data(2000, 1000)
        assert is_gap and frontier == 1000
        # Filling the hole advances past the buffered range.
        is_gap, frontier = r.on_data(1000, 1000)
        assert not is_gap and frontier == 3000

    def test_reordered_arrivals_all_counted_once(self):
        r = IrnReceiver()
        order = [3000, 0, 2000, 1000, 4000]
        for seq in order:
            r.on_data(seq, 1000)
        assert r.expected == 5000

    def test_overlapping_intervals_merge(self):
        r = IrnReceiver()
        r.on_data(1000, 2000)     # [1000, 3000)
        r.on_data(2000, 2000)     # [2000, 4000) overlaps
        r.on_data(0, 1000)
        assert r.expected == 4000


class TestFactories:
    def test_make_sender_modes(self):
        assert isinstance(make_sender("gbn", 100), GbnSender)
        assert isinstance(make_sender("irn", 100), IrnSender)
        with pytest.raises(ValueError):
            make_sender("quic", 100)

    def test_make_receiver_modes(self):
        assert isinstance(make_receiver("gbn"), GbnReceiver)
        assert isinstance(make_receiver("irn"), IrnReceiver)
        with pytest.raises(ValueError):
            make_receiver("tcp")


class TestTransportProperties:
    @given(st.permutations(list(range(0, 8000, 1000))))
    def test_irn_receiver_any_order_completes(self, order):
        r = IrnReceiver()
        for seq in order:
            r.on_data(seq, 1000)
        assert r.expected == 8000

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=30))
    def test_gbn_receiver_expected_monotone(self, seqs):
        r = GbnReceiver()
        last = 0
        for k in seqs:
            r.on_data(k * 1000, 1000)
            assert r.expected >= last
            last = r.expected

    @given(st.data())
    def test_irn_sender_invariants(self, data):
        s = IrnSender(10_000)
        for _ in range(data.draw(st.integers(1, 40))):
            action = data.draw(st.sampled_from(["send", "ack", "nack"]))
            if action == "send":
                nxt = s.peek_next(1000)
                if nxt is not None:
                    s.mark_sent(*nxt)
            elif action == "ack":
                s.on_ack(data.draw(st.integers(0, 10_000)))
            else:
                frontier = data.draw(st.integers(0, s.snd_nxt))
                oos = data.draw(st.integers(0, 10_000))
                s.on_nack(frontier, oos, now=1.0)
            assert 0 <= s.snd_una <= 10_000
            assert s.snd_una <= s.snd_nxt
            for start, end in s._rtx:
                assert start < end <= 10_000
