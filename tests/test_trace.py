"""Packet event tracing."""

import pytest

from repro.network import Network, NetworkConfig
from repro.sim.trace import PacketTracer
from repro.sim.units import MS, US
from repro.topology import star


@pytest.fixture
def traced_run():
    net = Network(star(3, host_rate="100Gbps"),
                  NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
    tracer = PacketTracer.attach(net)
    spec = net.make_flow(0, 2, 10_000)
    net.add_flow(spec)
    assert net.run_until_done(deadline=5 * MS)
    return net, tracer, spec


class TestTracing:
    def test_sends_match_flow_size(self, traced_run):
        net, tracer, spec = traced_run
        sends = [e for e in tracer.for_flow(spec.flow_id)
                 if e.kind == "send"]
        assert len(sends) == 10                      # 10 x 1000B
        assert sends[0].seq == 0
        assert sends[-1].seq == 9_000

    def test_every_send_eventually_received(self, traced_run):
        net, tracer, spec = traced_run
        sent = {e.seq for e in tracer.events if e.kind == "send"}
        received = {e.seq for e in tracer.events if e.kind == "recv"}
        assert sent <= received | sent               # lossless: all arrive
        assert tracer.count("recv") == tracer.count("send")

    def test_acks_flow_back(self, traced_run):
        _, tracer, spec = traced_run
        assert tracer.count("ack") == tracer.count("send")

    def test_timestamps_monotone(self, traced_run):
        _, tracer, _ = traced_run
        times = [e.t for e in tracer.events]
        assert times == sorted(times)

    def test_write_trace_file(self, traced_run, tmp_path):
        _, tracer, _ = traced_run
        path = tmp_path / "trace.txt"
        n = tracer.write(path)
        lines = path.read_text().splitlines()
        assert len(lines) == n == len(tracer.events)
        assert "send flow=" in lines[0] or "recv flow=" in lines[0]

    def test_max_events_cap(self):
        net = Network(star(3, host_rate="100Gbps"),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        tracer = PacketTracer.attach(net, max_events=5)
        net.add_flow(net.make_flow(0, 2, 50_000))
        net.run_until_done(deadline=5 * MS)
        assert len(tracer.events) == 5

    def test_drop_events_traced(self):
        net = Network(star(4, host_rate="100Gbps"),
                      NetworkConfig(cc_name="dctcp", base_rtt=9 * US,
                                    pfc_enabled=False, buffer_bytes=20_000,
                                    rto=200 * US))
        tracer = PacketTracer.attach(net)
        for s in range(3):
            net.add_flow(net.make_flow(s, 3, 100_000))
        net.run_until_done(deadline=100 * MS)
        assert tracer.count("drop") == net.metrics.drop_count
        assert tracer.count("drop") > 0

    def test_pause_resume_events_traced(self):
        """A shallow-buffer incast with PFC on must pause — and every
        pause must be matched by a resume once the queue drains."""
        net = Network(star(4, host_rate="100Gbps"),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US,
                                    buffer_bytes=20_000))
        tracer = PacketTracer.attach(net)
        for s in range(3):
            net.add_flow(net.make_flow(s, 3, 100_000))
        assert net.run_until_done(deadline=100 * MS)
        assert tracer.count("pause") > 0
        assert tracer.count("resume") == tracer.count("pause")
        # Pause frames carry no flow payload: they target a port, not a flow.
        kinds = {e.kind for e in tracer.events}
        assert {"pause", "resume"} <= kinds

    def test_cnp_events_traced(self):
        """DCQCN's congestion signal (ECN-echo CNP frames) shows up in
        the trace under its own kind, distinct from plain ACKs."""
        net = Network(star(4, host_rate="100Gbps"),
                      NetworkConfig(cc_name="dcqcn", base_rtt=9 * US,
                                    seed=3))
        tracer = PacketTracer.attach(net)
        net.add_flow(net.make_flow(0, 3, 1_000_000, start_time=1_000.0))
        net.add_flow(net.make_flow(1, 3, 700_000, start_time=1_003.0))
        net.add_flow(net.make_flow(2, 3, 500_000, start_time=1_007.0))
        assert net.run_until_done(deadline=5 * MS)
        assert tracer.count("cnp") > 0
        assert tracer.count("cnp") < tracer.count("ack")


class TestJsonlExport:
    def test_to_jsonl_is_schema_valid(self, traced_run, tmp_path):
        import json

        from repro.obs import SCHEMA_NAME, validate_record

        _, tracer, _ = traced_run
        path = tmp_path / "trace.jsonl"
        n = tracer.to_jsonl(path, run_id="trace-test")
        assert n == len(tracer.events)
        lines = path.read_text().splitlines()
        assert len(lines) == n + 1                   # meta header + events
        records = [json.loads(line) for line in lines]
        assert all(validate_record(r) is None for r in records)
        meta, events = records[0], records[1:]
        assert meta["schema"] == SCHEMA_NAME
        assert meta["labels"] == {"timebase": "sim",
                                  "source": "PacketTracer"}
        assert all(r["kind"] == "event" for r in events)
        assert all(r["run_id"] == "trace-test" for r in events)
        assert {r["name"] for r in events} >= {"trace.send", "trace.recv",
                                               "trace.ack"}
        # sim timebase: t is sim-seconds, sim_ns the raw stamp.
        assert all(r["t"] == r["sim_ns"] / 1e9 for r in events)
