"""Packet event tracing."""

import pytest

from repro.network import Network, NetworkConfig
from repro.sim.trace import PacketTracer
from repro.sim.units import MS, US
from repro.topology import star


@pytest.fixture
def traced_run():
    net = Network(star(3, host_rate="100Gbps"),
                  NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
    tracer = PacketTracer.attach(net)
    spec = net.make_flow(0, 2, 10_000)
    net.add_flow(spec)
    assert net.run_until_done(deadline=5 * MS)
    return net, tracer, spec


class TestTracing:
    def test_sends_match_flow_size(self, traced_run):
        net, tracer, spec = traced_run
        sends = [e for e in tracer.for_flow(spec.flow_id)
                 if e.kind == "send"]
        assert len(sends) == 10                      # 10 x 1000B
        assert sends[0].seq == 0
        assert sends[-1].seq == 9_000

    def test_every_send_eventually_received(self, traced_run):
        net, tracer, spec = traced_run
        sent = {e.seq for e in tracer.events if e.kind == "send"}
        received = {e.seq for e in tracer.events if e.kind == "recv"}
        assert sent <= received | sent               # lossless: all arrive
        assert tracer.count("recv") == tracer.count("send")

    def test_acks_flow_back(self, traced_run):
        _, tracer, spec = traced_run
        assert tracer.count("ack") == tracer.count("send")

    def test_timestamps_monotone(self, traced_run):
        _, tracer, _ = traced_run
        times = [e.t for e in tracer.events]
        assert times == sorted(times)

    def test_write_trace_file(self, traced_run, tmp_path):
        _, tracer, _ = traced_run
        path = tmp_path / "trace.txt"
        n = tracer.write(path)
        lines = path.read_text().splitlines()
        assert len(lines) == n == len(tracer.events)
        assert "send flow=" in lines[0] or "recv flow=" in lines[0]

    def test_max_events_cap(self):
        net = Network(star(3, host_rate="100Gbps"),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        tracer = PacketTracer.attach(net, max_events=5)
        net.add_flow(net.make_flow(0, 2, 50_000))
        net.run_until_done(deadline=5 * MS)
        assert len(tracer.events) == 5

    def test_drop_events_traced(self):
        net = Network(star(4, host_rate="100Gbps"),
                      NetworkConfig(cc_name="dctcp", base_rtt=9 * US,
                                    pfc_enabled=False, buffer_bytes=20_000,
                                    rto=200 * US))
        tracer = PacketTracer.attach(net)
        for s in range(3):
            net.add_flow(net.make_flow(s, 3, 100_000))
        net.run_until_done(deadline=100 * MS)
        assert tracer.count("drop") == net.metrics.drop_count
        assert tracer.count("drop") > 0
