"""Traffic generation: CDF sampling, Poisson load calibration, incast."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.units import MS, SEC, gbps
from repro.workloads import (
    EmpiricalCdf,
    fbhadoop,
    incast_events,
    incast_period_for_load,
    offered_load,
    poisson_flows,
    websearch,
)


class TestEmpiricalCdf:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([(1, 0.0)])
        with pytest.raises(ValueError):
            EmpiricalCdf([(1, 0.0), (2, 0.9)])        # must end at 1
        with pytest.raises(ValueError):
            EmpiricalCdf([(5, 0.0), (1, 1.0)])        # sizes must ascend

    def test_quantile_endpoints(self):
        cdf = websearch()
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 30_000_000

    def test_deciles_are_paper_buckets(self):
        assert websearch().deciles() == pytest.approx([
            6_700, 20_000, 30_000, 50_000, 73_000, 200_000,
            1_000_000, 2_000_000, 5_000_000, 30_000_000,
        ])
        assert fbhadoop().deciles() == pytest.approx([
            324, 400, 500, 600, 700, 1_000, 7_000, 46_000,
            120_000, 10_000_000,
        ])

    def test_cdf_quantile_roundtrip(self):
        cdf = websearch()
        for u in (0.05, 0.25, 0.55, 0.85, 0.95):
            assert cdf.cdf_at(cdf.quantile(u)) == pytest.approx(u, abs=1e-9)

    def test_sample_bounds(self):
        cdf = fbhadoop()
        rng = random.Random(1)
        for _ in range(500):
            size = cdf.sample(rng)
            assert 1 <= size <= 10_000_000

    def test_sample_mean_matches_analytic(self):
        cdf = websearch()
        rng = random.Random(7)
        n = 30_000
        mean = sum(cdf.sample(rng) for _ in range(n)) / n
        assert mean == pytest.approx(cdf.mean(), rel=0.1)

    def test_fbhadoop_mostly_small(self):
        # Section 5.3: "90% of the flows are shorter than 120KB".
        assert fbhadoop().cdf_at(120_000) == pytest.approx(0.9)

    def test_scaled_preserves_shape(self):
        cdf = websearch().scaled(0.1)
        assert cdf.mean() == pytest.approx(websearch().mean() * 0.1, rel=0.01)
        assert cdf.quantile(0.5) == pytest.approx(7_300)

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            websearch().scaled(0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_monotone(self, u):
        cdf = websearch()
        assert cdf.quantile(u) <= cdf.quantile(min(1.0, u + 0.05))


class TestPoissonFlows:
    def test_load_calibration(self):
        hosts = list(range(16))
        rate = gbps(10)
        duration = 1 * SEC
        specs = poisson_flows(hosts, rate, websearch(), load=0.3,
                              duration=duration, seed=3)
        measured = offered_load(specs, 16 * rate, duration)
        assert measured == pytest.approx(0.3, rel=0.15)

    def test_valid_endpoints(self):
        specs = poisson_flows(list(range(8)), gbps(10), fbhadoop(),
                              load=0.5, duration=10 * MS, seed=2)
        for spec in specs:
            assert spec.src != spec.dst
            assert 0 <= spec.src < 8 and 0 <= spec.dst < 8

    def test_start_times_ordered_and_bounded(self):
        specs = poisson_flows(list(range(4)), gbps(10), fbhadoop(),
                              load=0.4, duration=20 * MS, seed=5,
                              start_offset=5 * MS)
        starts = [s.start_time for s in specs]
        assert starts == sorted(starts)
        assert all(5 * MS <= t < 25 * MS for t in starts)

    def test_unique_flow_ids(self):
        specs = poisson_flows(list(range(4)), gbps(10), fbhadoop(),
                              load=0.4, duration=20 * MS, seed=5,
                              first_flow_id=100)
        ids = [s.flow_id for s in specs]
        assert len(set(ids)) == len(ids)
        assert min(ids) == 100

    def test_deterministic_given_seed(self):
        kwargs = dict(hosts=list(range(4)), host_rates=gbps(10),
                      cdf=fbhadoop(), load=0.4, duration=10 * MS, seed=9)
        a = poisson_flows(**kwargs)
        b = poisson_flows(**kwargs)
        assert [(s.src, s.dst, s.size, s.start_time) for s in a] == \
               [(s.src, s.dst, s.size, s.start_time) for s in b]

    def test_bad_load_rejected(self):
        with pytest.raises(ValueError):
            poisson_flows([0, 1], gbps(10), fbhadoop(), load=1.5,
                          duration=1 * MS)

    def test_wire_overhead_reduces_payload_rate(self):
        hosts = list(range(8))
        lean = poisson_flows(hosts, gbps(10), fbhadoop(), load=0.3,
                             duration=0.2 * SEC, seed=1, wire_overhead=1.0)
        padded = poisson_flows(hosts, gbps(10), fbhadoop(), load=0.3,
                               duration=0.2 * SEC, seed=1, wire_overhead=1.5)
        assert len(padded) < len(lean)


class TestIncast:
    def test_event_structure(self):
        specs = incast_events(list(range(20)), fan_in=6, flow_size=500_000,
                              n_events=3, period=1 * MS, seed=4)
        assert len(specs) == 18
        by_time = {}
        for spec in specs:
            by_time.setdefault(spec.start_time, []).append(spec)
        assert len(by_time) == 3
        for group in by_time.values():
            receivers = {s.dst for s in group}
            assert len(receivers) == 1
            assert receivers.pop() not in {s.src for s in group}
            assert len({s.src for s in group}) == 6

    def test_fan_in_bound(self):
        with pytest.raises(ValueError):
            incast_events(list(range(4)), fan_in=4, flow_size=1, n_events=1,
                          period=1.0)

    def test_tagged(self):
        specs = incast_events(list(range(8)), 3, 1000, 1, 1.0)
        assert all(s.tag == "incast" for s in specs)

    def test_period_for_load(self):
        # 60 x 500KB at 2% of 320 x 100Gbps: the paper's setup.
        period = incast_period_for_load(60, 500_000, 0.02,
                                        320 * gbps(100))
        offered = 60 * 500_000 / period
        assert offered == pytest.approx(0.02 * 320 * gbps(100))

    def test_period_load_validation(self):
        with pytest.raises(ValueError):
            incast_period_for_load(60, 500_000, 0.0, 1.0)
