"""Links: propagation delay and peer dispatch."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet, PacketType
from repro.sim.queues import EgressPort


class Device:
    def __init__(self):
        self.received = []

    def receive(self, pkt, in_port):
        self.received.append((pkt, in_port))


def wire(sim, prop=500.0, rate=12.5):
    dev_a, dev_b = Device(), Device()
    port_a = EgressPort(sim, dev_a, 3, rate)
    port_b = EgressPort(sim, dev_b, 7, rate)
    link = Link(sim, dev_a, port_a, dev_b, port_b, prop)
    return dev_a, port_a, dev_b, port_b, link


def test_delivery_includes_serialization_and_propagation():
    sim = Simulator()
    dev_a, port_a, dev_b, _, _ = wire(sim, prop=500.0, rate=12.5)
    port_a.enqueue(Packet(PacketType.DATA, 1, 0, 1, payload=1000, header=0))
    sim.run()
    pkt, in_port = dev_b.received[0]
    assert sim.now == pytest.approx(580.0)    # 80ns ser + 500ns prop
    assert in_port == 7                        # arrives on b's port id


def test_reverse_direction():
    sim = Simulator()
    dev_a, _, dev_b, port_b, _ = wire(sim)
    port_b.enqueue(Packet(PacketType.DATA, 1, 1, 0, payload=100, header=0))
    sim.run()
    assert len(dev_a.received) == 1
    assert dev_a.received[0][1] == 3


def test_full_duplex_simultaneous():
    sim = Simulator()
    dev_a, port_a, dev_b, port_b, _ = wire(sim)
    port_a.enqueue(Packet(PacketType.DATA, 1, 0, 1, payload=100, header=0))
    port_b.enqueue(Packet(PacketType.DATA, 2, 1, 0, payload=100, header=0))
    sim.run()
    assert len(dev_a.received) == 1
    assert len(dev_b.received) == 1


def test_negative_delay_rejected():
    sim = Simulator()
    dev = Device()
    pa = EgressPort(sim, dev, 0, 1.0)
    pb = EgressPort(sim, dev, 1, 1.0)
    with pytest.raises(ValueError):
        Link(sim, dev, pa, dev, pb, -1.0)


def test_ports_back_reference_link():
    sim = Simulator()
    _, port_a, _, port_b, link = wire(sim)
    assert port_a.link is link
    assert port_b.link is link
