"""PFC: thresholds, XON/XOFF hysteresis, pause tracking."""

import pytest

from repro.sim.buffer import BufferConfig, SharedBuffer
from repro.sim.pfc import PauseTracker, PfcConfig, PfcController


class FakeSwitch:
    """Minimal switch: a buffer and a log of pause frames sent."""

    def __init__(self, total=10_000, alpha=0.11):
        self.buffer = SharedBuffer(BufferConfig(total_bytes=total))
        self.sent = []

    def send_pause(self, in_port, priority, pause):
        self.sent.append((in_port, priority, pause))


class TestConfig:
    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            PfcConfig(dynamic_alpha=0)

    def test_bad_xon(self):
        with pytest.raises(ValueError):
            PfcConfig(xon_fraction=0)


class TestController:
    def test_pause_when_over_threshold(self):
        sw = FakeSwitch(total=10_000)
        ctl = PfcController(sw, PfcConfig(dynamic_alpha=0.11), PauseTracker())
        # threshold = 0.11 * free; ingress 2000 with free 8000 -> 880 < 2000.
        sw.buffer.occupy(0, 1, 0, 2000)
        ctl.on_ingress_change(0, 0)
        assert ctl.is_pausing(0)
        assert sw.sent == [(0, 0, True)]

    def test_no_pause_under_threshold(self):
        sw = FakeSwitch(total=100_000)
        ctl = PfcController(sw, PfcConfig(dynamic_alpha=0.11), PauseTracker())
        sw.buffer.occupy(0, 1, 0, 2000)     # free 98000, thr 10780
        ctl.on_ingress_change(0, 0)
        assert not ctl.is_pausing(0)
        assert sw.sent == []

    def test_resume_with_hysteresis(self):
        sw = FakeSwitch(total=10_000)
        cfg = PfcConfig(dynamic_alpha=0.11, xon_fraction=0.8)
        ctl = PfcController(sw, cfg, PauseTracker())
        sw.buffer.occupy(0, 1, 0, 2000)
        ctl.on_ingress_change(0, 0)
        assert ctl.is_pausing(0)
        # Drain below 80% of the (new) threshold -> resume.
        sw.buffer.release(0, 1, 0, 1900)
        ctl.on_ingress_change(0, 0)
        assert not ctl.is_pausing(0)
        assert sw.sent[-1] == (0, 0, False)

    def test_no_duplicate_pause_frames(self):
        sw = FakeSwitch(total=10_000)
        ctl = PfcController(sw, PfcConfig(dynamic_alpha=0.11), PauseTracker())
        sw.buffer.occupy(0, 1, 0, 3000)
        ctl.on_ingress_change(0, 0)
        ctl.on_ingress_change(0, 0)
        assert len(sw.sent) == 1

    def test_per_port_independence(self):
        sw = FakeSwitch(total=10_000)
        ctl = PfcController(sw, PfcConfig(dynamic_alpha=0.11), PauseTracker())
        sw.buffer.occupy(0, 1, 0, 3000)
        ctl.on_ingress_change(0, 0)
        ctl.on_ingress_change(1, 0)
        assert ctl.is_pausing(0)
        assert not ctl.is_pausing(1)

    def test_disabled_never_pauses(self):
        sw = FakeSwitch(total=1000)
        ctl = PfcController(sw, PfcConfig(enabled=False), PauseTracker())
        sw.buffer.occupy(0, 1, 0, 999)
        ctl.on_ingress_change(0, 0)
        assert sw.sent == []

    def test_dynamic_threshold_shrinks_as_buffer_fills(self):
        sw = FakeSwitch(total=10_000)
        ctl = PfcController(sw, PfcConfig(dynamic_alpha=0.11), PauseTracker())
        t_empty = ctl.xoff_threshold()
        sw.buffer.occupy(0, 1, 0, 5000)
        assert ctl.xoff_threshold() < t_empty

    def test_frame_counters(self):
        tracker = PauseTracker()
        sw = FakeSwitch(total=10_000)
        ctl = PfcController(sw, PfcConfig(dynamic_alpha=0.11), tracker)
        sw.buffer.occupy(0, 1, 0, 3000)
        ctl.on_ingress_change(0, 0)
        sw.buffer.release(0, 1, 0, 3000)
        ctl.on_ingress_change(0, 0)
        assert tracker.pause_frames_sent == 1
        assert tracker.resume_frames_sent == 1


class TestPauseTracker:
    def test_interval_recorded(self):
        tracker = PauseTracker()
        tracker.on_paused(5, 2, 100.0)
        tracker.on_resumed(5, 2, 350.0)
        assert len(tracker.intervals) == 1
        iv = tracker.intervals[0]
        assert (iv.device, iv.port, iv.duration) == (5, 2, 250.0)

    def test_resume_without_pause_ignored(self):
        tracker = PauseTracker()
        tracker.on_resumed(1, 1, 10.0)
        assert tracker.intervals == []

    def test_finalize_closes_open_pauses(self):
        tracker = PauseTracker()
        tracker.on_paused(1, 0, 50.0)
        tracker.finalize(200.0)
        assert tracker.intervals[0].duration == 150.0

    def test_total_pause_time_filtered_by_device(self):
        tracker = PauseTracker()
        tracker.on_paused(1, 0, 0.0)
        tracker.on_resumed(1, 0, 100.0)
        tracker.on_paused(2, 0, 0.0)
        tracker.on_resumed(2, 0, 300.0)
        assert tracker.total_pause_time({1}) == 100.0
        assert tracker.total_pause_time() == 400.0

    def test_double_pause_keeps_first_start(self):
        tracker = PauseTracker()
        tracker.on_paused(1, 0, 10.0)
        tracker.on_paused(1, 0, 50.0)
        tracker.on_resumed(1, 0, 100.0)
        assert tracker.intervals[0].start == 10.0
