"""The run-telemetry subsystem (``repro.obs``).

Covers the schema contract, the sinks, the ambient context, the engine
probes, and — most importantly — the two wiring guarantees the
subsystem makes to the rest of the repo:

* **off is a no-op**: with no ``--telemetry``, runs produce zero
  telemetry records and the packet engine's golden determinism
  fixtures are bit-identical (the goldens themselves run telemetry-off
  in ``test_determinism_golden.py``; here we assert the off path leaves
  no residue and the *on* path doesn't perturb results either).
* **on is complete**: spans cover setup/run/collect/total, both
  engines' probes emit their gauge/counter sets, sweep cache stats and
  the flight recorder fire, and every emitted record validates against
  the versioned schema.
"""

import io
import json

import pytest
from test_determinism_golden import GOLDEN, fct_digest

from repro.network import Network, NetworkConfig
from repro.obs import (
    DecisionTap,
    FlightRecorder,
    JsonlSink,
    MemorySink,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    Telemetry,
    current,
    instrument_simulator,
    maybe_span,
    meta_record,
    using,
    validate_record,
)
from repro.obs.schema import json_number
from repro.obs.summarize import read_jsonl, summarize_file
from repro.runner import RunCache, ScenarioSpec, SweepRunner
from repro.runner.execute import execute_spec
from repro.sim.units import MS, US
from repro.topology import star


def tiny_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        program="flows",
        topology="star",
        topology_params={"n_hosts": 3, "host_rate": "10Gbps"},
        workload={"flows": [[0, 2, 40_000], [1, 2, 40_000]],
                  "deadline": 5e6},
        config={"base_rtt": 9 * US},
        seed=1,
        scale="bench",
        label="tiny",
    )
    return spec.replaced(**overrides) if overrides else spec


def assert_all_valid(records):
    for record in records:
        # Round-trip through JSON so tuples/numpy scalars would surface.
        obj = json.loads(json.dumps(record))
        assert validate_record(obj) is None, (validate_record(obj), record)


class TestSchema:
    def test_json_number_passthrough_and_nonfinite(self):
        assert json_number(1.5) == 1.5
        assert json_number(0) == 0
        assert json_number(float("inf")) == "inf"
        assert json_number(float("-inf")) == "-inf"
        assert json_number(float("nan")) == "nan"

    def test_meta_record_validates(self):
        assert validate_record(meta_record("r1")) is None
        assert validate_record(
            meta_record("r1", {"backend": "fluid"})) is None

    def test_meta_wrong_schema_or_version_rejected(self):
        bad = meta_record("r1")
        bad["schema"] = "other"
        assert "schema" in validate_record(bad)
        bad = meta_record("r1")
        bad["version"] = SCHEMA_VERSION + 1
        assert "version" in validate_record(bad)

    def test_unknown_kind_rejected(self):
        assert "kind" in validate_record({"kind": "tracepoint"})
        assert validate_record([1, 2]) == "record is not an object"

    def test_required_fields_per_kind(self):
        base = {"name": "x", "run_id": "r", "t": 0.0}
        assert validate_record({**base, "kind": "gauge"}) is not None
        assert validate_record(
            {**base, "kind": "gauge", "value": 3}) is None
        assert validate_record(
            {**base, "kind": "counter", "value": "nan"}) is None
        assert validate_record({**base, "kind": "event"}) is None
        assert validate_record(
            {**base, "kind": "span", "dur": -1.0}) == "span dur is negative"
        assert validate_record(
            {**base, "kind": "hist", "buckets": {"a": 1}}) is None
        assert validate_record(
            {**base, "kind": "hist", "buckets": {"a": "x"}}) is not None

    def test_bool_is_not_a_number(self):
        base = {"name": "x", "run_id": "r", "kind": "gauge", "value": True}
        assert validate_record({**base, "t": 0.0}) is not None

    def test_labels_must_be_flat_scalars(self):
        base = {"kind": "event", "name": "x", "run_id": "r", "t": 0.0}
        assert validate_record({**base, "labels": {"k": "v"}}) is None
        assert validate_record(
            {**base, "labels": {"k": [1]}}) is not None


class TestSinks:
    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "sub" / "t.jsonl"        # parent auto-created
        sink = JsonlSink(path)
        sink.write(meta_record("r1"))
        sink.write({"kind": "event", "name": "e", "run_id": "r1", "t": 0.0})
        sink.close()
        sink.write({"kind": "event"})              # post-close: dropped
        records, errors = read_jsonl(path)
        assert not errors and len(records) == 2
        assert records[0]["schema"] == SCHEMA_NAME

    def test_memory_sink_drain_empties(self):
        sink = MemorySink()
        sink.write({"a": 1})
        assert sink.drain() == [{"a": 1}]
        assert sink.drain() == []

    def test_flight_recorder_ring_and_dump(self):
        flight = FlightRecorder(maxlen=4)
        for i in range(10):
            flight.write({"kind": "event", "name": f"e{i}",
                          "run_id": "r", "t": 0.0})
        assert len(flight.ring) == 4
        stream = io.StringIO()
        flight.dump("test", "r", stream=stream, limit=2)
        text = stream.getvalue()
        assert "--- flight recorder [r] (test; last 2 of 4 records) ---" in text
        assert '"name":"e9"' in text and '"name":"e5"' not in text


class TestTelemetry:
    def test_meta_header_then_records_all_valid(self):
        tel = Telemetry(run_id="r1", labels={"backend": "packet"})
        tel.gauge("g", 1.25, sim_ns=100.0, scope="test")
        tel.hist("h", {"a": 1, "b": float("inf")})
        tel.event("e")
        with tel.span("phase", stage="x"):
            pass
        tel.counters("blk").inc("n", 3)
        tel.count("top")
        records = tel.drain()
        assert records[0]["kind"] == "meta"
        assert records[0]["labels"] == {"backend": "packet"}
        assert_all_valid(records)
        by_kind = {}
        for record in records:
            by_kind.setdefault(record["kind"], []).append(record)
        assert {r["name"]: r["value"] for r in by_kind["counter"]} == {
            "blk.n": 3, "top": 1}
        assert by_kind["gauge"][0]["labels"] == {"scope": "test"}
        assert all(r["run_id"] == "r1" for r in records[1:])

    def test_span_records_error_label_on_exception(self):
        tel = Telemetry(run_id="r1")
        with pytest.raises(ValueError):
            with tel.span("boom"):
                raise ValueError("x")
        records = tel.drain()
        span = next(r for r in records if r["kind"] == "span")
        assert span["labels"]["error"] == "ValueError"
        assert span["dur"] >= 0

    def test_close_is_idempotent_and_counters_flush_once(self):
        tel = Telemetry(run_id="r1")
        tel.count("n")
        tel.close()
        tel.close()
        records = tel.sink.drain()
        assert sum(1 for r in records if r["kind"] == "counter") == 1

    def test_ingest_preserves_foreign_run_id(self):
        worker = Telemetry(run_id="worker-1")
        worker.event("w")
        parent = Telemetry(run_id="parent")
        parent.ingest(worker.drain())
        records = parent.drain()
        assert [r["run_id"] for r in records] == [
            "parent", "worker-1", "worker-1"]

    def test_every_emit_feeds_the_flight_ring(self):
        tel = Telemetry(run_id="r1")
        tel.event("e1")
        tel.event("e2")
        assert [r["name"] for r in tel.flight.ring] == ["e1", "e2"]


class TestAmbientContext:
    def test_using_sets_and_restores(self):
        assert current() is None
        tel = Telemetry(run_id="r1")
        with using(tel):
            assert current() is tel
            with using(None):
                assert current() is None
            assert current() is tel
        assert current() is None

    def test_maybe_span_is_noop_without_ambient(self):
        with maybe_span("anything", k="v"):
            pass                                   # must not raise or emit

    def test_maybe_span_emits_against_ambient(self):
        tel = Telemetry(run_id="r1")
        with using(tel), maybe_span("phase", k="v"):
            pass
        spans = [r for r in tel.drain() if r["kind"] == "span"]
        assert spans and spans[0]["name"] == "phase"
        assert spans[0]["labels"] == {"k": "v"}


class TestGoldenDeterminismWithTelemetry:
    """Attaching a probe must not change what the engine computes."""

    def test_hpcc_golden_bit_identical_with_probe(self):
        expected_events, expected_digest = GOLDEN["hpcc"]
        net = Network(
            star(4, host_rate="100Gbps"),
            NetworkConfig(cc_name="hpcc", base_rtt=9 * US, seed=3),
        )
        tel = Telemetry(run_id="golden")
        probe = instrument_simulator(net.sim, tel, every=8)
        net.add_flow(net.make_flow(0, 3, 1_000_000, start_time=1_000.0))
        net.add_flow(net.make_flow(1, 3, 700_000, start_time=1_003.0))
        net.add_flow(net.make_flow(2, 3, 500_000, start_time=1_007.0))
        assert net.run_until_done(deadline=5 * MS)
        probe.finish(net.sim)
        records = tel.drain()

        assert net.sim.events_processed == expected_events
        assert fct_digest(net.metrics.fct_records) == expected_digest
        assert_all_valid(records)
        gauges = {r["name"] for r in records if r["kind"] == "gauge"}
        assert {"sim.heap_depth", "sim.pending_events", "sim.events_per_s",
                "sim.sim_wall_ratio", "sim.wall_s"} <= gauges
        counters = {r["name"]: r["value"] for r in records
                    if r["kind"] == "counter"}
        assert counters["sim.events_processed"] == expected_events
        assert counters["sim.run_calls"] == probe.run_calls


#: Decision-record vocabulary per scheme (see docs/observability.md).
DECISION_BRANCHES = {
    "hpcc": {"MI", "AI"},
    "hpcc-perack": {"MI", "AI"},
    "hpcc-perrtt": {"MI", "AI"},
    "dcqcn": {"md", "fast_recovery", "additive", "hyper"},
    "timely": {"ai_low", "md_high", "ai_gradient", "hai", "md_gradient"},
    "dctcp": {"ai", "md"},
}


#: Scheme knobs that make the tiny incast actually exercise the control
#: law (DCQCN's stock Kmin, port-scaled to 100G, sits above the queue
#: this short run builds, so CNPs would never fire).
DECISION_CC_PARAMS = {
    "dcqcn": {"kmin": 40_000, "kmax": 160_000},
}


def incast_tap(scheme: str) -> DecisionTap:
    """Run a 2-to-1 packet incast under ``scheme`` with a tap attached."""
    net = Network(
        star(4, host_rate="100Gbps"),
        NetworkConfig(cc_name=scheme, base_rtt=9 * US, seed=3,
                      cc_params=DECISION_CC_PARAMS.get(scheme, {})),
    )
    tap = DecisionTap()
    net.decision_tap = tap
    net.add_flow(net.make_flow(0, 3, 500_000, start_time=1_000.0))
    net.add_flow(net.make_flow(1, 3, 400_000, start_time=1_003.0))
    assert net.run_until_done(deadline=5 * MS)
    return tap


class TestDecisionTap:
    def test_flow_trace_ring_evicts_and_counts(self):
        tap = DecisionTap(maxlen=3)
        trace = tap.trace(1, "hpcc")
        for i in range(5):
            trace.record(float(i), "ack", "AI", 1.0, None, 2.0, None, {})
        assert len(trace.ring) == 3
        assert trace.dropped == 2
        assert tap.total_recorded == 3
        assert tap.total_dropped == 2
        # Oldest evicted: the ring holds the latest window of activity.
        assert [d["sim_ns"] for d in trace.decisions()] == [2.0, 3.0, 4.0]

    def test_trace_is_per_flow_and_cached(self):
        tap = DecisionTap()
        assert tap.trace(1, "hpcc") is tap.trace(1, "hpcc")
        assert tap.trace(1, "hpcc") is not tap.trace(2, "hpcc")

    @pytest.mark.parametrize("scheme", sorted(DECISION_BRANCHES))
    def test_packet_capture_per_scheme(self, scheme):
        tap = incast_tap(scheme)
        assert tap.total_recorded > 0
        decisions = tap.decisions()
        assert len({d["flow"] for d in decisions}) == 2
        for dec in decisions:
            assert dec["scheme"] == scheme
            if dec["event"] == "install":       # line-rate start anchor
                assert dec["branch"] is None
            else:
                assert dec["branch"] in DECISION_BRANCHES[scheme]
            assert dec["rate_after"] > 0
            assert isinstance(dec["inputs"], dict)
        assert any(d["event"] != "install" for d in decisions)

    def test_hpcc_decisions_carry_bottleneck_attribution(self):
        tap = incast_tap("hpcc")
        hops = [d["inputs"]["bottleneck_hop"] for d in tap.decisions()
                if "bottleneck_hop" in d["inputs"]]
        assert hops and all(hop >= 0 for hop in hops)

    def test_export_decisions_validates_and_orders(self):
        tap = incast_tap("hpcc")
        tel = Telemetry(run_id="r1")
        n = tel.export_decisions(tap)
        records = tel.drain()
        decisions = [r for r in records if r["kind"] == "decision"]
        assert len(decisions) == n == tap.total_recorded
        assert_all_valid(records)
        keys = [(d["sim_ns"], d["flow"]) for d in decisions]
        assert keys == sorted(keys)
        assert not any(r["name"] == "decisions_dropped" for r in records
                       if r["kind"] == "event")

    def test_export_surfaces_ring_evictions(self):
        tap = DecisionTap(maxlen=2)
        trace = tap.trace(1, "hpcc")
        for i in range(5):
            trace.record(float(i), "ack", "AI", 1.0, None,
                         2.0, None, {"u": 0.5})
        tel = Telemetry(run_id="r1")
        assert tel.export_decisions(tap) == 2
        events = [r for r in tel.drain() if r["kind"] == "event"]
        assert any(r["name"] == "decisions_dropped"
                   and r["labels"]["dropped"] == 3 for r in events)

    def test_export_encodes_nonfinite_inputs(self):
        tap = DecisionTap()
        tap.trace(1, "hpcc").record(
            0.0, "ack", "AI", float("inf"), None, 1.0, None,
            {"u": float("nan"), "wc": 2.0})
        tel = Telemetry(run_id="r1")
        tel.export_decisions(tap)
        [dec] = [r for r in tel.drain() if r["kind"] == "decision"]
        assert dec["rate_before"] == "inf"
        assert dec["inputs"] == {"u": "nan", "wc": 2.0}
        assert_all_valid([dec])

    def test_execute_spec_decisions_both_backends(self):
        for backend in ("packet", "fluid"):
            spec = tiny_spec(backend=backend)
            record = execute_spec(spec, decisions=True)
            assert record.completed
            assert_all_valid(record.telemetry)
            decisions = [r for r in record.telemetry
                         if r["kind"] == "decision"]
            assert decisions, backend
            assert {d["scheme"] for d in decisions} == {"hpcc"}

    def test_decisions_do_not_perturb_results(self):
        for backend in ("packet", "fluid"):
            spec = tiny_spec(backend=backend)
            off = execute_spec(spec)
            on = execute_spec(spec, decisions=True)
            assert off.fct == on.fct, backend
            assert off.duration_ns == on.duration_ns, backend

    def test_golden_bit_identical_with_tap(self):
        expected_events, expected_digest = GOLDEN["hpcc"]
        net = Network(
            star(4, host_rate="100Gbps"),
            NetworkConfig(cc_name="hpcc", base_rtt=9 * US, seed=3),
        )
        net.decision_tap = DecisionTap()
        net.add_flow(net.make_flow(0, 3, 1_000_000, start_time=1_000.0))
        net.add_flow(net.make_flow(1, 3, 700_000, start_time=1_003.0))
        net.add_flow(net.make_flow(2, 3, 500_000, start_time=1_007.0))
        assert net.run_until_done(deadline=5 * MS)
        assert net.sim.events_processed == expected_events
        assert fct_digest(net.metrics.fct_records) == expected_digest
        assert net.decision_tap.total_recorded > 0


class TestExecuteSpecTelemetry:
    def test_off_path_leaves_no_records(self):
        record = execute_spec(tiny_spec())
        assert record.telemetry == []
        assert current() is None

    def test_packet_run_emits_spans_and_engine_counters(self):
        record = execute_spec(tiny_spec(), telemetry=True)
        assert record.completed
        assert_all_valid(record.telemetry)
        assert record.telemetry[0]["kind"] == "meta"
        spans = {r["name"] for r in record.telemetry if r["kind"] == "span"}
        assert {"setup", "run", "collect", "total"} <= spans
        counters = {r["name"] for r in record.telemetry
                    if r["kind"] == "counter"}
        assert {"sim.events_processed", "sim.run_calls"} <= counters

    def test_fluid_run_emits_fluid_probe_set(self):
        record = execute_spec(tiny_spec(backend="fluid"), telemetry=True)
        assert record.completed
        assert_all_valid(record.telemetry)
        counters = {r["name"] for r in record.telemetry
                    if r["kind"] == "counter"}
        assert {"fluid.steps", "fluid.flow_steps",
                "fluid.flows_finished"} <= counters
        spans = {r["name"] for r in record.telemetry if r["kind"] == "span"}
        assert {"setup", "run", "collect", "total"} <= spans

    def test_fluid_results_identical_on_and_off(self):
        spec = tiny_spec(backend="fluid")
        off = execute_spec(spec)
        on = execute_spec(spec, telemetry=True)
        assert off.fct == on.fct
        assert off.completed == on.completed
        assert off.duration_ns == on.duration_ns

    def test_packet_results_identical_on_and_off(self):
        spec = tiny_spec()
        off = execute_spec(spec)
        on = execute_spec(spec, telemetry=True)
        assert off.fct == on.fct
        assert off.duration_ns == on.duration_ns

    def test_deadline_overrun_dumps_flight_recorder(self, capsys):
        spec = tiny_spec(**{"workload.deadline": 10_000.0})
        record = execute_spec(spec, telemetry=True)
        assert not record.completed
        err = capsys.readouterr().err
        assert "--- flight recorder [tiny] (deadline overrun" in err
        events = [r for r in record.telemetry if r["kind"] == "event"]
        assert any(r["name"] == "run.deadline_overrun" for r in events)


class TestSweepTelemetry:
    def test_cache_hit_miss_counters_and_sweep_gauges(self, tmp_path):
        specs = [tiny_spec(), tiny_spec(label="tiny2", seed=2)]
        cache = RunCache(tmp_path)

        tel = Telemetry(run_id="sweep-1")
        SweepRunner(cache=cache, telemetry=tel).run(specs)
        first = tel.drain()
        counters = {r["name"]: r["value"] for r in first
                    if r["kind"] == "counter"}
        assert counters["sweep.cache.hits"] == 0
        assert counters["sweep.cache.misses"] == 2
        gauges = {r["name"] for r in first if r["kind"] == "gauge"}
        assert {"sweep.spec_wall_s", "sweep.wall_s",
                "sweep.worker_utilization"} <= gauges
        # Worker records were ingested under their own run ids.
        assert {r["run_id"] for r in first} >= {
            "sweep-1", specs[0].spec_hash, specs[1].spec_hash}

        tel = Telemetry(run_id="sweep-2")
        records = SweepRunner(cache=cache, telemetry=tel).run(specs)
        assert all(r.cached for r in records)
        counters = {r["name"]: r["value"] for r in tel.drain()
                    if r["kind"] == "counter"}
        assert counters["sweep.cache.hits"] == 2
        assert counters["sweep.cache.misses"] == 0

    def test_records_cross_the_process_pool(self, tmp_path):
        tel = Telemetry(run_id="sweep-par")
        records = SweepRunner(jobs=2, telemetry=tel).run(
            [tiny_spec(), tiny_spec(label="tiny2", seed=2)])
        drained = tel.drain()
        assert all(r.telemetry == [] for r in records)   # ingested + cleared
        spans = [r for r in drained if r["kind"] == "span"]
        assert {r["run_id"] for r in spans} == {
            records[0].spec_hash, records[1].spec_hash}
        assert_all_valid(drained)


class TestSummarize:
    def test_summarize_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(run_id="r1", sink=JsonlSink(path))
        with tel.span("total"):
            tel.gauge("g", 2.0)
            tel.event("e")
            tel.hist("h", {"a": 1})
        tel.count("n", 5)
        tel.close()
        text, status = summarize_file(path)
        assert status == 0
        assert "total" in text and "n" in text and "g" in text

    def test_invalid_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [json.dumps(meta_record("r1")), "{not json", '{"kind":"x"}']
        path.write_text("\n".join(lines) + "\n")
        records, errors = read_jsonl(path)
        assert len(records) == 1 and len(errors) == 2
        text, status = summarize_file(path)
        assert status == 0 and "invalid lines skipped: 2" in text

    def test_empty_or_missing_file_fails(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        _, status = summarize_file(path)
        assert status == 1
        _, status = summarize_file(tmp_path / "absent.jsonl")
        assert status == 1

    def test_torn_tail_from_killed_run_tolerated(self, tmp_path):
        """A run killed mid-write leaves half a line; readers keep going."""
        path = tmp_path / "t.jsonl"
        tel = Telemetry(run_id="r1", sink=JsonlSink(path))
        tel.event("before_the_crash")
        tel.close()
        whole = path.read_text()
        path.write_text(whole + whole[: len(whole) // 3].rstrip("\n"))
        records, errors = read_jsonl(path)
        assert [r["kind"] for r in records] == ["meta", "event"]
        assert len(errors) == 1
        text, status = summarize_file(path)
        assert status == 0 and "before_the_crash" in text

    def test_unknown_future_kind_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            json.dumps(meta_record("r1")),
            json.dumps({"kind": "holo_trace", "name": "x",
                        "run_id": "r1", "t": 0.0}),
            json.dumps({"kind": "event", "name": "e",
                        "run_id": "r1", "t": 0.0}),
        ]
        path.write_text("\n".join(lines) + "\n")
        records, errors = read_jsonl(path)
        assert len(records) == 2 and len(errors) == 1
        assert "kind" in errors[0][1]

    def test_decisions_section_in_text_and_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(run_id="r1", sink=JsonlSink(path))
        tap = DecisionTap()
        trace = tap.trace(1, "hpcc")
        trace.record(5.0, "ack", "AI", 1.0, None, 2.0, None, {"u": 0.5})
        trace.record(9.0, "ack", "MI", 2.0, None, 3.0, None, {"u": 1.5})
        tap.trace(2, "hpcc").record(7.0, "ack", "AI", 1.0, None,
                                    1.5, None, {"u": 0.2})
        tel.export_decisions(tap)
        tel.close()
        text, status = summarize_file(path)
        assert status == 0
        assert "decisions (scheme" in text
        assert "AI=2" in text and "MI=1" in text

        out, status = summarize_file(path, as_json=True)
        assert status == 0
        doc = json.loads(out)
        assert doc["decisions"]["hpcc"] == {
            "count": 3, "flows": 2, "branches": {"AI": 2, "MI": 1}}

    def test_summarize_json_aggregates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(run_id="r1", sink=JsonlSink(path),
                        labels={"backend": "packet"})
        with tel.span("total"):
            tel.gauge("g", 2.0)
            tel.gauge("g", 4.0)
            tel.event("e")
            tel.hist("h", {"a": 1})
        tel.count("n", 5)
        tel.close()
        out, status = summarize_file(path, as_json=True)
        assert status == 0
        doc = json.loads(out)
        assert doc["runs"] == {"r1": {"backend": "packet"}}
        assert doc["counters"]["n"] == 5
        assert doc["gauges"]["g"] == {
            "samples": 2, "min": 2.0, "mean": 3.0, "max": 4.0}
        assert doc["spans"]["total"]["count"] == 1
        assert doc["events"] == {"e": 1}
        assert doc["invalid_lines"] == []

    def test_summarize_json_error_paths(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        out, status = summarize_file(path, as_json=True)
        assert status == 1 and "error" in json.loads(out)
