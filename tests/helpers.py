"""Test fixtures: fake flows, hand-built ACKs, and chaos injection.

``chaos_execute_spec`` is the fault-injection work unit for the sweep
fabric's chaos tests: it runs in pool workers (picklable by reference —
the pool forks, so ``tests.helpers`` is already importable there) and
misbehaves according to ``spec.meta["chaos"]``.  Because ``meta`` is
excluded from the spec's identity hash, a chaos spec shares its cache
slot and journal entry with its clean twin — which is exactly what the
resume-determinism tests need.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.runner.execute import backend_programs, execute_spec
from repro.sim.packet import IntHop, Packet, PacketType


class ChaosError(RuntimeError):
    """The deliberate failure raised by ``chaos: raise`` specs."""


def chaos_execute_spec(spec, telemetry: bool = False):
    """An ``execute_spec`` twin that fails on demand.

    ``spec.meta["chaos"]`` selects the fault:

    * ``"raise"`` — raise :class:`ChaosError` (a deterministic
      execution error: quarantined, never retried);
    * ``"hang"`` — sleep forever (the watchdog must SIGKILL us);
    * ``"die"`` — SIGKILL ourselves (an infrastructure fault: breaks
      the pool, affected specs are retried);
    * ``"die_once"`` — SIGKILL on the first attempt only, coordinated
      through a flag file at ``spec.meta["flag_dir"]`` (retries must
      then succeed);
    * absent/anything else — run the spec normally.
    """
    # Table-driven backend dispatch, same as execute_spec: an unknown
    # backend name raises here instead of silently falling through to
    # the packet engine (chaos records must misbehave on the *intended*
    # backend, or resume-determinism comparisons are meaningless).
    backend_programs(spec.backend)
    mode = (spec.meta or {}).get("chaos")
    if mode == "raise":
        raise ChaosError(f"injected failure for {spec.label}")
    if mode == "hang":
        while True:             # pragma: no cover — killed from outside
            time.sleep(3600)
    if mode == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "die_once":
        flag = Path(spec.meta["flag_dir"]) / f"{spec.spec_hash}.died"
        if not flag.exists():
            flag.write_text("died")
            os.kill(os.getpid(), signal.SIGKILL)
    return execute_spec(spec, telemetry)


class FakeFlow:
    """The slice of SenderFlow the CC algorithms touch."""

    def __init__(self):
        self.window = None
        self.rate = 0.0
        self.snd_nxt = 0
        self.snd_una = 0
        self.done = False


def make_int_ack(
    seq: int,
    hops: list[tuple[float, float, int, int]],
    ack_seq: int | None = None,
    rx_bytes: list[int] | None = None,
) -> Packet:
    """Build an ACK carrying an INT stack.

    ``hops`` entries are (bandwidth B/ns, ts ns, tx_bytes, qlen).
    """
    ack = Packet(PacketType.ACK, 1, 1, 0, seq=seq)
    ack.ack_seq = ack_seq if ack_seq is not None else seq + 1000
    ack.int_hops = [
        IntHop(b, ts, tx, q,
               rx_bytes=rx_bytes[i] if rx_bytes else tx)
        for i, (b, ts, tx, q) in enumerate(hops)
    ]
    return ack


def plain_ack(seq: int, ack_seq: int, ecn: bool = False,
              ts_tx: float = 0.0) -> Packet:
    ack = Packet(PacketType.ACK, 1, 1, 0, seq=seq)
    ack.ack_seq = ack_seq
    ack.ecn = ecn
    ack.ts_tx = ts_tx
    return ack
