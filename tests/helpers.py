"""Fake flows and hand-built ACKs for CC algorithm unit tests."""

from __future__ import annotations

from repro.sim.packet import IntHop, Packet, PacketType


class FakeFlow:
    """The slice of SenderFlow the CC algorithms touch."""

    def __init__(self):
        self.window = None
        self.rate = 0.0
        self.snd_nxt = 0
        self.snd_una = 0
        self.done = False


def make_int_ack(
    seq: int,
    hops: list[tuple[float, float, int, int]],
    ack_seq: int | None = None,
    rx_bytes: list[int] | None = None,
) -> Packet:
    """Build an ACK carrying an INT stack.

    ``hops`` entries are (bandwidth B/ns, ts ns, tx_bytes, qlen).
    """
    ack = Packet(PacketType.ACK, 1, 1, 0, seq=seq)
    ack.ack_seq = ack_seq if ack_seq is not None else seq + 1000
    ack.int_hops = [
        IntHop(b, ts, tx, q,
               rx_bytes=rx_bytes[i] if rx_bytes else tx)
        for i, (b, ts, tx, q) in enumerate(hops)
    ]
    return ack


def plain_ack(seq: int, ack_seq: int, ecn: bool = False,
              ts_tx: float = 0.0) -> Packet:
    ack = Packet(PacketType.ACK, 1, 1, 0, seq=seq)
    ack.ack_seq = ack_seq
    ack.ecn = ecn
    ack.ts_tx = ts_tx
    return ack
