"""DCTCP: marked-fraction EWMA, once-per-window reaction, AI."""

import pytest

from repro.core.dctcp import Dctcp

from tests.helpers import FakeFlow, plain_ack


def make_dctcp(env, **kw):
    cc = Dctcp(env, **kw)
    flow = FakeFlow()
    cc.install(flow)
    return cc, flow


def ack_window(cc, flow, marked: bool, start: int, n: int = 10,
               mss: int = 1000):
    """Deliver one window's worth of ACKs; returns the end seq."""
    seq = start
    for _ in range(n):
        seq += mss
        cc.on_ack(flow, plain_ack(seq - mss, seq, ecn=marked), now=float(seq))
    flow.snd_nxt = seq + 10 * mss
    return seq


class TestWindowUpdate:
    def test_starts_at_bdp_window(self, env):
        cc, flow = make_dctcp(env)
        assert flow.window == pytest.approx(env.bdp)

    def test_unmarked_window_grows_by_mss(self, env):
        cc, flow = make_dctcp(env)
        w0 = flow.window
        flow.window = w0 / 2
        flow.snd_nxt = 20_000
        ack_window(cc, flow, marked=False, start=0)
        assert flow.window == pytest.approx(w0 / 2 + env.mtu)

    def test_fully_marked_window_cuts_by_alpha_half(self, env):
        cc, flow = make_dctcp(env, g=1 / 16, initial_alpha=1.0)
        flow.snd_nxt = 20_000
        w0 = flow.window
        ack_window(cc, flow, marked=True, start=0)
        # alpha stays 1 (fraction 1): cut by 1 - 1/2.
        assert flow.window == pytest.approx(max(w0 * 0.5, env.mtu))

    def test_alpha_ewma_partial_marks(self, env):
        cc, flow = make_dctcp(env, g=1 / 16, initial_alpha=0.0)
        # Prime: the first ACK closes the degenerate initial window and
        # pins window_end to snd_nxt.
        flow.snd_nxt = 11_000
        cc.on_ack(flow, plain_ack(0, 1000, ecn=False), now=1.0)
        alpha0 = cc.alpha
        # Deliver the 10-packet observation window, half the bytes marked.
        seq = 1000
        for k in range(10):
            seq += 1000
            cc.on_ack(flow, plain_ack(seq - 1000, seq, ecn=(k < 5)),
                      now=float(seq))
        # Update fires when ack_seq reaches 11000: alpha <- (1-g)a0 + g/2.
        assert cc.alpha == pytest.approx((1 - 1 / 16) * alpha0 + 0.5 / 16)

    def test_reacts_once_per_window(self, env):
        cc, flow = make_dctcp(env, initial_alpha=1.0)
        flow.snd_nxt = 100_000
        w0 = flow.window
        end = ack_window(cc, flow, marked=True, start=0)
        w1 = flow.window
        assert w1 < w0
        # More marked ACKs inside the new window: no further cut until the
        # window-end sequence passes.
        cc.on_ack(flow, plain_ack(end, end + 1000, ecn=True),
                  now=float(end + 1))
        assert flow.window == w1

    def test_window_floor_mtu(self, env):
        cc, flow = make_dctcp(env, initial_alpha=1.0)
        for round_ in range(30):
            start = round_ * 10_000
            flow.snd_nxt = start + 20_000
            ack_window(cc, flow, marked=True, start=start)
        assert flow.window >= env.mtu

    def test_window_cap_bdp(self, env):
        cc, flow = make_dctcp(env)
        for round_ in range(30):
            start = round_ * 10_000
            flow.snd_nxt = start + 20_000
            ack_window(cc, flow, marked=False, start=start)
        assert flow.window <= env.bdp + 1e-9

    def test_rate_paced_at_window_over_t(self, env):
        cc, flow = make_dctcp(env, initial_alpha=1.0)
        flow.snd_nxt = 20_000
        ack_window(cc, flow, marked=True, start=0)
        assert flow.rate == pytest.approx(flow.window / env.base_rtt)

    def test_bad_g_rejected(self, env):
        with pytest.raises(ValueError):
            Dctcp(env, g=0)
