"""The CC scheme registry."""

import pytest

from repro.core.base import CcAlgorithm
from repro.core.registry import (
    SchemeInfo,
    available_schemes,
    get_scheme,
    register,
)
from repro.sim.units import KB, US, gbps


class TestLookup:
    def test_all_paper_schemes_registered(self):
        names = available_schemes()
        for name in ("hpcc", "dcqcn", "timely", "dctcp",
                     "dcqcn+win", "timely+win",
                     "hpcc-rxrate", "hpcc-perack", "hpcc-perrtt"):
            assert name in names

    def test_unknown_scheme_raises_with_known_list(self):
        with pytest.raises(KeyError, match="hpcc"):
            get_scheme("bbr")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register(SchemeInfo(
                name="hpcc", needs_int=True,
                make=lambda env, params: None,
            ))


class TestSchemeProperties:
    def test_hpcc_needs_int(self):
        assert get_scheme("hpcc").needs_int
        assert get_scheme("hpcc-rxrate").needs_int

    def test_rate_schemes_do_not_need_int(self):
        for name in ("dcqcn", "timely", "dctcp"):
            assert not get_scheme(name).needs_int

    def test_dcqcn_cnp_interval_default(self):
        assert get_scheme("dcqcn").cnp_interval({}) == 4 * US

    def test_dcqcn_cnp_interval_override(self):
        assert get_scheme("dcqcn").cnp_interval({"td": 50 * US}) == 50 * US

    def test_hpcc_has_no_cnp(self):
        assert get_scheme("hpcc").cnp_interval({}) is None

    def test_dcqcn_ecn_defaults_paper_values(self):
        policy = get_scheme("dcqcn").default_ecn({})
        assert policy.kmin == 100 * KB
        assert policy.kmax == 400 * KB
        assert policy.ref_rate == pytest.approx(gbps(25))

    def test_dcqcn_ecn_param_override(self):
        policy = get_scheme("dcqcn").default_ecn({"kmin": 12 * KB,
                                                  "kmax": 50 * KB})
        assert (policy.kmin, policy.kmax) == (12 * KB, 50 * KB)

    def test_dctcp_ecn_step_threshold(self):
        policy = get_scheme("dctcp").default_ecn({})
        assert policy.kmin == policy.kmax == 30 * KB
        assert policy.pmax == 1.0

    def test_hpcc_has_no_ecn(self):
        assert get_scheme("hpcc").default_ecn({}) is None


class TestFactories:
    def test_make_produces_fresh_instances(self, env):
        scheme = get_scheme("hpcc")
        a = scheme.make(env, {})
        b = scheme.make(env, {})
        assert a is not b
        assert isinstance(a, CcAlgorithm)

    def test_params_forwarded(self, env):
        cc = get_scheme("hpcc").make(env, {"eta": 0.9, "max_stage": 2})
        assert cc.eta == 0.9
        assert cc.max_stage == 2

    def test_ecn_params_not_forwarded_to_cc(self, env):
        # kmin/kmax configure switches, not the sender object.
        cc = get_scheme("dcqcn").make(env, {"kmin": 1, "kmax": 2,
                                            "ti": 100 * US})
        assert cc.ti == 100 * US

    def test_windowed_factory_wraps(self, env):
        from repro.core.windowed import WindowedCc
        cc = get_scheme("dcqcn+win").make(env, {})
        assert isinstance(cc, WindowedCc)
