"""Switch behaviour inside small live networks: INT stamping, forwarding,
drops, ECN, PFC frame handling."""

import pytest

from repro.network import Network, NetworkConfig
from repro.sim.packet import PacketType
from repro.sim.units import MS, US, gbps
from repro.topology import dumbbell, star


def star_net(cc="hpcc", n=4, **cfg):
    return Network(star(n, host_rate="100Gbps"),
                   NetworkConfig(cc_name=cc, base_rtt=9 * US, **cfg))


class TestIntStamping:
    def test_single_hop_int_stack(self):
        net = star_net()
        seen = {}
        nic = net.nics[1]
        original = nic._on_ack

        def spy(pkt):
            if pkt.int_hops is not None and "hops" not in seen:
                seen["hops"] = [h.copy() for h in pkt.int_hops]
            original(pkt)

        nic._on_ack = spy
        net.add_flow(net.make_flow(src=1, dst=2, size=20_000))
        net.run_until_done(deadline=1 * MS)
        assert len(seen["hops"]) == 1                  # one switch
        hop = seen["hops"][0]
        assert hop.bandwidth == pytest.approx(gbps(100))
        assert hop.tx_bytes > 0

    def test_two_hop_path_two_stamps(self):
        net = Network(dumbbell(2, 2, host_rate="100Gbps"),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        seen = {}
        nic = net.nics[0]
        original = nic._on_ack

        def spy(pkt):
            if pkt.int_hops is not None:
                seen["n"] = len(pkt.int_hops)
            original(pkt)

        nic._on_ack = spy
        net.add_flow(net.make_flow(src=0, dst=2, size=10_000))
        net.run_until_done(deadline=1 * MS)
        assert seen["n"] == 2

    def test_tx_bytes_monotone_across_acks(self):
        net = star_net()
        stamps = []
        nic = net.nics[0]
        original = nic._on_ack

        def spy(pkt):
            if pkt.int_hops:
                stamps.append(pkt.int_hops[0].tx_bytes)
            original(pkt)

        nic._on_ack = spy
        net.add_flow(net.make_flow(src=0, dst=2, size=100_000))
        net.run_until_done(deadline=1 * MS)
        assert len(stamps) > 10
        assert stamps == sorted(stamps)

    def test_no_int_when_disabled(self):
        net = star_net(cc="dcqcn")
        assert not net.int_enabled
        net.add_flow(net.make_flow(src=0, dst=2, size=5_000))
        net.run_until_done(deadline=1 * MS)
        # Completion proves ACKs flowed; DCQCN ACKs carry no INT stack.
        assert len(net.metrics.fct_records) == 1


class TestForwarding:
    def test_no_route_blackholes_and_counts(self):
        net = star_net()
        switch = net.switches[4]
        from repro.sim.packet import Packet
        orphan = Packet(PacketType.DATA, 1, 0, 99, payload=10)
        switch.receive(orphan, in_port=0)
        assert switch.no_route_drops == 1
        assert net.metrics.drop_count == 1

    def test_port_to_helper(self):
        net = star_net()
        port = net.switches[4].port_to(2)
        assert port is net.port_between(4, 2)
        with pytest.raises(LookupError):
            net.switches[4].port_to(99)

    def test_total_queued_bytes(self):
        net = star_net()
        assert net.switches[4].total_queued_bytes() == 0


class TestDrops:
    def test_tiny_buffer_drops_and_counts(self):
        net = star_net(cc="dcqcn", buffer_bytes=20_000, pfc_enabled=False)
        for s in range(3):
            net.add_flow(net.make_flow(src=s, dst=3, size=200_000))
        net.run_until_done(deadline=20 * MS)
        assert net.metrics.drop_count > 0
        assert sum(net.metrics.drops_by_device.values()) == net.metrics.drop_count

    def test_lossless_mode_no_drops_with_pfc(self):
        net = star_net(cc="dcqcn", buffer_bytes=32_000_000, pfc_enabled=True)
        for s in range(3):
            net.add_flow(net.make_flow(src=s, dst=3, size=200_000))
        net.run_until_done(deadline=20 * MS)
        assert net.metrics.drop_count == 0


class TestEcnAtSwitch:
    def test_dcqcn_receiver_sends_cnps_under_congestion(self):
        net = star_net(cc="dcqcn")
        cnp_seen = []
        nic = net.nics[0]
        original = nic.receive

        def spy(pkt, in_port):
            if pkt.ptype is PacketType.CNP:
                cnp_seen.append(net.sim.now)
            original(pkt, in_port)

        nic.receive = spy
        # Three line-rate senders overflow the ECN threshold quickly.
        for s in range(3):
            net.add_flow(net.make_flow(src=s, dst=3, size=500_000))
        net.run_until_done(deadline=30 * MS)
        assert cnp_seen, "congestion should have produced CNPs"

    def test_hpcc_network_has_no_cnps(self):
        net = star_net(cc="hpcc")
        cnp_seen = []
        for h, nic in net.nics.items():
            original = nic.receive

            def spy(pkt, in_port, original=original):
                if pkt.ptype is PacketType.CNP:
                    cnp_seen.append(1)
                original(pkt, in_port)

            nic.receive = spy
        for s in range(3):
            net.add_flow(net.make_flow(src=s, dst=3, size=100_000))
        net.run_until_done(deadline=5 * MS)
        assert not cnp_seen
