#!/usr/bin/env python3
"""Regenerate the golden SVG snapshot used by tests/test_report.py.

Run after an *intentional* change to the render hooks or the SVG
emitter, then review the diff of the golden file like any other code:

    PYTHONPATH=src python tests/regen_golden_svg.py
"""

from pathlib import Path


def main() -> None:
    from test_report import _synthetic_fig13

    from repro.experiments import figure13
    from repro.report import render_panel

    specs, records = _synthetic_fig13()
    render = figure13.render(specs, records)
    panel = render.panel("goodput")
    out = Path(__file__).parent / "data" / "fig13_goodput_golden.svg"
    out.parent.mkdir(exist_ok=True)
    out.write_text(render_panel(panel))
    print(f"wrote {out}")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(Path(__file__).parent))
    main()
