"""HPCC Algorithm 1, line by line."""

import pytest

from repro.core.hpcc import Hpcc, default_wai
from repro.sim.units import US, gbps

from tests.helpers import FakeFlow, make_int_ack, plain_ack


def make_hpcc(env, **kw):
    cc = Hpcc(env, **kw)
    flow = FakeFlow()
    cc.install(flow)
    return cc, flow


class TestInstall:
    def test_line_rate_start(self, env):
        cc, flow = make_hpcc(env)
        assert flow.window == pytest.approx(env.bdp)       # Winit = B x T
        assert flow.rate == pytest.approx(env.line_rate)

    def test_default_wai_rule_of_thumb(self, env):
        # WAI = Winit x (1 - eta) / N  (Section 3.3).
        assert default_wai(env, 0.95, 100) == pytest.approx(
            env.bdp * 0.05 / 100
        )

    def test_parameter_validation(self, env):
        with pytest.raises(ValueError):
            Hpcc(env, eta=0.0)
        with pytest.raises(ValueError):
            Hpcc(env, max_stage=-1)


class TestMeasureInflight:
    def test_first_ack_yields_no_sample(self, env):
        cc, flow = make_hpcc(env)
        ack = make_int_ack(0, [(gbps(100), 100.0, 10_000, 0)])
        assert cc.measure_inflight(ack) is None

    def test_txrate_and_qlen_terms(self, env):
        cc, _ = make_hpcc(env)
        b = gbps(100)
        T = env.base_rtt
        cc.last_hops = make_int_ack(0, [(b, 0.0, 0, 50_000)]).int_hops
        # 1000ns later the port sent 12_500B (full rate) with 50KB queued.
        ack = make_int_ack(1000, [(b, 1000.0, 12_500, 50_000)])
        u = cc.measure_inflight(ack)
        expected_u_prime = 50_000 / (b * T) + 1.0
        tau = min(1000.0, T)
        expected = (1 - tau / T) * 1.0 + (tau / T) * expected_u_prime
        assert u == pytest.approx(expected)

    def test_min_qlen_noise_filter(self, env):
        # Line 5 uses min(ack.qlen, L.qlen) to filter transient spikes.
        cc, _ = make_hpcc(env)
        b = gbps(100)
        cc.last_hops = make_int_ack(0, [(b, 0.0, 0, 0)]).int_hops
        ack = make_int_ack(1000, [(b, 1000.0, 12_500, 1_000_000)])
        u = cc.measure_inflight(ack)
        # qlen term must use min(1MB, 0B) = 0.
        tau = 1000.0 / env.base_rtt
        assert u == pytest.approx((1 - tau) * 1.0 + tau * 1.0)

    def test_max_hop_selected(self, env):
        cc, _ = make_hpcc(env)
        b = gbps(100)
        cc.last_hops = make_int_ack(
            0, [(b, 0.0, 0, 0), (b, 0.0, 0, 0)]
        ).int_hops
        # Hop 0 at 40% utilization, hop 1 at 90%: hop 1 must drive U.
        ack = make_int_ack(1000, [
            (b, 1000.0, 5_000, 0),
            (b, 1000.0, 11_250, 0),
        ])
        u = cc.measure_inflight(ack)
        tau = 1000.0 / env.base_rtt
        assert u == pytest.approx((1 - tau) * 1.0 + tau * 0.9)

    def test_zero_dt_hop_skipped(self, env):
        cc, _ = make_hpcc(env)
        b = gbps(100)
        cc.last_hops = make_int_ack(0, [(b, 5.0, 100, 0)]).int_hops
        ack = make_int_ack(1000, [(b, 5.0, 100, 0)])       # same timestamp
        assert cc.measure_inflight(ack) is None

    def test_hop_count_change_resets(self, env):
        # Path change (Figure 7's pathID check): stack length differs.
        cc, _ = make_hpcc(env)
        b = gbps(100)
        cc.last_hops = make_int_ack(0, [(b, 0.0, 0, 0)]).int_hops
        ack = make_int_ack(1000, [(b, 1.0, 0, 0), (b, 1.0, 0, 0)])
        assert cc.measure_inflight(ack) is None

    def test_ewma_weight_capped_at_one(self, env):
        cc, _ = make_hpcc(env)
        b = gbps(100)
        cc.last_hops = make_int_ack(0, [(b, 0.0, 0, 0)]).int_hops
        # dt of 5T: tau must clamp to T, fully replacing U.
        dt = 5 * env.base_rtt
        ack = make_int_ack(1000, [(b, dt, int(b * dt * 0.5), 0)])
        u = cc.measure_inflight(ack)
        assert u == pytest.approx(0.5)


class TestComputeWind:
    def test_md_branch_above_eta(self, env):
        cc, _ = make_hpcc(env, wai=0.0)
        w = cc.compute_wind(1.9, update_wc=False)
        # W = Wc / (U/eta): halve at U = 1.9 with eta 0.95.
        assert w == pytest.approx(cc.wc / 2.0)

    def test_mi_branch_below_eta_after_max_stage(self, env):
        cc, _ = make_hpcc(env, wai=0.0)
        cc.inc_stage = cc.max_stage
        w = cc.compute_wind(0.475, update_wc=False)
        assert w == pytest.approx(cc.wc * 2.0)

    def test_ai_branch_below_eta(self, env):
        cc, _ = make_hpcc(env, wai=500.0)
        w = cc.compute_wind(0.5, update_wc=False)
        assert w == pytest.approx(cc.wc + 500.0)

    def test_wai_added_in_md_branch_too(self, env):
        cc, _ = make_hpcc(env, wai=500.0)
        w = cc.compute_wind(1.9, update_wc=False)
        assert w == pytest.approx(cc.wc / 2.0 + 500.0)

    def test_inc_stage_advances_only_on_wc_update(self, env):
        cc, _ = make_hpcc(env, wai=100.0)
        cc.compute_wind(0.5, update_wc=False)
        assert cc.inc_stage == 0
        cc.compute_wind(0.5, update_wc=True)
        assert cc.inc_stage == 1

    def test_md_resets_inc_stage(self, env):
        cc, _ = make_hpcc(env, wai=100.0)
        cc.inc_stage = 3
        cc.compute_wind(1.5, update_wc=True)
        assert cc.inc_stage == 0

    def test_wc_only_updated_when_flagged(self, env):
        cc, _ = make_hpcc(env, wai=100.0)
        wc0 = cc.wc
        cc.compute_wind(1.5, update_wc=False)
        assert cc.wc == wc0


class TestNewAck:
    def _two_acks(self, env, cc, flow, u_queue=200_000):
        """Prime L with one ACK, then deliver a congested second ACK."""
        b = gbps(100)
        flow.snd_nxt = 50_000
        cc.on_ack(flow, make_int_ack(0, [(b, 0.0, 0, u_queue)]), now=0.0)
        ack = make_int_ack(1000, [(b, 1000.0, 12_500, u_queue)])
        cc.on_ack(flow, ack, now=1000.0)

    def test_window_reduced_under_congestion(self, env):
        cc, flow = make_hpcc(env)
        w0 = flow.window
        self._two_acks(env, cc, flow)
        assert flow.window < w0

    def test_rate_follows_window(self, env):
        cc, flow = make_hpcc(env)
        self._two_acks(env, cc, flow)
        assert flow.rate == pytest.approx(flow.window / env.base_rtt)

    def test_reference_window_gating(self, env):
        # Per Figure 5: two ACKs for the same Wc must not compound.
        cc, flow = make_hpcc(env, wai=0.0)
        b = gbps(100)
        flow.snd_nxt = 100_000
        cc.on_ack(flow, make_int_ack(0, [(b, 0.0, 0, 0)]), now=0.0)
        # First congested ACK: seq 1000 > lastUpdateSeq 0 -> Wc syncs, and
        # lastUpdateSeq becomes snd_nxt = 100000.
        q = int(env.bdp)
        cc.on_ack(flow, make_int_ack(
            1000, [(b, 1000.0, 12_500, q)]), now=1000.0)
        w1 = flow.window
        wc1 = cc.wc
        # Second congested ACK with seq < lastUpdateSeq: reacts against the
        # same Wc, so the window must not halve again.
        cc.on_ack(flow, make_int_ack(
            2000, [(b, 2000.0, 25_000, q)]), now=2000.0)
        assert cc.wc == wc1
        assert flow.window > 0.6 * w1

    def test_ack_without_int_ignored(self, env):
        cc, flow = make_hpcc(env)
        w0 = flow.window
        cc.on_ack(flow, plain_ack(0, 1000), now=0.0)
        assert flow.window == w0

    def test_window_clamped_to_winit(self, env):
        cc, flow = make_hpcc(env, wai=50_000.0)
        b = gbps(100)
        flow.snd_nxt = 10_000
        cc.on_ack(flow, make_int_ack(0, [(b, 0.0, 0, 0)]), now=0.0)
        for k in range(1, 10):
            cc.on_ack(flow, make_int_ack(
                1000 * k, [(b, 1000.0 * k, 1250 * k, 0)]), now=1000.0 * k)
        assert flow.window <= env.bdp + 1e-6

    def test_window_floor_is_mtu(self, env):
        cc, flow = make_hpcc(env, wai=0.0)
        b = gbps(100)
        flow.snd_nxt = 10_000
        cc.on_ack(flow, make_int_ack(0, [(b, 0.0, 0, 10**7)]), now=0.0)
        for k in range(1, 30):
            cc.on_ack(flow, make_int_ack(
                1000 * k, [(b, 1000.0 * k, 12_500 * k, 10**7)]),
                now=1000.0 * k)
            flow.snd_nxt += 1000
        assert flow.window >= env.mtu


class TestConvergenceShape:
    def test_single_sender_converges_to_eta(self, env):
        """Feed self-consistent feedback: window W -> txRate W/T; HPCC
        should settle the utilization at eta."""
        cc, flow = make_hpcc(env)
        b = gbps(100)
        T = env.base_rtt
        tx_total = 0
        cc.on_ack(flow, make_int_ack(0, [(b, 0.0, 0, 0)]), now=0.0)
        for k in range(1, 200):
            now = k * 1000.0
            flow.snd_nxt += 1000
            tx = flow.window / T * 1000.0       # bytes sent in 1000ns
            tx_total += int(tx)
            ack = make_int_ack(int(flow.snd_nxt), [(b, now, tx_total, 0)])
            cc.on_ack(flow, ack, now=now)
        final_util = flow.window / T / b
        assert final_util == pytest.approx(0.95, rel=0.1)
