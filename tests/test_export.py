"""CSV/JSON exporters."""

import csv
import json

import pytest

from repro.metrics.export import (
    run_summary,
    write_fct_csv,
    write_pauses_csv,
    write_queue_csv,
    write_summary_json,
)
from repro.network import Network, NetworkConfig
from repro.sim.pfc import PauseTracker
from repro.sim.units import MS, US
from repro.topology import star


@pytest.fixture
def finished_run():
    net = Network(star(4, host_rate="100Gbps"),
                  NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
    sampler = net.sample_queues(interval=10 * US)
    net.add_flow(net.make_flow(0, 3, 50_000))
    net.add_flow(net.make_flow(1, 3, 20_000))
    assert net.run_until_done(deadline=10 * MS)
    sampler.stop()
    return net, sampler


class TestFctCsv:
    def test_roundtrip(self, finished_run, tmp_path):
        net, _ = finished_run
        path = tmp_path / "fct.csv"
        n = write_fct_csv(net.metrics.fct_records, path)
        assert n == 2
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        sizes = sorted(int(r["size_bytes"]) for r in rows)
        assert sizes == [20_000, 50_000]
        for row in rows:
            assert float(row["slowdown"]) > 0.9
            assert float(row["fct_ns"]) == pytest.approx(
                float(row["finish_ns"]) - float(row["start_ns"]), abs=0.2
            )


class TestQueueCsv:
    def test_long_format(self, finished_run, tmp_path):
        net, sampler = finished_run
        path = tmp_path / "queues.csv"
        n = write_queue_csv(sampler, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == n
        assert n == len(sampler.times) * len(sampler.samples)
        assert {r["port"] for r in rows} == set(sampler.samples)


class TestPausesCsv:
    def test_intervals(self, tmp_path):
        tracker = PauseTracker()
        tracker.on_paused(3, 1, 100.0)
        tracker.on_resumed(3, 1, 400.0)
        path = tmp_path / "pauses.csv"
        assert write_pauses_csv(tracker, path) == 1
        with path.open() as handle:
            row = next(csv.DictReader(handle))
        assert float(row["duration_ns"]) == 300.0


class TestSummary:
    def test_summary_and_json(self, finished_run, tmp_path):
        net, _ = finished_run
        summary = run_summary(
            net.metrics.fct_records, net.sim.now,
            tracker=net.metrics.pause_tracker,
            drops=net.metrics.drop_count,
            extra={"cc": "hpcc"},
        )
        assert summary["flows_finished"] == 2
        assert summary["drops"] == 0
        assert summary["pfc"]["pause_events"] == 0
        assert summary["cc"] == "hpcc"
        path = tmp_path / "summary.json"
        write_summary_json(summary, path)
        assert json.loads(path.read_text())["slowdown"]["p50"] > 0.9

    def test_empty_run(self):
        summary = run_summary([], duration_ns=1000.0)
        assert summary["slowdown"]["p50"] is None
