"""The network-dynamics subsystem: DSL, routing reconvergence, drivers.

Covers the three layers plus the compatibility contract:

* timeline DSL — construction, validation, JSON round-trip, flap
  expansion, spec integration (hash distinctness, legacy hash
  preservation pinned to the pre-dynamics value);
* incremental routing — ``RoutingState``'s scoped recompute must equal a
  from-scratch ``build_routing_tables`` over the alive subgraph after
  any sequence of failures/restores;
* drivers — detection delay, symmetric fail/restore accounting, degrade,
  burst injection, fluid parking, and the legacy ``workload["events"]``
  shim regression (same spec hash, same FCTs, same event count as the
  pre-dynamics hook — values captured at the PR-3 tip).
"""

import hashlib

import pytest

from repro.dynamics import (
    DegradeLink,
    FailLink,
    FlapLink,
    InjectBurst,
    RestoreLink,
    Timeline,
    burst_flow_specs,
    dynamics_axis,
)
from repro.network import Network, NetworkConfig
from repro.runner import ScenarioGrid, ScenarioSpec, execute_spec
from repro.sim.routing import RoutingState, build_routing_tables
from repro.sim.units import MS, US
from repro.topology import star
from repro.topology.base import Topology
from repro.topology.fattree import FatTreeSpec, fattree
from repro.topology.simple import dual_trunk


class TestTimelineDsl:
    def test_events_sort_by_time(self):
        tl = Timeline([RestoreLink(at=5.0, a=1, b=2), FailLink(at=1.0, a=1, b=2)])
        assert [e.kind for e in tl] == ["fail_link", "restore_link"]

    def test_json_round_trip(self):
        tl = Timeline(
            [
                FailLink(at=1.0, a=4, b=5),
                DegradeLink(at=2.0, a=0, b=4, rate_factor=0.5),
                FlapLink(at=3.0, a=4, b=5, period=10.0, down_time=2.0, count=3),
                InjectBurst(at=4.0, dst=1, fan_in=3, flow_size=1000),
            ],
            detection_delay=7.0,
        )
        back = Timeline.from_json(tl.to_json())
        assert back == tl
        assert back.detection_delay == 7.0
        assert len(back) == 4

    def test_bare_event_list_accepted(self):
        tl = Timeline.from_json([{"type": "fail_link", "at": 1.0, "a": 0, "b": 1}])
        assert len(tl) == 1 and tl.detection_delay == 0.0

    @pytest.mark.parametrize("bad", [
        {"type": "melt_link", "at": 1.0, "a": 0, "b": 1},
        {"type": "fail_link", "at": -1.0, "a": 0, "b": 1},
        {"type": "fail_link", "at": 1.0, "a": 2, "b": 2},
        {"type": "fail_link", "at": 1.0, "a": 0, "b": 1, "frob": 3},
        {"type": "degrade_link", "at": 1.0, "a": 0, "b": 1},
        {"type": "degrade_link", "at": 1.0, "a": 0, "b": 1, "rate_factor": 0},
        {"type": "flap_link", "at": 1.0, "a": 0, "b": 1,
         "period": 1.0, "down_time": 2.0, "count": 2},
        {"type": "inject_burst", "at": 1.0, "dst": 0, "fan_in": 0,
         "flow_size": 10},
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            Timeline.from_json([bad])

    def test_flap_expands_to_alternating_primitives(self):
        tl = Timeline([FlapLink(at=10.0, a=1, b=2, period=5.0,
                                down_time=2.0, count=3)])
        prims = tl.primitives()
        kinds = [(e.kind, e.at) for _i, e in prims]
        assert kinds == [
            ("fail_link", 10.0), ("restore_link", 12.0),
            ("fail_link", 15.0), ("restore_link", 17.0),
            ("fail_link", 20.0), ("restore_link", 22.0),
        ]
        assert all(i == 0 for i, _e in prims)     # all from event 0

    def test_legacy_events_merge(self):
        tl = Timeline.for_spec(
            {"events": [{"type": "degrade_link", "at": 5.0, "a": 0, "b": 1,
                         "rate_factor": 0.5}]},
            [["fail_link", 1.0, 4, 5], ["restore_link", 2.0, 4, 5]],
        )
        assert [e.kind for e in tl] == ["fail_link", "restore_link",
                                       "degrade_link"]
        with pytest.raises(ValueError, match="unknown link event"):
            Timeline.for_spec(None, [["explode_link", 1.0, 4, 5]])


class TestSpecIntegration:
    # The failover HPCC spec hash at the PR-3 tip, before the dynamics
    # field existed.  Empty dynamics must not change any legacy hash.
    LEGACY_FAILOVER_HASH = "7979982bd2e9634f"

    def legacy_spec(self):
        return ScenarioSpec(
            program="flows",
            topology="dual_trunk",
            topology_params={"n_pairs": 2},
            workload={
                "flows": [[0, 2, 2_000_000, 0.0, "bg"],
                          [1, 3, 2_000_000, 3.0, "bg"]],
                "deadline": 50 * MS,
                "events": [["fail_link", 0.2 * MS, 4, 5],
                           ["restore_link", 0.6 * MS, 4, 5]],
            },
            config={"base_rtt": 9 * US, "rto": 300 * US,
                    "goodput_bin": 50 * US},
            seed=3,
            label="legacy-shim",
        )

    def test_legacy_hash_unchanged(self):
        assert self.legacy_spec().spec_hash == self.LEGACY_FAILOVER_HASH

    def test_dynamics_is_hash_distinct(self):
        base = self.legacy_spec()
        timeline = Timeline([FailLink(at=0.2 * MS, a=4, b=5)])
        with_dynamics = base.replaced(dynamics=timeline)
        assert with_dynamics.spec_hash != base.spec_hash
        other = base.replaced(
            dynamics=Timeline([FailLink(at=0.3 * MS, a=4, b=5)])
        )
        assert other.spec_hash != with_dynamics.spec_hash

    def test_timeline_normalizes_and_round_trips(self):
        timeline = Timeline([FailLink(at=1.0, a=4, b=5)], detection_delay=2.0)
        spec = self.legacy_spec().replaced(dynamics=timeline)
        assert isinstance(spec.dynamics, dict)
        back = ScenarioSpec.from_json(spec.to_json())
        assert back == spec
        assert Timeline.from_json(back.dynamics) == timeline

    def test_invalid_dynamics_rejected_eagerly(self):
        with pytest.raises(ValueError):
            self.legacy_spec().replaced(
                dynamics={"events": [{"type": "nope", "at": 0.0}]}
            )

    def test_dynamics_axis_expands_grid(self):
        base = self.legacy_spec()
        timelines = [
            Timeline([FailLink(at=t, a=4, b=5)]) for t in (1e5, 2e5, 3e5)
        ]
        grid = ScenarioGrid(
            base, dynamics_axis(timelines, lambda i, _t: f"cut@{i}")
        )
        specs = grid.expand()
        assert len(specs) == 3
        assert len({s.spec_hash for s in specs}) == 3
        assert [s.label for s in specs] == ["cut@0", "cut@1", "cut@2"]


def tables_snapshot(net):
    return {sw: dict(switch.routing_table)
            for sw, switch in net.switches.items()}


def rebuilt_reference(net):
    """Ground truth: a from-scratch build over the alive subgraph."""
    alive, dead_ports = [], set()
    for spec, link in zip(net._link_specs, net.links):
        if link.up:
            alive.append(spec)
        else:
            dead_ports.add((spec.a, link.port_a.port_id))
            dead_ports.add((spec.b, link.port_b.port_id))
    view = Topology(
        name="ref", n_hosts=net.topology.n_hosts,
        n_switches=net.topology.n_switches, links=alive,
        switch_tiers=net.topology.switch_tiers,
    )
    return build_routing_tables(view, net.port_map, dead_ports)


class TestIncrementalRouting:
    def test_initial_build_matches_reference(self):
        net = Network(fattree(FatTreeSpec(
            n_pods=2, tors_per_pod=2, aggs_per_pod=2, n_core=2,
            hosts_per_tor=2, host_rate="10Gbps", fabric_rate="40Gbps",
        )), NetworkConfig(cc_name="hpcc", base_rtt=13 * US))
        assert tables_snapshot(net) == rebuilt_reference(net)

    def test_fail_restore_sequence_matches_reference(self):
        """Scoped recompute == full rebuild after every toggle, including
        parallel-trunk members, fabric links and host uplinks."""
        net = Network(fattree(FatTreeSpec(
            n_pods=2, tors_per_pod=2, aggs_per_pod=2, n_core=2,
            hosts_per_tor=2, host_rate="10Gbps", fabric_rate="40Gbps",
        )), NetworkConfig(cc_name="hpcc", base_rtt=13 * US))
        tors = net.topology.switch_tiers["tor"]
        aggs = net.topology.switch_tiers["agg"]
        cores = net.topology.switch_tiers["core"]
        moves = [
            ("fail", tors[0], aggs[0]),
            ("fail", aggs[0], cores[0]),
            ("restore", tors[0], aggs[0]),
            ("fail", 0, tors[0]),              # host uplink
            ("restore", aggs[0], cores[0]),
            ("restore", 0, tors[0]),
        ]
        for op, a, b in moves:
            if op == "fail":
                net.fail_link(a, b)
            else:
                net.restore_link(a, b)
            assert tables_snapshot(net) == rebuilt_reference(net), (op, a, b)

    def test_parallel_trunk_member_toggle_matches_reference(self):
        net = Network(dual_trunk(n_pairs=2),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        for op in ("fail", "fail", "restore", "restore"):
            getattr(net, f"{op}_link")(4, 5)
            assert tables_snapshot(net) == rebuilt_reference(net), op

    def test_reroute_report_counts(self):
        net = Network(dual_trunk(n_pairs=2),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        link = net.fail_link(4, 5, reroute=False)
        report = net.reconverge(link)
        # Cross-rack destinations on both ToRs shrink their ECMP group.
        assert report.dests_recomputed == 4
        assert report.groups_changed == 4
        assert report.switches_touched == {4, 5}
        # Idempotent: the routing view already matches.
        empty = net.reconverge(link)
        assert empty.groups_changed == 0 and empty.dests_recomputed == 0

    def test_equidistant_link_change_is_skipped(self):
        """A link on no shortest path reroutes nothing — the scoped
        planner skips every destination.  A same-pod Agg-Agg shortcut is
        equidistant from every host (both aggs sit 2 hops from the pod's
        hosts and 4 from the other pod's)."""
        topo = fattree(FatTreeSpec(
            n_pods=2, tors_per_pod=2, aggs_per_pod=2, n_core=2,
            hosts_per_tor=2, host_rate="10Gbps", fabric_rate="40Gbps",
        ))
        from repro.topology.base import LinkSpec
        aggs = topo.switch_tiers["agg"]
        shortcut = Topology(
            name="shortcut", n_hosts=topo.n_hosts,
            n_switches=topo.n_switches,
            links=topo.links + [LinkSpec(aggs[0], aggs[1],
                                         topo.links[-1].rate, 1000.0)],
            switch_tiers=topo.switch_tiers,
        )
        net = Network(shortcut, NetworkConfig(cc_name="hpcc", base_rtt=13 * US))
        before = tables_snapshot(net)
        link = net.fail_link(aggs[0], aggs[1], reroute=False)
        report = net.reconverge(link)
        assert report.dests_recomputed == 0
        assert report.groups_changed == 0
        assert tables_snapshot(net) == before == rebuilt_reference(net)

    def test_restore_endpoint_scoped_update(self):
        """Restoring a parallel member moves no distances: only the two
        trunk endpoints' columns are touched."""
        net = Network(dual_trunk(n_pairs=2),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        net.fail_link(4, 5)
        link = net.restore_link(4, 5, reroute=False)
        report = net.reconverge(link)
        assert report.switches_touched <= {4, 5}
        assert report.groups_changed == 4
        assert tables_snapshot(net) == rebuilt_reference(net)


def dual_trunk_spec(timeline, n_pairs=2, seed=3, deadline=50 * MS, **overrides):
    spec = ScenarioSpec(
        program="flows",
        topology="dual_trunk",
        topology_params={"n_pairs": n_pairs},
        workload={
            "flows": [[i, n_pairs + i, 2_000_000, float(i), "bg"]
                      for i in range(n_pairs)],
            "deadline": deadline,
        },
        dynamics=timeline,
        config={"base_rtt": 9 * US, "rto": 300 * US, "goodput_bin": 50 * US},
        seed=seed,
    )
    return spec.replaced(**overrides) if overrides else spec


def fct_digest(fct_rows) -> str:
    rows = sorted(fct_rows, key=lambda r: r["flow_id"])
    text = ";".join(f"{r['flow_id']}:{r['start']!r}:{r['finish']!r}"
                    for r in rows)
    return hashlib.sha256(text.encode()).hexdigest()


class TestLegacyShimRegression:
    """The ``workload["events"]`` shim replays the pre-dynamics hook
    exactly.  Golden values captured at the PR-3 tip (before the
    subsystem existed): the shimmed run must keep the same event count
    and bit-identical FCT records."""

    GOLDEN_EVENTS = 51960
    GOLDEN_DIGEST = (
        "8f3a587bb0d1a35dd97c8c7897d749d7ad1c87d38ed9d6587d3a6432b8fadfae"
    )

    def legacy_spec(self):
        return ScenarioSpec(
            program="flows",
            topology="dual_trunk",
            topology_params={"n_pairs": 2},
            workload={
                "flows": [[0, 2, 2_000_000, 0.0, "bg"],
                          [1, 3, 2_000_000, 3.0, "bg"]],
                "deadline": 50 * MS,
                "events": [["fail_link", 0.2 * MS, 4, 5],
                           ["restore_link", 0.6 * MS, 4, 5]],
            },
            config={"base_rtt": 9 * US, "rto": 300 * US,
                    "goodput_bin": 50 * US},
            seed=3,
        )

    def test_shim_is_bit_identical_to_pre_dynamics_hook(self):
        record = execute_spec(self.legacy_spec())
        assert record.completed
        assert record.events_processed == self.GOLDEN_EVENTS
        assert fct_digest(record.fct) == self.GOLDEN_DIGEST

    def test_shim_equals_first_class_timeline(self):
        legacy = execute_spec(self.legacy_spec())
        timeline = Timeline([FailLink(at=0.2 * MS, a=4, b=5),
                             RestoreLink(at=0.6 * MS, a=4, b=5)])
        spec = self.legacy_spec()
        spec = spec.replaced(
            dynamics=timeline,
            workload={k: v for k, v in spec.workload.items()
                      if k != "events"},
        )
        first_class = execute_spec(spec)
        assert fct_digest(first_class.fct) == fct_digest(legacy.fct)
        assert first_class.events_processed == legacy.events_processed
        assert first_class.spec_hash != legacy.spec_hash

    def test_shim_entry_shape(self):
        record = execute_spec(self.legacy_spec())
        fail, restore = record.link_events()
        assert fail["type"] == "fail_link" and fail["fired"]
        assert restore["type"] == "restore_link" and restore["fired"]
        # Symmetric accounting: both sides carry losses and reroutes.
        assert fail["packets_lost_down"] == restore["packets_lost_down"]
        assert fail["reroutes"] == 4 and restore["reroutes"] == 4
        assert fail["detected_at"] == fail["time"]     # zero detection delay


class TestPacketDriver:
    def test_detection_delay_defers_reconvergence(self):
        dd = 100 * US
        timeline = Timeline([FailLink(at=0.2 * MS, a=4, b=5)],
                            detection_delay=dd)
        record = execute_spec(dual_trunk_spec(timeline))
        [fail] = record.link_events()
        assert fail["fired"]
        assert fail["detected_at"] == pytest.approx(fail["time"] + dd)
        # The blackhole window costs packets: everything serialized into
        # the dead trunk before reroute is lost.
        assert fail["packets_lost_down"] > 0
        assert record.completed

    def test_restore_accounting_is_symmetric(self):
        dd = 100 * US
        timeline = Timeline(
            [FailLink(at=0.2 * MS, a=4, b=5),
             RestoreLink(at=0.8 * MS, a=4, b=5)],
            detection_delay=dd,
        )
        record = execute_spec(dual_trunk_spec(timeline))
        fail, restore = record.link_events()
        assert fail["packets_lost_down"] > 0
        assert restore["packets_lost_down"] == fail["packets_lost_down"]
        assert restore["reroutes"] > 0 and restore["dests_recomputed"] > 0
        assert restore["detected_at"] == pytest.approx(restore["time"] + dd)

    def test_degrade_link_slows_completion(self):
        flows = {"flows": [[0, 2, 2_000_000, 0.0, "bg"]], "deadline": 20 * MS}
        base = dual_trunk_spec(Timeline(), **{"workload": flows})
        degraded = base.replaced(dynamics=Timeline([
            DegradeLink(at=0.0, a=0, b=4, rate_factor=0.25),
        ]))
        fast = execute_spec(base)
        slow = execute_spec(degraded)
        assert fast.completed and slow.completed
        [entry] = slow.link_events()
        assert entry["type"] == "degrade_link" and entry["fired"]
        f_fct = fast.fct[0]["finish"] - fast.fct[0]["start"]
        s_fct = slow.fct[0]["finish"] - slow.fct[0]["start"]
        assert s_fct > 2.5 * f_fct      # uplink at 25% rate: ~4x slower

    def test_flap_produces_per_outage_accounting(self):
        timeline = Timeline([FlapLink(at=0.2 * MS, a=4, b=5,
                                      period=0.4 * MS, down_time=0.15 * MS,
                                      count=2)])
        record = execute_spec(dual_trunk_spec(timeline))
        events = record.link_events()
        kinds = [e["type"] for e in events]
        assert kinds == ["fail_link", "restore_link",
                         "fail_link", "restore_link"]
        assert all(e["fired"] for e in events)

    def test_burst_injects_tagged_flows(self):
        timeline = Timeline([InjectBurst(at=0.1 * MS, dst=2, fan_in=2,
                                         flow_size=100_000)])
        record = execute_spec(dual_trunk_spec(timeline))
        burst_ids = record.flow_ids("burst")
        assert len(burst_ids) == 2
        finished = {r["flow_id"] for r in record.fct}
        assert set(burst_ids) <= finished
        [entry] = [e for e in record.link_events()
                   if e["type"] == "inject_burst"]
        assert entry["fired"] and entry["flow_ids"] == burst_ids

    def test_unfired_events_after_completion(self):
        timeline = Timeline([FailLink(at=500 * MS, a=4, b=5)])
        record = execute_spec(dual_trunk_spec(timeline))
        assert record.completed
        [fail] = record.link_events()
        assert not fail["fired"]

    def test_dynamics_on_load_program(self):
        spec = ScenarioSpec(
            program="load",
            topology="star",
            topology_params={"n_hosts": 4, "host_rate": "10Gbps"},
            workload={"cdf": "fbhadoop", "size_scale": 0.1,
                      "load": 0.2, "n_flows": 10},
            dynamics=Timeline([
                InjectBurst(at=10_000.0, dst=0, fan_in=2, flow_size=50_000),
            ]),
            config={"base_rtt": 9 * US},
            seed=2,
        )
        record = execute_spec(spec)
        assert len(record.flow_ids("burst")) == 2
        [entry] = record.link_events()
        assert entry["type"] == "inject_burst" and entry["fired"]


class TestBurstDeterminism:
    def test_same_population_on_both_backends(self):
        timeline = Timeline([InjectBurst(at=0.1 * MS, dst=2, fan_in=2,
                                         flow_size=100_000)])
        spec = dual_trunk_spec(timeline)
        packet = execute_spec(spec)
        fluid = execute_spec(spec.replaced(backend="fluid"))
        key = lambda rows: sorted(
            (r["flow_id"], r["src"], r["dst"], r["size"], r["start_time"])
            for r in rows
        )
        assert key(packet.fct) == key(fluid.fct)

    def test_burst_helper_is_deterministic(self):
        timeline = Timeline([InjectBurst(at=5.0, dst=1, fan_in=3,
                                         flow_size=10)])
        one, _ = burst_flow_specs(timeline, range(8), seed=7, next_flow_id=10)
        two, _ = burst_flow_specs(timeline, range(8), seed=7, next_flow_id=10)
        assert [(f.flow_id, f.src) for f in one] == \
            [(f.flow_id, f.src) for f in two]
        other, _ = burst_flow_specs(timeline, range(8), seed=8, next_flow_id=10)
        assert [f.src for f in one] != [f.src for f in other]


class TestFluidDriver:
    def test_full_cut_parks_then_restore_completes(self):
        timeline = Timeline([
            FailLink(at=0.1 * MS, a=2, b=3),
            RestoreLink(at=1.0 * MS, a=2, b=3),
        ])
        spec = ScenarioSpec(
            program="flows",
            topology="star",
            topology_params={"n_hosts": 3, "host_rate": "25Gbps"},
            workload={"flows": [[0, 2, 300_000, 0.0, "bg"]],
                      "deadline": 50 * MS},
            dynamics=timeline,
            config={"base_rtt": 9 * US},
            backend="fluid",
        )
        record = execute_spec(spec)
        assert record.completed
        [r] = record.fct
        assert r["finish"] > 1.0 * MS          # stalled across the outage
        fail, restore = record.link_events()
        assert fail["fired"] and restore["fired"]
        assert restore["reroutes"] >= 1        # the parked flow re-admitted

    def test_cut_without_restore_blackholes(self):
        timeline = Timeline([FailLink(at=0.1 * MS, a=2, b=3)])
        spec = ScenarioSpec(
            program="flows",
            topology="star",
            topology_params={"n_hosts": 3, "host_rate": "25Gbps"},
            workload={"flows": [[0, 2, 300_000, 0.0, "bg"]],
                      "deadline": 3 * MS},
            dynamics=timeline,
            config={"base_rtt": 9 * US},
            backend="fluid",
        )
        record = execute_spec(spec)
        assert not record.completed
        assert record.fct == []

    def test_unfired_events_after_completion_fluid(self):
        """Backend-neutral accounting: like the packet path, fluid stops
        when every flow finished, leaving later events unfired."""
        timeline = Timeline([FailLink(at=500 * MS, a=4, b=5)])
        record = execute_spec(
            dual_trunk_spec(timeline, **{"backend": "fluid"})
        )
        assert record.completed
        [fail] = record.link_events()
        assert not fail["fired"]
        assert record.duration_ns < 500 * MS

    def test_degrade_scales_fluid_capacity(self):
        base = ScenarioSpec(
            program="flows",
            topology="star",
            topology_params={"n_hosts": 3, "host_rate": "25Gbps"},
            workload={"flows": [[0, 2, 1_000_000, 0.0, "bg"]],
                      "deadline": 50 * MS},
            config={"base_rtt": 9 * US},
            backend="fluid",
        )
        fast = execute_spec(base)
        slow = execute_spec(base.replaced(dynamics=Timeline([
            DegradeLink(at=0.0, a=2, b=3, rate_factor=0.25),
        ])))
        assert fast.completed and slow.completed
        f = fast.fct[0]["finish"] - fast.fct[0]["start"]
        s = slow.fct[0]["finish"] - slow.fct[0]["start"]
        assert s > 2.5 * f

    def test_dual_trunk_cut_halves_pooled_capacity(self):
        timeline = Timeline([FailLink(at=1 * MS, a=8, b=9)])
        spec = ScenarioSpec(
            program="flows",
            topology="dual_trunk",
            topology_params={"n_pairs": 4},
            workload={
                "flows": [[i, 4 + i, 20_000_000, 0.0, "bg"]
                          for i in range(4)],
                "deadline": 40 * MS,
            },
            dynamics=timeline,
            config={"base_rtt": 9 * US, "goodput_bin": 50 * US},
            backend="fluid",
        )
        record = execute_spec(spec)
        goodput = record.goodput()
        ids = record.flow_ids("bg")
        before = sum(goodput.mean_gbps(f, 0.4 * MS, 1 * MS) for f in ids)
        after = sum(goodput.mean_gbps(f, 1.5 * MS, 3.0 * MS) for f in ids)
        # 4x25G offered into 2x50G trunks -> 1x50G: aggregate halves.
        assert after == pytest.approx(before / 2, rel=0.25)
