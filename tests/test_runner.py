"""The declarative scenario layer: specs, grids, execution, caching.

Includes the determinism guarantee the sweep runner is built on: the same
``ScenarioSpec`` produces identical results whether it runs serially,
in another process, or comes back from the cache.
"""

import json

import pytest

from repro.runner import (
    CcChoice,
    RunCache,
    RunRecord,
    ScenarioGrid,
    ScenarioSpec,
    SweepRunner,
    axis,
    build_topology,
    cc_axis,
    execute_spec,
)
from repro.sim.units import US


def tiny_load_spec(**updates) -> ScenarioSpec:
    spec = ScenarioSpec(
        program="load",
        topology="star",
        topology_params={"n_hosts": 4, "host_rate": "10Gbps"},
        cc=CcChoice("hpcc"),
        workload={"cdf": "fbhadoop", "size_scale": 0.1,
                  "load": 0.2, "n_flows": 15},
        config={"base_rtt": 9 * US},
        seed=2,
        label="tiny",
    )
    return spec.replaced(**updates) if updates else spec


def tiny_flows_spec(**updates) -> ScenarioSpec:
    spec = ScenarioSpec(
        program="flows",
        topology="star",
        topology_params={"n_hosts": 3, "host_rate": "10Gbps"},
        cc=CcChoice("hpcc"),
        workload={"flows": [[0, 2, 60_000, 0.0, "a"], [1, 2, 60_000, 0.0, "b"]],
                  "deadline": 5e6},
        config={"base_rtt": 9 * US, "goodput_bin": 50_000.0},
        measure={"sample_interval": 10_000.0,
                 "sample_ports": [["bneck", "to_host", 2]],
                 "windows": True},
        label="tiny-flows",
    )
    return spec.replaced(**updates) if updates else spec


class TestScenarioSpec:
    def test_hashable_and_eq_by_content(self):
        a, b = tiny_load_spec(), tiny_load_spec()
        assert a == b and hash(a) == hash(b)
        assert a.spec_hash == b.spec_hash
        c = tiny_load_spec(seed=3)
        assert c != a and c.spec_hash != a.spec_hash
        assert len({a, b, c}) == 2

    def test_label_and_meta_do_not_change_identity(self):
        a = tiny_load_spec()
        b = tiny_load_spec(label="renamed", **{"meta.case": "30%"})
        assert a == b and a.spec_hash == b.spec_hash

    def test_json_roundtrip(self):
        spec = tiny_load_spec(**{"meta.case": "x"})
        back = ScenarioSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert back == spec
        assert back.label == spec.label and back.meta == spec.meta
        assert back.cc == spec.cc

    def test_picklable(self):
        import pickle

        spec = tiny_load_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_replaced_dotted_paths_do_not_mutate(self):
        spec = tiny_load_spec()
        derived = spec.replaced(**{"workload.load": 0.5,
                                   "config.buffer_bytes": 1_000_000})
        assert spec.workload["load"] == 0.2
        assert "buffer_bytes" not in spec.config
        assert derived.workload["load"] == 0.5
        assert derived.config["buffer_bytes"] == 1_000_000

    def test_replaced_rejects_non_dict_descent(self):
        with pytest.raises(TypeError):
            tiny_load_spec(**{"seed.x": 1})

    def test_backend_is_identity(self):
        """Packet and fluid runs of one scenario must never share a hash."""
        packet = tiny_load_spec()
        fluid = tiny_load_spec(backend="fluid")
        assert packet.backend == "packet"
        assert packet != fluid
        assert packet.spec_hash != fluid.spec_hash

    def test_backend_json_roundtrip_and_legacy_default(self):
        spec = tiny_load_spec(backend="fluid")
        payload = spec.to_json()
        assert payload["backend"] == "fluid"
        assert ScenarioSpec.from_json(payload) == spec
        # Records persisted before the backend axis existed load as packet.
        legacy = tiny_load_spec().to_json()
        del legacy["backend"]
        assert ScenarioSpec.from_json(legacy).backend == "packet"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            tiny_load_spec(backend="quantum")

    def test_build_topology_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology(tiny_load_spec(topology="moebius"))

    def test_unknown_program_rejected(self):
        with pytest.raises(ValueError, match="unknown program"):
            execute_spec(tiny_load_spec(program="quantum"))


class TestScenarioGrid:
    def test_cartesian_expansion_row_major(self):
        grid = ScenarioGrid(
            tiny_load_spec(),
            axis("workload.load", [0.2, 0.4]),
            cc_axis([CcChoice("hpcc", label="HPCC"),
                     CcChoice("dcqcn", label="DCQCN")]),
        )
        specs = grid.expand()
        assert len(specs) == len(grid) == 4
        assert [s.label for s in specs] == ["HPCC", "DCQCN", "HPCC", "DCQCN"]
        assert [s.workload["load"] for s in specs] == [0.2, 0.2, 0.4, 0.4]
        assert len({s.spec_hash for s in specs}) == 4

    def test_coupled_axis_updates_multiple_fields(self):
        specs = ScenarioGrid(
            tiny_load_spec(),
            [{"config.transport": "gbn", "config.pfc_enabled": False,
              "label": "GBN"}],
        ).expand()
        assert specs[0].config["transport"] == "gbn"
        assert specs[0].config["pfc_enabled"] is False
        assert specs[0].label == "GBN"


class TestExecution:
    def test_load_program_record(self):
        record = execute_spec(tiny_load_spec())
        assert record.fct and record.events_processed > 0
        assert record.duration_ns > 0
        assert record.extras["n_hosts"] == 4
        assert record.wall_time_s > 0
        # FctRecord reconstruction round-trips the flow spec.
        fct = record.fct_records()
        assert all(r.slowdown > 0 and r.fct > 0 for r in fct)
        assert {r.spec.flow_id for r in fct} == {r["flow_id"] for r in record.fct}

    def test_flows_program_record(self):
        record = execute_spec(tiny_flows_spec())
        assert len(record.fct) == 2
        t, q = record.queue_series("bneck")
        assert len(t) == len(q) > 0
        assert record.flow_ids("a") == [1] and record.flow_ids("b") == [2]
        assert set(record.goodput().flow_ids()) == {1, 2}
        assert set(record.final_windows()) == {1, 2}

    def test_link_event_after_completion_still_yields_complete_entry(self):
        """A fail_link scheduled past the last flow's finish never fires;
        the record must still carry a complete (no-op) event entry."""
        spec = tiny_flows_spec(
            **{"workload.events": [["fail_link", 4.9e6, 3, 0]]}
        )
        record = execute_spec(spec)
        [entry] = record.link_events()
        assert entry["fired"] is False
        assert entry["packets_lost_down"] == 0

    def test_unknown_link_event_rejected_eagerly(self):
        spec = tiny_flows_spec(
            **{"workload.events": [["melt_link", 1.0, 3, 0]]}
        )
        with pytest.raises(ValueError, match="unknown link event"):
            execute_spec(spec)

    def test_worker_execution_error_propagates_from_pool(self):
        """A broken spec must fail the sweep loudly, not silently degrade."""
        bad = tiny_flows_spec(topology="moebius")
        with pytest.raises(ValueError, match="unknown topology"):
            SweepRunner(jobs=2).run([bad, tiny_flows_spec()])

    def test_record_json_roundtrip_preserves_results(self):
        record = execute_spec(tiny_flows_spec())
        back = RunRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert back.fct == record.fct
        assert back.queues == record.queues
        assert back.events_processed == record.events_processed
        # Reconstructed trackers behave identically.
        assert back.goodput().total_series() == record.goodput().total_series()

    def test_record_json_roundtrip_carries_backend(self):
        """Round-trip must preserve the backend on both execution paths."""
        for backend in ("packet", "fluid"):
            record = execute_spec(tiny_flows_spec(backend=backend))
            payload = json.loads(json.dumps(record.to_json()))
            assert payload["spec"]["backend"] == backend
            back = RunRecord.from_json(payload)
            assert back.spec.backend == backend
            assert back.spec == record.spec
            assert back.fct == record.fct


class TestRunCache:
    def test_miss_compute_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = tiny_flows_spec()
        assert cache.get(spec) is None
        runner = SweepRunner(cache=cache)
        [record] = runner.run([spec])
        assert not record.cached
        assert spec in cache and len(cache) == 1
        [again] = SweepRunner(cache=cache).run([spec])
        assert again.cached
        assert again.fct == record.fct
        assert again.events_processed == record.events_processed

    def test_relabelled_spec_hits_same_entry(self, tmp_path):
        cache = RunCache(tmp_path)
        SweepRunner(cache=cache).run([tiny_flows_spec()])
        [hit] = SweepRunner(cache=cache).run(
            [tiny_flows_spec(label="other-name", **{"meta.case": "x"})]
        )
        assert hit.cached
        assert hit.spec.label == "other-name"     # caller's labelling kept

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = tiny_flows_spec()
        SweepRunner(cache=cache).run([spec])
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None
        [record] = SweepRunner(cache=cache).run([spec])
        assert not record.cached

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        SweepRunner(cache=cache).run([tiny_flows_spec()])
        assert cache.clear() == 1 and len(cache) == 0

    def test_backends_cached_separately(self, tmp_path):
        """A fluid run must never satisfy a packet lookup or vice versa."""
        cache = RunCache(tmp_path)
        packet, fluid = tiny_flows_spec(), tiny_flows_spec(backend="fluid")
        [packet_record] = SweepRunner(cache=cache).run([packet])
        assert cache.get(fluid) is None            # no cross-backend hit
        [fluid_record] = SweepRunner(cache=cache).run([fluid])
        assert not fluid_record.cached
        assert len(cache) == 2
        # Both entries hit independently afterwards.
        assert cache.get(packet).cached and cache.get(fluid).cached
        assert cache.get(packet).spec.backend == "packet"
        assert cache.get(fluid).spec.backend == "fluid"

    def test_stats_breaks_down_by_backend(self, tmp_path):
        cache = RunCache(tmp_path)
        SweepRunner(cache=cache).run(
            [tiny_flows_spec(), tiny_flows_spec(backend="fluid"),
             tiny_load_spec()]
        )
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert stats["corrupt"] == 0
        assert stats["by_kind"] == {
            ("packet", "flows"): 1,
            ("fluid", "flows"): 1,
            ("packet", "load"): 1,
        }


class TestSweepRunner:
    def test_preserves_input_order_and_progress(self):
        specs = [tiny_flows_spec(), tiny_load_spec(),
                 tiny_flows_spec(seed=9)]
        seen = []
        runner = SweepRunner(progress=lambda r, done, total: seen.append((done, total)))
        records = runner.run(specs)
        assert [r.spec.spec_hash for r in records] == [s.spec_hash for s in specs]
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_duplicate_specs_computed_once(self):
        specs = [tiny_flows_spec(label="a"), tiny_flows_spec(label="b")]
        runs = []
        runner = SweepRunner(progress=lambda r, d, t: runs.append(r))
        records = runner.run(specs)
        assert len(runs) == 2                      # both notified...
        assert records[0].fct is records[1].fct    # ...one computation shared
        assert records[0].spec.label == "a"
        assert records[1].spec.label == "b"

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestDeterminism:
    """Satellite requirement: the same spec (same seed) run serially and
    via the process pool yields identical FCT records and
    ``events_processed``."""

    def grid(self):
        return ScenarioGrid(
            tiny_load_spec(),
            cc_axis([CcChoice("hpcc", label="HPCC"),
                     CcChoice("dcqcn", label="DCQCN")]),
            axis("seed", [2, 7]),
        ).expand()

    def test_serial_rerun_is_identical(self):
        specs = self.grid()
        first = SweepRunner().run(specs)
        second = SweepRunner().run(specs)
        assert [r.fct for r in first] == [r.fct for r in second]
        assert [r.events_processed for r in first] == \
            [r.events_processed for r in second]

    def test_pool_matches_serial(self):
        specs = self.grid()
        serial = SweepRunner(jobs=1).run(specs)
        pooled = SweepRunner(jobs=4).run(specs)
        assert [r.fct for r in serial] == [r.fct for r in pooled]
        assert [r.queues for r in serial] == [r.queues for r in pooled]
        assert [r.extras for r in serial] == [r.extras for r in pooled]
        assert [r.events_processed for r in serial] == \
            [r.events_processed for r in pooled]

    def test_cached_record_matches_fresh(self, tmp_path):
        spec = tiny_load_spec()
        fresh = execute_spec(spec)
        cache = RunCache(tmp_path)
        cache.put(fresh)
        hit = cache.get(spec)
        assert hit.fct == fresh.fct
        assert hit.events_processed == fresh.events_processed
