"""The declarative scenario layer: specs, grids, execution, caching.

Includes the determinism guarantee the sweep runner is built on: the same
``ScenarioSpec`` produces identical results whether it runs serially,
in another process, or comes back from the cache.
"""

import json

import pytest

from repro.runner import (
    CcChoice,
    RunCache,
    RunRecord,
    ScenarioGrid,
    ScenarioSpec,
    SweepJournal,
    SweepRunner,
    axis,
    build_topology,
    cc_axis,
    execute_spec,
    plan_resume,
)
from repro.sim.units import US


def tiny_load_spec(**updates) -> ScenarioSpec:
    spec = ScenarioSpec(
        program="load",
        topology="star",
        topology_params={"n_hosts": 4, "host_rate": "10Gbps"},
        cc=CcChoice("hpcc"),
        workload={"cdf": "fbhadoop", "size_scale": 0.1,
                  "load": 0.2, "n_flows": 15},
        config={"base_rtt": 9 * US},
        seed=2,
        label="tiny",
    )
    return spec.replaced(**updates) if updates else spec


def tiny_flows_spec(**updates) -> ScenarioSpec:
    spec = ScenarioSpec(
        program="flows",
        topology="star",
        topology_params={"n_hosts": 3, "host_rate": "10Gbps"},
        cc=CcChoice("hpcc"),
        workload={"flows": [[0, 2, 60_000, 0.0, "a"], [1, 2, 60_000, 0.0, "b"]],
                  "deadline": 5e6},
        config={"base_rtt": 9 * US, "goodput_bin": 50_000.0},
        measure={"sample_interval": 10_000.0,
                 "sample_ports": [["bneck", "to_host", 2]],
                 "windows": True},
        label="tiny-flows",
    )
    return spec.replaced(**updates) if updates else spec


class TestScenarioSpec:
    def test_hashable_and_eq_by_content(self):
        a, b = tiny_load_spec(), tiny_load_spec()
        assert a == b and hash(a) == hash(b)
        assert a.spec_hash == b.spec_hash
        c = tiny_load_spec(seed=3)
        assert c != a and c.spec_hash != a.spec_hash
        assert len({a, b, c}) == 2

    def test_label_and_meta_do_not_change_identity(self):
        a = tiny_load_spec()
        b = tiny_load_spec(label="renamed", **{"meta.case": "30%"})
        assert a == b and a.spec_hash == b.spec_hash

    def test_json_roundtrip(self):
        spec = tiny_load_spec(**{"meta.case": "x"})
        back = ScenarioSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert back == spec
        assert back.label == spec.label and back.meta == spec.meta
        assert back.cc == spec.cc

    def test_picklable(self):
        import pickle

        spec = tiny_load_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_replaced_dotted_paths_do_not_mutate(self):
        spec = tiny_load_spec()
        derived = spec.replaced(**{"workload.load": 0.5,
                                   "config.buffer_bytes": 1_000_000})
        assert spec.workload["load"] == 0.2
        assert "buffer_bytes" not in spec.config
        assert derived.workload["load"] == 0.5
        assert derived.config["buffer_bytes"] == 1_000_000

    def test_replaced_rejects_non_dict_descent(self):
        with pytest.raises(TypeError):
            tiny_load_spec(**{"seed.x": 1})

    def test_backend_is_identity(self):
        """Packet and fluid runs of one scenario must never share a hash."""
        packet = tiny_load_spec()
        fluid = tiny_load_spec(backend="fluid")
        assert packet.backend == "packet"
        assert packet != fluid
        assert packet.spec_hash != fluid.spec_hash

    def test_backend_json_roundtrip_and_legacy_default(self):
        spec = tiny_load_spec(backend="fluid")
        payload = spec.to_json()
        assert payload["backend"] == "fluid"
        assert ScenarioSpec.from_json(payload) == spec
        # Records persisted before the backend axis existed load as packet.
        legacy = tiny_load_spec().to_json()
        del legacy["backend"]
        assert ScenarioSpec.from_json(legacy).backend == "packet"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            tiny_load_spec(backend="quantum")

    def test_build_topology_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology(tiny_load_spec(topology="moebius"))

    def test_unknown_program_rejected(self):
        with pytest.raises(ValueError, match="unknown program"):
            execute_spec(tiny_load_spec(program="quantum"))


class TestScenarioGrid:
    def test_cartesian_expansion_row_major(self):
        grid = ScenarioGrid(
            tiny_load_spec(),
            axis("workload.load", [0.2, 0.4]),
            cc_axis([CcChoice("hpcc", label="HPCC"),
                     CcChoice("dcqcn", label="DCQCN")]),
        )
        specs = grid.expand()
        assert len(specs) == len(grid) == 4
        assert [s.label for s in specs] == ["HPCC", "DCQCN", "HPCC", "DCQCN"]
        assert [s.workload["load"] for s in specs] == [0.2, 0.2, 0.4, 0.4]
        assert len({s.spec_hash for s in specs}) == 4

    def test_coupled_axis_updates_multiple_fields(self):
        specs = ScenarioGrid(
            tiny_load_spec(),
            [{"config.transport": "gbn", "config.pfc_enabled": False,
              "label": "GBN"}],
        ).expand()
        assert specs[0].config["transport"] == "gbn"
        assert specs[0].config["pfc_enabled"] is False
        assert specs[0].label == "GBN"


class TestExecution:
    def test_load_program_record(self):
        record = execute_spec(tiny_load_spec())
        assert record.fct and record.events_processed > 0
        assert record.duration_ns > 0
        assert record.extras["n_hosts"] == 4
        assert record.wall_time_s > 0
        # FctRecord reconstruction round-trips the flow spec.
        fct = record.fct_records()
        assert all(r.slowdown > 0 and r.fct > 0 for r in fct)
        assert {r.spec.flow_id for r in fct} == {r["flow_id"] for r in record.fct}

    def test_flows_program_record(self):
        record = execute_spec(tiny_flows_spec())
        assert len(record.fct) == 2
        t, q = record.queue_series("bneck")
        assert len(t) == len(q) > 0
        assert record.flow_ids("a") == [1] and record.flow_ids("b") == [2]
        assert set(record.goodput().flow_ids()) == {1, 2}
        assert set(record.final_windows()) == {1, 2}

    def test_link_event_after_completion_still_yields_complete_entry(self):
        """A fail_link scheduled past the last flow's finish never fires;
        the record must still carry a complete (no-op) event entry."""
        spec = tiny_flows_spec(
            **{"workload.events": [["fail_link", 4.9e6, 3, 0]]}
        )
        record = execute_spec(spec)
        [entry] = record.link_events()
        assert entry["fired"] is False
        assert entry["packets_lost_down"] == 0

    def test_unknown_link_event_rejected_eagerly(self):
        spec = tiny_flows_spec(
            **{"workload.events": [["melt_link", 1.0, 3, 0]]}
        )
        with pytest.raises(ValueError, match="unknown link event"):
            execute_spec(spec)

    def test_worker_execution_error_propagates_from_pool(self):
        """A broken spec must fail the sweep loudly, not silently degrade."""
        bad = tiny_flows_spec(topology="moebius")
        with pytest.raises(ValueError, match="unknown topology"):
            SweepRunner(jobs=2).run([bad, tiny_flows_spec()])

    def test_record_json_roundtrip_preserves_results(self):
        record = execute_spec(tiny_flows_spec())
        back = RunRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert back.fct == record.fct
        assert back.queues == record.queues
        assert back.events_processed == record.events_processed
        # Reconstructed trackers behave identically.
        assert back.goodput().total_series() == record.goodput().total_series()

    def test_record_json_roundtrip_carries_backend(self):
        """Round-trip must preserve the backend on both execution paths."""
        for backend in ("packet", "fluid"):
            record = execute_spec(tiny_flows_spec(backend=backend))
            payload = json.loads(json.dumps(record.to_json()))
            assert payload["spec"]["backend"] == backend
            back = RunRecord.from_json(payload)
            assert back.spec.backend == backend
            assert back.spec == record.spec
            assert back.fct == record.fct


class TestRunCache:
    def test_miss_compute_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = tiny_flows_spec()
        assert cache.get(spec) is None
        runner = SweepRunner(cache=cache)
        [record] = runner.run([spec])
        assert not record.cached
        assert spec in cache and len(cache) == 1
        [again] = SweepRunner(cache=cache).run([spec])
        assert again.cached
        assert again.fct == record.fct
        assert again.events_processed == record.events_processed

    def test_relabelled_spec_hits_same_entry(self, tmp_path):
        cache = RunCache(tmp_path)
        SweepRunner(cache=cache).run([tiny_flows_spec()])
        [hit] = SweepRunner(cache=cache).run(
            [tiny_flows_spec(label="other-name", **{"meta.case": "x"})]
        )
        assert hit.cached
        assert hit.spec.label == "other-name"     # caller's labelling kept

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = tiny_flows_spec()
        SweepRunner(cache=cache).run([spec])
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None
        # The bad entry was quarantined, not left shadowing the slot.
        assert not cache.path_for(spec).exists()
        assert cache.path_for(spec).with_suffix(".corrupt").exists()
        assert cache.stats()["quarantined"] == 1
        [record] = SweepRunner(cache=cache).run([spec])
        assert not record.cached
        # The rerun repopulated the slot; a second lookup now hits.
        assert cache.get(spec) is not None

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = tiny_flows_spec()
        SweepRunner(cache=cache).run([spec])
        path = cache.path_for(spec)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(spec) is None
        assert path.with_suffix(".corrupt").exists()

    def test_schema_mismatch_is_quarantined(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = tiny_flows_spec()
        SweepRunner(cache=cache).run([spec])
        path = cache.path_for(spec)
        data = json.loads(path.read_text())
        data["format"] = 999
        path.write_text(json.dumps(data))
        assert cache.get(spec) is None
        assert path.with_suffix(".corrupt").exists()

    def test_non_ok_record_refused_by_put(self, tmp_path):
        cache = RunCache(tmp_path)
        bad = RunRecord.failure(tiny_flows_spec(), "error",
                                exc=RuntimeError("boom"))
        with pytest.raises(ValueError, match="refusing to cache"):
            cache.put(bad)

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        SweepRunner(cache=cache).run([tiny_flows_spec()])
        assert cache.clear() == 1 and len(cache) == 0

    def test_backends_cached_separately(self, tmp_path):
        """A fluid run must never satisfy a packet lookup or vice versa."""
        cache = RunCache(tmp_path)
        packet, fluid = tiny_flows_spec(), tiny_flows_spec(backend="fluid")
        [packet_record] = SweepRunner(cache=cache).run([packet])
        assert cache.get(fluid) is None            # no cross-backend hit
        [fluid_record] = SweepRunner(cache=cache).run([fluid])
        assert not fluid_record.cached
        assert len(cache) == 2
        # Both entries hit independently afterwards.
        assert cache.get(packet).cached and cache.get(fluid).cached
        assert cache.get(packet).spec.backend == "packet"
        assert cache.get(fluid).spec.backend == "fluid"

    def test_stats_breaks_down_by_backend(self, tmp_path):
        cache = RunCache(tmp_path)
        SweepRunner(cache=cache).run(
            [tiny_flows_spec(), tiny_flows_spec(backend="fluid"),
             tiny_load_spec()]
        )
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert stats["corrupt"] == 0
        assert stats["by_kind"] == {
            ("packet", "flows"): 1,
            ("fluid", "flows"): 1,
            ("packet", "load"): 1,
        }


class TestSweepRunner:
    def test_preserves_input_order_and_progress(self):
        specs = [tiny_flows_spec(), tiny_load_spec(),
                 tiny_flows_spec(seed=9)]
        seen = []
        runner = SweepRunner(progress=lambda r, done, total: seen.append((done, total)))
        records = runner.run(specs)
        assert [r.spec.spec_hash for r in records] == [s.spec_hash for s in specs]
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_duplicate_specs_computed_once(self):
        specs = [tiny_flows_spec(label="a"), tiny_flows_spec(label="b")]
        runs = []
        runner = SweepRunner(progress=lambda r, d, t: runs.append(r))
        records = runner.run(specs)
        assert len(runs) == 2                      # both notified...
        assert records[0].fct is records[1].fct    # ...one computation shared
        assert records[0].spec.label == "a"
        assert records[1].spec.label == "b"

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestDeterminism:
    """Satellite requirement: the same spec (same seed) run serially and
    via the process pool yields identical FCT records and
    ``events_processed``."""

    def grid(self):
        return ScenarioGrid(
            tiny_load_spec(),
            cc_axis([CcChoice("hpcc", label="HPCC"),
                     CcChoice("dcqcn", label="DCQCN")]),
            axis("seed", [2, 7]),
        ).expand()

    def test_serial_rerun_is_identical(self):
        specs = self.grid()
        first = SweepRunner().run(specs)
        second = SweepRunner().run(specs)
        assert [r.fct for r in first] == [r.fct for r in second]
        assert [r.events_processed for r in first] == \
            [r.events_processed for r in second]

    def test_pool_matches_serial(self):
        specs = self.grid()
        serial = SweepRunner(jobs=1).run(specs)
        pooled = SweepRunner(jobs=4).run(specs)
        assert [r.fct for r in serial] == [r.fct for r in pooled]
        assert [r.queues for r in serial] == [r.queues for r in pooled]
        assert [r.extras for r in serial] == [r.extras for r in pooled]
        assert [r.events_processed for r in serial] == \
            [r.events_processed for r in pooled]

    def test_cached_record_matches_fresh(self, tmp_path):
        spec = tiny_load_spec()
        fresh = execute_spec(spec)
        cache = RunCache(tmp_path)
        cache.put(fresh)
        hit = cache.get(spec)
        assert hit.fct == fresh.fct
        assert hit.events_processed == fresh.events_processed


class TestFaultTolerance:
    """The sweep fabric's chaos suite: crashing, hanging and dying
    workers must land as quarantined records, not torn-down sweeps."""

    def chaos_runner(self, **kwargs):
        from tests.helpers import chaos_execute_spec

        kwargs.setdefault("jobs", 2)
        return SweepRunner(execute=chaos_execute_spec, **kwargs)

    @pytest.mark.chaos
    def test_error_is_quarantined(self, tmp_path):
        cache = RunCache(tmp_path)
        specs = [
            tiny_flows_spec(label="boom", **{"meta.chaos": "raise"}),
            tiny_flows_spec(label="fine", seed=3),
        ]
        records = self.chaos_runner(cache=cache).run(specs)
        by_label = {r.spec.label: r for r in records}
        assert by_label["fine"].ok
        bad = by_label["boom"]
        assert bad.status == "error" and not bad.ok
        assert bad.error["type"] == "ChaosError"
        assert "injected failure" in bad.error["message"]
        assert "chaos_execute_spec" in bad.error["traceback"]
        # Only the ok cell was cached; the failure is never persisted.
        assert len(cache) == 1
        assert cache.get(specs[1]) is not None

    @pytest.mark.chaos
    def test_raise_policy_reraises_original(self):
        from tests.helpers import ChaosError

        specs = [tiny_flows_spec(**{"meta.chaos": "raise"}),
                 tiny_flows_spec(seed=3)]
        with pytest.raises(ChaosError, match="injected failure"):
            self.chaos_runner(failures="raise").run(specs)

    @pytest.mark.chaos
    def test_serial_path_quarantines_too(self):
        records = self.chaos_runner(jobs=1).run(
            [tiny_flows_spec(**{"meta.chaos": "raise"}),
             tiny_flows_spec(seed=3)]
        )
        assert [r.status for r in records] == ["error", "ok"]

    @pytest.mark.chaos
    def test_hung_spec_times_out(self):
        specs = [
            tiny_flows_spec(label="stuck", **{"meta.chaos": "hang"}),
            tiny_flows_spec(label="fine", seed=3),
        ]
        records = self.chaos_runner(spec_timeout=1.0).run(specs)
        by_label = {r.spec.label: r for r in records}
        assert by_label["fine"].ok
        stuck = by_label["stuck"]
        assert stuck.status == "timeout"
        assert stuck.wall_time_s >= 1.0
        assert "wall-clock budget" in stuck.error["message"]

    @pytest.mark.chaos
    def test_dead_worker_is_retried(self, tmp_path):
        specs = [
            tiny_flows_spec(label="flaky", **{"meta.chaos": "die_once",
                                              "meta.flag_dir": str(tmp_path)}),
            tiny_flows_spec(label="fine", seed=3),
        ]
        records = self.chaos_runner(retries=3).run(specs)
        by_label = {r.spec.label: r for r in records}
        assert by_label["fine"].ok
        assert by_label["flaky"].ok
        assert by_label["flaky"].attempts >= 2

    @pytest.mark.chaos
    def test_retries_exhausted_becomes_error(self):
        specs = [
            tiny_flows_spec(label="d1", **{"meta.chaos": "die"}),
            tiny_flows_spec(label="d2", seed=3, **{"meta.chaos": "die"}),
        ]
        records = self.chaos_runner(retries=1).run(specs)
        assert all(r.status == "error" for r in records)
        assert all("worker lost" in r.error["message"] for r in records)
        assert all(r.attempts == 2 for r in records)

    @pytest.mark.chaos
    def test_acceptance_mixed_failure_sweep(self, tmp_path):
        """The ISSUE acceptance scenario: one crashing spec, one hanging
        spec and one healthy spec yield exactly one error, one timeout
        and one ok record — without raising."""
        journal_path = tmp_path / "journal.jsonl"
        specs = [
            tiny_flows_spec(label="crash", **{"meta.chaos": "raise"}),
            tiny_flows_spec(label="hang", seed=3, **{"meta.chaos": "hang"}),
            tiny_flows_spec(label="ok", seed=4),
        ]
        runner = self.chaos_runner(cache=RunCache(tmp_path / "cache"),
                                   spec_timeout=1.5, journal=str(journal_path))
        records = runner.run(specs)
        statuses = {r.spec.label: r.status for r in records}
        assert statuses == {"crash": "error", "hang": "timeout", "ok": "ok"}
        # The journal landed one cell per spec, last status wins.
        outcomes = SweepJournal.load(journal_path)
        assert {e["status"] for e in outcomes.values()} == \
            {"error", "timeout", "ok"}

    @pytest.mark.chaos
    def test_resume_reruns_only_failed_cells(self, tmp_path):
        """A resumed sweep re-runs error/timeout cells only and matches
        an uninterrupted sweep record-for-record."""
        journal_path = tmp_path / "journal.jsonl"
        cache = RunCache(tmp_path / "cache")
        # Chaos twins share spec hashes with the clean specs below
        # (meta is excluded from identity).
        chaos_specs = [
            tiny_flows_spec(label="a", **{"meta.chaos": "raise"}),
            tiny_flows_spec(label="b", seed=3, **{"meta.chaos": "raise"}),
            tiny_flows_spec(label="c", seed=4),
        ]
        clean_specs = [tiny_flows_spec(label="a"),
                       tiny_flows_spec(label="b", seed=3),
                       tiny_flows_spec(label="c", seed=4)]
        first = self.chaos_runner(cache=cache,
                                  journal=str(journal_path)).run(chaos_specs)
        assert [r.status for r in first] == ["error", "error", "ok"]

        to_run, skipped, _ = plan_resume(clean_specs, journal_path)
        assert [s.label for s in to_run] == ["a", "b"]   # failed cells only
        assert skipped == [clean_specs[2].spec_hash]

        executed = []
        resumed = SweepRunner(
            jobs=2, cache=cache, journal=str(journal_path),
            progress=lambda r, d, t: executed.append((r.label, r.cached)),
        ).run(clean_specs)
        # The previously-ok cell came back from the cache, bit-identical.
        assert dict(executed)["c"] is True
        assert resumed[2].to_json() == first[2].to_json()

        # Record-for-record identical to a sweep that never failed.
        pristine = SweepRunner(jobs=2,
                               cache=RunCache(tmp_path / "c2")).run(clean_specs)

        def canonical(record):
            data = record.to_json()
            data.pop("wall_time_s")      # the only nondeterministic field
            return data

        assert [canonical(r) for r in resumed] == \
            [canonical(r) for r in pristine]
        assert all(r.ok for r in resumed)

    @pytest.mark.chaos
    def test_journal_survives_truncation(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = SweepJournal(journal_path)
        journal.open(2)
        record = execute_spec(tiny_flows_spec())
        journal.record(record)
        journal.close()
        # A killed sweep leaves a torn final line; load() must shrug it off.
        with journal_path.open("a") as handle:
            handle.write('{"kind": "cell", "spec_hash": "tr')
        outcomes = SweepJournal.load(journal_path)
        assert outcomes[record.spec_hash]["status"] == "ok"

    @pytest.mark.chaos
    def test_fault_telemetry_counters(self, tmp_path):
        from repro.obs import Telemetry
        from repro.obs.sinks import MemorySink

        sink = MemorySink()
        tel = Telemetry(run_id="chaos-sweep", sink=sink)
        self.chaos_runner(telemetry=tel, spec_timeout=1.0).run([
            tiny_flows_spec(label="boom", **{"meta.chaos": "raise"}),
            tiny_flows_spec(label="stuck", seed=3, **{"meta.chaos": "hang"}),
            tiny_flows_spec(label="fine", seed=4),
        ])
        tel.flush_counters()
        records = sink.drain()
        counters = {r["name"]: r["value"] for r in records
                    if r["kind"] == "counter"}
        assert counters.get("sweep.fault.quarantined") == 2
        assert counters.get("sweep.fault.timeouts") == 1
        events = [r["name"] for r in records if r["kind"] == "event"]
        assert "sweep.spec_failed" in events
        spans = [r["name"] for r in records if r["kind"] == "span"]
        assert "sweep.watchdog" in spans
