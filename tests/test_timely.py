"""TIMELY: RTT gradients, Tlow/Thigh guards, HAI mode."""

import pytest

from repro.core.timely import Timely
from repro.sim.units import US, gbps

from tests.helpers import FakeFlow, plain_ack


def make_timely(env, **kw):
    cc = Timely(env, **kw)
    flow = FakeFlow()
    cc.install(flow)
    return cc, flow


def feed_rtt(cc, flow, rtt, now):
    """Deliver an ACK whose echoed timestamp implies the given RTT."""
    cc.on_ack(flow, plain_ack(0, 1000, ts_tx=now - rtt), now=now)


class TestBasics:
    def test_line_rate_start(self, env):
        cc, flow = make_timely(env)
        assert flow.rate == pytest.approx(env.line_rate)
        assert flow.window is None

    def test_first_rtt_only_primes(self, env):
        cc, flow = make_timely(env)
        feed_rtt(cc, flow, 10 * US, now=100 * US)
        assert flow.rate == pytest.approx(env.line_rate)

    def test_default_thresholds_scale_with_t(self, env):
        cc = Timely(env)
        assert cc.t_low == pytest.approx(3.8 * env.base_rtt)
        assert cc.t_high == pytest.approx(38 * env.base_rtt)


class TestRegimes:
    def test_below_tlow_additive_increase(self, env):
        cc, flow = make_timely(env, delta=gbps(0.5))
        flow.rate = env.line_rate / 2
        feed_rtt(cc, flow, 10 * US, now=100 * US)
        feed_rtt(cc, flow, 11 * US, now=200 * US)       # below t_low=34us
        assert flow.rate == pytest.approx(env.line_rate / 2 + gbps(0.5))

    def test_above_thigh_multiplicative_decrease(self, env):
        cc, flow = make_timely(env, beta=0.8)
        huge = 2 * cc.t_high
        feed_rtt(cc, flow, huge, now=1000 * US)
        feed_rtt(cc, flow, huge, now=2000 * US)
        expected = env.line_rate * (1 - 0.8 * (1 - cc.t_high / huge))
        assert flow.rate == pytest.approx(expected)

    def test_positive_gradient_decreases(self, env):
        cc, flow = make_timely(env)
        base = 5 * env.base_rtt                          # between t_low/t_high
        feed_rtt(cc, flow, base, now=1000 * US)
        feed_rtt(cc, flow, base + 3 * US, now=2000 * US)  # rising RTT
        assert flow.rate < env.line_rate

    def test_negative_gradient_increases(self, env):
        cc, flow = make_timely(env, delta=gbps(0.5))
        flow.rate = env.line_rate / 2
        base = 10 * env.base_rtt
        feed_rtt(cc, flow, base, now=1000 * US)
        feed_rtt(cc, flow, base - 2 * US, now=2000 * US)  # falling RTT
        assert flow.rate > env.line_rate / 2

    def test_hai_after_five_negative_gradients(self, env):
        cc, flow = make_timely(env, delta=gbps(0.1), hai_threshold=5)
        flow.rate = env.line_rate / 10
        rtt = 10 * env.base_rtt
        feed_rtt(cc, flow, rtt, now=1000 * US)
        increments = []
        for k in range(7):
            rtt -= 100.0                                  # keep falling
            before = flow.rate
            feed_rtt(cc, flow, rtt, now=(2000 + k * 100) * US)
            increments.append(flow.rate - before)
        # Steps 5+ are in hyper mode: 5x the additive delta.
        assert increments[-1] == pytest.approx(5 * gbps(0.1))
        assert increments[0] == pytest.approx(gbps(0.1))

    def test_rate_clamped_to_line(self, env):
        cc, flow = make_timely(env, delta=gbps(50))
        feed_rtt(cc, flow, 10 * US, now=1000 * US)
        feed_rtt(cc, flow, 10 * US, now=2000 * US)
        assert flow.rate <= env.line_rate

    def test_min_rate_floor(self, env):
        cc, flow = make_timely(env, min_rate=gbps(0.1))
        huge = 10 * cc.t_high
        for k in range(50):
            feed_rtt(cc, flow, huge, now=(1 + k) * 1000 * US)
        assert flow.rate >= gbps(0.1) - 1e-12

    def test_nonpositive_rtt_ignored(self, env):
        cc, flow = make_timely(env)
        cc.on_ack(flow, plain_ack(0, 1000, ts_tx=500 * US), now=100 * US)
        assert cc.prev_rtt is None
