"""The examples must run: they are the library's front door."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "slowdown" in out
    assert "drops: 0" in out


def test_examples_exist_and_are_documented():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(("#!", '"""', "'''")) or \
            '"""' in text.splitlines()[1], script.name


def test_custom_cc_example_registers_and_runs(capsys):
    # The example registers a scheme in the global registry; guard against
    # double registration when tests re-import it.
    from repro.core.registry import available_schemes
    if "naive-aimd" in available_schemes():
        pytest.skip("example already imported in this session")
    runpy.run_path(str(EXAMPLES / "custom_cc.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "naive-aimd" in out
    assert "hpcc" in out
