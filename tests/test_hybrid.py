"""The hybrid backend: equivalence pins, mixed-mode agreement, chaos.

The suite is the co-simulation's contract, in three tiers:

* **degenerate bit-identity** — an all-foreground hybrid run must be
  *bit-identical* (events processed + FCT digest) to the pure packet
  backend, and an all-background run to the pure fluid backend.  This
  holds by construction (degenerate partitions delegate wholesale), so
  any drift here means the delegation or the None-gated coupling hooks
  leaked into a pure path.
* **bounded mixed-mode agreement** — with a real split, each foreground
  flow's FCT/goodput must agree with the pure packet run within the
  same tolerances ``tests/test_fluid.py`` grants the fluid model
  (slowdowns rel=0.30, shares abs=0.05), on the 2-flow, incast and
  fig11 FatTree scenarios.
* **fabric integration** — hybrid cells flow through the sweep
  quarantine/watchdog/resume machinery and the dynamics timelines
  exactly like the pure backends.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.dynamics import FailLink, FlapLink, RestoreLink, Timeline
from repro.hybrid import DEFAULT_SELECTOR, parse_foreground, partition_specs
from repro.runner import (
    CcChoice,
    RunCache,
    RunRecord,
    ScenarioSpec,
    SweepRunner,
    execute_spec,
    plan_resume,
)
from repro.runner.execute import backend_programs, validate_specs
from repro.sim.flow import FlowSpec
from repro.sim.units import MS, US

BASE_RTT = 9 * US

#: The documented fluid-vs-packet tolerances (tests/test_fluid.py);
#: mixed-mode foreground agreement is held to the same bar.
SLOWDOWN_REL = 0.30
SHARE_ABS = 0.05


def two_flow_spec(backend: str = "hybrid", **updates) -> ScenarioSpec:
    """Two 600KB flows into one star receiver (test_fluid's pair)."""
    spec = ScenarioSpec(
        program="flows",
        topology="star",
        topology_params={"n_hosts": 5, "host_rate": "10Gbps",
                         "link_delay": "1us"},
        workload={"flows": [[0, 4, 600_000, 0.0, "a"],
                            [1, 4, 600_000, 0.0, "b"]],
                  "deadline": 50e6},
        config={"base_rtt": BASE_RTT},
        backend=backend,
        label="hybrid-pair",
    )
    return spec.replaced(**updates) if updates else spec


def incast_spec(backend: str = "hybrid", **updates) -> ScenarioSpec:
    """Four 200KB senders into one star receiver."""
    spec = ScenarioSpec(
        program="flows",
        topology="star",
        topology_params={"n_hosts": 5, "host_rate": "10Gbps",
                         "link_delay": "1us"},
        workload={"flows": [[i, 4, 200_000, 0.0, f"s{i}"]
                            for i in range(4)],
                  "deadline": 50e6},
        config={"base_rtt": BASE_RTT},
        backend=backend,
        label="hybrid-incast",
    )
    return spec.replaced(**updates) if updates else spec


def load_spec(backend: str = "hybrid", **updates) -> ScenarioSpec:
    spec = ScenarioSpec(
        program="load",
        topology="star",
        topology_params={"n_hosts": 4, "host_rate": "10Gbps"},
        workload={"cdf": "fbhadoop", "size_scale": 0.1,
                  "load": 0.2, "n_flows": 15},
        config={"base_rtt": BASE_RTT},
        seed=2,
        backend=backend,
        label="hybrid-load",
    )
    return spec.replaced(**updates) if updates else spec


def foreground(spec: ScenarioSpec, selector) -> ScenarioSpec:
    return spec.replaced(**{"workload.foreground": selector})


def fct_digest(record: RunRecord) -> str:
    """The FCT payload, canonicalized — the bit-identity fingerprint."""
    payload = json.dumps(record.fct, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def slowdowns_by_id(record: RunRecord) -> dict[int, float]:
    return {r.spec.flow_id: r.slowdown for r in record.fct_records()}


def goodput_by_id(record: RunRecord) -> dict[int, float]:
    """Per-flow goodput as a fraction of its solo-ideal rate.

    ``ideal/fct`` normalizes each flow against the uncontended run, so
    the comparison is per-flow (the ISSUE's *foreground* contract) and
    not skewed by what the other half's flows did.
    """
    return {r.spec.flow_id: r.ideal / r.fct for r in record.fct_records()}


# -- the foreground selector -------------------------------------------------------


class TestForegroundSelector:
    def test_parse_all_forms(self):
        assert parse_foreground("all") == {"kind": "all"}
        assert parse_foreground("none") == {"kind": "none"}
        assert parse_foreground("count:3") == {"kind": "count", "n": 3}
        assert parse_foreground("frac:0.25") == {"kind": "frac", "x": 0.25}
        assert parse_foreground("tag:a,b") == {"kind": "tag",
                                               "tags": ["a", "b"]}

    @pytest.mark.parametrize("text", [
        "", "most", "count:", "count:-1", "count:x",
        "frac:1.5", "frac:-0.1", "frac:", "tag:", "tag:,",
    ])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_foreground(text)

    def test_default_selector_is_ten_percent(self):
        assert DEFAULT_SELECTOR == {"kind": "frac", "x": 0.1}

    def test_count_picks_earliest_starters(self):
        specs = [
            FlowSpec(1, 0, 3, 1000, start_time=5.0),
            FlowSpec(2, 1, 3, 1000, start_time=0.0),
            FlowSpec(3, 2, 3, 1000, start_time=2.0),
        ]
        fg, bg = partition_specs(specs, {"kind": "count", "n": 2})
        assert sorted(fs.flow_id for fs in fg) == [2, 3]
        assert [fs.flow_id for fs in bg] == [1]
        # Input order is preserved inside each half.
        assert [fs.flow_id for fs in fg] == [2, 3]

    def test_tag_selector_membership(self):
        specs = [FlowSpec(1, 0, 3, 1000, 0.0, tag="web"),
                 FlowSpec(2, 1, 3, 1000, 0.0, tag="batch")]
        fg, bg = partition_specs(specs, {"kind": "tag", "tags": ["web"]})
        assert [fs.flow_id for fs in fg] == [1]
        assert [fs.flow_id for fs in bg] == [2]

    def test_frac_rounds_to_population(self):
        specs = [FlowSpec(i, 0, 3, 1000, float(i)) for i in range(1, 11)]
        fg, _ = partition_specs(specs, {"kind": "frac", "x": 0.25})
        assert len(fg) == 2   # floor(10 * 0.25) with a min of... exact split
        fg_all, bg_none = partition_specs(specs, {"kind": "all"})
        assert len(fg_all) == 10 and not bg_none

    def test_selector_changes_spec_hash(self):
        base = two_flow_spec()
        tagged = foreground(base, {"kind": "count", "n": 1})
        assert tagged.spec_hash != base.spec_hash


# -- backend dispatch --------------------------------------------------------------


class TestBackendDispatch:
    def test_hybrid_is_a_known_backend(self):
        table = backend_programs("hybrid")
        assert {"load", "flows"} <= set(table)

    def test_unknown_backend_raises_with_known_list(self):
        with pytest.raises(ValueError, match="fluid, hybrid, packet"):
            backend_programs("quantum")

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            two_flow_spec(backend="quantum")

    def test_validate_specs_rejects_smuggled_backend(self):
        # A spec whose backend was mutated after construction (the
        # validation bypass a pickle/json round-trip of a future schema
        # could produce) must still be caught at sweep submission.
        spec = two_flow_spec()
        object.__setattr__(spec, "backend", "quantum")
        with pytest.raises(ValueError, match="backend"):
            validate_specs([spec])

    def test_chaos_helper_guards_backend(self):
        from tests.helpers import chaos_execute_spec

        spec = two_flow_spec()
        object.__setattr__(spec, "backend", "quantum")
        with pytest.raises(ValueError, match="unknown backend"):
            chaos_execute_spec(spec)

    def test_hybrid_hash_distinct_from_pure(self):
        hashes = {two_flow_spec(backend=b).spec_hash
                  for b in ("packet", "fluid", "hybrid")}
        assert len(hashes) == 3


# -- degenerate bit-identity -------------------------------------------------------


class TestDegenerateEquivalence:
    """All-foreground == pure packet; all-background == pure fluid."""

    def assert_identical(self, hybrid: RunRecord, pure: RunRecord):
        assert hybrid.events_processed == pure.events_processed
        assert fct_digest(hybrid) == fct_digest(pure)
        assert hybrid.duration_ns == pure.duration_ns
        assert hybrid.completed == pure.completed

    def test_all_foreground_matches_packet_flows(self):
        hybrid = execute_spec(foreground(two_flow_spec(), {"kind": "all"}))
        pure = execute_spec(two_flow_spec(backend="packet"))
        assert hybrid.extras["hybrid_mode"] == "all_foreground"
        assert hybrid.spec.backend == "hybrid"
        self.assert_identical(hybrid, pure)

    def test_all_background_matches_fluid_flows(self):
        hybrid = execute_spec(foreground(two_flow_spec(), {"kind": "none"}))
        pure = execute_spec(two_flow_spec(backend="fluid"))
        assert hybrid.extras["hybrid_mode"] == "all_background"
        assert hybrid.spec.backend == "hybrid"
        self.assert_identical(hybrid, pure)

    def test_all_foreground_matches_packet_load(self):
        hybrid = execute_spec(foreground(load_spec(), {"kind": "all"}))
        pure = execute_spec(load_spec(backend="packet"))
        self.assert_identical(hybrid, pure)

    def test_all_background_matches_fluid_load(self):
        hybrid = execute_spec(foreground(load_spec(), {"kind": "none"}))
        pure = execute_spec(load_spec(backend="fluid"))
        self.assert_identical(hybrid, pure)

    def test_all_background_matches_fluid_fig11_cell(self):
        from repro.experiments import figure11
        from repro.runner import CcChoice

        [spec] = figure11.scenarios(
            scale="bench", cases=("50%",),
            schemes=(CcChoice("hpcc", label="HPCC"),),
        )
        hybrid = execute_spec(foreground(
            spec.replaced(backend="hybrid"), {"kind": "none"}))
        pure = execute_spec(spec.replaced(backend="fluid"))
        self.assert_identical(hybrid, pure)

    def test_delegated_record_roundtrips_with_hybrid_spec(self):
        record = execute_spec(foreground(two_flow_spec(), {"kind": "all"}))
        back = RunRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert back.spec.backend == "hybrid"
        assert back.spec == record.spec
        assert back.fct == record.fct


# -- bounded mixed-mode agreement --------------------------------------------------


class TestMixedModeAgreement:
    """A real split must keep foreground flows within the fluid bars."""

    @pytest.mark.parametrize("cc", ["hpcc", "dctcp"])
    def test_two_flow_foreground_slowdown_agrees(self, cc):
        hybrid = execute_spec(foreground(
            two_flow_spec(cc=CcChoice(cc)), {"kind": "count", "n": 1}))
        packet = execute_spec(two_flow_spec(backend="packet",
                                            cc=CcChoice(cc)))
        assert hybrid.extras["hybrid_mode"] == "mixed"
        assert hybrid.extras["foreground_flows"] == 1
        assert hybrid.extras["background_flows"] == 1
        assert hybrid.extras["hybrid_epochs"] > 0
        assert hybrid.completed
        [fg_id] = hybrid.extras["foreground_flow_ids"]
        h, p = slowdowns_by_id(hybrid), slowdowns_by_id(packet)
        assert h[fg_id] == pytest.approx(p[fg_id], rel=SLOWDOWN_REL)

    def test_two_flow_foreground_goodput_agrees(self):
        hybrid = execute_spec(foreground(two_flow_spec(),
                                         {"kind": "count", "n": 1}))
        packet = execute_spec(two_flow_spec(backend="packet"))
        [fg_id] = hybrid.extras["foreground_flow_ids"]
        h, p = goodput_by_id(hybrid), goodput_by_id(packet)
        assert h[fg_id] == pytest.approx(p[fg_id], abs=SHARE_ABS)

    def test_incast_foreground_agrees(self):
        hybrid = execute_spec(foreground(incast_spec(),
                                         {"kind": "count", "n": 2}))
        packet = execute_spec(incast_spec(backend="packet"))
        assert hybrid.extras["foreground_flows"] == 2
        assert hybrid.completed
        fg_ids = hybrid.extras["foreground_flow_ids"]
        h_slow, p_slow = slowdowns_by_id(hybrid), slowdowns_by_id(packet)
        h_mean = sum(h_slow[i] for i in fg_ids) / len(fg_ids)
        p_mean = sum(p_slow[i] for i in fg_ids) / len(fg_ids)
        assert h_mean == pytest.approx(p_mean, rel=SLOWDOWN_REL)
        h_good, p_good = goodput_by_id(hybrid), goodput_by_id(packet)
        for fid in fg_ids:
            assert h_good[fid] == pytest.approx(p_good[fid], abs=SHARE_ABS)

    def test_fig11_fattree_foreground_agrees(self):
        """A shrunken fig11 FatTree cell: 10% packet foreground."""
        from repro.experiments import figure11
        from repro.runner import CcChoice

        [spec] = figure11.scenarios(
            scale="bench", cases=("50%",),
            schemes=(CcChoice("hpcc", label="HPCC"),),
            overrides={"n_flows": 60},
        )
        hybrid = execute_spec(foreground(
            spec.replaced(backend="hybrid"), {"kind": "frac", "x": 0.1}))
        packet = execute_spec(spec)
        assert hybrid.extras["hybrid_mode"] == "mixed"
        fg_ids = hybrid.extras["foreground_flow_ids"]
        assert len(fg_ids) == 6
        h_slow, p_slow = slowdowns_by_id(hybrid), slowdowns_by_id(packet)
        h_mean = sum(h_slow[i] for i in fg_ids) / len(fg_ids)
        p_mean = sum(p_slow[i] for i in fg_ids) / len(fg_ids)
        assert h_mean == pytest.approx(p_mean, rel=SLOWDOWN_REL)
        # The whole population is present exactly once in the merged FCT.
        assert sorted(r["flow_id"] for r in hybrid.fct) == \
            sorted(r["flow_id"] for r in packet.fct)

    def test_merged_record_shape(self):
        spec = foreground(two_flow_spec(
            measure={"sample_interval": 10_000.0, "windows": True},
        ), {"kind": "count", "n": 1})
        record = execute_spec(spec)
        # Merged FCT is finish-sorted across both halves.
        finishes = [r["finish"] for r in record.fct]
        assert finishes == sorted(finishes)
        assert len(record.fct) == 2
        # Queue samples come from the packet half's switch labels.
        assert record.queues
        # Final windows cover both halves.
        assert set(record.final_windows()) == {1, 2}
        assert record.events_processed > 0
        assert record.extras["fluid_steps"] > 0

    def test_deterministic(self):
        spec = foreground(two_flow_spec(), {"kind": "count", "n": 1})
        first = execute_spec(spec)
        second = execute_spec(spec)
        assert first.to_json() == second.to_json() or (
            fct_digest(first) == fct_digest(second)
            and first.events_processed == second.events_processed
        )


# -- telemetry and decision taps ---------------------------------------------------


class TestHybridTelemetry:
    def test_probes_cover_both_halves(self):
        spec = foreground(two_flow_spec(), {"kind": "count", "n": 1})
        record = execute_spec(spec, telemetry=True)
        names = {event.get("name", "") for event in record.telemetry or []}
        # The SimProbe and FluidProbe streams both landed.
        assert any(n.startswith("sim.") for n in names), names
        assert any(n.startswith("fluid.") for n in names), names

    def test_decision_tap_sees_foreground_flows(self):
        from repro.obs.divergence import by_flow, decision_records

        spec = foreground(two_flow_spec(), {"kind": "count", "n": 1})
        record = execute_spec(spec, decisions=True)
        flows = by_flow(decision_records(record.telemetry or []))
        [fg_id] = record.extras["foreground_flow_ids"]
        assert fg_id in flows            # packet-half CC decisions
        assert len(flows[fg_id]) > 0


# -- chaos: the sweep fabric with hybrid cells -------------------------------------


def chaos_runner(**kwargs):
    from tests.helpers import chaos_execute_spec

    kwargs.setdefault("jobs", 2)
    return SweepRunner(execute=chaos_execute_spec, **kwargs)


def tiny_hybrid_spec(**updates) -> ScenarioSpec:
    spec = foreground(
        two_flow_spec(**{"workload.flows": [[0, 4, 60_000, 0.0, "a"],
                                            [1, 4, 60_000, 0.0, "b"]],
                         "workload.deadline": 5e6}),
        {"kind": "count", "n": 1},
    )
    return spec.replaced(**updates) if updates else spec


class TestHybridChaos:
    """Hybrid cells through the PR 8 quarantine/watchdog/resume path."""

    @pytest.mark.chaos
    def test_error_and_ok_cells_quarantine(self, tmp_path):
        cache = RunCache(tmp_path)
        specs = [
            tiny_hybrid_spec(label="boom", **{"meta.chaos": "raise"}),
            tiny_hybrid_spec(label="fine", seed=3),
        ]
        records = chaos_runner(cache=cache).run(specs)
        by_label = {r.spec.label: r for r in records}
        assert by_label["fine"].ok
        assert by_label["fine"].spec.backend == "hybrid"
        bad = by_label["boom"]
        assert bad.status == "error" and not bad.ok
        assert bad.error["type"] == "ChaosError"
        # Only the healthy hybrid cell was persisted.
        assert len(cache) == 1

    @pytest.mark.chaos
    def test_hung_hybrid_cell_times_out(self):
        specs = [
            tiny_hybrid_spec(label="stuck", **{"meta.chaos": "hang"}),
            tiny_hybrid_spec(label="fine", seed=3),
        ]
        records = chaos_runner(spec_timeout=1.0).run(specs)
        by_label = {r.spec.label: r for r in records}
        assert by_label["fine"].ok
        assert by_label["stuck"].status == "timeout"

    @staticmethod
    def dynamics_spec(timeline) -> ScenarioSpec:
        """600KB flows so the 200us cut lands mid-flight of the fg flow."""
        return foreground(
            two_flow_spec(dynamics=timeline, **{"config.rto": 300 * US}),
            {"kind": "count", "n": 1},
        )

    @pytest.mark.chaos
    def test_fail_link_timeline_lands_ok(self):
        """A hybrid cell under a fail/restore timeline completes and
        records the fired events once (the packet driver's report)."""
        timeline = Timeline([FailLink(at=0.2 * MS, a=0, b=5),
                             RestoreLink(at=0.6 * MS, a=0, b=5)])
        [record] = chaos_runner(jobs=1).run([self.dynamics_spec(timeline)])
        assert record.ok
        events = record.link_events()
        assert [e["type"] for e in events] == ["fail_link", "restore_link"]
        assert all(e["fired"] for e in events)
        assert record.completed

    @pytest.mark.chaos
    def test_flap_link_timeline_lands_ok(self):
        timeline = Timeline([FlapLink(at=0.2 * MS, a=0, b=5,
                                      down_time=0.1 * MS, period=0.3 * MS,
                                      count=2)])
        [record] = chaos_runner(jobs=1).run([self.dynamics_spec(timeline)])
        assert record.ok
        assert record.completed
        assert len(record.link_events()) == 4   # 2 fail + 2 restore

    @pytest.mark.chaos
    def test_hybrid_resume_determinism(self, tmp_path):
        """A resumed hybrid sweep matches an uninterrupted one."""
        journal_path = tmp_path / "journal.jsonl"
        cache = RunCache(tmp_path / "cache")
        chaos_specs = [
            tiny_hybrid_spec(label="a", **{"meta.chaos": "raise"}),
            tiny_hybrid_spec(label="b", seed=3),
        ]
        clean_specs = [tiny_hybrid_spec(label="a"),
                       tiny_hybrid_spec(label="b", seed=3)]
        first = chaos_runner(cache=cache,
                             journal=str(journal_path)).run(chaos_specs)
        assert [r.status for r in first] == ["error", "ok"]

        to_run, skipped, _ = plan_resume(clean_specs, journal_path)
        assert [s.label for s in to_run] == ["a"]
        assert skipped == [clean_specs[1].spec_hash]

        resumed = SweepRunner(jobs=2, cache=cache,
                              journal=str(journal_path)).run(clean_specs)
        pristine = SweepRunner(jobs=2,
                               cache=RunCache(tmp_path / "c2")).run(clean_specs)

        def canonical(record):
            data = record.to_json()
            data.pop("wall_time_s")
            return data

        assert [canonical(r) for r in resumed] == \
            [canonical(r) for r in pristine]
        assert all(r.ok and r.spec.backend == "hybrid" for r in resumed)
