"""Shared fixtures for algorithm unit tests."""

from __future__ import annotations

import pytest

from repro.core.base import CcEnv
from repro.sim.engine import Simulator
from repro.sim.units import US, gbps

from tests.helpers import FakeFlow


@pytest.fixture
def env():
    """100Gbps NIC, T = 9us -> Winit = 112.5KB."""
    return CcEnv(sim=Simulator(), line_rate=gbps(100), base_rtt=9 * US,
                 mtu=1000, header=90)


@pytest.fixture
def flow():
    return FakeFlow()
