"""WRED ECN marking: thresholds, ramp, rate scaling."""

import pytest

from repro.sim.ecn import EcnConfig, EcnMarker, EcnPolicy
from repro.sim.units import KB, gbps


class TestEcnConfig:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            EcnConfig(kmin=400, kmax=100)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EcnConfig(kmin=-1, kmax=100)

    def test_bad_pmax_rejected(self):
        with pytest.raises(ValueError):
            EcnConfig(kmin=0, kmax=10, pmax=1.5)


class TestMarking:
    def test_below_kmin_never_marks(self):
        marker = EcnMarker(EcnConfig(100 * KB, 400 * KB, 0.2), seed=1)
        assert not any(marker.should_mark(100 * KB) for _ in range(200))

    def test_above_kmax_always_marks(self):
        marker = EcnMarker(EcnConfig(100 * KB, 400 * KB, 0.2), seed=1)
        assert all(marker.should_mark(400 * KB) for _ in range(200))

    def test_ramp_probability_midpoint(self):
        cfg = EcnConfig(100 * KB, 400 * KB, 0.2)
        marker = EcnMarker(cfg, seed=1)
        mid = 250 * KB
        assert marker.marking_probability(mid) == pytest.approx(0.1)
        n = 20_000
        hits = sum(marker.should_mark(mid) for _ in range(n))
        assert hits / n == pytest.approx(0.1, abs=0.02)

    def test_probability_monotone_in_queue(self):
        cfg = EcnConfig(100 * KB, 400 * KB, 0.2)
        marker = EcnMarker(cfg, seed=1)
        probs = [marker.marking_probability(q) for q in range(0, 500 * KB, 10 * KB)]
        assert probs == sorted(probs)

    def test_step_marking_kmin_equals_kmax(self):
        # DCTCP-style single threshold.
        marker = EcnMarker(EcnConfig(30 * KB, 30 * KB, 1.0), seed=1)
        assert not marker.should_mark(30 * KB)
        assert marker.should_mark(30 * KB + 1)

    def test_deterministic_given_seed(self):
        cfg = EcnConfig(0, 100 * KB, 0.5)
        a = EcnMarker(cfg, seed=42)
        b = EcnMarker(cfg, seed=42)
        q = 50 * KB
        assert [a.should_mark(q) for _ in range(50)] == [
            b.should_mark(q) for _ in range(50)
        ]


class TestEcnPolicy:
    def test_scaling_matches_paper(self):
        # Kmin=100KB at 25Gbps -> 400KB at 100Gbps (Section 5.1).
        policy = EcnPolicy(kmin=100 * KB, kmax=400 * KB, pmax=0.2,
                           ref_rate=gbps(25))
        cfg = policy.for_rate(gbps(100))
        assert cfg.kmin == 400 * KB
        assert cfg.kmax == 1600 * KB
        assert cfg.pmax == 0.2

    def test_downscaling(self):
        policy = EcnPolicy(kmin=100 * KB, kmax=400 * KB, pmax=0.2,
                           ref_rate=gbps(25))
        cfg = policy.for_rate(gbps(10))
        assert cfg.kmin == 40 * KB
        assert cfg.kmax == 160 * KB
