"""The discrete-event engine: ordering, cancellation, timers, periodic tasks."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import PeriodicTask, SimulationError, Simulator, Timer


def live_heap_count(sim):
    """Brute-force count of non-tombstoned heap entries."""
    return sum(1 for entry in sim._heap if entry[2] is not None)


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(10.0, out.append, "late")
        sim.schedule(5.0, out.append, "early")
        sim.run()
        assert out == ["early", "late"]

    def test_fifo_for_ties(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "first")
        sim.schedule(1.0, out.append, "second")
        sim.run()
        assert out == ["first", "second"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []
        def outer():
            out.append("outer")
            sim.schedule(1.0, out.append, "inner")
        sim.schedule(1.0, outer)
        sim.run()
        assert out == ["outer", "inner"]
        assert sim.now == 2.0

    def test_run_until_stops_clock_at_until(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 50.0
        assert sim.pending == 1
        sim.run()
        assert sim.now == 100.0

    def test_run_until_with_empty_queue_advances(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events(self):
        sim = Simulator()
        out = []
        for i in range(5):
            sim.schedule(float(i + 1), out.append, i)
        sim.run(max_events=3)
        assert out == [0, 1, 2]

    def test_stop(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: (out.append(1), sim.stop()))
        sim.schedule(2.0, out.append, 2)
        sim.run()
        assert out == [1]

    def test_stop_in_plain_run(self):
        """stop() also exits the fast-path loop (no until/max_events)."""
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: (out.append(1), sim.stop()))
        sim.schedule(2.0, out.append, 2)
        sim.run()
        assert out == [1]
        sim.run()
        assert out == [1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        out = []
        event = sim.schedule(1.0, out.append, "cancelled")
        sim.schedule(2.0, out.append, "kept")
        sim.cancel(event)
        sim.run()
        assert out == ["kept"]

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(event)
        assert sim.pending == 1

    def test_cancel_after_run_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(event)          # already consumed: no-op
        assert sim.pending == 0

    def test_is_scheduled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert Simulator.is_scheduled(event)
        sim.cancel(event)
        assert not Simulator.is_scheduled(event)
        assert not Simulator.is_scheduled(None)

    def test_pending_counter_matches_brute_force(self):
        """The O(1) live counter stays exact through mixed
        schedule/cancel/run sequences (regression for the counter refactor)."""
        import random

        rng = random.Random(42)
        sim = Simulator()
        events = []
        for step in range(500):
            action = rng.random()
            if action < 0.5 or not events:
                events.append(sim.schedule(rng.uniform(0, 100.0), lambda: None))
            elif action < 0.8:
                sim.cancel(events.pop(rng.randrange(len(events))))
            else:
                # Double-cancel must be a no-op on the counter.
                victim = events[rng.randrange(len(events))]
                sim.cancel(victim)
                sim.cancel(victim)
            assert sim.pending == live_heap_count(sim)
        sim.run(until=sim.now + 50.0)
        assert sim.pending == live_heap_count(sim)
        sim.run()
        assert sim.pending == 0

    def test_pending_unchanged_by_cancel_inside_own_callback(self):
        sim = Simulator()
        holder = {}
        holder["event"] = sim.schedule(1.0, lambda: sim.cancel(holder["event"]))
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.pending == 0

    def test_periodic_task_self_cancel_keeps_counter_exact(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 3:
                holder["task"].cancel()

        holder = {"task": PeriodicTask(sim, 10.0, tick)}
        sim.run()
        assert len(fired) == 3
        assert sim.pending == live_heap_count(sim) == 0

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.cancel(event)
        assert sim.peek_time() == 5.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None


class TestTimer:
    def test_fires_at_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(10.0)
        sim.run()
        assert fired == [10.0]
        assert not timer.armed

    def test_rearm_later_defers(self):
        """Pushing the deadline back reschedules lazily — the firing still
        happens exactly at the final deadline."""
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(10.0)
        sim.schedule(5.0, timer.arm, 10.0)      # deadline becomes 15.0
        sim.run()
        assert fired == [15.0]

    def test_rearm_is_tombstone_free(self):
        """The per-ACK re-arm pattern leaves no dead heap entries."""
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.arm(100.0)
        for t in range(1, 50):
            sim.at(float(t), timer.arm, 100.0)
        sim.run(until=60.0)
        assert len(sim._heap) <= 2              # the wakeup (+ maybe a defer)

    def test_rearm_earlier_fires_earlier(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(100.0)
        sim.schedule(5.0, timer.arm, 10.0)      # deadline becomes 15.0
        sim.run()
        assert fired == [15.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(10.0)
        sim.schedule(5.0, timer.cancel)
        sim.run()
        assert fired == []
        assert sim.pending == 0

    def test_events_processed_counts_one_per_firing(self):
        """Deferral wakeups are engine bookkeeping: a timer re-armed N
        times still contributes exactly 1 to events_processed, the same
        as the eager cancel-and-reschedule implementation."""
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(10.0)
        for t in (3.0, 6.0, 9.0):
            sim.at(t, timer.arm, 10.0)          # three re-arms, final deadline 19
        sim.run()
        assert fired == [19.0]
        assert sim.events_processed == 3 + 1    # the 3 re-arm events + 1 firing

    def test_cancelled_timer_counts_zero(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.arm(10.0)
        sim.at(5.0, timer.cancel)
        sim.run()
        assert sim.events_processed == 1        # just the cancelling event

    def test_arm_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        timer = Timer(sim, lambda: None)
        with pytest.raises(SimulationError):
            timer.arm_at(5.0)
        with pytest.raises(SimulationError):
            timer.arm(-1.0)

    def test_rearm_from_inside_callback(self):
        sim = Simulator()
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.arm(10.0)

        timer = Timer(sim, cb)
        timer.arm(10.0)
        sim.run()
        assert fired == [10.0, 20.0, 30.0]


class TestPeriodicTask:
    def test_fires_periodically(self):
        sim = Simulator()
        fired = []
        PeriodicTask(sim, 10.0, lambda: fired.append(sim.now))
        sim.run(until=35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 10.0, lambda: fired.append(sim.now))
        sim.schedule(15.0, task.cancel)
        sim.run(until=100.0)
        assert fired == [10.0]

    def test_reset_restarts_period(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 10.0, lambda: fired.append(sim.now))
        sim.schedule(5.0, task.reset)
        sim.run(until=20.0)
        assert fired == [15.0]

    def test_reset_with_new_interval(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 10.0, lambda: fired.append(sim.now))
        sim.schedule(5.0, task.reset, 20.0)
        sim.run(until=50.0)
        assert fired == [25.0, 45.0]

    def test_reset_leaves_no_tombstones(self):
        """DCQCN resets its increase timer on every CNP: resets must not
        flood the heap with dead entries."""
        sim = Simulator()
        task = PeriodicTask(sim, 100.0, lambda: None)
        for t in range(1, 50):
            sim.at(float(t), task.reset)
        sim.run(until=60.0)
        assert len(sim._heap) <= 2

    def test_reset_event_count_matches_eager_semantics(self):
        """A reset task fires once at the deferred time; deferral wakeups
        are compensated out of events_processed."""
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 10.0, lambda: fired.append(sim.now))
        sim.at(5.0, task.reset)
        sim.run(until=16.0)
        assert fired == [15.0]
        assert sim.events_processed == 2        # the reset event + one firing

    def test_reset_cancelled_task_raises(self):
        """reset() must not resurrect a cancelled task (a late CNP racing a
        flow teardown would otherwise revive a dead flow's timer)."""
        sim = Simulator()
        task = PeriodicTask(sim, 10.0, lambda: None)
        task.cancel()
        with pytest.raises(SimulationError):
            task.reset()
        sim.run(until=50.0)
        assert sim.events_processed == 0

    def test_start_delay(self):
        sim = Simulator()
        fired = []
        PeriodicTask(sim, 10.0, lambda: fired.append(sim.now), start_delay=3.0)
        sim.run(until=15.0)
        assert fired == [3.0, 13.0]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)

    def test_reset_non_positive_interval_rejected(self):
        task = PeriodicTask(Simulator(), 10.0, lambda: None)
        with pytest.raises(SimulationError):
            task.reset(0.0)

    def test_cancel_from_inside_callback(self):
        sim = Simulator()
        fired = []
        holder = {}
        def cb():
            fired.append(sim.now)
            holder["task"].cancel()
        holder["task"] = PeriodicTask(sim, 10.0, cb)
        sim.run(until=100.0)
        assert fired == [10.0]


class TestPropertyOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_any_insertion_order_fires_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, fired.append, d)
        sim.run()
        assert fired == sorted(fired)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e5), min_size=1, max_size=20),
        st.floats(min_value=0.0, max_value=1e5),
    )
    def test_run_until_never_passes_deadline_for_clock(self, delays, until):
        sim = Simulator()
        for d in delays:
            sim.schedule(d, lambda: None)
        sim.run(until=until)
        assert sim.now == pytest.approx(until)
