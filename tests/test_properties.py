"""System-level property tests: invariants that must hold for any
workload thrown at a network."""

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.network import Network, NetworkConfig
from repro.sim.units import MS, US
from repro.topology import dumbbell, star


@st.composite
def small_workloads(draw):
    """A handful of flows on a small star, any sizes and offsets."""
    n_hosts = draw(st.integers(3, 6))
    flows = []
    n_flows = draw(st.integers(1, 6))
    for _ in range(n_flows):
        src = draw(st.integers(0, n_hosts - 1))
        dst = draw(st.integers(0, n_hosts - 1).filter(lambda d: d != src))
        size = draw(st.integers(500, 80_000))
        start = draw(st.floats(0, 200_000))
        flows.append((src, dst, size, start))
    return n_hosts, flows


class TestLosslessInvariants:
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(small_workloads(), st.sampled_from(["hpcc", "dcqcn", "dctcp"]))
    def test_every_flow_completes_exactly(self, workload, cc_name):
        n_hosts, flows = workload
        net = Network(star(n_hosts, host_rate="100Gbps"),
                      NetworkConfig(cc_name=cc_name, base_rtt=9 * US))
        for src, dst, size, start in flows:
            net.add_flow(net.make_flow(src, dst, size, start_time=start))
        assert net.run_until_done(deadline=100 * MS)
        # Completion accounting.
        assert len(net.metrics.fct_records) == len(flows)
        for record in net.metrics.fct_records:
            assert record.fct > 0
            assert record.slowdown >= 0.9   # can't beat the ideal by much
        # No loss in lossless mode.
        assert net.metrics.drop_count == 0
        # All receiver frontiers landed exactly on flow sizes.
        sizes_by_flow = {}
        for record in net.metrics.fct_records:
            sizes_by_flow[record.spec.flow_id] = record.spec.size
        for nic in net.nics.values():
            for flow_id, rf in nic.recv_flows.items():
                assert rf.state.expected == sizes_by_flow[flow_id]

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(small_workloads())
    def test_buffers_drain_and_accounting_balances(self, workload):
        n_hosts, flows = workload
        net = Network(star(n_hosts, host_rate="100Gbps"),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        for src, dst, size, start in flows:
            net.add_flow(net.make_flow(src, dst, size, start_time=start))
        assert net.run_until_done(deadline=100 * MS)
        net.run(until=net.sim.now + 1 * MS)
        for switch in net.switches.values():
            assert switch.buffer.used == 0
            assert switch.total_queued_bytes() == 0
            for port in switch.ports.values():
                assert port.qlen_bytes == 0

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(small_workloads())
    def test_determinism(self, workload):
        n_hosts, flows = workload

        def run():
            net = Network(star(n_hosts, host_rate="100Gbps"),
                          NetworkConfig(cc_name="hpcc", base_rtt=9 * US,
                                        seed=7))
            for src, dst, size, start in flows:
                net.add_flow(net.make_flow(src, dst, size, start_time=start))
            net.run_until_done(deadline=100 * MS)
            return sorted(
                (r.spec.flow_id, r.finish) for r in net.metrics.fct_records
            )

        assert run() == run()


class TestLossyInvariants:
    @settings(deadline=None, max_examples=8,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.sampled_from(["gbn", "irn"]), st.integers(0, 1000))
    @example("gbn", 259)    # the congestive-collapse draw GbnSender's
    #                         recovery_cap exists to survive (ROADMAP PR-8):
    #                         4:1 incast, 30KB no-PFC buffer, DCTCP — full-
    #                         window retransmission bursts used to re-lose
    #                         each other's packets indefinitely.
    def test_tiny_buffer_never_stalls(self, transport, seed):
        """Heavy loss must delay flows, never deadlock them."""
        import random
        rng = random.Random(seed)
        net = Network(star(5, host_rate="100Gbps"),
                      NetworkConfig(cc_name="dctcp", base_rtt=9 * US,
                                    transport=transport, pfc_enabled=False,
                                    buffer_bytes=30_000, rto=200 * US))
        for s in range(4):
            net.add_flow(net.make_flow(
                s, 4, rng.randint(20_000, 120_000)
            ))
        assert net.run_until_done(deadline=500 * MS)
        for rf in net.nics[4].recv_flows.values():
            assert not rf.state.first_hole_end() if hasattr(
                rf.state, "first_hole_end") else True


class TestTopologyInvariants:
    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(1, 4), st.integers(1, 4))
    def test_dumbbell_any_split_completes(self, n_left, n_right):
        topo = dumbbell(n_left, n_right, host_rate="50Gbps")
        net = Network(topo, NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        # One flow from each left host to a right host.
        for i in range(n_left):
            dst = n_left + (i % n_right)
            net.add_flow(net.make_flow(i, dst, 30_000))
        assert net.run_until_done(deadline=100 * MS)
