"""The backend divergence analyzer (``repro.obs.divergence``).

Unit tests on synthetic decision streams — step alignment, first
divergence, attribution agreement — plus one end-to-end check that
``compare_decisions`` digests real ``execute_spec(decisions=True)``
output from both backends.
"""

import math

from repro.obs.divergence import (
    _step_value,
    by_flow,
    compare_decisions,
    decision_records,
    format_divergence,
    rate_trajectory,
)


def dec(flow, sim_ns, rate, hop=None, scheme="hpcc", event="ack"):
    """One synthetic decision record (only the fields the analyzer reads)."""
    inputs = {} if hop is None else {"bottleneck_hop": hop}
    return {"kind": "decision", "name": "cc.decision", "t": 0.0,
            "run_id": "r", "sim_ns": sim_ns, "flow": flow,
            "scheme": scheme, "event": event, "branch": "AI",
            "rate_before": rate, "rate_after": rate,
            "window_before": None, "window_after": None, "inputs": inputs}


class TestPrimitives:
    def test_decision_records_filters_kinds(self):
        stream = [{"kind": "gauge", "name": "g"}, dec(1, 0.0, 1.0),
                  {"kind": "span", "name": "s"}]
        assert decision_records(stream) == [stream[1]]

    def test_by_flow_groups_and_sorts(self):
        flows = by_flow([dec(2, 5.0, 1.0), dec(1, 9.0, 1.0),
                         dec(1, 3.0, 2.0)])
        assert sorted(flows) == [1, 2]
        assert [d["sim_ns"] for d in flows[1]] == [3.0, 9.0]

    def test_rate_trajectory_skips_unusable_rates(self):
        stream = [dec(1, 0.0, 2.0), dec(1, 5.0, None), dec(1, 9.0, "nan"),
                  dec(1, 12.0, 3.0)]
        assert rate_trajectory(stream) == ([0.0, 12.0], [2.0, 3.0])

    def test_step_value_holds_last_breakpoint(self):
        times, values = [10.0, 20.0, 30.0], [1.0, 2.0, 3.0]
        assert _step_value(times, values, 5.0) == 1.0    # before first
        assert _step_value(times, values, 10.0) == 1.0   # at breakpoint
        assert _step_value(times, values, 25.0) == 2.0   # between
        assert _step_value(times, values, 99.0) == 3.0   # past last


class TestCompareDecisions:
    def test_identical_streams_never_diverge(self):
        stream = [dec(1, 0.0, 10.0, hop=1), dec(1, 100.0, 8.0, hop=1)]
        div = compare_decisions(list(stream), list(stream))
        entry = div["flows"]["1"]
        assert entry["time_weighted_rate_error"] == 0.0
        assert entry["first_divergence_ns"] is None
        assert entry["attribution"] == {"compared": 2, "agree": 2,
                                        "mismatch": 0}
        s = div["summary"]
        assert s["flows_compared"] == 1 and s["flows_diverged"] == 0
        assert s["first_divergence_ns"] is None
        assert s["attribution_agreement"] == 1.0
        assert div["scheme"] == "hpcc"

    def test_constant_gap_diverges_at_overlap_start(self):
        packet = [dec(1, 0.0, 10.0), dec(1, 100.0, 10.0)]
        fluid = [dec(1, 0.0, 5.0), dec(1, 100.0, 5.0)]
        div = compare_decisions(packet, fluid, threshold=0.25)
        entry = div["flows"]["1"]
        # |10-5| / max(10,5) = 0.5 everywhere.
        assert math.isclose(entry["time_weighted_rate_error"], 0.5)
        assert entry["first_divergence_ns"] == 0.0
        assert div["summary"]["flows_diverged"] == 1

    def test_threshold_gates_first_divergence(self):
        packet = [dec(1, 0.0, 10.0), dec(1, 100.0, 10.0)]
        fluid = [dec(1, 0.0, 9.0), dec(1, 100.0, 9.0)]   # 10% gap
        div = compare_decisions(packet, fluid, threshold=0.25)
        entry = div["flows"]["1"]
        assert entry["first_divergence_ns"] is None      # below threshold
        assert math.isclose(entry["time_weighted_rate_error"], 0.1)

    def test_late_divergence_timed_to_the_causing_decision(self):
        packet = [dec(1, 0.0, 10.0), dec(1, 50.0, 10.0),
                  dec(1, 100.0, 10.0)]
        fluid = [dec(1, 0.0, 10.0), dec(1, 60.0, 4.0),
                 dec(1, 100.0, 4.0)]
        div = compare_decisions(packet, fluid, threshold=0.25)
        assert div["flows"]["1"]["first_divergence_ns"] == 60.0

    def test_flow_missing_on_one_backend_reported_not_fatal(self):
        div = compare_decisions([dec(1, 0.0, 10.0)], [])
        entry = div["flows"]["1"]
        assert entry["packet_decisions"] == 1
        assert entry["fluid_decisions"] == 0
        assert entry["time_weighted_rate_error"] is None
        assert entry["first_divergence_ns"] is None
        assert div["summary"]["mean_rate_error"] is None

    def test_attribution_mismatch_counted(self):
        packet = [dec(1, 0.0, 10.0, hop=1), dec(1, 50.0, 10.0, hop=2)]
        fluid = [dec(1, 0.0, 10.0, hop=1), dec(1, 40.0, 10.0, hop=3)]
        div = compare_decisions(packet, fluid)
        assert div["flows"]["1"]["attribution"] == {
            "compared": 2, "agree": 1, "mismatch": 1}
        assert div["summary"]["attribution_agreement"] == 0.5

    def test_no_attribution_inputs_yields_none(self):
        div = compare_decisions([dec(1, 0.0, 10.0)], [dec(1, 0.0, 10.0)])
        assert div["flows"]["1"]["attribution"] is None
        assert div["summary"]["attribution_agreement"] is None

    def test_mixed_schemes_joined_in_header(self):
        div = compare_decisions([dec(1, 0.0, 1.0, scheme="hpcc")],
                                [dec(1, 0.0, 1.0, scheme="dcqcn")])
        assert div["scheme"] == "dcqcn,hpcc"


class TestFormatDivergence:
    def test_renders_summary_and_per_flow_rows(self):
        packet = [dec(1, 0.0, 10.0, hop=1), dec(2, 0.0, 10.0)]
        fluid = [dec(1, 0.0, 5.0, hop=1), dec(2, 0.0, 10.0)]
        text = format_divergence(compare_decisions(packet, fluid))
        assert "decision-trace diff (hpcc" in text
        assert "flows compared: 2, diverged: 1" in text
        assert "time-weighted rate error" in text
        assert "first divergence: 0.00us" in text
        assert "bottleneck attribution: 100.0%" in text

    def test_renders_gracefully_with_no_overlap(self):
        text = format_divergence(compare_decisions([dec(1, 0.0, 1.0)], []))
        assert "diverged: 0" in text
        assert "never" in text and "n/a" in text


class TestEndToEnd:
    def test_real_backend_streams_compare(self):
        from repro.runner import ScenarioSpec
        from repro.runner.execute import execute_spec
        from repro.sim.units import US

        spec = ScenarioSpec(
            program="flows",
            topology="star",
            topology_params={"n_hosts": 3, "host_rate": "10Gbps"},
            workload={"flows": [[0, 2, 40_000], [1, 2, 40_000]],
                      "deadline": 5e6},
            config={"base_rtt": 9 * US},
            seed=1,
            label="div-e2e",
        )
        streams = {
            backend: execute_spec(spec.replaced(backend=backend),
                                  decisions=True).telemetry
            for backend in ("packet", "fluid")
        }
        div = compare_decisions(streams["packet"], streams["fluid"])
        s = div["summary"]
        assert s["flows_compared"] == 2
        assert s["mean_rate_error"] is not None
        assert s["attribution_compared"] > 0
        for entry in div["flows"].values():
            assert entry["packet_decisions"] > 0
            assert entry["fluid_decisions"] > 0
        assert "decision-trace diff" in format_divergence(div)
