"""Shared-buffer accounting and dynamic thresholds."""

import pytest

from repro.sim.buffer import BufferConfig, SharedBuffer


def make(total=10_000, lossy=False, alpha=1.0):
    return SharedBuffer(BufferConfig(total_bytes=total, lossy=lossy,
                                     dynamic_alpha=alpha))


class TestAccounting:
    def test_occupy_and_release_roundtrip(self):
        buf = make()
        assert buf.occupy(in_port=0, out_port=1, priority=0, size=500)
        assert buf.used == 500
        assert buf.ingress_usage(0) == 500
        assert buf.egress_usage(1) == 500
        buf.release(0, 1, 0, 500)
        assert buf.used == 0
        assert buf.ingress_usage(0) == 0
        assert buf.egress_usage(1) == 0

    def test_free_bytes(self):
        buf = make(total=1000)
        buf.occupy(0, 1, 0, 300)
        assert buf.free_bytes == 700

    def test_peak_tracking(self):
        buf = make()
        buf.occupy(0, 1, 0, 400)
        buf.occupy(0, 1, 0, 400)
        buf.release(0, 1, 0, 400)
        assert buf.peak_used == 800

    def test_per_port_isolation(self):
        buf = make()
        buf.occupy(0, 2, 0, 100)
        buf.occupy(1, 2, 0, 200)
        assert buf.ingress_usage(0) == 100
        assert buf.ingress_usage(1) == 200
        assert buf.egress_usage(2) == 300

    def test_negative_accounting_raises(self):
        buf = make()
        buf.occupy(0, 1, 0, 100)
        with pytest.raises(AssertionError):
            buf.release(0, 1, 0, 200)


class TestAdmission:
    def test_hard_overflow_drops(self):
        buf = make(total=1000)
        assert buf.occupy(0, 1, 0, 900)
        assert not buf.occupy(0, 1, 0, 200)
        assert buf.drops == 1
        assert buf.used == 900

    def test_lossless_fills_to_total(self):
        buf = make(total=1000, lossy=False)
        assert buf.occupy(0, 1, 0, 1000)

    def test_lossy_dynamic_threshold(self):
        # alpha=1: an egress queue may hold at most the free bytes.
        buf = make(total=1000, lossy=True, alpha=1.0)
        assert buf.occupy(0, 1, 0, 400)   # egress 400 <= free 600 after? admit
        # Next packet: egress would be 800, free is 600 -> refuse.
        assert not buf.occupy(0, 1, 0, 400)
        assert buf.drops == 1

    def test_lossy_threshold_scales_with_alpha(self):
        buf = make(total=1000, lossy=True, alpha=0.25)
        assert buf.occupy(0, 1, 0, 200)
        # free=800, limit=200; egress already at 200 -> refuse any more.
        assert not buf.occupy(0, 1, 0, 100)

    def test_lossy_other_egress_unaffected(self):
        buf = make(total=10_000, lossy=True, alpha=0.5)
        for _ in range(4):
            buf.occupy(0, 1, 0, 500)
        # Port 1 is saturated against its dynamic limit...
        assert buf.egress_usage(1) > 0
        # ...but port 2 still admits.
        assert buf.occupy(0, 2, 0, 500)

    def test_admits_is_pure(self):
        buf = make(total=1000)
        assert buf.admits(1, 500)
        assert buf.used == 0


class TestConfigValidation:
    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            BufferConfig(total_bytes=0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            BufferConfig(total_bytes=10, dynamic_alpha=0)
