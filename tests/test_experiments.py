"""Experiment drivers: smoke tests at miniature parameters.

These verify the drivers run end to end and produce the paper's *shape*
(orderings, not magnitudes) with tiny workloads; the benchmarks run the
real bench-scale versions.
"""

import pytest

from repro.experiments import appendix_a
from repro.experiments.common import CcChoice, load_experiment, require_scale
from repro.experiments.figure06 import run_figure06
from repro.experiments.figure13 import run_figure13
from repro.experiments.figure14 import run_figure14
from repro.sim.units import MS, US
from repro.topology.simple import star
from repro.workloads.fbhadoop import fbhadoop


class TestCommon:
    def test_require_scale(self):
        assert require_scale("bench") == "bench"
        with pytest.raises(ValueError):
            require_scale("huge")

    def test_load_experiment_runs(self):
        result = load_experiment(
            star(4, host_rate="10Gbps"),
            CcChoice("hpcc"),
            fbhadoop().scaled(0.1),
            load=0.2, n_flows=20, base_rtt=9 * US, seed=2,
        )
        assert result.records
        assert result.duration > 0

    def test_load_experiment_with_incast(self):
        result = load_experiment(
            star(6, host_rate="10Gbps"),
            CcChoice("hpcc"),
            fbhadoop().scaled(0.1),
            load=0.2, n_flows=15, base_rtt=9 * US, seed=2,
            incast={"fan_in": 3, "flow_size": 20_000, "load": 0.02},
        )
        tags = {r.spec.tag for r in result.records}
        assert "incast" in tags


class TestFigure6Smoke:
    def test_both_variants_converge(self):
        result = run_figure06(params={
            "flow_size": 2_000_000, "duration": 0.5 * MS,
        })
        for label in ("HPCC (txRate)", "HPCC-rxRate"):
            assert result.steady_mean[label] < 20_000
            assert result.peak[label] > 0


class TestFigure13Smoke:
    def test_per_ack_overreacts_and_per_rtt_lags(self):
        result = run_figure13(params={
            "fan_in": 8, "flow_size": 600_000, "duration": 300 * US,
        })
        # per-ACK's post-start throughput floor is the lowest of the three.
        assert result.min_throughput_after_start["per-ACK"] <= \
            result.min_throughput_after_start["HPCC"]
        # HPCC drains no slower than per-RTT.
        assert result.drain_time["HPCC"] <= \
            result.drain_time["per-RTT"] + 50 * US


class TestFigure14Smoke:
    def test_oversized_wai_builds_queue(self):
        result = run_figure14(params={
            "fan_in": 8, "flow_size": 4_000_000, "duration": 2 * MS,
            "wai_values": (25.0, 600.0),
        })
        assert result.queue_p95[600.0] > result.queue_p95[25.0]
        assert result.fairness[25.0] > 0.9


class TestAppendixSmoke:
    def test_a1_numbers(self):
        a1 = appendix_a.run_a1(n_sources=20, rho=0.95)
        assert a1.simulated_mean < 5
        assert a1.simulated_tail <= 0.01

    def test_a2_lemma_counts(self):
        a2 = appendix_a.run_a2(n_trials=10, seed=3)
        assert a2.feasible_after_one == 10
        assert a2.monotone == 10
        assert a2.pareto_asymptotic >= 8
