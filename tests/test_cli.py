"""The hpcc-repro command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, _resolve, main


class TestResolve:
    def test_canonical_names(self):
        for name in EXPERIMENTS:
            assert _resolve(name) == name

    def test_aliases(self):
        assert _resolve("figure13") == "fig13"
        assert _resolve("fig06") == "fig6"
        assert _resolve("FIGURE9") == "fig9"
        assert _resolve("appendix_a") == "appendix"

    def test_unknown_exits_with_known_list(self):
        with pytest.raises(SystemExit, match="fig13"):
            _resolve("fig99")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig13" in capsys.readouterr().out

    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "hpcc" in out and "dcqcn" in out

    def test_run_dispatches(self, capsys, monkeypatch):
        called = []
        monkeypatch.setitem(
            EXPERIMENTS, "fig13", ("stub", lambda: called.append(1))
        )
        assert main(["run", "fig13"]) == 0
        assert called == [1]

    def test_every_experiment_has_description_and_callable(self):
        for name, (desc, fn) in EXPERIMENTS.items():
            assert isinstance(desc, str) and desc
            assert callable(fn)
