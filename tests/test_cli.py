"""The hpcc-repro command-line interface."""

import json
from types import SimpleNamespace

import pytest

from repro.cli import EXPERIMENTS, _resolve, main
from repro.runner import ScenarioSpec


class TestResolve:
    def test_canonical_names(self):
        for name in EXPERIMENTS:
            assert _resolve(name) == name

    def test_aliases(self):
        assert _resolve("figure13") == "fig13"
        assert _resolve("fig06") == "fig6"
        assert _resolve("FIGURE9") == "fig9"
        assert _resolve("appendix_a") == "appendix"

    def test_unknown_exits_with_known_list(self):
        with pytest.raises(SystemExit, match="fig13"):
            _resolve("fig99")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig13" in capsys.readouterr().out

    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "hpcc" in out and "dcqcn" in out

    def test_run_dispatches(self, monkeypatch):
        called = []
        stub = SimpleNamespace(main=lambda scale: called.append(scale))
        monkeypatch.setitem(EXPERIMENTS, "fig13", ("stub", stub))
        assert main(["run", "fig13"]) == 0
        assert called == ["bench"]

    def test_run_passes_scale_through(self, monkeypatch):
        """The documented ``hpcc-repro run fig11 --scale full`` spelling."""
        called = []
        stub = SimpleNamespace(main=lambda scale: called.append(scale))
        monkeypatch.setitem(EXPERIMENTS, "fig11", ("stub", stub))
        assert main(["run", "fig11", "--scale", "full"]) == 0
        assert called == ["full"]

    def test_run_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            main(["run", "fig13", "--scale", "huge"])

    def test_every_experiment_has_description_and_grid(self):
        for name, (desc, module) in EXPERIMENTS.items():
            assert isinstance(desc, str) and desc
            assert callable(module.main)
            specs = module.scenarios(scale="bench")
            assert specs and all(isinstance(s, ScenarioSpec) for s in specs)


def _tiny_grid_module():
    """A stub experiment with two fast real scenarios."""
    from repro.sim.units import US

    def scenarios(scale="bench", seed=1):
        base = ScenarioSpec(
            program="flows",
            topology="star",
            topology_params={"n_hosts": 3, "host_rate": "10Gbps"},
            workload={"flows": [[0, 2, 40_000], [1, 2, 40_000]],
                      "deadline": 5e6},
            config={"base_rtt": 9 * US},
            seed=seed,
            scale=scale,
            label="tiny",
        )
        return [base, base.replaced(**{"workload.flows": [[0, 2, 80_000]],
                                       "label": "tiny2"})]

    return SimpleNamespace(scenarios=scenarios, main=lambda scale: None)


class TestSweep:
    def test_sweep_persists_and_caches(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "results"
        assert main(["sweep", "tiny", "--out", str(out)]) == 0
        first = capsys.readouterr().out
        assert "2 scenarios (0 cached)" in first
        records = sorted(out.glob("*.json"))
        assert len(records) == 2
        assert (out / "summary.csv").exists()
        payload = json.loads(records[0].read_text())
        assert payload["spec"]["program"] == "flows"
        assert payload["fct"]

        # Second invocation: every cell comes from the cache.
        assert main(["sweep", "tiny", "--out", str(out)]) == 0
        second = capsys.readouterr().out
        assert "2 scenarios (2 cached)" in second

    def test_sweep_no_cache_recomputes_but_persists(self, tmp_path, capsys,
                                                    monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "results"
        assert main(["sweep", "tiny", "--out", str(out), "--no-cache"]) == 0
        assert "(0 cached)" in capsys.readouterr().out
        assert len(list(out.glob("*.json"))) == 2
        assert main(["sweep", "tiny", "--out", str(out), "--no-cache"]) == 0
        assert "(0 cached)" in capsys.readouterr().out

    def test_sweep_seeds_expand_grid(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "results"
        assert main(["sweep", "tiny", "--seeds", "1,2", "--out", str(out)]) == 0
        assert "4 scenarios" in capsys.readouterr().out

    def test_sweep_bad_seeds_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="seeds"):
            main(["sweep", "fig13", "--seeds", "one,two",
                  "--out", str(tmp_path)])

    def test_sweep_unknown_experiment_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["sweep", "fig99", "--out", str(tmp_path)])

    def test_sweep_progress_ticks_on_stderr(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        assert main(["sweep", "tiny", "--out", str(tmp_path / "r")]) == 0
        captured = capsys.readouterr()
        assert "[1/2]" in captured.err and "[2/2]" in captured.err
        assert "[1/2]" not in captured.out          # summary only on stdout

    def test_sweep_quiet_suppresses_ticker(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        assert main(["sweep", "tiny", "--quiet",
                     "--out", str(tmp_path / "r")]) == 0
        captured = capsys.readouterr()
        assert "[1/2]" not in captured.err
        assert "2 scenarios" in captured.out

    def test_sweep_writes_journal_and_status_column(self, tmp_path, capsys,
                                                    monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "r"
        assert main(["sweep", "tiny", "--quiet", "--out", str(out)]) == 0
        journal = out / "journal.jsonl"
        assert journal.exists()
        entries = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        cells = [e for e in entries if e["kind"] == "cell"]
        assert len(cells) == 2
        assert all(c["status"] == "ok" for c in cells)
        header = (out / "summary.csv").read_text().splitlines()[0]
        assert "status" in header and "attempts" in header

    def test_sweep_resume_skips_ok_cells(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "r"
        assert main(["sweep", "tiny", "--quiet", "--out", str(out)]) == 0
        capsys.readouterr()
        journal = out / "journal.jsonl"
        entries = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        hashes = [e["spec_hash"] for e in entries if e["kind"] == "cell"]
        # Pretend one cell failed (a later journal line supersedes).
        with journal.open("a") as handle:
            handle.write(json.dumps({
                "kind": "cell", "spec_hash": hashes[0], "status": "error",
                "attempts": 1, "wall_time_s": 0.0, "cached": False,
            }) + "\n")
        assert main(["sweep", "tiny", "--quiet", "--out", str(out),
                     "--resume", str(journal)]) == 0
        captured = capsys.readouterr()
        assert "1 ok cells skipped, 1 to (re)run" in captured.err
        assert "2 scenarios" in captured.out        # full record set anyway

    def test_sweep_resume_missing_journal_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no sweep journal"):
            main(["sweep", "fig13", "--out", str(tmp_path),
                  "--resume", str(tmp_path / "nope.jsonl")])

    def test_sweep_bad_spec_timeout_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="spec-timeout"):
            main(["sweep", "fig13", "--out", str(tmp_path),
                  "--spec-timeout", "soon"])

    def test_sweep_backend_fluid(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "results"
        assert main(["sweep", "tiny", "--backend", "fluid",
                     "--out", str(out)]) == 0
        assert "2 scenarios (0 cached)" in capsys.readouterr().out
        payloads = [json.loads(p.read_text()) for p in out.glob("*.json")]
        assert all(p["spec"]["backend"] == "fluid" for p in payloads)
        # Fluid and packet sweeps of the same grid coexist in one cache.
        assert main(["sweep", "tiny", "--out", str(out)]) == 0
        assert "2 scenarios (0 cached)" in capsys.readouterr().out
        assert len(list(out.glob("*.json"))) == 4


class TestRunBackend:
    def test_run_fluid_prints_summary(self, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        assert main(["run", "tiny", "--backend", "fluid", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fluid backend" in out
        assert "tiny" in out and "tiny2" in out

    def test_run_packet_still_dispatches_to_main(self, monkeypatch):
        called = []
        stub = SimpleNamespace(main=lambda scale: called.append(scale))
        monkeypatch.setitem(EXPERIMENTS, "fig13", ("stub", stub))
        assert main(["run", "fig13", "--backend", "packet"]) == 0
        assert called == ["bench"]

    def test_run_rejects_foreground_on_packet_fast_path(self, monkeypatch):
        # The packet backend short-circuits to module.main(); --foreground
        # must still be rejected there, not silently ignored.
        called = []
        stub = SimpleNamespace(main=lambda scale: called.append(scale))
        monkeypatch.setitem(EXPERIMENTS, "fig13", ("stub", stub))
        with pytest.raises(SystemExit, match="--backend hybrid"):
            main(["run", "fig13", "--foreground", "frac:0.5"])
        assert called == []


class TestTelemetryFlag:
    def test_sweep_telemetry_default_path(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.obs import validate_record
        from repro.obs.summarize import read_jsonl

        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "results"
        assert main(["sweep", "tiny", "--quiet", "--out", str(out),
                     "--telemetry"]) == 0
        assert f"telemetry -> {out / 'telemetry.jsonl'}" in capsys.readouterr().out
        records, errors = read_jsonl(out / "telemetry.jsonl")
        assert not errors and records
        assert all(validate_record(r) is None for r in records)
        assert records[0]["kind"] == "meta"
        assert records[0]["run_id"] == "sweep:tiny"
        kinds = {r["kind"] for r in records}
        assert {"span", "gauge", "counter"} <= kinds

    def test_sweep_telemetry_explicit_path(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        path = tmp_path / "deep" / "tel.jsonl"
        assert main(["sweep", "tiny", "--quiet",
                     "--out", str(tmp_path / "r"),
                     "--telemetry", str(path)]) == 0
        assert path.is_file()
        assert f"telemetry -> {path}" in capsys.readouterr().out

    def test_sweep_without_flag_writes_no_file(self, tmp_path, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "results"
        assert main(["sweep", "tiny", "--quiet", "--out", str(out)]) == 0
        assert not (out / "telemetry.jsonl").exists()

    def test_run_telemetry_routes_packet_through_spec_path(self, tmp_path,
                                                           capsys,
                                                           monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        path = tmp_path / "run-tel.jsonl"
        assert main(["run", "tiny", "--quiet",
                     "--telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert "packet backend" in out           # spec path, not module.main
        assert path.is_file()

    def test_tele_summarize_roundtrip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        path = tmp_path / "tel.jsonl"
        assert main(["sweep", "tiny", "--quiet",
                     "--out", str(tmp_path / "r"),
                     "--telemetry", str(path)]) == 0
        capsys.readouterr()
        assert main(["tele", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "total" in out                    # the per-run span

    def test_unwritable_telemetry_path_exits_cleanly(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        blocker = tmp_path / "blocker"
        blocker.write_text("")                   # a file where a dir must go
        with pytest.raises(SystemExit, match="cannot write telemetry file"):
            main(["sweep", "tiny", "--quiet", "--out", str(tmp_path / "r"),
                  "--telemetry", str(blocker / "tel.jsonl")])

    def test_tele_summarize_missing_file(self, tmp_path, capsys):
        assert main(["tele", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "no telemetry file" in capsys.readouterr().err

    def test_tele_summarize_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        path = tmp_path / "tel.jsonl"
        assert main(["sweep", "tiny", "--quiet",
                     "--out", str(tmp_path / "r"),
                     "--telemetry", str(path)]) == 0
        capsys.readouterr()
        assert main(["tele", "summarize", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["path"] == str(path)
        assert "total" in doc["spans"]
        assert doc["spans"]["total"]["count"] >= 2   # one per scenario
        assert doc["invalid_lines"] == []

    def test_sweep_ticker_carries_eta(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        assert main(["sweep", "tiny", "--out", str(tmp_path / "r")]) == 0
        err = capsys.readouterr().err
        first, last = err.splitlines()[0], err.splitlines()[-1]
        assert "[1/2]" in first and "eta ~" in first
        assert "[2/2]" in last and "eta ~" not in last   # nothing remains

    def test_profile_out_writes_pstats(self, tmp_path, capsys, monkeypatch):
        import pstats

        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        path = tmp_path / "prof" / "run.pstats"
        assert main(["run", "tiny", "--quiet", "--backend", "fluid",
                     "--profile-out", str(path)]) == 0
        captured = capsys.readouterr()
        assert path.is_file()
        assert f"profile stats -> {path}" in captured.err
        assert "cProfile" in captured.err        # --profile is implied
        stats = pstats.Stats(str(path))          # loadable, non-empty
        assert stats.total_calls > 0


class TestCache:
    def test_stats_and_clear(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        out = tmp_path / "results"
        assert main(["sweep", "tiny", "--quiet", "--out", str(out)]) == 0
        assert main(["sweep", "tiny", "--backend", "fluid", "--quiet",
                     "--out", str(out)]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--dir", str(out)]) == 0
        stats_out = capsys.readouterr().out
        assert "4 records" in stats_out
        assert "packet" in stats_out and "fluid" in stats_out

        assert main(["cache", "clear", "--dir", str(out)]) == 0
        assert "removed 4" in capsys.readouterr().out
        assert not list(out.glob("*.json"))

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["cache", "stats", "--dir", str(tmp_path / "nope")]) == 1
        assert "no cache directory" in capsys.readouterr().out


class TestTrace:
    """``trace diff``: the control-loop flight recorder's analyzer."""

    def _spec_file(self, tmp_path):
        from repro.sim.units import US

        spec = ScenarioSpec(
            program="flows",
            topology="star",
            topology_params={"n_hosts": 3, "host_rate": "10Gbps"},
            workload={"flows": [[0, 2, 40_000], [1, 2, 40_000]],
                      "deadline": 5e6},
            config={"base_rtt": 9 * US},
            seed=1,
            label="trace-tiny",
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_json()))
        return path

    def test_diff_from_spec_file_writes_divergence_json(self, tmp_path,
                                                        capsys):
        out = tmp_path / "div" / "divergence.json"
        assert main(["trace", "diff", str(self._spec_file(tmp_path)),
                     "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "decision-trace diff (hpcc" in captured.out
        assert "flows compared: 2" in captured.out
        assert f"divergence -> {out}" in captured.out
        assert "packet backend" in captured.err
        assert "fluid backend" in captured.err
        div = json.loads(out.read_text())        # strict JSON, no NaN
        assert div["spec"]["label"] == "trace-tiny"
        assert div["spec"]["cc"] == "hpcc"
        assert div["summary"]["flows_compared"] == 2
        assert set(div["flows"]) == {"1", "2"}

    def test_diff_by_experiment_name_and_scenario(self, tmp_path, capsys,
                                                  monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        assert main(["trace", "diff", "tiny", "--scenario", "tiny2"]) == 0
        out = capsys.readouterr().out
        assert "decision-trace diff" in out
        assert "flows compared: 1" in out        # tiny2 has a single flow

    def test_unknown_scenario_label_lists_known(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "tiny", ("stub grid", _tiny_grid_module()))
        with pytest.raises(SystemExit, match="tiny2"):
            main(["trace", "diff", "tiny", "--scenario", "nope"])

    def test_corrupt_spec_file_exits_cleanly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot load spec"):
            main(["trace", "diff", str(path)])
