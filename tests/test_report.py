"""The report layer: fidelity math, refdata schema, SVG emitter."""

import json
import math
from pathlib import Path

import pytest

from repro.report import (
    FigureRender,
    Panel,
    RefdataError,
    Series,
    available_refdata,
    bucket_panel,
    cdf_series,
    evaluate_check,
    load_refdata,
    nice_ticks,
    nrmse,
    queue_series,
    refdata_path,
    render_panel,
    resample,
    score_figure,
    trend_agreement,
    validate_refdata,
)
from repro.report.refdata import RefCheck
from repro.runner import RunRecord, ScenarioSpec

GOLDEN_DIR = Path(__file__).parent / "data"


# -- fidelity math on synthetic curves --------------------------------------------


class TestNrmse:
    def test_identical_curves_score_zero(self):
        ref = [1.0, 2.0, 3.0, 4.0]
        assert nrmse(ref, list(ref)) == 0.0

    def test_known_deviation(self):
        # Constant offset 0.3 against a range-1 reference: nrmse == 0.3.
        ref = [0.0, 0.5, 1.0]
        rep = [0.3, 0.8, 1.3]
        assert nrmse(ref, rep) == pytest.approx(0.3)

    def test_flat_reference_uses_magnitude_floor(self):
        # A flat reference would divide by ~0 range; the 10%-of-peak
        # floor keeps flat-vs-flat comparisons meaningful.
        ref = [10.0, 10.1, 10.0]
        rep = [10.0, 10.1, 10.1]
        assert nrmse(ref, rep) < 0.1

    def test_all_zero_reference(self):
        assert nrmse([0.0, 0.0], [0.0, 0.0]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            nrmse([1.0], [1.0, 2.0])


class TestTrendAgreement:
    def test_same_shape_scores_one(self):
        ref = [0.0, 1.0, 2.0, 1.0]
        rep = [0.0, 5.0, 9.0, 2.0]        # same up/up/down pattern
        assert trend_agreement(ref, rep) == 1.0

    def test_opposite_shape_scores_zero(self):
        assert trend_agreement([0.0, 1.0, 2.0], [2.0, 1.0, 0.0]) == 0.0

    def test_single_point_scores_one(self):
        assert trend_agreement([1.0], [5.0]) == 1.0

    def test_flat_segments_match_flat(self):
        ref = [1.0, 1.0, 2.0]
        rep = [3.0, 3.0, 9.0]
        assert trend_agreement(ref, rep) == 1.0


class TestResample:
    def test_interpolates_linearly(self):
        out = resample([0.5], [0.0, 1.0], [0.0, 10.0])
        assert out == [5.0]

    def test_clamps_outside_domain(self):
        out = resample([-1.0, 2.0], [0.0, 1.0], [3.0, 7.0])
        assert out == [3.0, 7.0]

    def test_empty_repro_gives_nan(self):
        assert all(math.isnan(v) for v in resample([0.0, 1.0], [], []))


class TestChecks:
    def test_le_against_stat(self):
        check = RefCheck(id="c", type="le", stat="a", than="b")
        assert evaluate_check(check, {"a": 1.0, "b": 2.0}).passed
        assert not evaluate_check(check, {"a": 3.0, "b": 2.0}).passed

    def test_factor_scales_comparand(self):
        check = RefCheck(id="c", type="ge", stat="a", than="b", factor=2.0)
        assert evaluate_check(check, {"a": 5.0, "b": 2.0}).passed
        assert not evaluate_check(check, {"a": 3.0, "b": 2.0}).passed

    def test_between(self):
        check = RefCheck(id="c", type="between", stat="a", lo=0.0, hi=1.0)
        assert evaluate_check(check, {"a": 0.5}).passed
        assert not evaluate_check(check, {"a": 1.5}).passed

    def test_finite(self):
        check = RefCheck(id="c", type="finite", stat="a")
        assert evaluate_check(check, {"a": 1.0}).passed
        assert not evaluate_check(check, {"a": float("inf")}).passed

    def test_missing_stat_fails_with_detail(self):
        check = RefCheck(id="c", type="le", stat="missing", than=1.0)
        result = evaluate_check(check, {})
        assert not result.passed
        assert "missing" in result.detail

    def test_nan_stat_fails(self):
        check = RefCheck(id="c", type="le", stat="a", than=1.0)
        assert not evaluate_check(check, {"a": float("nan")}).passed


def _ref_doc(**overrides):
    doc = {
        "figure": "figX",
        "title": "t",
        "source": "s",
        "extraction": "e",
        "normalize": {"x": "none", "y": "none"},
        "series": [
            {"panel": "p", "name": "A", "x": [0, 1, 2], "y": [0.0, 1.0, 2.0]},
        ],
        "checks": [
            {"id": "c1", "type": "le", "stat": "a", "than": 1.0},
        ],
        "thresholds": {
            "pass": {"nrmse": 0.2, "checks": 1.0},
            "warn": {"nrmse": 0.5, "checks": 0.5},
        },
    }
    doc.update(overrides)
    return doc


def _render(y, stats):
    return FigureRender(
        figure="figX", title="t",
        panels=[Panel(key="p", title="p", series=[
            Series(name="A", x=[0.0, 1.0, 2.0], y=y),
        ])],
        stats=stats,
    )


class TestScoreFigure:
    def test_perfect_reproduction_passes(self):
        ref = validate_refdata(_ref_doc())
        score = score_figure(_render([0.0, 1.0, 2.0], {"a": 0.5}), ref)
        assert score.verdict == "pass"
        assert score.nrmse == 0.0
        assert score.check_fraction == 1.0

    def test_moderate_deviation_warns(self):
        ref = validate_refdata(_ref_doc())
        score = score_figure(_render([0.6, 1.6, 2.6], {"a": 0.5}), ref)
        assert score.verdict == "warn"

    def test_failed_checks_fail(self):
        ref = validate_refdata(_ref_doc())
        score = score_figure(_render([0.0, 1.0, 2.0], {"a": 5.0}), ref)
        assert score.verdict == "fail"

    def test_missing_series_caps_at_warn(self):
        ref = validate_refdata(_ref_doc())
        render = FigureRender(figure="figX", title="t", panels=[],
                              stats={"a": 0.5})
        score = score_figure(render, ref)
        assert score.verdict == "warn"
        assert score.missing_series == ["p/A"]

    def test_gross_deviation_fails(self):
        ref = validate_refdata(_ref_doc())
        score = score_figure(_render([2.0, 0.0, 5.0], {"a": 0.5}), ref)
        assert score.verdict == "fail"


# -- refdata schema ---------------------------------------------------------------


class TestRefdataSchema:
    def test_all_checked_in_files_validate(self):
        figures = available_refdata()
        assert len(figures) >= 10
        for figure in figures:
            ref = load_refdata(figure)
            assert ref is not None and ref.figure == figure

    def test_checked_in_files_cover_the_headline_figures(self):
        available = set(available_refdata())
        assert {"fig10", "fig11", "fig13"} <= available

    def test_file_name_must_match_declared_figure(self):
        assert json.loads(refdata_path("fig11").read_text())["figure"] == "fig11"

    def test_missing_figure_returns_none(self):
        assert load_refdata("nonexistent") is None

    @pytest.mark.parametrize("mutation", [
        {"figure": None},
        {"title": ""},
        {"thresholds": {"pass": {}}},                      # no warn tier
        {"thresholds": {"pass": {"bogus": 1}, "warn": {}}},
        {"normalize": {"x": "wat", "y": "none"}},
        {"series": [{"panel": "p", "name": "A", "x": [0], "y": [0, 1]}]},
        {"series": [{"panel": "p", "name": "A", "x": [0], "y": ["no"]}]},
        {"checks": [{"id": "c", "type": "nope", "stat": "a"}]},
        {"checks": [{"id": "c", "type": "le", "stat": "a"}]},   # no than
        {"checks": [{"id": "c", "type": "between", "stat": "a"}]},
    ])
    def test_schema_violations_raise(self, mutation):
        doc = _ref_doc(**mutation)
        with pytest.raises(RefdataError):
            validate_refdata(doc)

    def test_duplicate_series_rejected(self):
        doc = _ref_doc()
        doc["series"].append(dict(doc["series"][0]))
        with pytest.raises(RefdataError, match="duplicate"):
            validate_refdata(doc)

    def test_every_check_has_a_note_and_every_file_an_extraction(self):
        # Refdata is documentation as much as data: each file must say
        # how it was digitized, and each check why it holds.
        for figure in available_refdata():
            ref = load_refdata(figure)
            assert len(ref.extraction) > 40, figure
            for check in ref.checks:
                assert check.note, f"{figure}:{check.id}"


# -- figure helpers ---------------------------------------------------------------


class TestFigureHelpers:
    def test_series_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Series(name="s", x=[1.0], y=[])

    def test_cdf_series_monotone(self):
        series = cdf_series("s", [3.0, 1.0, 2.0])
        assert series.x == [1.0, 2.0, 3.0]
        assert series.y == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_bucket_panel_uses_ordinals(self):
        from repro.metrics.fct import BucketStats

        stats = [BucketStats(lo=0, hi=10, count=1, p50=1, p95=2, p99=3, mean=1)]
        panel = bucket_panel("k", "t", {"A": stats})
        assert panel.series[0].x == [1.0]
        assert panel.series[0].y == [2.0]

    def test_queue_series_prefers_exact_label(self):
        record = RunRecord(
            spec=ScenarioSpec(program="flows"),
            queues={
                "bneck": {"times": [1.0], "qlens": [5]},
                "other": {"times": [1.0], "qlens": [99]},
            },
        )
        t, q = queue_series(record, "bneck")
        assert q == [5.0]

    def test_queue_series_falls_back_to_largest_peak(self):
        # Fluid records label queues by link name, not probe label.
        record = RunRecord(
            spec=ScenarioSpec(program="flows"),
            queues={
                "sw17->0": {"times": [1.0], "qlens": [0]},
                "sw17->16": {"times": [1.0], "qlens": [123]},
            },
        )
        t, q = queue_series(record, "bneck")
        assert q == [123.0]


# -- SVG emitter ------------------------------------------------------------------


def _sample_panel():
    return Panel(
        key="k", title="Sample panel",
        series=[
            Series(name="up", x=[0.0, 1.0, 2.0], y=[0.0, 5.0, 9.0]),
            Series(name="bars", kind="bar", x=[0.0, 1.0], y=[3.0, 6.0],
                   labels=["a", "b"]),
        ],
        x_label="x", y_label="y",
    )


class TestSvg:
    def test_renders_wellformed_svg(self):
        svg = render_panel(_sample_panel())
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "polyline" in svg and "rect" in svg
        import xml.etree.ElementTree as ET

        ET.fromstring(svg)                   # parses as XML

    def test_deterministic(self):
        panel = _sample_panel()
        assert render_panel(panel) == render_panel(panel)

    def test_escapes_markup_in_labels(self):
        panel = Panel(key="k", title="<b>&", series=[
            Series(name="a<b", x=[0.0], y=[1.0]),
        ])
        svg = render_panel(panel)
        assert "<b>" not in svg
        assert "&amp;" in svg

    def test_empty_panel_renders(self):
        svg = render_panel(Panel(key="k", title="empty"))
        assert "</svg>" in svg

    def test_nan_points_skipped(self):
        panel = Panel(key="k", title="t", series=[
            Series(name="a", x=[0.0, 1.0, 2.0], y=[1.0, float("nan"), 3.0]),
        ])
        assert "nan" not in render_panel(panel)

    def test_nice_ticks_cover_range(self):
        ticks = nice_ticks(0.0, 97.0)
        assert ticks[0] <= 0.0 + 1e-9
        assert ticks[-1] <= 97.0
        assert len(ticks) >= 3


# -- golden snapshot: one figure rendered end-to-end ------------------------------


def _synthetic_fig13():
    """Deterministic fig13-shaped specs + records (no simulation)."""
    from repro.experiments import figure13

    specs = figure13.scenarios(scale="bench", seed=1)
    records = []
    for i, spec in enumerate(specs):
        bin_ns = spec.config["goodput_bin"]
        bins = {
            "1": {str(idx): 90_000 + 1_000 * ((idx + i) % 5)
                  for idx in range(20)}
        }
        queues = {
            "bneck": {
                "times": [float(t) * 10_000 for t in range(20)],
                "qlens": [max(0, 200_000 - (20_000 + 5_000 * i) * t)
                          for t in range(20)],
            }
        }
        records.append(RunRecord(
            spec=spec,
            fct=[],
            queues=queues,
            extras={"goodput": {"bin_ns": bin_ns, "bins": bins},
                    "flow_ids": {"incast": [1]}},
            duration_ns=600_000.0,
            completed=True,
        ))
    return specs, records


class TestGoldenSvg:
    def test_fig13_goodput_svg_matches_golden(self):
        """Byte-for-byte snapshot of the fig13 goodput panel.

        Pins the whole render()+SVG pipeline: axis placement, tick
        labels, palette order, coordinate formatting.  Regenerate after
        an *intentional* change with:

            PYTHONPATH=src python tests/regen_golden_svg.py
        """
        from repro.experiments import figure13

        specs, records = _synthetic_fig13()
        render = figure13.render(specs, records)
        panel = render.panel("goodput")
        svg = render_panel(panel)
        golden = (GOLDEN_DIR / "fig13_goodput_golden.svg").read_text()
        assert svg == golden

    def test_synthetic_render_has_expected_stats(self):
        from repro.experiments import figure13

        specs, records = _synthetic_fig13()
        render = figure13.render(specs, records)
        for label in ("per-ACK", "per-RTT", "HPCC"):
            assert f"min_tput/{label}" in render.stats
            assert math.isfinite(render.stats[f"drain_us/{label}"])
