"""Egress ports: serialization, FIFO, pause, counters, idle hooks."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType, make_pause
from repro.sim.queues import EgressPort


class Sink:
    """Stands in for a zero-propagation Link: records (packet, time)
    deliveries at serialization end (``transmit`` is called at
    serialization start with the serialization delay)."""

    def __init__(self, sim):
        self.sim = sim
        self.delivered = []

    def transmit(self, pkt, from_port, ser_delay):
        self.sim.schedule(ser_delay, self._arrive, pkt)

    def _arrive(self, pkt):
        self.delivered.append((pkt, self.sim.now))


def data(size=1000, flow=1):
    return Packet(PacketType.DATA, flow, 0, 1, payload=size, header=0)


def make_port(sim, rate=12.5, **kwargs):
    port = EgressPort(sim, owner=None, port_id=0, rate=rate, **kwargs)
    port.link = Sink(sim)
    return port


class TestSerialization:
    def test_single_packet_timing(self):
        sim = Simulator()
        port = make_port(sim, rate=12.5)      # 100Gbps
        port.enqueue(data(1000))
        sim.run()
        pkt, t = port.link.delivered[0]
        assert t == pytest.approx(80.0)       # 1000B / 12.5B/ns

    def test_back_to_back_spacing(self):
        sim = Simulator()
        port = make_port(sim, rate=12.5)
        port.enqueue(data(1000))
        port.enqueue(data(1000))
        sim.run()
        times = [t for _, t in port.link.delivered]
        assert times == pytest.approx([80.0, 160.0])

    def test_fifo_order(self):
        sim = Simulator()
        port = make_port(sim)
        first, second = data(flow=1), data(flow=2)
        port.enqueue(first)
        port.enqueue(second)
        sim.run()
        assert [p.flow_id for p, _ in port.link.delivered] == [1, 2]

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            EgressPort(Simulator(), None, 0, rate=0)


class TestCounters:
    def test_tx_and_rx_bytes(self):
        sim = Simulator()
        port = make_port(sim)
        port.enqueue(data(1000))
        port.enqueue(data(500))
        assert port.rx_bytes == 1500
        sim.run()
        assert port.tx_bytes == 1500
        assert port.packets_emitted == 2

    def test_qlen_tracks_queue(self):
        sim = Simulator()
        port = make_port(sim)
        port.enqueue(data(1000))   # starts transmitting immediately
        port.enqueue(data(700))
        port.enqueue(data(300))
        assert port.qlen_bytes == 1000
        sim.run()
        assert port.qlen_bytes == 0


class TestPause:
    def test_pause_halts_data(self):
        sim = Simulator()
        port = make_port(sim)
        port.set_paused(True)
        port.enqueue(data())
        sim.run(until=1000.0)
        assert port.link.delivered == []

    def test_resume_restarts(self):
        sim = Simulator()
        port = make_port(sim)
        port.set_paused(True)
        port.enqueue(data())
        sim.schedule(100.0, port.set_paused, False)
        sim.run()
        assert len(port.link.delivered) == 1
        assert port.link.delivered[0][1] == pytest.approx(180.0)

    def test_pause_does_not_preempt_inflight(self):
        sim = Simulator()
        port = make_port(sim)
        port.enqueue(data(1000))
        sim.run(max_events=0)
        port.set_paused(True)       # packet already being serialized
        sim.run(until=1000.0)
        assert len(port.link.delivered) == 1

    def test_control_bypasses_pause(self):
        sim = Simulator()
        port = make_port(sim)
        port.set_paused(True)
        port.enqueue(data())
        port.enqueue_control(make_pause(0, True))
        sim.run(until=1000.0)
        assert [p.ptype for p, _ in port.link.delivered] == [PacketType.PAUSE]

    def test_control_served_before_data(self):
        sim = Simulator()
        port = make_port(sim)
        port.enqueue(data(10_000))      # long packet first? no: enqueue order
        port.enqueue_control(make_pause(0, True))
        sim.run()
        # The data packet was already in service; the control frame goes next,
        # ahead of nothing else — verify it didn't wait behind more data.
        kinds = [p.ptype for p, _ in port.link.delivered]
        assert kinds[1] == PacketType.PAUSE

    def test_paused_time_accounting(self):
        sim = Simulator()
        port = make_port(sim)
        port.set_paused(True)
        sim.schedule(500.0, port.set_paused, False)
        sim.run()
        assert port.total_paused == pytest.approx(500.0)
        assert port.paused_time(sim.now) == pytest.approx(500.0)

    def test_open_pause_included_in_paused_time(self):
        sim = Simulator()
        port = make_port(sim)
        sim.schedule(100.0, port.set_paused, True)
        sim.run(until=400.0)
        assert port.paused_time(400.0) == pytest.approx(300.0)

    def test_double_pause_is_idempotent(self):
        sim = Simulator()
        port = make_port(sim)
        port.set_paused(True)
        port.set_paused(True)
        sim.schedule(100.0, port.set_paused, False)
        sim.run()
        assert port.total_paused == pytest.approx(100.0)


class TestHooks:
    def test_on_emit_called_with_remaining_qlen(self):
        # Figure 5 semantics: the emitted packet reports the queue it left
        # behind, not including itself.  The first packet starts serializing
        # the moment it is enqueued (queue still empty); the second is
        # emitted while the third waits; the third leaves nothing behind.
        sim = Simulator()
        seen = []
        port = make_port(sim)
        port.on_emit = lambda pkt, p: seen.append(p.qlen_bytes)
        port.enqueue(data(1000))
        port.enqueue(data(1000))
        port.enqueue(data(1000))
        sim.run()
        assert seen == [0, 1000, 0]

    def test_on_idle_fires_when_drained(self):
        sim = Simulator()
        idles = []
        port = make_port(sim, on_idle=lambda p: idles.append(sim.now))
        port.enqueue(data(1000))
        sim.run()
        assert idles == [pytest.approx(80.0)]

    def test_on_idle_fires_on_resume_when_empty(self):
        sim = Simulator()
        idles = []
        port = make_port(sim, on_idle=lambda p: idles.append(sim.now))
        port.set_paused(True)
        sim.schedule(50.0, port.set_paused, False)
        sim.run()
        assert idles == [50.0]
