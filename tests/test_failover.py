"""Link failure injection and rerouting."""

import pytest

from repro.experiments.failover import dual_trunk
from repro.network import Network, NetworkConfig
from repro.sim.units import MS, US
from repro.topology import star


def make_dual_trunk_net(cc="hpcc", **cfg):
    return Network(dual_trunk(n_pairs=2),
                   NetworkConfig(cc_name=cc, base_rtt=9 * US, **cfg))


class TestFailLink:
    def test_fail_unknown_link_raises(self):
        net = make_dual_trunk_net()
        with pytest.raises(LookupError):
            net.fail_link(0, 3)

    def test_fail_and_restore_roundtrip(self):
        net = make_dual_trunk_net()
        sw_a, sw_b = 4, 5
        link = net.fail_link(sw_a, sw_b)
        assert not link.up
        assert net.restore_link(sw_a, sw_b) is link
        assert link.up

    def test_double_fail_cuts_both_trunks(self):
        net = make_dual_trunk_net()
        sw_a, sw_b = 4, 5
        net.fail_link(sw_a, sw_b)
        net.fail_link(sw_a, sw_b)
        with pytest.raises(LookupError):
            net.fail_link(sw_a, sw_b)
        # No route remains between the racks.
        assert sw_b not in (net.switches[sw_a].routing_table.get(2) or ())
        assert net.switches[sw_a].routing_table.get(2) is None

    def test_ecmp_group_shrinks(self):
        net = make_dual_trunk_net()
        sw_a, sw_b = 4, 5
        assert len(net.switches[sw_a].routing_table[2]) == 2
        net.fail_link(sw_a, sw_b)
        assert len(net.switches[sw_a].routing_table[2]) == 1
        net.restore_link(sw_a, sw_b)
        assert len(net.switches[sw_a].routing_table[2]) == 2

    def test_down_link_discards_and_counts(self):
        net = make_dual_trunk_net()
        link = net.fail_link(4, 5)
        # Push a packet into the dead link directly.
        from repro.sim.packet import Packet, PacketType
        pkt = Packet(PacketType.DATA, 1, 0, 2, payload=100)
        link.transmit(pkt, link.port_a, ser_delay=8.0)
        assert link.packets_lost_down == 1


class TestFailoverBehaviour:
    def test_flows_survive_a_trunk_cut(self):
        net = make_dual_trunk_net(rto=300 * US)
        specs = [net.make_flow(src=i, dst=2 + i, size=2_000_000)
                 for i in range(2)]
        net.add_flows(specs)
        net.sim.at(0.2 * MS, lambda: net.fail_link(4, 5))
        assert net.run_until_done(deadline=50 * MS)
        for r in net.metrics.fct_records:
            assert r.fct > 0

    def test_host_cut_off_blackholes_without_crash(self):
        net = Network(star(3, host_rate="25Gbps"),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US,
                                    rto=300 * US))
        net.add_flow(net.make_flow(0, 2, 500_000))
        net.sim.at(0.1 * MS, lambda: net.fail_link(2, 3))
        done = net.run_until_done(deadline=3 * MS)
        assert not done                    # receiver is unreachable
        assert net.metrics.drop_count > 0  # blackholed, not crashed

    def test_restore_heals_the_fabric(self):
        net = Network(star(3, host_rate="25Gbps"),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US,
                                    rto=200 * US))
        net.add_flow(net.make_flow(0, 2, 300_000))
        net.sim.at(0.1 * MS, lambda: net.fail_link(2, 3))
        net.sim.at(1.0 * MS, lambda: net.restore_link(2, 3))
        assert net.run_until_done(deadline=50 * MS)
