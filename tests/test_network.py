"""Network assembly: wiring, config resolution, ideal FCT, helpers."""

import pytest

from repro.network import Network, NetworkConfig
from repro.sim.units import MS, US, gbps
from repro.topology import bench_fattree, dumbbell, star
from repro.topology import testbed as make_testbed


class TestConstruction:
    def test_devices_created(self):
        net = Network(star(4), NetworkConfig())
        assert len(net.nics) == 4
        assert len(net.switches) == 1
        assert len(net.links) == 4

    def test_int_follows_scheme(self):
        assert Network(star(3), NetworkConfig(cc_name="hpcc")).int_enabled
        assert not Network(star(3), NetworkConfig(cc_name="dcqcn")).int_enabled

    def test_int_override(self):
        net = Network(star(3), NetworkConfig(cc_name="dcqcn", int_enabled=True))
        assert net.int_enabled

    def test_header_includes_int_overhead(self):
        with_int = Network(star(3), NetworkConfig(cc_name="hpcc"))
        without = Network(star(3), NetworkConfig(cc_name="dcqcn"))
        assert with_int.header == without.header + 42

    def test_base_rtt_estimated_when_unset(self):
        net = Network(star(3), NetworkConfig())
        assert net.base_rtt > 0

    def test_base_rtt_override(self):
        net = Network(star(3), NetworkConfig(base_rtt=9 * US))
        assert net.base_rtt == 9 * US

    def test_host_port_rate_from_topology(self):
        net = Network(star(3, host_rate="25Gbps"), NetworkConfig())
        assert net.nics[0].port.rate == pytest.approx(gbps(25))

    def test_fattree_builds_and_routes(self):
        net = Network(bench_fattree(), NetworkConfig())
        for sw in net.switches.values():
            assert len(sw.routing_table) == net.topology.n_hosts

    def test_origin_of_covers_all_ports(self):
        net = Network(dumbbell(2, 2), NetworkConfig())
        for (node, peer), ports in net.port_map.items():
            for port in ports:
                assert net.origin_of[(node, port)] == peer


class TestFlows:
    def test_make_flow_allocates_ids(self):
        net = Network(star(3), NetworkConfig())
        a = net.make_flow(0, 1, 1000)
        b = net.make_flow(1, 2, 1000)
        assert a.flow_id != b.flow_id

    def test_add_flow_registers_and_schedules(self):
        net = Network(star(3), NetworkConfig())
        spec = net.make_flow(0, 2, 1000, start_time=5 * US)
        net.add_flow(spec)
        assert net.metrics.flows.n_outstanding == 1
        net.run(until=4 * US)
        assert spec.flow_id not in net.nics[0].flows
        net.run(until=6 * US)
        assert spec.flow_id in net.nics[0].flows

    def test_ideal_fct_formula(self):
        net = Network(star(3, host_rate="100Gbps"),
                      NetworkConfig(base_rtt=9 * US))
        spec = net.make_flow(0, 2, 1_000_000)
        wire_factor = (1000 + net.header) / 1000
        expected = (1_000_000 * wire_factor / gbps(100)
                    + net.pair_base_rtt(0, 2))
        assert net.ideal_fct(spec) == pytest.approx(expected)

    def test_pair_base_rtt_reasonable(self):
        # star with 1us links: ~4us propagation + store-and-forward terms.
        net = Network(star(3, host_rate="100Gbps"),
                      NetworkConfig(base_rtt=9 * US))
        rtt = net.pair_base_rtt(0, 2)
        assert 4 * US < rtt < 5 * US
        # Cached and symmetric in structure for a symmetric topology.
        assert net.pair_base_rtt(0, 2) == rtt
        assert net.pair_base_rtt(2, 0) == pytest.approx(rtt)

    def test_run_until_done_true_when_finished(self):
        net = Network(star(3), NetworkConfig(base_rtt=9 * US))
        net.add_flow(net.make_flow(0, 2, 10_000))
        assert net.run_until_done(deadline=5 * MS)

    def test_run_until_done_false_on_timeout(self):
        net = Network(star(3), NetworkConfig(base_rtt=9 * US))
        net.add_flow(net.make_flow(0, 2, 100_000_000))
        assert not net.run_until_done(deadline=100 * US)


class TestHelpers:
    def test_port_between_host_and_switch(self):
        net = Network(star(3), NetworkConfig())
        assert net.port_between(0, 3) is net.nics[0].port
        assert net.port_between(3, 0).port_id in (0, 1, 2)
        with pytest.raises(LookupError):
            net.port_between(0, 2)       # hosts are not adjacent

    def test_switch_port_labels(self):
        net = Network(star(3), NetworkConfig())
        labels = net.switch_port_labels()
        assert len(labels) == 3
        assert all(label.startswith("sw3->") for label in labels)

    def test_sample_queues_default_all_switch_ports(self):
        net = Network(star(3), NetworkConfig())
        sampler = net.sample_queues(interval=10 * US)
        net.run(until=100 * US)
        assert len(sampler.times) == 10

    def test_host_pause_fraction_zero_without_pauses(self):
        net = Network(star(3), NetworkConfig())
        net.run(until=10 * US)
        assert net.host_pause_fraction(10 * US) == 0.0


class TestSchemesEndToEnd:
    """Every registered scheme completes a transfer on every topology kind."""

    @pytest.mark.parametrize("cc_name", [
        "hpcc", "dcqcn", "timely", "dctcp",
        "dcqcn+win", "timely+win",
        "hpcc-rxrate", "hpcc-perack", "hpcc-perrtt",
    ])
    def test_completes_small_transfer(self, cc_name):
        net = Network(star(3, host_rate="100Gbps"),
                      NetworkConfig(cc_name=cc_name, base_rtt=9 * US))
        net.add_flow(net.make_flow(0, 2, 50_000))
        assert net.run_until_done(deadline=20 * MS)
        assert net.metrics.fct_records[0].slowdown < 3.0

    @pytest.mark.parametrize("topo", [
        star(4, host_rate="25Gbps"),
        dumbbell(2, 2, host_rate="25Gbps"),
        make_testbed(servers_per_tor=2, n_tors=2),
        bench_fattree(),
    ], ids=["star", "dumbbell", "testbed", "fattree"])
    def test_hpcc_works_on_every_topology(self, topo):
        net = Network(topo, NetworkConfig(cc_name="hpcc"))
        last = topo.n_hosts - 1
        net.add_flow(net.make_flow(0, last, 100_000))
        assert net.run_until_done(deadline=50 * MS)
