"""Section 4.3: the reciprocal lookup table."""

import pytest
from hypothesis import given, strategies as st

from repro.core.divtable import ReciprocalTable


class TestConstruction:
    def test_paper_footprint(self):
        # "about 10KB to represent {1/n | 1 <= n <= 2^22}".
        table = ReciprocalTable(n_max=1 << 22, epsilon=0.01)
        assert table.size_bytes < 15_000

    def test_entry_count_grows_with_precision(self):
        coarse = ReciprocalTable(n_max=1 << 16, epsilon=0.05)
        fine = ReciprocalTable(n_max=1 << 16, epsilon=0.01)
        assert fine.entries > coarse.entries

    def test_bad_args(self):
        with pytest.raises(ValueError):
            ReciprocalTable(n_max=0)
        with pytest.raises(ValueError):
            ReciprocalTable(epsilon=0)


class TestAccuracy:
    def test_exact_at_stored_keys(self):
        table = ReciprocalTable(n_max=1000, epsilon=0.02)
        assert table.reciprocal(1) == 1.0
        assert table.reciprocal(2) == 0.5

    def test_error_bounded_by_epsilon(self):
        table = ReciprocalTable(n_max=1 << 18, epsilon=0.01)
        assert table.max_relative_error() <= 0.011

    def test_divide(self):
        table = ReciprocalTable(n_max=1 << 20, epsilon=0.01)
        assert table.divide(100.0, 4.0) == pytest.approx(25.0, rel=0.02)

    def test_clamps_above_n_max(self):
        table = ReciprocalTable(n_max=100, epsilon=0.01)
        assert table.reciprocal(1_000_000) == table.reciprocal(100)

    def test_rejects_below_one(self):
        table = ReciprocalTable(n_max=100)
        with pytest.raises(ValueError):
            table.reciprocal(0.5)

    @given(st.integers(min_value=1, max_value=1 << 20))
    def test_property_relative_error(self, n):
        table = ReciprocalTable(n_max=1 << 20, epsilon=0.02)
        approx = table.reciprocal(n)
        exact = 1.0 / n
        assert abs(approx - exact) / exact <= 0.021

    @given(st.floats(min_value=1.0, max_value=1e5),
           st.integers(min_value=1, max_value=100_000))
    def test_property_division(self, num, den):
        table = ReciprocalTable(n_max=1 << 18, epsilon=0.01)
        assert table.divide(num, den) == pytest.approx(num / den, rel=0.02)
