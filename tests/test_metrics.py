"""Metrics: percentiles, slowdown buckets, goodput, PFC analysis, reporter."""

import pytest

from repro.metrics.fct import (
    WEBSEARCH_BUCKETS,
    percentile,
    short_flow_slowdown,
    slowdown_by_bucket,
)
from repro.metrics.pfcstats import (
    analyze_pause_trees,
    depth_ccdf,
    pause_durations,
    pause_fraction,
)
from repro.metrics.reporter import (
    ascii_series,
    format_bucket_table,
    format_table,
)
from repro.metrics.timeseries import GoodputTracker, jain_fairness
from repro.sim.flow import FctRecord, FlowSpec
from repro.sim.pfc import PauseTracker


def record(size, slowdown, tag="bg", flow_id=None):
    spec = FlowSpec(flow_id or hash((size, slowdown)) % 10**6 + 1,
                    src=0, dst=1, size=size, start_time=0.0, tag=tag)
    ideal = 1000.0
    return FctRecord(spec=spec, start=0.0, finish=ideal * slowdown,
                     ideal=ideal)


class TestPercentile:
    def test_median(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_p0_p100(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_nearest_rank(self):
        assert percentile(list(range(1, 101)), 95) == 95

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestSlowdownBuckets:
    def test_bucketing_by_size(self):
        records = [record(5_000, 2.0), record(5_500, 4.0),
                   record(900_000, 10.0)]
        stats = slowdown_by_bucket(records, WEBSEARCH_BUCKETS)
        assert len(stats) == 2
        small = stats[0]
        assert small.count == 2
        assert small.lo == 0 and small.hi == 6_700
        assert small.p50 == 2.0

    def test_tag_filter(self):
        records = [record(5_000, 2.0, tag="bg"),
                   record(5_000, 50.0, tag="incast")]
        stats = slowdown_by_bucket(records, WEBSEARCH_BUCKETS, tag="bg")
        assert stats[0].count == 1

    def test_oversize_flows_fall_in_last_bucket(self):
        stats = slowdown_by_bucket([record(99_000_000, 3.0)],
                                   WEBSEARCH_BUCKETS)
        assert stats[0].hi == WEBSEARCH_BUCKETS[-1]

    def test_labels(self):
        stats = slowdown_by_bucket([record(5_000, 2.0)], WEBSEARCH_BUCKETS)
        assert stats[0].label == "6.7K"

    def test_short_flow_slowdown(self):
        records = [record(1_000, s) for s in (1.0, 2.0, 10.0)]
        records.append(record(1_000_000, 99.0))
        assert short_flow_slowdown(records, max_size=3_000, pct=99) == 10.0


class TestFctRecord:
    def test_slowdown(self):
        r = record(1000, 2.5)
        assert r.slowdown == pytest.approx(2.5)
        assert r.fct == pytest.approx(2500.0)


class TestGoodput:
    def test_series_binning(self):
        tracker = GoodputTracker(bin_ns=1000.0)
        tracker.record(1, 100.0, 1000)      # bin 0
        tracker.record(1, 1500.0, 2000)     # bin 1
        times, gbps_series = tracker.series(1)
        assert len(times) == 2
        assert gbps_series[0] == pytest.approx(8.0)    # 1000B/1000ns
        assert gbps_series[1] == pytest.approx(16.0)

    def test_total_series_sums_flows(self):
        tracker = GoodputTracker(bin_ns=1000.0)
        tracker.record(1, 100.0, 1000)
        tracker.record(2, 200.0, 1000)
        _, total = tracker.total_series()
        assert total[0] == pytest.approx(16.0)

    def test_mean_gbps(self):
        tracker = GoodputTracker(bin_ns=1000.0)
        tracker.record(1, 500.0, 1250)
        assert tracker.mean_gbps(1, 0.0, 1000.0) == pytest.approx(10.0)

    def test_empty_flow(self):
        tracker = GoodputTracker(bin_ns=1000.0)
        assert tracker.series(42) == ([], [])

    def test_bad_bin_rejected(self):
        with pytest.raises(ValueError):
            GoodputTracker(0)


class TestJain:
    def test_perfectly_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_fairness([])


class TestPfcStats:
    def _tracker(self):
        t = PauseTracker()
        # Root congestion at device 100 pauses device 10's port toward it,
        # which in turn pauses device 1 (a host).
        t.on_paused(10, 0, 0.0)
        t.on_resumed(10, 0, 100.0)
        t.on_paused(1, 0, 10.0)
        t.on_resumed(1, 0, 90.0)
        return t

    def test_pause_fraction(self):
        t = self._tracker()
        frac = pause_fraction(t, duration=1000.0, n_ports=2)
        assert frac == pytest.approx((100 + 80) / 2000.0)

    def test_durations(self):
        assert sorted(pause_durations(self._tracker())) == [80.0, 100.0]

    def test_tree_depth_two(self):
        t = self._tracker()
        origin_of = {(10, 0): 100, (1, 0): 10}
        trees = analyze_pause_trees(t, origin_of, host_ids={1},
                                    host_rate=10.0)
        assert len(trees) == 1
        assert trees[0].depth == 2
        assert trees[0].root_device == 100

    def test_independent_events_two_trees(self):
        t = PauseTracker()
        t.on_paused(10, 0, 0.0)
        t.on_resumed(10, 0, 50.0)
        t.on_paused(10, 0, 500.0)       # much later: no overlap
        t.on_resumed(10, 0, 600.0)
        origin_of = {(10, 0): 100}
        trees = analyze_pause_trees(t, origin_of, host_ids=set(),
                                    host_rate=1.0)
        assert len(trees) == 2
        assert all(tr.depth == 1 for tr in trees)

    def test_depth_ccdf(self):
        t = self._tracker()
        origin_of = {(10, 0): 100, (1, 0): 10}
        trees = analyze_pause_trees(t, origin_of, host_ids={1}, host_rate=1.0)
        ccdf = depth_ccdf(trees)
        assert ccdf[1] == 1.0
        assert ccdf[2] == 1.0

    def test_suppressed_fraction(self):
        t = self._tracker()
        origin_of = {(10, 0): 100, (1, 0): 10}
        trees = analyze_pause_trees(t, origin_of, host_ids={1},
                                    host_rate=10.0)
        # Host 1 paused 80ns of a 100ns window; it is the only host.
        assert trees[0].suppressed_fraction == pytest.approx(0.8)


class TestReporter:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_bucket_table_columns(self):
        records = [record(5_000, 2.0)]
        stats = {"HPCC": slowdown_by_bucket(records, WEBSEARCH_BUCKETS),
                 "DCQCN": slowdown_by_bucket(records, WEBSEARCH_BUCKETS)}
        out = format_bucket_table(stats, "p95")
        assert "HPCC" in out and "DCQCN" in out and "6.7K" in out

    def test_ascii_series_shape(self):
        out = ascii_series([0, 1, 2], [0.0, 1.0, 2.0], width=20, height=5,
                           label="q")
        lines = out.splitlines()
        assert lines[0].startswith("q")
        assert len(lines) == 7

    def test_ascii_series_empty(self):
        assert "(no data)" in ascii_series([], [], label="x")
