"""Units: parsing, conversion, formatting."""

import pytest

from repro.sim import units


class TestParseBandwidth:
    def test_gbps(self):
        assert units.parse_bandwidth("100Gbps") == pytest.approx(12.5)

    def test_mbps(self):
        assert units.parse_bandwidth("800Mbps") == pytest.approx(0.1)

    def test_case_insensitive(self):
        assert units.parse_bandwidth("25gbps") == units.parse_bandwidth("25Gbps")

    def test_numeric_passthrough(self):
        assert units.parse_bandwidth(12.5) == 12.5

    def test_tbps(self):
        assert units.parse_bandwidth("1Tbps") == pytest.approx(125.0)

    def test_bad_unit(self):
        with pytest.raises(units.UnitError):
            units.parse_bandwidth("10parsecs")

    def test_bad_format(self):
        with pytest.raises(units.UnitError):
            units.parse_bandwidth("Gbps10")


class TestParseTime:
    def test_us(self):
        assert units.parse_time("5us") == 5000.0

    def test_ms(self):
        assert units.parse_time("1.5ms") == 1_500_000.0

    def test_seconds(self):
        assert units.parse_time("2s") == 2e9

    def test_ns(self):
        assert units.parse_time("80ns") == 80.0

    def test_numeric_passthrough(self):
        assert units.parse_time(42) == 42.0

    def test_scientific(self):
        assert units.parse_time("1e3ns") == 1000.0


class TestParseSize:
    def test_kb(self):
        assert units.parse_size("400KB") == 400_000

    def test_mb(self):
        assert units.parse_size("32MB") == 32_000_000

    def test_kib(self):
        assert units.parse_size("4KiB") == 4096

    def test_numeric(self):
        assert units.parse_size(1000) == 1000


class TestConversions:
    def test_gbps_roundtrip(self):
        assert units.bytes_per_ns_to_gbps(units.gbps(100)) == pytest.approx(100)

    def test_serialization_time_example(self):
        # 1000B at 100Gbps = 80ns.
        assert 1000 / units.gbps(100) == pytest.approx(80.0)


class TestFormatting:
    def test_fmt_time_us(self):
        assert units.fmt_time(5_400) == "5.400us"

    def test_fmt_time_ms(self):
        assert units.fmt_time(2_000_000) == "2.000ms"

    def test_fmt_bytes_kb(self):
        assert units.fmt_bytes(22_900) == "22.9KB"

    def test_fmt_bytes_mb(self):
        assert units.fmt_bytes(2_100_000) == "2.10MB"

    def test_fmt_rate(self):
        assert units.fmt_rate(units.gbps(25)) == "25.00Gbps"
