"""Routing: BFS tables, ECMP selection, hash determinism."""

from collections import Counter

from repro.sim.routing import (
    bfs_distances,
    build_routing_tables,
    ecmp_hash,
    ecmp_select,
)
from repro.topology.base import LinkSpec, Topology
from repro.topology.fattree import FatTreeSpec, fattree
from repro.topology.simple import dumbbell, star


def port_map_for(topology):
    """Assign sequential port ids per node, as Network does."""
    port_map = {}
    next_port = {n: 0 for n in list(topology.switches) + list(topology.hosts)}
    for link in topology.links:
        for node, peer in ((link.a, link.b), (link.b, link.a)):
            pid = 0 if topology.is_host(node) else next_port[node]
            if not topology.is_host(node):
                next_port[node] += 1
            port_map.setdefault((node, peer), []).append(pid)
    return port_map


class TestBfs:
    def test_distances_on_star(self):
        topo = star(3)
        dist = bfs_distances(topo, 0)
        assert dist[3] == 1          # switch
        assert dist[1] == 2          # other host

    def test_distances_on_dumbbell(self):
        topo = dumbbell(2, 2)
        dist = bfs_distances(topo, 0)
        assert dist[4] == 1          # left switch
        assert dist[5] == 2          # right switch
        assert dist[2] == 3          # right host


class TestRoutingTables:
    def test_star_routes_direct(self):
        topo = star(4)
        tables = build_routing_tables(topo, port_map_for(topo))
        switch_table = tables[4]
        # Every host reachable through exactly one port.
        assert set(switch_table) == {0, 1, 2, 3}
        assert all(len(ports) == 1 for ports in switch_table.values())

    def test_dumbbell_cross_traffic_uses_trunk(self):
        topo = dumbbell(2, 2)
        pm = port_map_for(topo)
        tables = build_routing_tables(topo, pm)
        left_switch = 4
        trunk_ports = pm[(left_switch, 5)]
        assert tables[left_switch][2] == tuple(trunk_ports)

    def test_fattree_all_hosts_reachable_from_all_switches(self):
        topo = fattree(FatTreeSpec(
            n_pods=2, tors_per_pod=2, aggs_per_pod=2, n_core=2,
            hosts_per_tor=2,
        ))
        tables = build_routing_tables(topo, port_map_for(topo))
        for sw in topo.switches:
            assert set(tables[sw]) == set(topo.hosts)

    def test_fattree_ecmp_width(self):
        # A ToR reaching a remote pod's host should have one ECMP entry per
        # pod-local Agg.
        spec = FatTreeSpec(n_pods=2, tors_per_pod=2, aggs_per_pod=2,
                           n_core=2, hosts_per_tor=2)
        topo = fattree(spec)
        tables = build_routing_tables(topo, port_map_for(topo))
        tor0 = topo.switch_tiers["tor"][0]
        remote_host = topo.n_hosts - 1
        assert len(tables[tor0][remote_host]) == spec.aggs_per_pod


class TestEcmp:
    def test_hash_deterministic(self):
        assert ecmp_hash(1, 2, 3) == ecmp_hash(1, 2, 3)

    def test_hash_varies_with_inputs(self):
        values = {ecmp_hash(f, 0, 1) for f in range(100)}
        assert len(values) == 100

    def test_select_single_port_shortcut(self):
        assert ecmp_select((9,), 123, 0, 1) == 9

    def test_select_stable_per_flow(self):
        ports = (0, 1, 2, 3)
        choice = ecmp_select(ports, 42, 7, 9)
        assert all(ecmp_select(ports, 42, 7, 9) == choice for _ in range(10))

    def test_select_spreads_flows(self):
        ports = (0, 1, 2, 3)
        counts = Counter(ecmp_select(ports, f, 0, 1) for f in range(4000))
        assert set(counts) == set(ports)
        for port in ports:
            assert 0.15 < counts[port] / 4000 < 0.35

    def test_forward_reverse_hash_independent(self):
        ports = (0, 1)
        forward = [ecmp_select(ports, f, 0, 1) for f in range(200)]
        reverse = [ecmp_select(ports, f, 1, 0) for f in range(200)]
        assert forward != reverse      # directions hash independently


class TestParallelLinks:
    def test_parallel_links_both_in_ecmp(self):
        # Two parallel links between one switch pair.
        topo = Topology(
            name="par", n_hosts=2, n_switches=2,
            links=[
                LinkSpec(0, 2, 12.5, 100.0),
                LinkSpec(1, 3, 12.5, 100.0),
                LinkSpec(2, 3, 12.5, 100.0),
                LinkSpec(2, 3, 12.5, 100.0),
            ],
        )
        pm = port_map_for(topo)
        tables = build_routing_tables(topo, pm)
        assert len(tables[2][1]) == 2
