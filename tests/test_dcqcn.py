"""DCQCN: CNP decrease, alpha dynamics, the staged increase ladder."""

import pytest

from repro.core.dcqcn import Dcqcn
from repro.sim.packet import Packet, PacketType
from repro.sim.units import US, gbps

from tests.helpers import FakeFlow


def make_dcqcn(env, **kw):
    cc = Dcqcn(env, **kw)
    flow = FakeFlow()
    cc.install(flow)
    return cc, flow


def data_pkt(size=1000):
    return Packet(PacketType.DATA, 1, 0, 1, payload=size, header=0)


class TestDecrease:
    def test_first_cnp_halves(self, env):
        cc, flow = make_dcqcn(env)
        cc.on_cnp(flow, now=0.0)
        # alpha starts at 1: Rc *= (1 - 1/2).
        assert flow.rate == pytest.approx(env.line_rate / 2)
        assert cc.rt == pytest.approx(env.line_rate)

    def test_alpha_update_on_cnp(self, env):
        cc, flow = make_dcqcn(env, g=1 / 256)
        cc.alpha = 0.5
        cc.on_cnp(flow, now=0.0)
        assert cc.alpha == pytest.approx((1 - 1 / 256) * 0.5 + 1 / 256)

    def test_small_alpha_gentle_cut(self, env):
        cc, flow = make_dcqcn(env)
        cc.alpha = 0.1
        cc.on_cnp(flow, now=0.0)
        assert flow.rate == pytest.approx(env.line_rate * 0.95)

    def test_rate_floor(self, env):
        cc, flow = make_dcqcn(env, min_rate=gbps(0.1))
        for k in range(100):
            cc.on_cnp(flow, now=float(k))
        assert flow.rate >= gbps(0.1) - 1e-12

    def test_cnp_resets_stages_and_bytes(self, env):
        cc, flow = make_dcqcn(env)
        cc.t_stage, cc.b_stage, cc.bytes_since = 3, 2, 999
        cc.on_cnp(flow, now=0.0)
        assert (cc.t_stage, cc.b_stage, cc.bytes_since) == (0, 0, 0)


class TestIncreaseLadder:
    def test_fast_recovery_approaches_rt(self, env):
        cc, flow = make_dcqcn(env, fast_recovery_stages=5)
        cc.on_cnp(flow, now=0.0)
        rt = cc.rt
        rc = cc.rc
        cc.t_stage = 1
        cc._increase(flow)
        assert cc.rc == pytest.approx((rt + rc) / 2)
        assert cc.rt == rt                      # FR leaves the target alone

    def test_additive_after_f_stages(self, env):
        cc, flow = make_dcqcn(env)
        cc.on_cnp(flow, now=0.0)
        cc.t_stage = 5                          # past fast recovery
        rt = cc.rt
        cc._increase(flow)
        assert cc.rt == pytest.approx(min(rt + cc.rai, env.line_rate))

    def test_hyper_when_both_counters_past_f(self, env):
        cc, flow = make_dcqcn(env)
        cc.on_cnp(flow, now=0.0)
        cc.rt = env.line_rate / 4
        cc.t_stage = 6
        cc.b_stage = 6
        rt = cc.rt
        cc._increase(flow)
        assert cc.rt == pytest.approx(rt + cc.rhai)

    def test_rt_capped_at_line_rate(self, env):
        cc, flow = make_dcqcn(env)
        cc.t_stage = 10
        cc.rt = env.line_rate
        cc._increase(flow)
        assert cc.rt <= env.line_rate

    def test_byte_counter_triggers_stage(self, env):
        cc, flow = make_dcqcn(env, byte_counter=10_000)
        cc.on_cnp(flow, now=0.0)
        rc = cc.rc
        for _ in range(10):
            cc.on_packet_sent(flow, data_pkt(1000), now=0.0)
        assert cc.b_stage == 1
        assert cc.rc > rc


class TestTimers:
    def test_increase_timer_fires(self, env):
        cc, flow = make_dcqcn(env, ti=300 * US)
        cc.on_cnp(flow, now=0.0)
        rc = cc.rc
        env.sim.run(until=350 * US)
        assert cc.t_stage >= 1
        assert cc.rc > rc

    def test_alpha_decays_without_cnp(self, env):
        cc, flow = make_dcqcn(env, alpha_timer=55 * US)
        cc.alpha = 1.0
        cc.last_cnp = -float("inf")
        env.sim.run(until=120 * US)
        assert cc.alpha < 1.0

    def test_alpha_holds_with_recent_cnp(self, env):
        cc, flow = make_dcqcn(env, alpha_timer=55 * US, g=1 / 256)
        env.sim.schedule(54 * US, cc.on_cnp, flow, 54 * US)
        env.sim.run(until=56 * US)
        # The timer at 55us sees a CNP 1us ago: no decay on top of the
        # on-CNP update.
        assert cc.alpha == pytest.approx(1.0)

    def test_flow_done_cancels_timers(self, env):
        cc, flow = make_dcqcn(env, ti=10 * US)
        cc.on_flow_done(flow, now=0.0)
        pending_before = env.sim.pending
        env.sim.run(until=1000 * US)
        assert cc.t_stage == 0
        assert env.sim.pending <= pending_before

    def test_cnp_resets_increase_timer(self, env):
        cc, flow = make_dcqcn(env, ti=100 * US)
        env.sim.schedule(90 * US, cc.on_cnp, flow, 90 * US)
        env.sim.run(until=150 * US)
        # Timer was reset at 90us; no stage until 190us.
        assert cc.t_stage == 0


class TestDefaults:
    def test_cnp_interval_is_td(self, env):
        cc = Dcqcn(env, td=4 * US)
        assert cc.cnp_interval == 4 * US

    def test_rai_scales_with_line_rate(self, env):
        cc = Dcqcn(env)
        # 40Mbps at 40G scaled to 100G = 100Mbps.
        assert cc.rai == pytest.approx(gbps(0.1))

    def test_invalid_timers_rejected(self, env):
        with pytest.raises(ValueError):
            Dcqcn(env, ti=0)

    def test_starts_at_line_rate_unwindowed(self, env):
        cc, flow = make_dcqcn(env)
        assert flow.rate == pytest.approx(env.line_rate)
        assert flow.window is None
