"""End-to-end behavioural tests: the paper's claims at miniature scale."""

import pytest

from repro.metrics.fct import percentile
from repro.network import Network, NetworkConfig
from repro.sim.units import MS, US, gbps
from repro.topology import dumbbell, star


def incast_net(cc, fan_in=8, rate="100Gbps", **cfg):
    net = Network(star(fan_in + 1, host_rate=rate),
                  NetworkConfig(cc_name=cc, base_rtt=9 * US, **cfg))
    return net


class TestHpccHeadlines:
    def test_near_zero_steady_queue(self):
        """Two elephants under HPCC: q95 stays a few KB (Figure 9f)."""
        net = incast_net("hpcc", fan_in=3)
        sampler = net.sample_queues(
            interval=1 * US, labels={"b": net.port_between(4, 3)}
        )
        for s in range(2):
            net.add_flow(net.make_flow(s, 3, 4_000_000))
        net.run_until_done(deadline=10 * MS)
        t = sampler.times
        steady = [q for tt, q in zip(t, sampler.samples["b"])
                  if tt > 0.2 * MS]
        assert percentile(steady, 95) < 10_000

    def test_utilization_near_eta(self):
        """HPCC deliberately leaves ~5% headroom (Section 5.3)."""
        net = incast_net("hpcc", fan_in=3, goodput_bin=50 * US)
        specs = [net.make_flow(s, 3, 4_000_000) for s in range(2)]
        net.add_flows(specs)
        net.run_until_done(deadline=10 * MS)
        total = sum(
            net.metrics.goodput.mean_gbps(s.flow_id, 0.3 * MS, 0.6 * MS)
            for s in specs
        )
        # Goodput excludes the 90B/pkt header; eta=95% of 100G.
        assert 70 < total < 95

    def test_incast_no_pfc_with_hpcc(self):
        """The paper's stability headline: HPCC incast triggers no PFC."""
        net = incast_net("hpcc", fan_in=8, buffer_bytes=2_000_000)
        for s in range(8):
            net.add_flow(net.make_flow(s, 8, 500_000))
        assert net.run_until_done(deadline=20 * MS)
        assert net.metrics.pause_tracker.pause_count() == 0
        assert net.metrics.drop_count == 0

    def test_incast_dcqcn_triggers_pfc_same_setup(self):
        net = incast_net("dcqcn", fan_in=8, buffer_bytes=2_000_000)
        for s in range(8):
            net.add_flow(net.make_flow(s, 8, 500_000))
        net.run_until_done(deadline=50 * MS)
        assert net.metrics.pause_tracker.pause_count() > 0
        assert net.metrics.drop_count == 0        # PFC kept it lossless

    def test_fairness_two_flows(self):
        net = incast_net("hpcc", fan_in=3)
        specs = [net.make_flow(s, 3, 2_000_000) for s in range(2)]
        net.add_flows(specs)
        net.run_until_done(deadline=10 * MS)
        fcts = [r.fct for r in net.metrics.fct_records]
        assert max(fcts) / min(fcts) < 1.25

    def test_late_joiner_converges(self):
        """MI+AI: a flow joining an occupied link gets a usable share."""
        net = incast_net("hpcc", fan_in=3, goodput_bin=100 * US)
        early = net.make_flow(0, 3, 12_000_000)
        late = net.make_flow(1, 3, 3_000_000, start_time=1 * MS)
        net.add_flows([early, late])
        net.run_until_done(deadline=20 * MS)
        late_record = net.metrics.flows.finished[late.flow_id]
        # A fair ~45G share of the 100G link gives slowdown ~2.2 against
        # the line-rate ideal; starvation would blow far past that.
        assert late_record.slowdown < 4.0


class TestConservation:
    def test_all_bytes_delivered_exactly_once_lossless(self):
        net = incast_net("hpcc", fan_in=4)
        total = 0
        for s in range(4):
            size = 100_000 + s * 17_000
            total += size
            net.add_flow(net.make_flow(s, 4, size))
        assert net.run_until_done(deadline=20 * MS)
        # Lossless + per-packet go-back-N with no drops: no duplicates.
        assert net.metrics.data_bytes_delivered == total
        for rf in net.nics[4].recv_flows.values():
            assert rf.state.expected in (100_000, 117_000, 134_000, 151_000)

    def test_switch_buffers_drain_after_run(self):
        net = incast_net("hpcc", fan_in=4)
        for s in range(4):
            net.add_flow(net.make_flow(s, 4, 50_000))
        assert net.run_until_done(deadline=20 * MS)
        net.run(until=net.sim.now + 1 * MS)
        switch = net.switches[5]
        assert switch.buffer.used == 0
        assert switch.total_queued_bytes() == 0

    def test_lossy_gbn_still_delivers_everything(self):
        net = incast_net("dcqcn", fan_in=6, pfc_enabled=False,
                         buffer_bytes=60_000, rto=300 * US)
        for s in range(6):
            net.add_flow(net.make_flow(s, 6, 120_000))
        assert net.run_until_done(deadline=200 * MS)
        assert net.metrics.drop_count > 0
        for rf in net.nics[6].recv_flows.values():
            assert rf.state.expected == 120_000

    def test_lossy_irn_fewer_retransmissions_than_gbn(self):
        results = {}
        for mode in ("gbn", "irn"):
            net = incast_net("dctcp", fan_in=6, transport=mode,
                             pfc_enabled=False, buffer_bytes=50_000,
                             rto=300 * US)
            for s in range(6):
                net.add_flow(net.make_flow(s, 6, 150_000))
            assert net.run_until_done(deadline=200 * MS), mode
            delivered = net.metrics.data_bytes_delivered
            results[mode] = delivered - 6 * 150_000     # duplicate bytes
        assert results["irn"] <= results["gbn"]


class TestMultiBottleneck:
    def test_dumbbell_trunk_is_bottleneck(self):
        topo = dumbbell(2, 2, host_rate="100Gbps", trunk_rate="50Gbps")
        net = Network(topo, NetworkConfig(cc_name="hpcc", base_rtt=9 * US,
                                          goodput_bin=100 * US))
        specs = [net.make_flow(0, 2, 2_000_000),
                 net.make_flow(1, 3, 2_000_000)]
        net.add_flows(specs)
        net.run_until_done(deadline=20 * MS)
        rates = [net.metrics.goodput.mean_gbps(s.flow_id, 0.2 * MS, 0.5 * MS)
                 for s in specs]
        # Two flows share the 50G trunk: ~23.75G each (eta x 50 / 2).
        assert sum(rates) < 50
        assert all(r > 12 for r in rates)

    def test_hpcc_multi_hop_int_reports_bottleneck(self):
        """The max-U hop selection must find the trunk, not the access."""
        topo = dumbbell(1, 1, host_rate="100Gbps", trunk_rate="25Gbps")
        net = Network(topo, NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        net.add_flow(net.make_flow(0, 1, 1_000_000))
        net.run_until_done(deadline=20 * MS)
        record = net.metrics.fct_records[0]
        # Ideal FCT uses the host rate; the 25G trunk makes the flow ~4x
        # slower, minus eta.  It must neither collapse nor overshoot.
        assert 3.5 < record.slowdown < 6.0
