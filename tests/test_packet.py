"""Packets and INT records (Figure 7 semantics)."""

from repro.sim.packet import (
    ACK_SIZE,
    BASE_HEADER,
    INT_OVERHEAD,
    IntHop,
    Packet,
    PacketType,
    make_ack,
    make_cnp,
    make_data_packet,
    make_pause,
)


class TestDataPacket:
    def test_wire_size_without_int(self):
        pkt = make_data_packet(1, 0, 1, seq=0, payload=1000, int_enabled=False, now=0.0)
        assert pkt.wire_size == 1000 + BASE_HEADER
        assert pkt.int_hops is None

    def test_wire_size_with_int(self):
        pkt = make_data_packet(1, 0, 1, seq=0, payload=1000, int_enabled=True, now=0.0)
        assert pkt.wire_size == 1000 + BASE_HEADER + INT_OVERHEAD
        assert pkt.int_hops == []

    def test_timestamp_recorded(self):
        pkt = make_data_packet(1, 0, 1, seq=0, payload=100, int_enabled=False, now=55.5)
        assert pkt.ts_tx == 55.5

    def test_add_int_hop_counts(self):
        pkt = make_data_packet(1, 0, 1, seq=0, payload=100, int_enabled=True, now=0.0)
        pkt.add_int_hop(IntHop(12.5, 1.0, 100, 0))
        pkt.add_int_hop(IntHop(50.0, 2.0, 200, 10))
        assert pkt.hop_count == 2
        assert [h.bandwidth for h in pkt.int_hops] == [12.5, 50.0]


class TestAck:
    def _data(self, int_enabled=True):
        pkt = make_data_packet(7, 3, 9, seq=2000, payload=1000,
                               int_enabled=int_enabled, now=11.0)
        if int_enabled:
            pkt.add_int_hop(IntHop(12.5, 5.0, 12345, 678, rx_bytes=999))
        return pkt

    def test_direction_reversed(self):
        ack = make_ack(self._data(), ack_seq=3000, now=20.0)
        assert (ack.src, ack.dst) == (9, 3)
        assert ack.ptype is PacketType.ACK

    def test_seq_echo_and_cumulative(self):
        ack = make_ack(self._data(), ack_seq=3000, now=20.0)
        assert ack.seq == 2000        # per-packet echo (HPCC's ack.seq)
        assert ack.ack_seq == 3000    # cumulative

    def test_int_stack_moved_to_ack(self):
        # The data packet is dead once its ACK exists, so make_ack *moves*
        # the INT stack (allocation-lean path) instead of copying it.
        data = self._data()
        ack = make_ack(data, ack_seq=3000, now=20.0)
        assert ack.int_hops[0].tx_bytes == 12345
        assert ack.int_hops[0].rx_bytes == 999
        assert data.int_hops is None

    def test_no_int_stack_means_none_on_ack(self):
        ack = make_ack(self._data(int_enabled=False), ack_seq=3000, now=20.0)
        assert ack.int_hops is None

    def test_ecn_echo(self):
        data = self._data()
        data.ecn = True
        assert make_ack(data, 0, 0.0).ecn is True

    def test_ts_echo_for_rtt(self):
        ack = make_ack(self._data(), 0, now=99.0)
        assert ack.ts_tx == 11.0

    def test_nack_type(self):
        assert make_ack(self._data(), 0, 0.0, nack=True).ptype is PacketType.NACK

    def test_ack_size_includes_int_echo(self):
        with_int = make_ack(self._data(True), 0, 0.0)
        without = make_ack(self._data(False), 0, 0.0)
        assert with_int.wire_size == ACK_SIZE + INT_OVERHEAD
        assert without.wire_size == ACK_SIZE


class TestControlFrames:
    def test_cnp(self):
        cnp = make_cnp(5, 1, 2)
        assert cnp.ptype is PacketType.CNP
        assert (cnp.flow_id, cnp.src, cnp.dst) == (5, 1, 2)

    def test_pause_resume(self):
        pause = make_pause(priority=0, pause=True)
        resume = make_pause(priority=0, pause=False)
        assert pause.ptype is PacketType.PAUSE
        assert resume.ptype is PacketType.RESUME
        assert pause.wire_size == 64


class TestIntHop:
    def test_copy_is_independent(self):
        hop = IntHop(12.5, 1.0, 10, 20, 30)
        dup = hop.copy()
        dup.qlen = 999
        assert hop.qlen == 20
