"""HPCC design-choice variants: per-ACK, per-RTT, rxRate."""

import pytest

from repro.core.hpcc import Hpcc
from repro.core.hpcc_variants import HpccPerAck, HpccPerRtt, HpccRxRate
from repro.sim.units import gbps

from tests.helpers import FakeFlow, make_int_ack


def install(cls, env, **kw):
    cc = cls(env, **kw)
    flow = FakeFlow()
    cc.install(flow)
    return cc, flow


def congested_ack(env, seq, ts, tx):
    """An ACK reporting a BDP-deep queue at full txRate."""
    return make_int_ack(seq, [(gbps(100), ts, tx, int(env.bdp))])


class TestPerAck:
    @staticmethod
    def _run_congested_acks(cls, env, n_acks=6):
        cc, flow = install(cls, env, wai=0.0)
        flow.snd_nxt = 1_000_000        # all ACKs fall inside one RTT round
        cc.on_ack(flow, make_int_ack(0, [(gbps(100), 0.0, 0, 0)]), now=0.0)
        for k in range(1, n_acks + 1):
            cc.on_ack(flow, congested_ack(env, 1000 * k, 1000.0 * k,
                                          12_500 * k), now=1000.0 * k)
        return flow.window

    def test_reactions_compound_vs_baseline(self, env):
        """Per-ACK reacts to every ACK against a moving base, so ACKs
        describing the same queue compound (the Figure 5 overreaction);
        baseline HPCC holds its reference window for the round."""
        per_ack = self._run_congested_acks(HpccPerAck, env)
        baseline = self._run_congested_acks(Hpcc, env)
        assert per_ack < 0.8 * baseline

    def test_each_ack_moves_reference(self, env):
        cc, flow = install(HpccPerAck, env, wai=0.0)
        flow.snd_nxt = 1_000_000
        cc.on_ack(flow, make_int_ack(0, [(gbps(100), 0.0, 0, 0)]), now=0.0)
        cc.on_ack(flow, congested_ack(env, 1000, 1000.0, 12_500), now=1000.0)
        wc1 = cc.wc
        cc.on_ack(flow, congested_ack(env, 2000, 2000.0, 25_000), now=2000.0)
        assert cc.wc < wc1


class TestPerRtt:
    def test_mid_rtt_acks_ignored(self, env):
        cc, flow = install(HpccPerRtt, env, wai=0.0)
        flow.snd_nxt = 100_000
        # Priming ACK (seq 0 is not > lastUpdateSeq 0: no W update).
        cc.on_ack(flow, make_int_ack(0, [(gbps(100), 0.0, 0, 0)]), now=0.0)
        # Boundary ACK: seq 1000 > 0 -> reacts, lastUpdateSeq = 100000.
        cc.on_ack(flow, congested_ack(env, 1000, 1000.0, 12_500), now=1000.0)
        w1 = flow.window
        # Mid-RTT ACKs (seq < 100000) must not move the window at all.
        cc.on_ack(flow, congested_ack(env, 2000, 2000.0, 25_000), now=2000.0)
        cc.on_ack(flow, congested_ack(env, 3000, 3000.0, 37_500), now=3000.0)
        assert flow.window == w1

    def test_next_rtt_boundary_reacts(self, env):
        cc, flow = install(HpccPerRtt, env, wai=0.0)
        flow.snd_nxt = 5_000
        cc.on_ack(flow, make_int_ack(0, [(gbps(100), 0.0, 0, 0)]), now=0.0)
        cc.on_ack(flow, congested_ack(env, 1000, 1000.0, 12_500), now=1000.0)
        w1 = flow.window
        # seq 6000 > lastUpdateSeq 5000: new round, reacts again.
        flow.snd_nxt = 50_000
        cc.on_ack(flow, congested_ack(env, 6000, 2000.0, 25_000), now=2000.0)
        assert flow.window < w1


class TestRxRate:
    def test_uses_rx_counter(self, env):
        cc, flow = install(HpccRxRate, env)
        b = gbps(100)
        flow.snd_nxt = 50_000
        # tx says idle (no bytes moved), rx says saturated.
        first = make_int_ack(0, [(b, 0.0, 0, 0)], rx_bytes=[0])
        cc.on_ack(flow, first, now=0.0)
        second = make_int_ack(1000, [(b, 1000.0, 0, 0)], rx_bytes=[12_500])
        u = cc.measure_inflight(second)
        tau = 1000.0 / env.base_rtt
        assert u == pytest.approx((1 - tau) * 1.0 + tau * 1.0)

    def test_double_counts_congestion(self, env):
        """With a standing queue AND arrivals above capacity, rxRate sees
        both signals (Section 3.4's point: they overlap)."""
        tx_cc, tx_flow = install(Hpcc, env, wai=0.0)
        rx_cc, rx_flow = install(HpccRxRate, env, wai=0.0)
        b = gbps(100)
        q = int(env.bdp)
        for cc, flow in ((tx_cc, tx_flow), (rx_cc, rx_flow)):
            flow.snd_nxt = 100_000
            prime = make_int_ack(0, [(b, 0.0, 0, q)], rx_bytes=[0])
            cc.on_ack(flow, prime, now=0.0)
            # tx moved 12.5KB (rate 1.0B), rx absorbed 25KB (rate 2.0B).
            ack = make_int_ack(1000, [(b, 1000.0, 12_500, q)],
                               rx_bytes=[25_000])
            cc.on_ack(flow, ack, now=1000.0)
        assert rx_flow.window < tx_flow.window


class TestVariantsShareCore:
    def test_all_need_int(self, env):
        for cls in (HpccPerAck, HpccPerRtt, HpccRxRate):
            assert cls(env).needs_int

    def test_all_start_at_line_rate(self, env):
        for cls in (HpccPerAck, HpccPerRtt, HpccRxRate):
            cc, flow = install(cls, env)
            assert flow.rate == pytest.approx(env.line_rate)
            assert flow.window == pytest.approx(env.bdp)
