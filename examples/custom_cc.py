#!/usr/bin/env python3
"""Extending the library: plug in your own congestion-control scheme.

Implements a deliberately naive AIMD scheme against the public
``CcAlgorithm`` interface, registers it, and races it against HPCC on the
same incast.  Use this as the template for experimenting with new
algorithms on the simulator.

Run:  python examples/custom_cc.py
"""

from repro import Network, NetworkConfig
from repro.core import CcAlgorithm, CcEnv, SchemeInfo, register
from repro.metrics.reporter import format_table
from repro.sim.ecn import EcnPolicy
from repro.sim.units import KB, MS, US, gbps
from repro.topology import star


class NaiveAimd(CcAlgorithm):
    """ECN-echo AIMD: halve the window on a marked ACK, +1 MSS per RTT."""

    needs_int = False

    def __init__(self, env: CcEnv) -> None:
        super().__init__(env)
        self.last_cut = -float("inf")
        self.acked_since_increase = 0

    def install(self, flow) -> None:
        flow.window = self.env.bdp
        flow.rate = self.env.line_rate

    def on_ack(self, flow, ack, now: float) -> None:
        if ack.ecn and now - self.last_cut > self.env.base_rtt:
            flow.window = self.clamp_window(flow.window / 2.0)
            self.last_cut = now
        else:
            self.acked_since_increase += ack.payload + 1000
            if self.acked_since_increase >= flow.window:
                flow.window = self.clamp_window(flow.window + self.env.mtu)
                self.acked_since_increase = 0
        flow.rate = self.clamp_rate(flow.window / self.env.base_rtt)


register(SchemeInfo(
    name="naive-aimd",
    needs_int=False,
    make=lambda env, params: NaiveAimd(env),
    default_ecn=lambda params: EcnPolicy(
        kmin=30 * KB, kmax=30 * KB, pmax=1.0, ref_rate=gbps(10)
    ),
))


def race(cc_name: str):
    topology = star(9, host_rate="25Gbps", link_delay="1us")
    net = Network(topology, NetworkConfig(cc_name=cc_name, base_rtt=9 * US))
    sampler = net.sample_queues(
        interval=5 * US, labels={"b": net.port_between(9, 8)}
    )
    for s in range(8):
        net.add_flow(net.make_flow(src=s, dst=8, size=2_000_000))
    net.run_until_done(deadline=40 * MS)
    fcts = [r.fct / MS for r in net.metrics.fct_records]
    return {
        "done": len(fcts),
        "worst_fct_ms": max(fcts) if fcts else float("nan"),
        "queue_p95_kb": sampler.pct(95) / 1000,
    }


def main() -> None:
    rows = []
    for name in ("naive-aimd", "hpcc"):
        r = race(name)
        rows.append((name, f"{r['done']}/8", f"{r['worst_fct_ms']:.2f}",
                     f"{r['queue_p95_kb']:.1f}"))
    print(format_table(
        ["scheme", "flows done", "worst FCT (ms)", "queue p95 (KB)"],
        rows, title="Your scheme vs HPCC on an 8-to-1 incast (25Gbps)",
    ))


if __name__ == "__main__":
    main()
