#!/usr/bin/env python3
"""A day in the datacenter: realistic load on a FatTree.

Replays the WebSearch flow-size distribution (scaled 10x down for speed)
at 30% average load on a scaled FatTree and prints the per-size-bucket FCT
slowdown table for HPCC and DCQCN side by side — a miniature Figure 10.

Run:  python examples/datacenter_load.py
"""

from repro import Network, NetworkConfig
from repro.metrics import percentile, slowdown_by_bucket
from repro.metrics.reporter import format_bucket_table, format_table
from repro.sim.units import US
from repro.topology import bench_fattree
from repro.workloads import poisson_flows, websearch

LOAD = 0.30
N_FLOWS = 200
SIZE_SCALE = 0.1


def run(cc_name: str, cdf, seed: int = 42):
    topology = bench_fattree()
    net = Network(topology, NetworkConfig(cc_name=cc_name, base_rtt=13 * US))
    rates = {h: topology.host_rate(h) for h in topology.hosts}
    total_capacity = sum(rates.values())
    wire = (net.config.mtu + net.header) / net.config.mtu
    duration = N_FLOWS * cdf.mean() * wire / (LOAD * total_capacity)
    specs = poisson_flows(
        list(topology.hosts), rates, cdf, LOAD, duration,
        seed=seed, wire_overhead=wire,
    )
    net.add_flows(specs)
    net.run_until_done(deadline=3 * duration)
    return net.metrics.fct_records


def main() -> None:
    cdf = websearch().scaled(SIZE_SCALE)
    edges = [0] + [int(d) for d in cdf.deciles()]
    tables = {}
    summary_rows = []
    for cc_name in ("hpcc", "dcqcn"):
        records = run(cc_name, cdf)
        tables[cc_name.upper()] = slowdown_by_bucket(records, edges)
        slowdowns = [r.slowdown for r in records]
        summary_rows.append((
            cc_name.upper(), len(records),
            f"{percentile(slowdowns, 50):.2f}",
            f"{percentile(slowdowns, 95):.2f}",
            f"{percentile(slowdowns, 99):.2f}",
        ))
    print(format_table(
        ["scheme", "flows", "p50", "p95", "p99"],
        summary_rows,
        title=f"WebSearch (x{SIZE_SCALE:g}) at {LOAD:.0%} load on a scaled FatTree",
    ))
    print()
    print(format_bucket_table(
        tables, "p95", title="p95 FCT slowdown per flow-size bucket",
    ))


if __name__ == "__main__":
    main()
