#!/usr/bin/env python3
"""HPCC's three parameters, swept (Section 3.3).

* eta       — utilization target: trades a little bandwidth for queues;
* maxStage  — additive stages before a multiplicative jump;
* WAI       — additive increase: fairness speed vs queue floor.

Each sweep runs the same 8-to-1 incast plus a late-joining flow and
reports utilization, queueing and how fast the newcomer converges to its
fair share.

Run:  python examples/parameter_tuning.py
"""

from repro import Network, NetworkConfig
from repro.metrics.reporter import format_table
from repro.sim.units import MS, US
from repro.topology import star


def run(params: dict):
    topology = star(9, host_rate="100Gbps", link_delay="1us")
    net = Network(topology, NetworkConfig(
        cc_name="hpcc", cc_params=params, base_rtt=9 * US,
        goodput_bin=100 * US,
    ))
    sampler = net.sample_queues(
        interval=2 * US, labels={"b": net.port_between(9, 8)}
    )
    specs = [net.make_flow(src=s, dst=8, size=12_000_000) for s in range(7)]
    late = net.make_flow(src=7, dst=8, size=12_000_000, start_time=2 * MS)
    net.add_flows(specs + [late])
    net.run_until_done(deadline=12 * MS)
    late_rate = net.metrics.goodput.mean_gbps(late.flow_id, 3 * MS, 5 * MS)
    total = sum(
        net.metrics.goodput.mean_gbps(s.flow_id, 3 * MS, 5 * MS)
        for s in specs + [late]
    )
    return {
        "q95_kb": sampler.pct(95) / 1000,
        "util_gbps": total,
        "late_share": late_rate / (total / 8) if total else 0.0,
    }


def main() -> None:
    sweeps = [
        ("eta=0.90", {"eta": 0.90}),
        ("eta=0.95 (default)", {}),
        ("eta=0.98", {"eta": 0.98}),
        ("maxStage=0", {"max_stage": 0}),
        ("maxStage=5 (default)", {}),
        ("WAI x10", {"n_flows_for_wai": 10}),
        ("WAI default (N=100)", {}),
    ]
    rows = []
    for label, params in sweeps:
        r = run(params)
        rows.append((label, f"{r['q95_kb']:.1f}", f"{r['util_gbps']:.1f}",
                     f"{r['late_share']:.2f}"))
    print(format_table(
        ["setting", "queue p95 (KB)", "utilization (Gbps)",
         "late flow / fair share"],
        rows,
        title="HPCC parameter sweeps: 8-to-1 on 100Gbps, late joiner at 2ms",
    ))


if __name__ == "__main__":
    main()
