#!/usr/bin/env python3
"""Flapping-trunk sweep: fault schedules as a first-class sweep axis.

End-to-end tour of the network-dynamics subsystem:

1. build a grid of ``flap_link`` timelines (one per flap period) with
   :func:`repro.dynamics.dynamics_axis` — fault schedules vary across
   the grid exactly like a CC parameter would;
2. run the whole grid through :class:`~repro.runner.SweepRunner` on the
   fluid backend (a packet sweep of the same grid works identically,
   ~80x slower — swap ``BACKEND``);
3. post-process the ``RunRecord`` goodput series into recovery-time
   plot data: flap period vs time-to-90%-of-steady after the last
   restore, per scheme.

The printed table *is* the plot data (period on x, recovery on y, one
series per scheme) — pipe it into your plotter of choice.

Run:  PYTHONPATH=src python examples/flapping_sweep.py
"""

from repro.dynamics import FlapLink, Timeline, dynamics_axis
from repro.experiments.failover import recovery_time_us
from repro.metrics.reporter import format_table
from repro.runner import CcChoice, ScenarioGrid, ScenarioSpec, SweepRunner, \
    cc_axis
from repro.sim.units import MS, US

BACKEND = "fluid"
N_PAIRS = 4
SW_A, SW_B = 2 * N_PAIRS, 2 * N_PAIRS + 1
FLAP_AT = 2 * MS
DOWN_TIME = 0.6 * MS
COUNT = 3
GOODPUT_BIN = 100 * US
PERIODS_MS = (1.2, 2.0, 3.0, 4.0)

SCHEMES = (
    CcChoice("hpcc", label="HPCC"),
    CcChoice("dcqcn", label="DCQCN"),
)


def build_grid() -> list[ScenarioSpec]:
    timelines = [
        Timeline([FlapLink(at=FLAP_AT, a=SW_A, b=SW_B,
                           period=period * MS, down_time=DOWN_TIME,
                           count=COUNT)])
        for period in PERIODS_MS
    ]
    base = ScenarioSpec(
        program="flows",
        topology="dual_trunk",
        topology_params={"n_pairs": N_PAIRS},
        workload={
            "flows": [[i, N_PAIRS + i, 40_000_000, 0.0, "bg"]
                      for i in range(N_PAIRS)],
            "deadline": FLAP_AT + COUNT * max(PERIODS_MS) * MS + 4 * MS,
        },
        config={"base_rtt": 9 * US, "goodput_bin": GOODPUT_BIN,
                "rto": 500 * US},
        backend=BACKEND,
        meta={"figure": "flapping-sweep"},
    )
    grid = ScenarioGrid(base, cc_axis(SCHEMES), dynamics_axis(timelines))
    return [
        spec.replaced(meta={**spec.meta, "period_ms": period})
        for spec, period in zip(
            grid.expand(), [p for _cc in SCHEMES for p in PERIODS_MS]
        )
    ]


def recovery_rows(specs, records):
    rows = []
    for spec, record in zip(specs, records):
        period = spec.meta["period_ms"]
        goodput = record.goodput()
        ids = record.flow_ids("bg")
        steady = sum(
            goodput.mean_gbps(fid, 1 * MS, FLAP_AT) for fid in ids
        )
        last_restore = FLAP_AT + (COUNT - 1) * period * MS + DOWN_TIME
        recovery_us = recovery_time_us(record, last_restore, 0.9 * steady, ids)
        flaps = [e for e in record.link_events() if e["type"] == "fail_link"]
        rows.append((
            spec.label, f"{period:.1f}", f"{steady:.1f}",
            f"{recovery_us:.0f}" if recovery_us != float("inf") else "never",
            sum(e["packets_lost_down"] for e in flaps),
        ))
    return rows


def main() -> None:
    specs = build_grid()
    print(f"sweeping {len(specs)} flapping scenarios on the {BACKEND} "
          "backend ...")
    records = SweepRunner().run(specs)
    print(format_table(
        ["scheme", "flap period (ms)", "steady (G)", "recovery (us)",
         "pkts lost"],
        recovery_rows(specs, records),
        title=f"Recovery after the last of {COUNT} flaps "
              f"({DOWN_TIME / MS:.1f}ms outages, one trunk of two)",
    ))


if __name__ == "__main__":
    main()
