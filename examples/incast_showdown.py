#!/usr/bin/env python3
"""Incast showdown: HPCC versus DCQCN under a 16-to-1 burst.

The scenario behind the paper's Case-1 war story: many senders burst at
line rate into one receiver.  HPCC's inflight-byte cap stops the queue
almost immediately; DCQCN (rate-only control) buffers megabytes and leans
on PFC.

Run:  python examples/incast_showdown.py
"""

from repro import Network, NetworkConfig
from repro.metrics.reporter import ascii_series, format_table
from repro.sim.units import MS, US
from repro.topology import star

FAN_IN = 16
FLOW_SIZE = 1_000_000


def run(cc_name: str):
    topology = star(FAN_IN + 1, host_rate="100Gbps", link_delay="1us")
    net = Network(topology, NetworkConfig(
        cc_name=cc_name, base_rtt=9 * US, buffer_bytes=16_000_000,
    ))
    receiver = FAN_IN
    switch = FAN_IN + 1
    sampler = net.sample_queues(
        interval=2 * US, labels={"bneck": net.port_between(switch, receiver)}
    )
    for sender in range(FAN_IN):
        net.add_flow(net.make_flow(src=sender, dst=receiver, size=FLOW_SIZE))
    net.run_until_done(deadline=10 * MS)
    times, qlens = sampler.series("bneck")
    fcts = sorted(r.fct / US for r in net.metrics.fct_records)
    return {
        "queue": (times, qlens),
        "peak_kb": max(qlens) / 1000,
        "finished": len(fcts),
        "last_fct_us": fcts[-1] if fcts else float("nan"),
        "pauses": net.metrics.pause_tracker.pause_count(),
    }


def main() -> None:
    results = {name: run(name) for name in ("hpcc", "dcqcn")}
    rows = [
        (name, f"{r['peak_kb']:.0f}", f"{r['finished']}/{FAN_IN}",
         f"{r['last_fct_us']:.0f}", r["pauses"])
        for name, r in results.items()
    ]
    print(format_table(
        ["scheme", "peak queue (KB)", "flows done", "last FCT (us)", "PFC pauses"],
        rows, title=f"{FAN_IN}-to-1 incast, 1MB each, 100Gbps fabric",
    ))
    for name, r in results.items():
        print()
        t, q = r["queue"]
        print(ascii_series(
            t[:400], [v / 1000 for v in q[:400]],
            label=f"{name} bottleneck queue (KB)", t_unit=US,
        ))


if __name__ == "__main__":
    main()
