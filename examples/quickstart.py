#!/usr/bin/env python3
"""Quickstart: build a network, run HPCC, inspect the results.

Builds a 4-host star (one switch), runs two 1MB flows into the same
receiver under HPCC, and prints flow completion times, slowdowns and the
bottleneck queue profile.  Everything here is public API.

Run:  python examples/quickstart.py
"""

from repro import Network, NetworkConfig
from repro.metrics.reporter import ascii_series, format_table
from repro.sim.units import MS, US
from repro.topology import star


def main() -> None:
    # 1. A topology: 4 hosts x 100Gbps on one switch, 1us links.
    topology = star(n_hosts=4, host_rate="100Gbps", link_delay="1us")

    # 2. A network running HPCC (eta=95%, maxStage=5 — the paper defaults).
    net = Network(topology, NetworkConfig(cc_name="hpcc", base_rtt=9 * US))

    # 3. Watch the bottleneck: the switch port toward the receiver (host 3).
    bottleneck = net.port_between(4, 3)          # node 4 is the switch
    sampler = net.sample_queues(interval=1 * US, labels={"to-receiver": bottleneck})

    # 4. Two flows into the same receiver — they must share 100Gbps.
    net.add_flow(net.make_flow(src=0, dst=3, size=1_000_000))
    net.add_flow(net.make_flow(src=1, dst=3, size=1_000_000))

    # 5. Run until both complete.
    done = net.run_until_done(deadline=10 * MS)
    assert done, "flows did not finish"

    rows = [
        (r.spec.flow_id, f"{r.spec.size:,}", f"{r.fct / US:.1f}",
         f"{r.ideal / US:.1f}", f"{r.slowdown:.2f}")
        for r in sorted(net.metrics.fct_records, key=lambda r: r.spec.flow_id)
    ]
    print(format_table(
        ["flow", "bytes", "FCT (us)", "ideal (us)", "slowdown"],
        rows, title="Two flows sharing a 100Gbps bottleneck under HPCC",
    ))
    print()
    times, qlens = sampler.series("to-receiver")
    print(ascii_series(
        times, [q / 1000 for q in qlens],
        label="bottleneck queue (KB) — HPCC keeps it near zero",
        t_unit=US,
    ))
    print()
    print(f"queue p95: {sampler.pct(95) / 1000:.1f}KB, "
          f"peak: {sampler.max() / 1000:.1f}KB, "
          f"drops: {net.metrics.drop_count}")

    # 6. The same scenario on the flow-level fluid backend: no packets,
    #    RTT-granularity steps, the same HPCC control law — use it
    #    (`ScenarioSpec(backend="fluid")` / `hpcc-repro sweep --backend
    #    fluid`) when sweeping scenarios too big for packet simulation.
    from repro import FluidEngine
    from repro.sim.flow import FlowSpec

    engine = FluidEngine(topology, cc_name="hpcc", base_rtt=9 * US)
    engine.add_flows([FlowSpec(1, 0, 3, 1_000_000, 0.0),
                      FlowSpec(2, 1, 3, 1_000_000, 0.0)])
    engine.run(deadline=10 * MS)
    print()
    for r in sorted(engine.fct_records, key=lambda r: r.spec.flow_id):
        print(f"fluid backend: flow {r.spec.flow_id} "
              f"FCT {r.fct / US:.1f}us (slowdown {r.slowdown:.2f}) "
              f"in {engine.steps} RTT steps instead of "
              f"{net.sim.events_processed:,} packet events")


if __name__ == "__main__":
    main()
