#!/usr/bin/env python3
"""Operations playbook: failure injection, packet tracing, result export.

The workflow a network operator would run against the simulator: start a
loaded fabric, cut a trunk mid-run, watch the CC re-converge, and leave
with machine-readable artifacts (CSV/JSON + a packet trace) for offline
analysis.

Run:  python examples/operations_playbook.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import Network, NetworkConfig
from repro.experiments.failover import dual_trunk
from repro.metrics.export import (
    run_summary,
    write_fct_csv,
    write_pauses_csv,
    write_queue_csv,
    write_summary_json,
)
from repro.metrics.reporter import format_table
from repro.sim.trace import PacketTracer
from repro.sim.units import MS, US


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="hpcc-ops-"))
    out_dir.mkdir(parents=True, exist_ok=True)

    # A 2-rack fabric with two parallel 50G trunks, HPCC everywhere.
    topology = dual_trunk(n_pairs=4)
    net = Network(topology, NetworkConfig(
        cc_name="hpcc", base_rtt=9 * US, goodput_bin=100 * US,
    ))
    tracer = PacketTracer.attach(net, max_events=50_000)
    sampler = net.sample_queues(interval=10 * US)

    # Four rack-to-rack transfers; one trunk dies at 2ms.
    sw_a, sw_b = topology.switch_tiers["tor"]
    specs = [net.make_flow(src=i, dst=4 + i, size=10_000_000)
             for i in range(4)]
    net.add_flows(specs)
    net.sim.at(2 * MS, lambda: net.fail_link(sw_a, sw_b))

    done = net.run_until_done(deadline=20 * MS)
    sampler.stop()

    rows = [
        (r.spec.flow_id, f"{r.fct / MS:.2f}", f"{r.slowdown:.2f}")
        for r in sorted(net.metrics.fct_records, key=lambda r: r.spec.flow_id)
    ]
    print(format_table(
        ["flow", "FCT (ms)", "slowdown"],
        rows, title="Transfers across a mid-run trunk failure (HPCC)",
    ))
    print(f"\nall flows finished: {done}; "
          f"packets lost to the cut: "
          f"{sum(l.packets_lost_down for l in net.links)}; "
          f"drops at switches: {net.metrics.drop_count}")

    # Export everything.
    n_fct = write_fct_csv(net.metrics.fct_records, out_dir / "fct.csv")
    n_q = write_queue_csv(sampler, out_dir / "queues.csv")
    n_p = write_pauses_csv(net.metrics.pause_tracker, out_dir / "pauses.csv")
    n_t = tracer.write(out_dir / "trace.txt")
    write_summary_json(
        run_summary(net.metrics.fct_records, net.sim.now,
                    tracker=net.metrics.pause_tracker,
                    drops=net.metrics.drop_count,
                    extra={"cc": "hpcc", "scenario": "trunk-failover"}),
        out_dir / "summary.json",
    )
    print(f"\nwrote to {out_dir}:")
    print(f"  fct.csv ({n_fct} flows), queues.csv ({n_q} samples), "
          f"pauses.csv ({n_p} intervals), trace.txt ({n_t} events), "
          f"summary.json")


if __name__ == "__main__":
    main()
