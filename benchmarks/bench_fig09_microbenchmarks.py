"""Figure 9: the four testbed micro-benchmarks, HPCC versus DCQCN."""

from repro.experiments.figure09 import (
    run_elephant_mice,
    run_fairness,
    run_incast,
    run_long_short,
)

from conftest import run_once


def test_fig09ab_long_short_recovery(benchmark):
    """9a/9b: HPCC recovers the long flow immediately; DCQCN does not
    recover within the window (paper: >350 RTTs)."""
    result = run_once(benchmark, run_long_short)

    print()
    for scheme, gbps in result.recovery_gbps.items():
        print(f"{scheme}: long-flow goodput after short leaves = {gbps:.1f}G")

    assert result.recovery_gbps["HPCC"] > 18       # ~line rate (25G - eta/hdr)
    assert result.recovery_gbps["DCQCN"] < 0.5 * result.recovery_gbps["HPCC"]


def test_fig09cd_incast_queue(benchmark):
    """9c/9d: HPCC drains the incast queue in ~1 RTT; DCQCN piles up
    hundreds of KB (paper: 550KB)."""
    result = run_once(benchmark, run_incast)

    print()
    for scheme in result.queue_peak:
        print(f"{scheme}: peak {result.queue_peak[scheme] / 1000:.0f}KB, "
              f"after 10 RTTs {result.queue_after_2rtt[scheme] / 1000:.0f}KB")

    assert result.queue_peak["HPCC"] < 0.25 * result.queue_peak["DCQCN"]
    assert result.queue_after_2rtt["HPCC"] < \
        0.25 * result.queue_after_2rtt["DCQCN"]


def test_fig09ef_elephant_mice_latency(benchmark):
    """9e/9f: mice latency ~base RTT under HPCC; DCQCN's standing queue
    (around the ECN threshold) multiplies the tail latency."""
    result = run_once(benchmark, run_elephant_mice)

    print()
    for scheme in result.mice_p50_us:
        print(f"{scheme}: mice p50 {result.mice_p50_us[scheme]:.1f}us "
              f"p95 {result.mice_p95_us[scheme]:.1f}us; queue p95 "
              f"{result.queue_p95[scheme] / 1000:.1f}KB")

    assert result.mice_p95_us["HPCC"] < 15             # ~8.5us base RTT
    assert result.mice_p95_us["DCQCN"] > 2 * result.mice_p95_us["HPCC"]
    assert result.queue_p95["HPCC"] < 5_000
    assert result.queue_p95["DCQCN"] > 20_000


def test_fig09gh_fairness(benchmark):
    """9g/9h: HPCC shares fairly at full utilization even on short
    timescales."""
    result = run_once(benchmark, run_fairness)

    print()
    for scheme, jain in result.jain_all_active.items():
        rates = " ".join(f"{r:.1f}" for r in result.rates_all_active[scheme])
        print(f"{scheme}: Jain {jain:.3f}, rates [{rates}] Gbps")

    assert result.jain_all_active["HPCC"] > 0.95
    hpcc_total = sum(result.rates_all_active["HPCC"])
    dcqcn_total = sum(result.rates_all_active["DCQCN"])
    assert hpcc_total > 2 * dcqcn_total       # DCQCN's slow recovery
