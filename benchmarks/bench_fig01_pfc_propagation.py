"""Figure 1: PFC pause propagation depth and suppressed bandwidth.

Paper (production data): ~10% of pause events propagate 3 hops; the worst
events suppress up to 25% of network capacity.  Here: DCQCN + incast on a
synthetic PoD (DESIGN.md substitution 5).
"""

from repro.experiments.figure01 import run_figure01

from conftest import run_once


def test_fig01_pause_trees(benchmark):
    result = run_once(benchmark, run_figure01, scale="bench")

    print()
    print(f"pause trees: {len(result.trees)}")
    for depth, frac in sorted(result.depth_ccdf.items()):
        print(f"  P(depth >= {depth}) = {frac * 100:.1f}%")
    if result.suppressed:
        print(f"  worst suppressed capacity: {result.suppressed[0] * 100:.1f}%")

    # Shape: pauses happen, a meaningful share propagates multiple hops,
    # and the worst event silences a double-digit share of host capacity.
    assert result.pause_events > 10
    assert result.depth_ccdf.get(1, 0) == 1.0
    assert result.depth_ccdf.get(2, 0) > 0.05
    assert result.suppressed and result.suppressed[0] > 0.10
