"""Figure 10: testbed WebSearch loads — FCT slowdowns and queue CDFs.

Paper headline: at 50% load HPCC cuts the 99th-percentile slowdown of
short flows by 95% (53.9 -> 2.70) and keeps p99 queues at 22.9KB versus
DCQCN's 2.1MB.
"""

from repro.experiments.figure10 import run_figure10
from repro.metrics.reporter import format_bucket_table

from conftest import run_once


def test_fig10_websearch_loads(benchmark):
    result = run_once(benchmark, run_figure10, scale="bench",
                      loads=(0.30, 0.50))

    for load in result.buckets:
        print()
        print(format_bucket_table(
            result.buckets[load], "p99",
            title=f"Fig 10 ({load:.0%}): p99 slowdown per bucket",
        ))
        for cc in result.queue_p99[load]:
            print(f"  {cc}: queue p50/p95/p99 = "
                  f"{result.queue_p50[load][cc] / 1000:.1f}/"
                  f"{result.queue_p95[load][cc] / 1000:.1f}/"
                  f"{result.queue_p99[load][cc] / 1000:.1f} KB; "
                  f"short-flow p99 slowdown {result.short_p99[load][cc]:.2f}")

    for load in (0.30, 0.50):
        # Short flows (first decile bucket, which has enough samples for a
        # stable p99): HPCC's tail is a small multiple of ideal; DCQCN's
        # is substantially worse (95% reduction at full scale).
        hpcc_short = result.buckets[load]["HPCC"][0].p99
        dcqcn_short = result.buckets[load]["DCQCN"][0].p99
        assert hpcc_short < 3.0
        assert dcqcn_short > 1.3 * hpcc_short
        # HPCC wins the p99 of every size bucket.
        for h, d in zip(result.buckets[load]["HPCC"],
                        result.buckets[load]["DCQCN"]):
            assert h.p99 <= d.p99 * 1.05
        # Queues: both median ~0; HPCC's p99 much smaller than DCQCN's.
        assert result.queue_p50[load]["HPCC"] == 0
        assert result.queue_p99[load]["HPCC"] < \
            0.25 * result.queue_p99[load]["DCQCN"]
