"""Sweep-runner wall-clock: serial vs ``--jobs 4`` on a multi-scheme grid.

The grid is six independent load scenarios (3 CC schemes x 2 seeds) on a
small testbed PoD — the Figure 10/11 shape at reduced flow count.  On a
multi-core box the parallel run beats serial roughly by min(jobs, cores);
on a single-core box it degrades gracefully to ~serial (pool overhead is
a few percent).  The cache pass is near-free everywhere, which is why
the speedup assertion below is on the cache, not the pool.
"""

from __future__ import annotations

import os
import time

from repro.runner import (
    CcChoice,
    RunCache,
    ScenarioGrid,
    ScenarioSpec,
    SweepRunner,
    axis,
    cc_axis,
)
from repro.sim.units import US

from conftest import run_once

SCHEMES = (
    CcChoice("hpcc", label="HPCC"),
    CcChoice("dcqcn", label="DCQCN"),
    CcChoice("dctcp", label="DCTCP"),
)


def sweep_grid() -> list[ScenarioSpec]:
    base = ScenarioSpec(
        program="load",
        topology="testbed",
        topology_params=dict(servers_per_tor=4, n_tors=2,
                             host_rate="10Gbps", uplink_rate="40Gbps"),
        workload={"cdf": "websearch", "size_scale": 0.1,
                  "load": 0.3, "n_flows": 150},
        config={"base_rtt": 9 * US, "buffer_bytes": 4_000_000},
        label="sweep-bench",
    )
    return ScenarioGrid(base, cc_axis(SCHEMES), axis("seed", [1, 2])).expand()


def test_sweep_serial(benchmark):
    records = run_once(benchmark, SweepRunner(jobs=1).run, sweep_grid())
    assert len(records) == 6
    assert all(r.fct for r in records)


def test_sweep_parallel_jobs4(benchmark):
    records = run_once(benchmark, SweepRunner(jobs=4).run, sweep_grid())
    assert len(records) == 6
    assert all(r.fct for r in records)


def test_sweep_speedup_and_cache(tmp_path):
    """Report the serial / parallel / cached wall-clock side by side."""
    specs = sweep_grid()

    t0 = time.perf_counter()
    serial = SweepRunner(jobs=1).run(specs)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = SweepRunner(jobs=4, cache=RunCache(tmp_path)).run(specs)
    t_parallel = time.perf_counter() - t0

    t0 = time.perf_counter()
    cached = SweepRunner(jobs=4, cache=RunCache(tmp_path)).run(specs)
    t_cached = time.perf_counter() - t0

    print(
        f"\nsweep of {len(specs)} scenarios on {os.cpu_count()} CPU(s): "
        f"serial {t_serial:.2f}s, "
        f"--jobs 4 {t_parallel:.2f}s ({t_serial / t_parallel:.2f}x), "
        f"cached {t_cached:.3f}s ({t_serial / max(t_cached, 1e-9):.0f}x)"
    )
    # Identical results on every path (determinism is what makes the
    # parallelism and the cache trustworthy).
    assert [r.fct for r in serial] == [r.fct for r in parallel]
    assert [r.fct for r in parallel] == [r.fct for r in cached]
    assert all(r.cached for r in cached)
    # The cache pass must be essentially free next to recomputation.
    assert t_cached < t_serial / 5
