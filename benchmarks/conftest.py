"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures at bench scale,
prints the paper-style table, and asserts the figure's *shape* (who wins,
roughly by how much, where crossovers fall).  Runs are full experiments,
so every benchmark executes exactly once (pedantic, one round).
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
