"""Figure 13: fast reaction without overreaction (16-to-1 incast).

Paper: per-ACK reaction collapses throughput to ~0 and oscillates;
per-RTT reaction leaves the startup queue standing far longer; HPCC's
reference-window design drains fast at high throughput.
"""

from repro.experiments.figure13 import run_figure13

from conftest import run_once


def test_fig13_reaction_strategies(benchmark):
    result = run_once(benchmark, run_figure13, scale="bench")

    print()
    for label in ("per-ACK", "per-RTT", "HPCC"):
        drain = result.drain_time[label]
        drain_txt = f"{drain / 1000:.0f}us" if drain != float("inf") else "never"
        print(f"{label}: min tput {result.min_throughput_after_start[label]:.1f}G,"
              f" queue<50KB at {drain_txt}")

    tput = result.min_throughput_after_start
    drain = result.drain_time

    # Overreaction: per-ACK's throughput floor collapses far below HPCC's.
    assert tput["per-ACK"] < 0.5 * tput["HPCC"]
    # Slow reaction: per-RTT holds the startup queue longest.
    assert drain["per-RTT"] > drain["HPCC"]
    assert drain["per-RTT"] > drain["per-ACK"]
    # HPCC: no collapse and a fast drain.
    assert tput["HPCC"] > 40
