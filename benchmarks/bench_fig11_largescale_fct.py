"""Figure 11: six CC schemes on the FatTree with FB_Hadoop traffic.

Paper shapes asserted:
* HPCC achieves the lowest p95 FCT slowdown for short flows (and the
  lowest short-flow latency) in both traffic cases;
* HPCC's long flows pay the eta+INT bandwidth tax (higher large-bucket
  slowdown than the windowed baselines);
* only the schemes without in-flight caps (DCQCN, TIMELY) trigger large
  PFC pauses; +win variants and HPCC keep pauses near zero;
* DCTCP beats DCQCN/TIMELY but HPCC at least halves DCTCP's latency.
"""

from repro.experiments.figure11 import run_figure11
from repro.metrics.reporter import format_bucket_table

from conftest import run_once

CASE = "30%+incast"


def test_fig11_six_schemes(benchmark):
    result = run_once(
        benchmark, run_figure11, scale="bench", cases=(CASE,),
        overrides={"n_flows": 450},
    )

    print()
    print(format_bucket_table(result.buckets[CASE], "p95",
                              title=f"Fig 11 ({CASE}): p95 slowdown"))
    for scheme in result.pause_fraction[CASE]:
        print(f"  {scheme}: pauses {result.pause_fraction[CASE][scheme] * 100:.3f}%"
              f"  short p95 {result.short_p95_us[CASE][scheme]:.1f}us")

    buckets = result.buckets[CASE]
    pauses = result.pause_fraction[CASE]
    latency = result.short_p95_us[CASE]

    def short_p95(scheme):
        return max(s.p95 for s in buckets[scheme][:3])

    def large_p95(scheme):
        return buckets[scheme][-1].p95

    # HPCC wins short flows against every baseline.
    for scheme in ("DCQCN", "TIMELY", "DCQCN+win", "TIMELY+win", "DCTCP"):
        assert short_p95("HPCC") < short_p95(scheme)
        assert latency["HPCC"] <= latency[scheme]

    # The bandwidth-headroom tax: HPCC's largest bucket is not the best.
    assert large_p95("HPCC") > min(
        large_p95(s) for s in ("DCQCN+win", "TIMELY+win", "DCTCP")
    )

    # PFC: uncapped schemes pause orders of magnitude more.
    capped_worst = max(pauses["DCQCN+win"], pauses["TIMELY+win"],
                       pauses["DCTCP"], pauses["HPCC"])
    assert pauses["DCQCN"] > 5 * max(capped_worst, 1e-6)
    assert pauses["TIMELY"] > 5 * max(capped_worst, 1e-6)

    # DCTCP outperforms DCQCN/TIMELY; HPCC at least halves DCTCP latency.
    assert latency["DCTCP"] < latency["DCQCN"]
    assert latency["DCTCP"] < latency["TIMELY"]
    assert latency["HPCC"] < 0.7 * latency["DCTCP"]
