"""Simulator-substrate performance: raw event throughput and a reference
packet-forwarding scenario.

These are classic timing benchmarks (multiple rounds) — they track the
cost of the substrate itself, which determines how far the paper's
full-scale experiments are from feasible in pure Python.
"""

from repro.network import Network, NetworkConfig
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.topology import star


def test_engine_event_throughput(benchmark):
    """Schedule/run cost of the bare event loop."""

    def run_events():
        sim = Simulator()
        count = 20_000

        def chain(remaining):
            if remaining:
                sim.schedule(1.0, chain, remaining - 1)

        chain(count)
        sim.run()
        return sim.events_processed

    processed = benchmark(run_events)
    assert processed == 20_000


def test_packet_forwarding_throughput(benchmark):
    """End-to-end packets/second through a 4-host star under HPCC."""

    def run_transfer():
        net = Network(star(4, host_rate="100Gbps"),
                      NetworkConfig(cc_name="hpcc", base_rtt=9 * US))
        net.add_flow(net.make_flow(0, 3, 1_000_000))
        net.add_flow(net.make_flow(1, 3, 1_000_000))
        net.run_until_done(deadline=10 * MS)
        return net.sim.events_processed

    events = benchmark(run_transfer)
    assert events > 10_000
