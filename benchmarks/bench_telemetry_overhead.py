"""Telemetry must be (nearly) free: <2% on both engines, off and on.

The obs subsystem's hard constraint (ISSUE 7): with telemetry off the
engines must run within 2% of their uninstrumented speed, and even with
probes attached the overhead must stay under the same bar — which is
what the call-site-granularity probe design buys (one ``None`` check
per ``run()`` call / per step, never per event).

Three measurements, each min-of-N with the variants interleaved so
machine noise hits both sides equally:

* **packet off** — the true off-path cost: ``Simulator.run`` (the thin
  dispatch wrapper) vs ``Simulator._run`` (the loop body the wrapper
  guards), driving the same chunked chain workload that mirrors
  ``Network.run_until_done``'s 100 µs call pattern.
* **packet on** — the same workload with a :class:`SimProbe` attached
  vs detached.  Off-cost is a strict subset of on-cost, so this also
  bounds the off path a fortiori.
* **fluid on** — a bench-tier Figure-11 scenario through
  ``execute_spec`` with and without run telemetry (probe + spans +
  memory sink).  The fluid off path is a single ``probe is None``
  check per RTT step, bounded by the same a-fortiori argument.

Two more measurements bound the control-loop flight recorder (ISSUE 9):
**packet decisions** and **fluid decisions** run one fig13-style
incast through ``execute_spec`` with ``decisions=True`` (per-ACK
:class:`~repro.obs.DecisionTap` recording + export) against the same
run with plain telemetry.  Decision recording is genuine per-decision
hot-path work, so it gets its own bar (:data:`DECISIONS_LIMIT`, <3%)
— still small, because a record is one tuple append into a bounded
ring.

A small absolute grace (:data:`GRACE_S`) keeps sub-hundred-millisecond
measurements from failing on scheduler jitter alone; the ratio bar is
what matters at real workload sizes.

Run standalone for a report::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

from __future__ import annotations

import gc
import time

from conftest import run_once
from repro.obs import Telemetry, instrument_simulator
from repro.runner import CcChoice
from repro.runner.execute import execute_spec
from repro.sim.engine import Simulator

#: Overhead bar: instrumented / baseline wall time.
LIMIT = 1.02

#: Overhead bar for the per-ACK decision tap (over a telemetry run).
DECISIONS_LIMIT = 1.03

#: Absolute jitter grace: a delta under this is noise, not overhead.
GRACE_S = 0.010

N_EVENTS = 100_000
CHUNK_NS = 500.0            # events are 1 ns apart -> 500 events/run call
REPEATS = 5


def _chain_sim() -> Simulator:
    sim = Simulator()

    def chain(remaining):
        if remaining:
            sim.schedule(1.0, chain, remaining - 1)

    chain(N_EVENTS)
    return sim


def _drive(sim: Simulator, run) -> None:
    until = 0.0
    while sim.pending:
        until += CHUNK_NS
        run(until)


def _interleaved_min(variant_a, variant_b, repeats: int = REPEATS):
    """Best-of-N wall time for two thunks, alternating a/b each round.

    GC is collected before and disabled during each timed section so an
    allocation-heavy variant doesn't eat a stochastic collection pause
    that the other side dodged.
    """
    best_a = best_b = float("inf")
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            gc.collect()
            gc.disable()
            started = time.perf_counter()
            variant_a()
            best_a = min(best_a, time.perf_counter() - started)
            gc.enable()
            gc.collect()
            gc.disable()
            started = time.perf_counter()
            variant_b()
            best_b = min(best_b, time.perf_counter() - started)
            gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a, best_b


def _verdict(baseline_s: float, tested_s: float,
             limit: float = LIMIT) -> dict:
    return {
        "baseline_s": baseline_s,
        "tested_s": tested_s,
        "ratio": tested_s / baseline_s,
        "delta_s": tested_s - baseline_s,
        "limit": limit,
        "ok": tested_s / baseline_s <= limit
        or tested_s - baseline_s <= GRACE_S,
    }


def run_packet_off() -> dict:
    """Dispatch wrapper vs raw loop body, telemetry detached."""

    def direct():
        sim = _chain_sim()
        _drive(sim, lambda until: sim._run(until=until))
        assert sim.events_processed == N_EVENTS

    def wrapped():
        sim = _chain_sim()
        _drive(sim, lambda until: sim.run(until=until))
        assert sim.events_processed == N_EVENTS

    direct_s, wrapped_s = _interleaved_min(direct, wrapped)
    return _verdict(direct_s, wrapped_s)


def run_packet_on() -> dict:
    """Probe attached (gauges every 64th run call) vs detached."""

    def off():
        sim = _chain_sim()
        _drive(sim, lambda until: sim.run(until=until))

    def on():
        sim = _chain_sim()
        tel = Telemetry(run_id="bench:packet")
        probe = instrument_simulator(sim, tel)
        _drive(sim, lambda until: sim.run(until=until))
        probe.finish(sim)
        tel.close()

    off_s, on_s = _interleaved_min(off, on)
    return _verdict(off_s, on_s)


def _fluid_spec():
    from repro.experiments import figure11

    spec = figure11.scenarios(
        scale="bench", schemes=(CcChoice("hpcc", label="HPCC"),)
    )[0]
    return spec.replaced(backend="fluid")


def run_fluid_on() -> dict:
    """A fluid Figure-11 run with full run telemetry vs without."""
    spec = _fluid_spec()

    def off():
        execute_spec(spec)

    def on():
        record = execute_spec(spec, telemetry=True)
        assert record.telemetry, "telemetry run produced no records"

    off_s, on_s = _interleaved_min(off, on, repeats=3)
    return _verdict(off_s, on_s)


def _decision_spec(backend: str):
    """fig13's HPCC cell shrunk to a 2-to-1 incast, on ``backend``."""
    from repro.experiments import figure13

    specs = figure13.scenarios(
        params={"fan_in": 2, "flow_size": 500_000}
    )
    spec = next(s for s in specs if (s.label or "") == "HPCC")
    return spec.replaced(backend=backend)


def run_decisions(backend: str) -> dict:
    """Decision tap attached vs plain telemetry, same spec and engine."""
    spec = _decision_spec(backend)

    def off():
        record = execute_spec(spec, telemetry=True)
        assert record.telemetry, "telemetry run produced no records"

    def on():
        record = execute_spec(spec, decisions=True)
        assert any(r.get("kind") == "decision" for r in record.telemetry), \
            "decision run recorded no decisions"

    off_s, on_s = _interleaved_min(off, on)
    return _verdict(off_s, on_s, limit=DECISIONS_LIMIT)


def run_all() -> dict:
    return {
        "packet_off": run_packet_off(),
        "packet_on": run_packet_on(),
        "fluid_on": run_fluid_on(),
        "packet_decisions": run_decisions("packet"),
        "fluid_decisions": run_decisions("fluid"),
    }


def _assert_ok(name: str, result: dict) -> None:
    limit = result.get("limit", LIMIT)
    assert result["ok"], (
        f"{name}: telemetry overhead {100 * (result['ratio'] - 1):.1f}% "
        f"(+{result['delta_s'] * 1e3:.1f}ms) exceeds "
        f"{100 * (limit - 1):.0f}% + {GRACE_S * 1e3:.0f}ms grace "
        f"({result['baseline_s']:.3f}s -> {result['tested_s']:.3f}s)"
    )


def test_packet_dispatch_overhead_off(benchmark):
    result = run_once(benchmark, run_packet_off)
    _assert_ok("packet off", result)


def test_packet_probe_overhead_on(benchmark):
    result = run_once(benchmark, run_packet_on)
    _assert_ok("packet on", result)


def test_fluid_telemetry_overhead_on(benchmark):
    result = run_once(benchmark, run_fluid_on)
    _assert_ok("fluid on", result)


def test_packet_decision_tap_overhead(benchmark):
    result = run_once(benchmark, lambda: run_decisions("packet"))
    _assert_ok("packet decisions", result)


def test_fluid_decision_tap_overhead(benchmark):
    result = run_once(benchmark, lambda: run_decisions("fluid"))
    _assert_ok("fluid decisions", result)


def main() -> None:
    for name, result in run_all().items():
        flag = "ok" if result["ok"] else "FAIL"
        print(f"{name:12s} baseline {result['baseline_s']:.3f}s  "
              f"tested {result['tested_s']:.3f}s  "
              f"ratio {result['ratio']:.3f}  [{flag}]")
        _assert_ok(name, result)


if __name__ == "__main__":
    main()
