"""Figure 2: DCQCN timer trade-off (throughput vs stability).

Paper: aggressive timers (Ti=55,Td=50) give the best large-flow FCT but
the most/longest PFC pauses; conservative timers (Ti=900,Td=4) the
opposite.
"""

from repro.experiments.figure02 import run_figure02
from repro.metrics.reporter import format_bucket_table, format_table

from conftest import run_once

AGGRESSIVE = "Ti=55,Td=50"
CONSERVATIVE = "Ti=900,Td=4"


def test_fig02_timer_tradeoff(benchmark):
    result = run_once(benchmark, run_figure02, scale="bench")

    print()
    print(format_bucket_table(result.buckets, "p95",
                              title="Fig 2a: p95 slowdown per bucket"))
    rows = [(k, f"{v * 100:.3f}%", f"{result.short_flow_p95_us[k]:.1f}us")
            for k, v in result.pause_time_fraction.items()]
    print(format_table(["timers", "pause time", "short p95"], rows,
                       title="Fig 2b: pauses + latency"))

    # 2a shape: aggressive timers serve large flows far better.
    def large_flow_p95(label):
        return result.buckets[label][-1].p95

    assert large_flow_p95(AGGRESSIVE) < large_flow_p95(CONSERVATIVE)

    # 2b shape: aggressive timers pay with more pause time.
    assert result.pause_time_fraction[AGGRESSIVE] > \
        result.pause_time_fraction[CONSERVATIVE]
    assert result.pause_time_fraction[AGGRESSIVE] > 0.001
