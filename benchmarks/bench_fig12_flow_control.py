"""Figure 12: CC choice matters more than flow-control choice.

Paper: with HPCC, PFC / go-back-N / IRN perform nearly identically; with
DCQCN the flow-control choice visibly matters (IRN's implicit window cap
helps most), and even DCQCN+IRN cannot match HPCC.
"""

from repro.experiments.figure12 import run_figure12
from repro.metrics.reporter import format_table

from conftest import run_once


def test_fig12_flow_control_choices(benchmark):
    result = run_once(
        benchmark, run_figure12, scale="bench",
        overrides={"n_flows": 450},
    )

    print()
    rows = [(label, f"{result.overall_p95[label]:.2f}", result.drops[label])
            for label in result.overall_p95]
    print(format_table(["scheme-fc", "p95 slowdown", "drops"], rows,
                       title="Fig 12: flow-control sweep (30% + incast)"))

    p95 = result.overall_p95
    hpcc = [p95["HPCC-PFC"], p95["HPCC-GBN"], p95["HPCC-IRN"]]
    dcqcn = [p95["DCQCN-PFC"], p95["DCQCN-GBN"], p95["DCQCN-IRN"]]

    # HPCC: flow control barely matters (within 1.5x of each other).
    assert max(hpcc) < 1.5 * min(hpcc)
    # DCQCN: the choice matters a lot (>2x spread).
    assert max(dcqcn) > 2.0 * min(dcqcn)
    # Even DCQCN's best flow control cannot match HPCC.
    assert min(dcqcn) > max(hpcc)
    # HPCC keeps the fabric effectively lossless even without PFC.
    assert result.drops["HPCC-GBN"] < result.drops["DCQCN-GBN"] / 10 + 5
