"""Array-native fluid engine vs the scalar reference: same grid, 10x.

Two acceptance bars for the vectorized fluid data plane
(:class:`repro.fluid.FluidEngine`, struct-of-arrays + numpy step loop)
against the loop-per-flow reference implementation it replaced
(:class:`repro.fluid.ScalarFluidEngine`, selected per spec with
``config["fluid_engine"] = "scalar"``):

* **Speedup** — a Figure-11-style scenario on the ``large`` tier (k=16
  k-ary FatTree, 1024 hosts, FB_Hadoop background + incast, HPCC) must
  run at least 10x faster end-to-end on the array engine.  HPCC is the
  array engine's *worst case* — every CC fire gathers per-hop INT
  telemetry into Python objects — so the bar holds a fortiori for the
  mark- and delay-based schemes.  Both engines step the same RTT
  boundaries over the same seeded population; the honest throughput
  unit is flow-steps/second (one flow advanced across one RTT step),
  which is what the vectorized kernels amortize.  Shorter runs dilute
  the margin: per-spec setup (topology + 1024-destination BFS routing)
  is identical for both engines, and steady-state concurrency — the
  vector length — takes time to fill, so the untrimmed scenario is the
  fair measurement.
* **Scale** — the same 1024-host scenario must complete under a hard
  wall budget.  This is the capability the speedup buys: a fabric 64x
  the bench tier's host count, intractable flow-level before.

Run standalone for a report::

    PYTHONPATH=src python benchmarks/bench_fluid_engine.py
"""

from __future__ import annotations

import time

from conftest import run_once
from repro.experiments import figure11
from repro.runner import CcChoice, SweepRunner

SCHEMES = (CcChoice("hpcc", label="HPCC"),)
CASES = ("30%+incast",)

WALL_BUDGET_S = 60.0
MIN_HOSTS = 1024


def _specs() -> list:
    return [
        s.replaced(backend="fluid")
        for s in figure11.scenarios(scale="large", cases=CASES, schemes=SCHEMES)
    ]


def _flow_steps(records) -> int:
    return sum(r.extras["fluid_flow_steps"] for r in records)


def run_comparison() -> dict:
    specs = _specs()
    scalar_specs = [
        s.replaced(config={**s.config, "fluid_engine": "scalar"})
        for s in specs
    ]

    started = time.perf_counter()
    array_records = SweepRunner().run(specs)
    array_s = time.perf_counter() - started

    started = time.perf_counter()
    scalar_records = SweepRunner().run(scalar_specs)
    scalar_s = time.perf_counter() - started

    return {
        "n_specs": len(specs),
        "n_hosts": array_records[0].extras["n_hosts"],
        "array_s": array_s,
        "scalar_s": scalar_s,
        "speedup": scalar_s / array_s,
        "array_flow_steps": _flow_steps(array_records),
        "scalar_flow_steps": _flow_steps(scalar_records),
        "array_flow_steps_per_s": _flow_steps(array_records) / array_s,
        "scalar_flow_steps_per_s": _flow_steps(scalar_records) / scalar_s,
        "array_flows": [len(r.fct) for r in array_records],
        "scalar_flows": [len(r.fct) for r in scalar_records],
    }


def run_scale() -> dict:
    spec = _specs()[0]
    started = time.perf_counter()
    record = SweepRunner().run([spec])[0]
    wall = time.perf_counter() - started
    return {
        "wall_s": wall,
        "n_hosts": record.extras["n_hosts"],
        "n_flows": len(record.fct),
        "steps": record.events_processed,
        "flow_steps": record.extras["fluid_flow_steps"],
        "flow_steps_per_s": record.extras["fluid_flow_steps"] / wall,
    }


def test_array_engine_at_least_10x_faster(benchmark):
    result = run_once(benchmark, run_comparison)
    assert result["n_hosts"] >= MIN_HOSTS
    assert result["speedup"] >= 10.0, (
        f"array engine only {result['speedup']:.1f}x faster "
        f"({result['scalar_s']:.2f}s scalar vs {result['array_s']:.2f}s array)"
    )
    # Same seeded population on both engines; the CC-fire cadence
    # difference (reference fires every mini-step) must not change who
    # finishes — only a handful of deadline stragglers may differ.
    for array_n, scalar_n in zip(result["array_flows"], result["scalar_flows"]):
        assert abs(array_n - scalar_n) <= 0.02 * max(array_n, scalar_n)


def test_k16_fattree_under_wall_budget(benchmark):
    result = run_once(benchmark, run_scale)
    assert result["n_hosts"] >= MIN_HOSTS
    assert result["wall_s"] < WALL_BUDGET_S, (
        f"k=16 FatTree took {result['wall_s']:.1f}s "
        f"(budget {WALL_BUDGET_S:.0f}s)"
    )


def main() -> None:
    speed = run_comparison()
    print(f"Figure-11-style scenario at large scale "
          f"({speed['n_hosts']} hosts, HPCC, 30%+incast):")
    print(f"  scalar reference: {speed['scalar_s']:8.2f}s "
          f"({speed['scalar_flow_steps_per_s']:,.0f} flow-steps/s)")
    print(f"  array engine:     {speed['array_s']:8.2f}s "
          f"({speed['array_flow_steps_per_s']:,.0f} flow-steps/s)")
    print(f"  speedup:          {speed['speedup']:8.1f}x "
          f"(budget {WALL_BUDGET_S:.0f}s, "
          f"{speed['array_flow_steps']:,} flow-steps)")


if __name__ == "__main__":
    main()
