"""Ablations of HPCC's three parameters (Section 3.3).

The paper claims exactly three easy knobs with simple monotone trade-offs:

* ``eta``      — utilization vs transient queues (95% default);
* ``maxStage`` — stability vs bandwidth-reclaim speed (the paper tried
  0..5 and 95..98% "all of which give similar results", footnote 5);
* ``WAI``      — fairness speed vs queue floor (Figure 14 sweeps it; the
  rule of thumb caps N x WAI by the headroom).

This bench sweeps eta and maxStage on an 8-to-1 incast and asserts the
claimed directions (and footnote 5's insensitivity for maxStage).
"""

from repro.experiments.common import CcChoice, run_workload, setup_network
from repro.metrics.fct import percentile
from repro.sim.units import MS, US
from repro.topology.simple import star

from conftest import run_once


def _run_incast(cc_params, goodput=False):
    topo = star(9, host_rate="100Gbps", link_delay="1us")
    net = setup_network(
        topo, CcChoice("hpcc", params=cc_params),
        base_rtt=9 * US, goodput_bin=100 * US if goodput else None,
    )
    bottleneck = {"b": net.port_between(9, 8)}
    specs = [net.make_flow(src=s, dst=8, size=6_000_000) for s in range(8)]
    result = run_workload(net, specs, deadline=15 * MS,
                          sample_interval=2 * US, sample_ports=bottleneck)
    t, q = result.sampler.series("b")
    steady = [v for tt, v in zip(t, q) if tt > 1.5 * MS]
    fcts = [r.fct for r in result.records]
    return {
        "queue_p95": percentile(steady, 95) if steady else 0.0,
        "mean_fct": sum(fcts) / len(fcts) if fcts else float("inf"),
        "done": result.completed,
    }


def sweep_eta():
    return {eta: _run_incast({"eta": eta}) for eta in (0.90, 0.95, 0.98)}


def sweep_max_stage():
    return {m: _run_incast({"max_stage": m}) for m in (0, 5)}


def test_ablation_eta(benchmark):
    results = run_once(benchmark, sweep_eta)

    print()
    for eta, r in results.items():
        print(f"eta={eta}: queue p95 {r['queue_p95'] / 1000:.1f}KB, "
              f"mean FCT {r['mean_fct'] / 1000:.0f}us")

    # Higher eta -> higher utilization -> faster completion...
    assert results[0.98]["mean_fct"] < results[0.90]["mean_fct"]
    # ...but no worse than a graceful queue increase (steady queues stay
    # tiny for all settings — the knob is safe, as Section 3.3 claims).
    for r in results.values():
        assert r["done"]
        assert r["queue_p95"] < 50_000


def test_ablation_max_stage(benchmark):
    results = run_once(benchmark, sweep_max_stage)

    print()
    for m, r in results.items():
        print(f"maxStage={m}: queue p95 {r['queue_p95'] / 1000:.1f}KB, "
              f"mean FCT {r['mean_fct'] / 1000:.0f}us")

    # Footnote 5: maxStage 0..5 "all give similar results" in steady state.
    q_values = [r["queue_p95"] for r in results.values()]
    f_values = [r["mean_fct"] for r in results.values()]
    assert max(f_values) < 1.25 * min(f_values)
    assert all(r["done"] for r in results.values())
