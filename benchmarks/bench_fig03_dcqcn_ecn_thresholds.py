"""Figure 3: DCQCN ECN-threshold trade-off (bandwidth vs latency).

Paper: low Kmin/Kmax favour short (latency-sensitive) flows and hurt
large (bandwidth-sensitive) flows; high thresholds do the reverse; the
tension worsens at 50% load.
"""

from repro.experiments.figure03 import run_figure03, short_vs_long_p95
from repro.metrics.reporter import format_bucket_table

from conftest import run_once

HIGH = "Kmin=400K,Kmax=1600K"
LOW = "Kmin=12K,Kmax=50K"


def test_fig03_ecn_tradeoff(benchmark):
    result = run_once(benchmark, run_figure03, scale="bench",
                      loads=(0.30, 0.50))

    for load, by_setting in result.buckets.items():
        print()
        print(format_bucket_table(
            by_setting, "p95",
            title=f"Fig 3 ({load:.0%}): p95 slowdown per bucket",
        ))

    # Shape at 50% load: low thresholds beat high thresholds for short
    # flows; high thresholds beat low for the large-flow tail.
    by_setting = result.buckets[0.50]
    low_short, low_long = short_vs_long_p95(by_setting[LOW])
    high_short, high_long = short_vs_long_p95(by_setting[HIGH])
    assert low_short < high_short
    assert high_long < low_long
