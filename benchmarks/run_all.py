#!/usr/bin/env python3
"""Run benchmark workloads once each and emit machine-readable timings.

The pytest-benchmark files under ``benchmarks/`` regenerate paper
figures and assert their *shape*; this aggregator runs the same
underlying experiment drivers and records only what a perf trajectory
needs — name, wall time, parameters — as JSON, so successive PRs can
diff ``BENCH_*.json`` files instead of eyeballing pytest output.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --json BENCH_all.json
    PYTHONPATH=src python benchmarks/run_all.py --fastest 2   # CI smoke
    PYTHONPATH=src python benchmarks/run_all.py --only fig02,fluid_vs_packet
    PYTHONPATH=src python benchmarks/run_all.py --list

The registry pins the substrate-throughput microbench first and orders
the experiments cheapest-first after it, so ``--fastest N`` doubles as a
cheap import/API-rot + engine-throughput canary for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

#: Version of the JSON payload this script emits.  Bump when the
#: payload shape changes and note the migration here:
#:
#: * (unstamped) — the PR 3/4 snapshots (``BENCH_pr3.json``,
#:   ``BENCH_pr4.json``): ``{python, platform, results[], notes?}``,
#:   no ``schema`` key.  Readers must treat a missing key as v1.
#: * 2 — same shape plus this ``schema`` stamp.
#:
#: The checked-in trajectory starts at ``BENCH_pr3.json``: PR 0-2
#: predate the snapshot convention, so ``BENCH_pr1.json`` and
#: ``BENCH_pr2.json`` intentionally do not exist (README "Benchmark
#: trajectory").
BENCH_SCHEMA = 2


def _engine_events():
    """Raw event-loop throughput (the substrate number every packet-level
    experiment divides by).  Mirrors bench_engine.py's chain workload."""
    from repro.sim.engine import Simulator

    sim = Simulator()

    def chain(remaining):
        if remaining:
            sim.schedule(1.0, chain, remaining - 1)

    chain(200_000)
    sim.run()
    assert sim.events_processed == 200_000
    return sim.events_processed


def _telemetry_overhead():
    """Telemetry dispatch cost on both engines (the <2% bar — <3% with
    the decision tap — is asserted by bench_telemetry_overhead.py;
    this records the ratios)."""
    from bench_telemetry_overhead import run_all
    return run_all()


def _sweep_resilience():
    """Watchdog + journal cost on a clean fluid sweep (the <3% bar
    itself is asserted by bench_sweep_resilience.py; this records it)."""
    from bench_sweep_resilience import run_resilience_overhead
    return run_resilience_overhead()


def _appendix_a1():
    from repro.experiments.appendix_a import run_a1
    return run_a1(n_sources=50, rho=0.95)


def _appendix_a2():
    from repro.experiments.appendix_a import run_a2
    return run_a2(n_trials=50)


def _dynamics_failover():
    """Dynamics smoke: the FatTree failure sweep and the dual-trunk
    failover, both on the fluid backend (the packet-vs-fluid comparison
    with the >=10x assertion lives in bench_dynamics_failover.py)."""
    from repro.experiments.failover import run_failover
    from repro.experiments.linkfail import run_linkfail
    from repro.runner import CcChoice

    schemes = (CcChoice("hpcc", label="HPCC"),)
    return (
        run_linkfail(schemes=schemes, backend="fluid"),
        run_failover(schemes=schemes, backend="fluid"),
    )


def _fig06():
    from repro.experiments.figure06 import run_figure06
    return run_figure06(scale="bench")


def _fig13():
    from repro.experiments.figure13 import run_figure13
    return run_figure13(scale="bench")


def _fig11_fluid():
    from repro.experiments import figure11
    from repro.runner import SweepRunner
    specs = [
        spec.replaced(backend="fluid")
        for spec in figure11.scenarios(scale="bench")
    ]
    return SweepRunner().run(specs)


def _fig14():
    from repro.experiments.figure14 import run_figure14
    return run_figure14(scale="bench")


def _fig02():
    from repro.experiments.figure02 import run_figure02
    return run_figure02(scale="bench")


def _fig03():
    from repro.experiments.figure03 import run_figure03
    return run_figure03(scale="bench")


def _fig01():
    from repro.experiments.figure01 import run_figure01
    return run_figure01(scale="bench")


def _fig09():
    from repro.experiments.figure09 import run_incast, run_long_short
    return run_long_short(), run_incast()


def _fig10():
    from repro.experiments.figure10 import run_figure10
    return run_figure10(scale="bench")


def _fig12():
    from repro.experiments.figure12 import run_figure12
    return run_figure12(scale="bench")


def _fig11():
    from repro.experiments.figure11 import run_figure11
    return run_figure11(scale="bench")


def _failover():
    from repro.experiments.failover import run_failover
    return run_failover()


def _fluid_vs_packet():
    from bench_fluid_vs_packet import run_comparison
    return run_comparison()


def _fluid_engine():
    """Array vs scalar fluid engine on the k=16 FatTree (>=10x bar
    lives in bench_fluid_engine.py; this records the raw timings)."""
    from bench_fluid_engine import run_comparison
    return run_comparison()


def _fig11_large():
    """The capability unlocked by the array engine: the full large-tier
    (1024-host) Figure-11 scenario, one scheme, fluid backend."""
    from bench_fluid_engine import run_scale
    return run_scale()


# name -> (workload, parameter note).  Ordered cheapest-first — except
# engine_events, pinned to the front so CI's `--fastest N` smoke always
# tracks raw substrate throughput alongside the cheapest experiment.
REGISTRY: dict[str, tuple] = {
    "engine_events": (_engine_events, {"events": 200_000}),
    "appendix_a1": (_appendix_a1, {"n_sources": 50, "rho": 0.95}),
    "dynamics_failover": (_dynamics_failover,
                          {"backend": "fluid", "scenarios": ["linkfail",
                                                             "failover"]}),
    "telemetry_overhead": (_telemetry_overhead,
                           {"engines": ["packet", "fluid"],
                            "limit_pct": 2, "decisions_limit_pct": 3}),
    "appendix_a2": (_appendix_a2, {"n_trials": 50}),
    "sweep_resilience": (_sweep_resilience,
                         {"backend": "fluid", "limit_pct": 3}),
    "fig06": (_fig06, {"scale": "bench"}),
    "fig13": (_fig13, {"scale": "bench"}),
    "fig11_fluid": (_fig11_fluid, {"scale": "bench", "backend": "fluid"}),
    "fig14": (_fig14, {"scale": "bench"}),
    "fig02": (_fig02, {"scale": "bench"}),
    "fig03": (_fig03, {"scale": "bench"}),
    "fig01": (_fig01, {"scale": "bench"}),
    "fig09": (_fig09, {"parts": ["long_short", "incast"]}),
    "fig10": (_fig10, {"scale": "bench"}),
    "fig12": (_fig12, {"scale": "bench"}),
    "fig11": (_fig11, {"scale": "bench"}),
    "failover": (_failover, {}),
    "fig11_large": (_fig11_large,
                    {"scale": "large", "backend": "fluid", "k": 16,
                     "hosts": 1024, "schemes": ["hpcc"]}),
    "fluid_vs_packet": (_fluid_vs_packet, {"grid": "fig11-style"}),
    "fluid_engine": (_fluid_engine,
                     {"scale": "large", "k": 16, "hosts": 1024,
                      "engines": ["array", "scalar"]}),
}


def run_benches(names: list[str]) -> list[dict]:
    results = []
    for name in names:
        fn, params = REGISTRY[name]
        print(f"running {name} ...", file=sys.stderr, flush=True)
        started = time.perf_counter()
        fn()
        wall = time.perf_counter() - started
        print(f"  {name}: {wall:.2f}s", file=sys.stderr, flush=True)
        results.append({"name": name, "wall_time_s": wall, "params": params})
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run benchmark workloads once each; emit JSON timings."
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write results as JSON (default: print to stdout)",
    )
    parser.add_argument(
        "--only", default=None, metavar="N1,N2,...",
        help="comma-separated benchmark names to run",
    )
    parser.add_argument(
        "--fastest", type=int, default=None, metavar="N",
        help="run only the N cheapest benchmarks (registry order)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchmark names and exit"
    )
    parser.add_argument(
        "--note", action="append", default=[], metavar="KEY=VALUE",
        help="annotate the JSON payload (repeatable); used to record "
             "before/after numbers alongside a PR's snapshot",
    )
    args = parser.parse_args(argv)

    notes = {}
    for item in args.note:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"bad --note {item!r}; expected KEY=VALUE", file=sys.stderr)
            return 1
        notes[key] = value

    if args.list:
        for name in REGISTRY:
            print(name)
        return 0
    names = list(REGISTRY)
    if args.only is not None:
        names = [part.strip() for part in args.only.split(",") if part.strip()]
        unknown = [n for n in names if n not in REGISTRY]
        if unknown:
            known = ", ".join(REGISTRY)
            print(f"unknown benchmarks {unknown}; known: {known}",
                  file=sys.stderr)
            return 1
    if args.fastest is not None:
        names = names[: max(1, args.fastest)]

    payload = {
        "schema": BENCH_SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": run_benches(names),
    }
    if notes:
        payload["notes"] = notes
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(payload['results'])} results to {args.json}",
              file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
