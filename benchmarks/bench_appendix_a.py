"""Appendix A: the theory experiments.

* A.1 — sumDi/D/1 queueing: 50 paced sources at 95% load hold ~3 packets
  on average and essentially never exceed 20.
* A.2 — recursions (5)-(6): feasible after one step, monotone, Pareto.
* A.4 — 64-to-1 line-rate incast: window limits drain the root queue and
  leave senders at ~1/65 of Winit, with no PFC.
"""

from repro.experiments.appendix_a import run_a1, run_a2, run_a4

from conftest import run_once


def test_appendix_a1_queueing(benchmark):
    result = run_once(benchmark, run_a1, n_sources=50, rho=0.95)

    print()
    print(f"A.1: sim mean {result.simulated_mean:.2f} pkts "
          f"(analytic rho=1 bound {result.analytic_mean_full_load:.2f}); "
          f"P(Q>20) sim {result.simulated_tail:.2e} "
          f"analytic {result.analytic_tail:.2e}")

    assert result.simulated_mean < result.analytic_mean_full_load + 1
    assert result.simulated_tail < 1e-3
    assert result.analytic_tail < 1e-7


def test_appendix_a2_convergence(benchmark):
    result = run_once(benchmark, run_a2, n_trials=50)

    print()
    print(f"A.2: feasible {result.feasible_after_one}/{result.n_trials}, "
          f"monotone {result.monotone}/{result.n_trials}, Pareto within I "
          f"(1% tol) {result.pareto_within_i}, by 5I {result.pareto_asymptotic}")

    assert result.feasible_after_one == result.n_trials
    assert result.monotone == result.n_trials
    assert result.pareto_within_i >= 0.7 * result.n_trials
    assert result.pareto_asymptotic >= 0.8 * result.n_trials


def test_appendix_a4_window_limits(benchmark):
    result = run_once(benchmark, run_a4)

    print()
    print(f"A.4: peak root queue {result.peak_queue / 1000:.0f}KB, drained "
          f"in {result.drain_time_us:.0f}us, final window "
          f"{result.final_window_fraction:.3f} x Winit "
          f"(theory 1/65 = {1 / 65:.3f}), PFC pauses {result.pfc_pauses}")

    # The initial burst queues ~63 x BDP, then drains without PFC.
    assert result.peak_queue > 1_000_000
    assert result.drain_time_us < 2_000
    # Senders settle near the theoretical 1/65 of Winit.
    assert result.final_window_fraction < 3.0 / 65
    assert result.pfc_pauses == 0
