"""Fluid fast path vs packet engine: one Figure-11-style FatTree grid.

The acceptance bar for the fluid backend: the same scenario grid (same
topology factory, same CC schemes, same seeded flow population) must
complete at least 10x faster flow-level than packet-level.  The margin
grows with scenario size — RTT-granularity steps cost
``O(active flows x path length)`` per RTT regardless of bandwidth or
packet count — so bench scale is the *hardest* place to clear 10x.

Run standalone for a report::

    PYTHONPATH=src python benchmarks/bench_fluid_vs_packet.py
"""

from __future__ import annotations

import time

from conftest import run_once
from repro.experiments import figure11
from repro.runner import CcChoice, SweepRunner

# A reduced Figure 11 grid (one traffic case, three schemes) keeps the
# packet side's wall time tolerable while still crossing the FatTree's
# three tiers with background + incast traffic.
SCHEMES = (
    CcChoice("hpcc", label="HPCC"),
    CcChoice("dcqcn", label="DCQCN"),
    CcChoice("dctcp", label="DCTCP"),
)
CASES = ("30%+incast",)


def fat_tree_grid():
    return figure11.scenarios(scale="bench", cases=CASES, schemes=SCHEMES)


def run_comparison() -> dict:
    specs = fat_tree_grid()
    started = time.perf_counter()
    packet_records = SweepRunner().run(specs)
    packet_s = time.perf_counter() - started

    fluid_specs = [spec.replaced(backend="fluid") for spec in specs]
    started = time.perf_counter()
    fluid_records = SweepRunner().run(fluid_specs)
    fluid_s = time.perf_counter() - started

    return {
        "n_specs": len(specs),
        "packet_s": packet_s,
        "fluid_s": fluid_s,
        "speedup": packet_s / fluid_s,
        "packet_flows": [len(r.fct) for r in packet_records],
        "fluid_flows": [len(r.fct) for r in fluid_records],
        "packet_events": sum(r.events_processed for r in packet_records),
        "fluid_steps": sum(r.events_processed for r in fluid_records),
    }


def test_fluid_backend_at_least_10x_faster(benchmark):
    result = run_once(benchmark, run_comparison)
    assert result["speedup"] >= 10.0, (
        f"fluid backend only {result['speedup']:.1f}x faster "
        f"({result['packet_s']:.2f}s packet vs {result['fluid_s']:.2f}s fluid)"
    )
    # Both backends simulated the same seeded workload: within a few
    # deadline-straggler flows of each other on every grid cell.
    for packet_n, fluid_n in zip(result["packet_flows"], result["fluid_flows"]):
        assert abs(packet_n - fluid_n) <= 0.1 * max(packet_n, fluid_n)


def main() -> None:
    result = run_comparison()
    print(f"Figure-11-style FatTree grid, {result['n_specs']} scenarios "
          f"({', '.join(c.display for c in SCHEMES)}; {CASES[0]}):")
    print(f"  packet backend: {result['packet_s']:8.2f}s "
          f"({result['packet_events']:,} events)")
    print(f"  fluid backend:  {result['fluid_s']:8.2f}s "
          f"({result['fluid_steps']:,} RTT steps)")
    print(f"  speedup:        {result['speedup']:8.1f}x")


if __name__ == "__main__":
    main()
