"""Network-dynamics benchmark: FatTree failure sweep, fluid vs packet.

The acceptance bar for the dynamics subsystem's fluid path: the same
FatTree-scale link-failure sweep (same topology, same seeded Poisson
workload, same fail/restore timeline with a detection delay) must
complete at least 10x faster flow-level than packet-level.  This is the
scenario class that motivated fluid failover support — "sweep every
plausible fabric failure" is interactive on fluid and an overnight batch
on packet.

Also times the dual-trunk failover extension on both backends (the
cross-validated scenario of ``tests/test_fluid.py``), which is the
``dynamics_failover`` smoke entry in ``benchmarks/run_all.py``.

Run standalone for a report::

    PYTHONPATH=src python benchmarks/bench_dynamics_failover.py
"""

from __future__ import annotations

import time

from conftest import run_once
from repro.experiments import failover, linkfail
from repro.runner import CcChoice, SweepRunner

# One scheme keeps the packet side's wall time tolerable; the sweep still
# covers both failure classes (ToR-Agg and Agg-Core cuts) with fail,
# detection delay and restore on a three-tier fabric under load.
SCHEMES = (CcChoice("hpcc", label="HPCC"),)


def run_failure_sweep_comparison() -> dict:
    packet_specs = linkfail.scenarios(schemes=SCHEMES, backend="packet")
    started = time.perf_counter()
    packet_records = SweepRunner().run(packet_specs)
    packet_s = time.perf_counter() - started

    fluid_specs = linkfail.scenarios(schemes=SCHEMES, backend="fluid")
    started = time.perf_counter()
    fluid_records = SweepRunner().run(fluid_specs)
    fluid_s = time.perf_counter() - started

    return {
        "n_specs": len(packet_specs),
        "packet_s": packet_s,
        "fluid_s": fluid_s,
        "speedup": packet_s / fluid_s,
        "packet_flows": [len(r.fct) for r in packet_records],
        "fluid_flows": [len(r.fct) for r in fluid_records],
        "packet_reroutes": [
            sum(e.get("reroutes", 0) for e in r.link_events())
            for r in packet_records
        ],
        "fluid_reroutes": [
            sum(e.get("reroutes", 0) for e in r.link_events())
            for r in fluid_records
        ],
    }


def run_dual_trunk_smoke() -> dict:
    """The cross-validated dual-trunk failover, timed on both backends."""
    out = {}
    for backend in ("packet", "fluid"):
        started = time.perf_counter()
        result = failover.run_failover(
            schemes=(CcChoice("hpcc", label="HPCC"),), backend=backend
        )
        out[f"{backend}_s"] = time.perf_counter() - started
        out[f"{backend}_recovery_us"] = result.recovery_time_us["HPCC"]
        out[f"{backend}_after_gbps"] = result.goodput_after["HPCC"]
    out["speedup"] = out["packet_s"] / out["fluid_s"]
    return out


def test_failure_sweep_fluid_at_least_10x(benchmark):
    result = run_once(benchmark, run_failure_sweep_comparison)
    assert result["speedup"] >= 10.0, (
        f"fluid failure sweep only {result['speedup']:.1f}x faster "
        f"({result['packet_s']:.2f}s packet vs {result['fluid_s']:.2f}s fluid)"
    )
    # Same seeded workload on both backends, within deadline stragglers.
    for packet_n, fluid_n in zip(result["packet_flows"], result["fluid_flows"]):
        assert abs(packet_n - fluid_n) <= 0.1 * max(packet_n, fluid_n)
    # Both backends actually rerouted traffic at the cut.
    assert all(n > 0 for n in result["packet_reroutes"])
    assert all(n > 0 for n in result["fluid_reroutes"])


def main() -> None:
    sweep = run_failure_sweep_comparison()
    print(f"FatTree link-failure sweep ({sweep['n_specs']} scenarios, "
          "fail + 25us detection + restore):")
    print(f"  packet backend: {sweep['packet_s']:8.2f}s")
    print(f"  fluid backend:  {sweep['fluid_s']:8.2f}s")
    print(f"  speedup:        {sweep['speedup']:8.1f}x")
    smoke = run_dual_trunk_smoke()
    print("Dual-trunk failover (HPCC):")
    print(f"  packet: {smoke['packet_s']:.2f}s "
          f"(recovery {smoke['packet_recovery_us']:.0f}us, "
          f"after {smoke['packet_after_gbps']:.1f}G)")
    print(f"  fluid:  {smoke['fluid_s']:.2f}s "
          f"(recovery {smoke['fluid_recovery_us']:.0f}us, "
          f"after {smoke['fluid_after_gbps']:.1f}G)")
    print(f"  speedup: {smoke['speedup']:.1f}x")


if __name__ == "__main__":
    main()
