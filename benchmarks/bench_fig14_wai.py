"""Figure 14: tuning WAI for 16 flows on 100Gbps.

Paper: any WAI within the rule-of-thumb cap (<=150B here) keeps the p95
queue tiny (<=4KB); WAI=300B exceeds the headroom and builds ~13KB —
graceful degradation, still only ~1us of queueing.
"""

from repro.experiments.figure14 import run_figure14

from conftest import run_once


def test_fig14_wai_tuning(benchmark):
    result = run_once(benchmark, run_figure14, scale="bench")

    print()
    for wai in sorted(result.queue_p95):
        print(f"WAI={wai:.0f}B: queue p95 {result.queue_p95[wai] / 1000:.1f}KB"
              f" p99 {result.queue_p99[wai] / 1000:.1f}KB"
              f" Jain {result.fairness[wai]:.3f}")

    # Within the stability bound: near-zero queues (paper: <=4KB).
    for wai in (25.0, 75.0, 150.0):
        assert result.queue_p95[wai] < 5_000
    # Beyond the bound: a visible but graceful queue (paper: ~13KB).
    assert result.queue_p95[300.0] > 2 * result.queue_p95[25.0]
    assert result.queue_p95[300.0] < 40_000
    # Fairness is good across the board for symmetric flows.
    for wai, jain in result.fairness.items():
        assert jain > 0.9
