"""The fault-tolerant sweep fabric must be (nearly) free on clean runs.

The PR-8 resilience machinery — guarded execution, the per-spec
watchdog deadline, and the fsynced sweep journal — wraps every cell of
every sweep, so its cost on a *healthy* sweep is pure overhead.  The
bar: a clean bench-tier Figure-11 fluid sweep with the full fabric
armed (journal + ``spec_timeout`` + retries) runs within
:data:`LIMIT` of the bare runner.

Both variants run cache-less and serial-interleaved (min-of-N) so
machine noise hits them equally; the hardened variant pays the journal
fsyncs, per-cell guard frames and watchdog bookkeeping.  A small
absolute grace (:data:`GRACE_S`) keeps sub-second sweeps from failing
on scheduler jitter alone.

Run standalone for a report::

    PYTHONPATH=src python benchmarks/bench_sweep_resilience.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from conftest import run_once

#: Overhead bar: hardened / bare sweep wall time (<3% per ISSUE 8).
LIMIT = 1.03

#: Absolute jitter grace: a delta under this is noise, not overhead.
GRACE_S = 0.050

REPEATS = 3


def _specs():
    from repro.experiments import figure11

    return [
        spec.replaced(backend="fluid")
        for spec in figure11.scenarios(scale="bench")
    ]


def _interleaved_min(variant_a, variant_b, repeats: int = REPEATS):
    best_a = best_b = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        variant_a()
        best_a = min(best_a, time.perf_counter() - started)
        started = time.perf_counter()
        variant_b()
        best_b = min(best_b, time.perf_counter() - started)
    return best_a, best_b


def run_resilience_overhead() -> dict:
    from repro.runner import SweepRunner

    specs = _specs()

    def bare():
        records = SweepRunner().run(specs)
        assert all(r.ok for r in records)

    def hardened():
        with tempfile.TemporaryDirectory() as tmp:
            records = SweepRunner(
                retries=2, spec_timeout=600.0,
                journal=str(Path(tmp) / "journal.jsonl"),
            ).run(specs)
        assert all(r.ok for r in records)

    bare_s, hardened_s = _interleaved_min(bare, hardened)
    return {
        "n_specs": len(specs),
        "baseline_s": bare_s,
        "tested_s": hardened_s,
        "ratio": hardened_s / bare_s,
        "delta_s": hardened_s - bare_s,
        "ok": hardened_s / bare_s <= LIMIT
        or hardened_s - bare_s <= GRACE_S,
    }


def _assert_ok(result: dict) -> None:
    assert result["ok"], (
        f"sweep resilience overhead {100 * (result['ratio'] - 1):.1f}% "
        f"(+{result['delta_s'] * 1e3:.1f}ms) exceeds "
        f"{100 * (LIMIT - 1):.0f}% + {GRACE_S * 1e3:.0f}ms grace "
        f"({result['baseline_s']:.3f}s -> {result['tested_s']:.3f}s)"
    )


def test_sweep_resilience_overhead(benchmark):
    result = run_once(benchmark, run_resilience_overhead)
    _assert_ok(result)


def main() -> None:
    result = run_resilience_overhead()
    flag = "ok" if result["ok"] else "FAIL"
    print(f"sweep_resilience  {result['n_specs']} specs  "
          f"bare {result['baseline_s']:.3f}s  "
          f"hardened {result['tested_s']:.3f}s  "
          f"ratio {result['ratio']:.3f}  [{flag}]")
    _assert_ok(result)


if __name__ == "__main__":
    main()
