"""Extension: link failure and rerouting (Section 2.3's allusion).

One of two parallel 50G trunks is cut mid-run.  Asserts that every
scheme re-converges onto the surviving trunk, that HPCC recovers quickly
(it resets per-hop INT state on a path change), and that the fabric does
not melt down (bounded packet loss, no stuck flows).
"""

from repro.experiments.failover import run_failover
from repro.metrics.reporter import format_table

from conftest import run_once


def test_failover_recovery(benchmark):
    result = run_once(benchmark, run_failover)

    print()
    rows = [
        (s, f"{result.goodput_before[s]:.1f}", f"{result.goodput_after[s]:.1f}",
         f"{result.recovery_time_us[s]:.0f}us", result.lost_packets[s])
        for s in result.goodput_before
    ]
    print(format_table(
        ["scheme", "before (G)", "after (G)", "recovery", "lost pkts"],
        rows, title="Failover: one of two 50G trunks cut",
    ))

    surviving_payload = 50 * (1000 / 1090)     # ~45.9G max after the cut
    for scheme in ("HPCC", "DCQCN", "DCTCP"):
        # Everyone must re-converge onto the surviving trunk.
        assert result.goodput_after[scheme] > 0.7 * surviving_payload
        assert result.drained[scheme]
    # HPCC: fast recovery, minimal loss (the window caps the damage; at
    # most ~1 BDP of packets can be in flight into the cut).
    assert result.recovery_time_us["HPCC"] < 1_000
    assert result.lost_packets["HPCC"] < 100
    # Nobody keeps blasting into the cut indefinitely after reroute.
    for scheme, lost in result.lost_packets.items():
        assert lost < 5_000, scheme
