"""Figure 6: txRate versus rxRate feedback in a 2-to-1 scenario.

Paper: txRate converges gracefully; rxRate oscillates before converging.
Reproduction note (EXPERIMENTS.md): under Algorithm 1's min-qlen filter,
EWMA and reference window, the rxRate variant also converges here; the
bench asserts convergence for both and records the transient difference
(rxRate over-cuts because queue and arrival rate double-count).
"""

from repro.experiments.figure06 import run_figure06

from conftest import run_once

TX = "HPCC (txRate)"
RX = "HPCC-rxRate"


def test_fig06_feedback_signal(benchmark):
    result = run_once(benchmark, run_figure06, scale="bench")

    print()
    for label in (TX, RX):
        print(f"{label}: steady mean {result.steady_mean[label] / 1000:.2f}KB"
              f" +- {result.steady_std[label] / 1000:.2f}KB,"
              f" peak {result.peak[label] / 1000:.1f}KB")

    # Both settle to (near-)empty queues after the line-rate transient.
    assert result.steady_mean[TX] < 5_000
    assert result.steady_mean[RX] < 5_000
    # rxRate's double-counted congestion makes its startup cut at least as
    # deep: its transient peak queue cannot exceed txRate's.
    assert result.peak[RX] <= result.peak[TX] * 1.1
