"""Hybrid co-simulation vs pure packet: the thin-foreground speedup.

The acceptance bar for the hybrid backend: with at most 10% of the flow
population in the packet foreground (the regime the backend exists
for — a handful of studied flows inside a large modeled background),
the same Figure-11-style FatTree cell must complete at least 5x faster
than running the whole population packet-level.  The packet half still
simulates every foreground byte, so the speedup comes entirely from the
background flows stepping at RTT granularity instead of per packet.

Run standalone for a report::

    PYTHONPATH=src python benchmarks/bench_hybrid.py
"""

from __future__ import annotations

import time

from conftest import run_once
from repro.experiments import figure11
from repro.runner import CcChoice, SweepRunner

#: The foreground fraction the >=5x gate is defined at.
FOREGROUND_FRAC = 0.1

SCHEMES = (CcChoice("hpcc", label="HPCC"),)
CASES = ("30%+incast",)


def grid():
    return figure11.scenarios(scale="bench", cases=CASES, schemes=SCHEMES)


def run_comparison() -> dict:
    specs = grid()
    started = time.perf_counter()
    packet_records = SweepRunner().run(specs)
    packet_s = time.perf_counter() - started

    hybrid_specs = [
        spec.replaced(
            backend="hybrid",
            **{"workload.foreground": {"kind": "frac", "x": FOREGROUND_FRAC}},
        )
        for spec in specs
    ]
    started = time.perf_counter()
    hybrid_records = SweepRunner().run(hybrid_specs)
    hybrid_s = time.perf_counter() - started

    return {
        "n_specs": len(specs),
        "packet_s": packet_s,
        "hybrid_s": hybrid_s,
        "speedup": packet_s / hybrid_s,
        "packet_flows": [len(r.fct) for r in packet_records],
        "hybrid_flows": [len(r.fct) for r in hybrid_records],
        "foreground": [r.extras.get("foreground_flows")
                       for r in hybrid_records],
        "background": [r.extras.get("background_flows")
                       for r in hybrid_records],
        "packet_events": sum(r.events_processed for r in packet_records),
        "hybrid_events": sum(r.events_processed for r in hybrid_records),
    }


def test_hybrid_at_least_5x_faster_at_thin_foreground(benchmark):
    result = run_once(benchmark, run_comparison)
    assert result["speedup"] >= 5.0, (
        f"hybrid backend only {result['speedup']:.1f}x faster "
        f"({result['packet_s']:.2f}s packet vs "
        f"{result['hybrid_s']:.2f}s hybrid)"
    )
    # The gate is defined at <=10% foreground; make sure the partition
    # actually honoured that (otherwise the speedup means nothing).
    for n_fg, n_bg in zip(result["foreground"], result["background"]):
        assert n_fg <= FOREGROUND_FRAC * (n_fg + n_bg) + 1
    # Both backends simulated the same seeded population: within a few
    # deadline-straggler flows of each other on every cell.
    for packet_n, hybrid_n in zip(result["packet_flows"],
                                  result["hybrid_flows"]):
        assert abs(packet_n - hybrid_n) <= 0.1 * max(packet_n, hybrid_n)


def main() -> None:
    result = run_comparison()
    print(f"Figure-11-style FatTree cell, {result['n_specs']} scenario(s) "
          f"({', '.join(c.display for c in SCHEMES)}; {CASES[0]}; "
          f"{FOREGROUND_FRAC:.0%} foreground):")
    print(f"  packet backend: {result['packet_s']:8.2f}s "
          f"({result['packet_events']:,} events)")
    print(f"  hybrid backend: {result['hybrid_s']:8.2f}s "
          f"({result['hybrid_events']:,} events+steps, "
          f"{result['foreground'][0]} fg / {result['background'][0]} bg)")
    print(f"  speedup:        {result['speedup']:8.1f}x")


if __name__ == "__main__":
    main()
