"""repro: a reproduction of "HPCC: High Precision Congestion Control"
(Li et al., SIGCOMM 2019) on a pure-Python packet-level simulator.

Quick start::

    from repro import Network, NetworkConfig
    from repro.topology import star

    net = Network(star(n_hosts=4), NetworkConfig(cc_name="hpcc"))
    net.add_flow(net.make_flow(src=0, dst=3, size=1_000_000))
    net.run_until_done(deadline=10e6)
    print(net.metrics.fct_records[0].slowdown)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from .core import (
    CcAlgorithm,
    CcEnv,
    Dcqcn,
    Dctcp,
    Hpcc,
    Timely,
    available_schemes,
    get_scheme,
)
from .metrics import Metrics, QueueSampler, percentile, slowdown_by_bucket
from .network import Network, NetworkConfig
from .sim import FlowSpec, PfcConfig, Simulator
from .sim.ecn import EcnPolicy
from .workloads import fbhadoop, incast_events, poisson_flows, websearch
from .runner import (
    CcChoice,
    RunCache,
    RunRecord,
    ScenarioGrid,
    ScenarioSpec,
    SweepRunner,
)
from .fluid import FluidEngine

__version__ = "1.0.0"

__all__ = [
    "CcAlgorithm",
    "CcChoice",
    "CcEnv",
    "Dcqcn",
    "Dctcp",
    "EcnPolicy",
    "FlowSpec",
    "FluidEngine",
    "Hpcc",
    "Metrics",
    "Network",
    "NetworkConfig",
    "PfcConfig",
    "QueueSampler",
    "RunCache",
    "RunRecord",
    "ScenarioGrid",
    "ScenarioSpec",
    "Simulator",
    "SweepRunner",
    "Timely",
    "available_schemes",
    "fbhadoop",
    "get_scheme",
    "incast_events",
    "percentile",
    "poisson_flows",
    "slowdown_by_bucket",
    "websearch",
]
