"""Dependency-free SVG chart emitter for the reproduction report.

Renders a :class:`~repro.report.figures.Panel` into a standalone
``<svg>`` string: line charts (with optional translucent error bands
and visible gaps at non-finite samples), empirical CDFs (just lines),
marker scatters (e.g. decision instants), grouped bar charts, linear
or log-10 x axes, nice-number ticks and a legend.  No matplotlib, no numpy — the
report builds offline on a bare CPython, and the output is byte-stable
(fixed-precision coordinates, deterministic iteration order), which is
what lets the test suite pin a golden snapshot.

If matplotlib *is* installed nothing changes: the SVG path is always
the one used.  (``repro.report.build`` offers an optional PNG
rasterization hook that uses matplotlib when available, gated and
additive.)
"""

from __future__ import annotations

import math

from .figures import Panel, Series

# Colorblind-safe categorical palette (Observable 10).
PALETTE = (
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
    "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
)

WIDTH = 480
HEIGHT = 300
MARGIN = {"left": 64, "right": 16, "top": 34, "bottom": 46}
FONT = "font-family=\"Menlo, Consolas, monospace\""


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (byte-stable output)."""
    return f"{value:.2f}"


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    mag = abs(value)
    if mag >= 1e9:
        return f"{value / 1e9:g}G"
    if mag >= 1e6:
        return f"{value / 1e6:g}M"
    if mag >= 1e3:
        return f"{value / 1e3:g}k"
    if mag < 0.01:
        return f"{value:.0e}"
    return f"{value:g}"


def nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi] (1/2/5 x 10^k spacing)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(1, n - 1)
    mag = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 5, 10):
        step = mult * mag
        if span / step <= n:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * step:
        ticks.append(0.0 if abs(t) < 1e-12 else t)
        t += step
    return ticks


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
            .replace('"', "&quot;")
    )


class _Scale:
    """An affine (or log-affine) data-to-pixel mapping."""

    def __init__(self, lo: float, hi: float, px_lo: float, px_hi: float,
                 log: bool = False) -> None:
        self.log = log
        if log:
            lo = math.log10(max(lo, 1e-12))
            hi = math.log10(max(hi, 1e-12))
        if hi <= lo:
            hi = lo + 1.0
        self.lo, self.hi = lo, hi
        self.px_lo, self.px_hi = px_lo, px_hi

    def __call__(self, value: float) -> float:
        v = math.log10(max(value, 1e-12)) if self.log else value
        frac = (v - self.lo) / (self.hi - self.lo)
        return self.px_lo + frac * (self.px_hi - self.px_lo)


def _data_bounds(panel: Panel) -> tuple[float, float, float, float]:
    xs: list[float] = []
    ys: list[float] = []
    for s in panel.series:
        xs.extend(s.x)
        ys.extend(s.y)
        if s.band is not None:
            ys.extend(s.band[0])
            ys.extend(s.band[1])
    ys = [y for y in ys if math.isfinite(y)]
    xs = [x for x in xs if math.isfinite(x)]
    if not xs or not ys:
        return 0.0, 1.0, 0.0, 1.0
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    return x_lo, x_hi, y_lo, y_hi


def _axis_elements(panel: Panel, sx: _Scale, sy: _Scale,
                   y_ticks: list[float]) -> list[str]:
    plot_bottom = HEIGHT - MARGIN["bottom"]
    parts = []
    # Y grid + labels.
    for t in y_ticks:
        py = sy(t)
        parts.append(
            f'<line x1="{_fmt(MARGIN["left"])}" y1="{_fmt(py)}" '
            f'x2="{_fmt(WIDTH - MARGIN["right"])}" y2="{_fmt(py)}" '
            f'stroke="#e3e3e3" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(MARGIN["left"] - 6)}" y="{_fmt(py + 3)}" '
            f'text-anchor="end" font-size="10" fill="#555" {FONT}>'
            f"{_escape(_fmt_tick(t))}</text>"
        )
    # X ticks.
    if sx.log:
        lo_dec = math.floor(sx.lo)
        hi_dec = math.ceil(sx.hi)
        x_ticks = [10.0 ** d for d in range(int(lo_dec), int(hi_dec) + 1)]
    else:
        x_ticks = nice_ticks(sx.lo, sx.hi, 6)
    for t in x_ticks:
        px = sx(t)
        if px < MARGIN["left"] - 0.5 or px > WIDTH - MARGIN["right"] + 0.5:
            continue
        parts.append(
            f'<line x1="{_fmt(px)}" y1="{_fmt(plot_bottom)}" '
            f'x2="{_fmt(px)}" y2="{_fmt(plot_bottom + 4)}" '
            f'stroke="#888" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(px)}" y="{_fmt(plot_bottom + 16)}" '
            f'text-anchor="middle" font-size="10" fill="#555" {FONT}>'
            f"{_escape(_fmt_tick(t))}</text>"
        )
    # Axis lines.
    parts.append(
        f'<line x1="{_fmt(MARGIN["left"])}" y1="{_fmt(MARGIN["top"])}" '
        f'x2="{_fmt(MARGIN["left"])}" y2="{_fmt(plot_bottom)}" '
        f'stroke="#333" stroke-width="1"/>'
    )
    parts.append(
        f'<line x1="{_fmt(MARGIN["left"])}" y1="{_fmt(plot_bottom)}" '
        f'x2="{_fmt(WIDTH - MARGIN["right"])}" y2="{_fmt(plot_bottom)}" '
        f'stroke="#333" stroke-width="1"/>'
    )
    # Axis labels.
    if panel.x_label:
        parts.append(
            f'<text x="{_fmt((MARGIN["left"] + WIDTH - MARGIN["right"]) / 2)}" '
            f'y="{_fmt(HEIGHT - 10)}" text-anchor="middle" font-size="11" '
            f'fill="#333" {FONT}>{_escape(panel.x_label)}</text>'
        )
    if panel.y_label:
        mid_y = (MARGIN["top"] + plot_bottom) / 2
        parts.append(
            f'<text x="14" y="{_fmt(mid_y)}" text-anchor="middle" '
            f'font-size="11" fill="#333" {FONT} '
            f'transform="rotate(-90 14 {_fmt(mid_y)})">'
            f"{_escape(panel.y_label)}</text>"
        )
    return parts


def _segments(series: Series, sx: _Scale,
              sy: _Scale) -> list[list[tuple[float, float]]]:
    """Finite runs of the series as pixel points, split at gaps.

    A non-finite x or y ends the current run, so missing samples render
    as a visible break in the polyline instead of a bridging segment.
    """
    segments: list[list[tuple[float, float]]] = []
    run: list[tuple[float, float]] = []
    for x, y in zip(series.x, series.y):
        if math.isfinite(x) and math.isfinite(y):
            run.append((sx(x), sy(y)))
        elif run:
            segments.append(run)
            run = []
    if run:
        segments.append(run)
    return segments


def _marker_elements(series: Series, color: str, sx: _Scale,
                     sy: _Scale) -> list[str]:
    """Unconnected circles, one per finite point (``kind="marker"``)."""
    return [
        f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(y))}" r="2.5" '
        f'fill="{color}" opacity="0.8"/>'
        for x, y in zip(series.x, series.y)
        if math.isfinite(x) and math.isfinite(y)
    ]


def _line_elements(series: Series, color: str, sx: _Scale,
                   sy: _Scale, dashed: bool) -> list[str]:
    parts = []
    if series.band is not None:
        lo, hi = series.band
        band_pts = [
            (sx(x), sy(v)) for x, v in zip(series.x, hi) if math.isfinite(v)
        ] + [
            (sx(x), sy(v))
            for x, v in reversed(list(zip(series.x, lo)))
            if math.isfinite(v)
        ]
        if band_pts:
            path = " ".join(f"{_fmt(px)},{_fmt(py)}" for px, py in band_pts)
            parts.append(
                f'<polygon points="{path}" fill="{color}" opacity="0.15"/>'
            )
    dash = ' stroke-dasharray="5,3"' if dashed else ""
    for points in _segments(series, sx, sy):
        if len(points) == 1:
            px, py = points[0]
            parts.append(
                f'<circle cx="{_fmt(px)}" cy="{_fmt(py)}" r="3" '
                f'fill="{color}"/>'
            )
            continue
        path = " ".join(f"{_fmt(px)},{_fmt(py)}" for px, py in points)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"{dash}/>'
        )
    return parts


def _bar_elements(panel: Panel, sy: _Scale, y0: float) -> list[str]:
    """Grouped bars: each series is one group member per x category."""
    bars = [s for s in panel.series if s.kind == "bar"]
    if not bars:
        return []
    n_cats = max(len(s.y) for s in bars)
    n_groups = len(bars)
    plot_w = WIDTH - MARGIN["left"] - MARGIN["right"]
    slot = plot_w / max(1, n_cats)
    bar_w = slot * 0.7 / n_groups
    plot_bottom = HEIGHT - MARGIN["bottom"]
    parts = []
    labels = next((s.labels for s in bars if s.labels), None)
    for gi, series in enumerate(bars):
        color = PALETTE[panel.series.index(series) % len(PALETTE)]
        for ci, y in enumerate(series.y):
            if not math.isfinite(y):
                continue
            x_px = (MARGIN["left"] + ci * slot + slot * 0.15
                    + gi * bar_w)
            top = sy(max(y, y0))
            bottom = sy(min(y, y0))
            parts.append(
                f'<rect x="{_fmt(x_px)}" y="{_fmt(top)}" '
                f'width="{_fmt(bar_w)}" height="{_fmt(max(bottom - top, 0.5))}" '
                f'fill="{color}"/>'
            )
    if labels:
        for ci, label in enumerate(labels):
            x_px = MARGIN["left"] + (ci + 0.5) * slot
            parts.append(
                f'<text x="{_fmt(x_px)}" y="{_fmt(plot_bottom + 16)}" '
                f'text-anchor="middle" font-size="10" fill="#555" {FONT}>'
                f"{_escape(str(label))}</text>"
            )
    return parts


def _legend_elements(panel: Panel) -> list[str]:
    parts = []
    x = MARGIN["left"] + 6
    y = MARGIN["top"] - 18
    for i, series in enumerate(panel.series):
        color = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{_fmt(x + 14)}" y="{_fmt(y + 9)}" font-size="10" '
            f'fill="#333" {FONT}>{_escape(series.name)}</text>'
        )
        x += 22 + 6.4 * len(series.name)
        if x > WIDTH - MARGIN["right"] - 60:
            x = MARGIN["left"] + 6
            y += 13
    return parts


def render_panel(panel: Panel) -> str:
    """Render one panel as a standalone SVG document string."""
    has_bars = any(s.kind == "bar" for s in panel.series)
    x_lo, x_hi, y_lo, y_hi = _data_bounds(panel)
    y_ticks = nice_ticks(y_lo, y_hi, 5)
    if y_ticks:
        y_hi = max(y_hi, y_ticks[-1])
        y_lo = min(y_lo, y_ticks[0])
    plot_bottom = HEIGHT - MARGIN["bottom"]
    sy = _Scale(y_lo, y_hi, plot_bottom, MARGIN["top"])
    # Pad the x range slightly so end points are not clipped by the frame.
    if panel.x_log:
        sx = _Scale(x_lo, x_hi, MARGIN["left"] + 4,
                    WIDTH - MARGIN["right"] - 4, log=True)
    else:
        pad = 0.01 * (x_hi - x_lo or 1.0)
        sx = _Scale(x_lo - pad, x_hi + pad, MARGIN["left"] + 4,
                    WIDTH - MARGIN["right"] - 4)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{_fmt(MARGIN["left"])}" y="16" font-size="12" '
        f'font-weight="bold" fill="#111" {FONT}>{_escape(panel.title)}</text>',
    ]
    parts.extend(_axis_elements(panel, sx, sy, y_ticks))
    if has_bars:
        parts.extend(_bar_elements(panel, sy, max(y_lo, 0.0)))
    for i, series in enumerate(panel.series):
        if series.kind == "bar":
            continue
        color = PALETTE[i % len(PALETTE)]
        if series.kind == "marker":
            parts.extend(_marker_elements(series, color, sx, sy))
            continue
        parts.extend(_line_elements(series, color, sx, sy,
                                    dashed=series.kind == "ref"))
    parts.extend(_legend_elements(panel))
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
