"""The report pipeline: sweep, render, score, emit.

``build_report`` is what ``hpcc-repro report`` runs: for every requested
figure it expands the experiment's declared scenario grid, executes the
missing cells through the existing :class:`~repro.runner.SweepRunner` /
:class:`~repro.runner.RunCache` machinery (a prior ``hpcc-repro sweep``
into the same cache directory is fully reused), calls the module's
``render()`` hook, scores the result against the digitized paper
reference (:mod:`repro.report.refdata`), and writes per-panel SVGs plus
one self-contained ``index.html``.

Everything is offline and dependency-free; if matplotlib happens to be
installed, :func:`rasterize_panels` can additionally emit PNG twins of
every panel, but nothing in the pipeline requires it.
"""

from __future__ import annotations

import json
import math
import platform
import re
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

from ..runner import RunCache, SweepRunner
from .fidelity import FidelityScore, score_figure
from .figures import FigureRender, Panel, Series
from .html import render_index
from .refdata import RefFigure, available_refdata, load_refdata
from .svg import render_panel


@dataclass(frozen=True)
class ReportEntry:
    """One reportable figure: its module and backend eligibility."""

    key: str
    title: str
    fluid_ok: bool = True

    @property
    def module(self):
        from .. import experiments

        return getattr(experiments, _MODULE_NAMES[self.key])


_MODULE_NAMES = {
    "fig1": "figure01", "fig2": "figure02", "fig3": "figure03",
    "fig6": "figure06", "fig9": "figure09", "fig10": "figure10",
    "fig11": "figure11", "fig12": "figure12", "fig13": "figure13",
    "fig14": "figure14", "appendix": "appendix_a", "failover": "failover",
    "linkfail": "linkfail", "flapping": "flapping",
}

#: Every figure the report can build, in paper order.  ``fluid_ok``
#: mirrors README "Simulation backends": fig1 (PFC pause trees) and
#: fig12 (flow-control/transport choices) are packet-only and silently
#: stay on the packet engine when a fluid report is requested.
REPORT_FIGURES: dict[str, ReportEntry] = {
    "fig1": ReportEntry("fig1", "Figure 1: PFC pause propagation",
                        fluid_ok=False),
    "fig2": ReportEntry("fig2", "Figure 2: DCQCN timer trade-off"),
    "fig3": ReportEntry("fig3", "Figure 3: DCQCN ECN-threshold trade-off"),
    "fig6": ReportEntry("fig6", "Figure 6: txRate vs rxRate feedback"),
    "fig9": ReportEntry("fig9", "Figure 9: testbed micro-benchmarks"),
    "fig10": ReportEntry("fig10", "Figure 10: testbed WebSearch FCT"),
    "fig11": ReportEntry("fig11", "Figure 11: large-scale FatTree"),
    "fig12": ReportEntry("fig12", "Figure 12: flow-control choices",
                         fluid_ok=False),
    "fig13": ReportEntry("fig13", "Figure 13: reaction strategies"),
    "fig14": ReportEntry("fig14", "Figure 14: WAI tuning"),
    "appendix": ReportEntry("appendix", "Appendix A: the theory, executed"),
    "failover": ReportEntry("failover", "Extension: dual-trunk failover"),
    "linkfail": ReportEntry("linkfail", "Extension: FatTree link-failure sweep"),
    "flapping": ReportEntry("flapping", "Extension: flapping-trunk study"),
}

#: The ``--fastest`` subset: cheap fluid-eligible grids that still carry
#: refdata (what CI builds on every PR).
FASTEST_FIGURES = ("fig6", "fig11", "fig13")


def _json_number(value):
    """A float as strict-JSON data: non-finite values become strings."""
    if value is None or math.isfinite(value):
        return value
    return str(value)               # "inf" / "-inf" / "nan"


@dataclass
class FigureReport:
    """One built figure: render, score, and emitted artifacts."""

    key: str
    title: str
    backend: str
    scale: str
    render: FigureRender
    score: FidelityScore | None
    ref: "RefFigure | None"
    n_specs: int
    n_cached: int
    wall_time_s: float
    #: Cells quarantined by the sweep fabric (error/timeout records);
    #: the figure rendered from the surviving cells only.
    n_failed: int = 0
    #: ``compare_decisions`` output for the figure's drilldown (fig13
    #: only): the packet-vs-fluid CC decision-trace divergence, also
    #: written as ``divergence.json``.  ``None`` when not built.
    divergence: dict | None = None
    #: Engine work summed over the figure's records (packet events or
    #: fluid steps), plus the events and wall time of the *computed*
    #: (non-cached) subset — the report's telemetry panel derives
    #: events/s from the fresh pair so cache hits cannot inflate it.
    events_processed: int = 0
    fresh_events: int = 0
    fresh_wall_s: float = 0.0
    panel_svgs: list[str] = field(default_factory=list)
    ref_svgs: list[str] = field(default_factory=list)

    @property
    def events_per_s(self) -> float | None:
        """Engine events per compute-second; None for all-cached builds."""
        if self.fresh_wall_s <= 0:
            return None
        return self.fresh_events / self.fresh_wall_s

    @property
    def extraction(self) -> str:
        return self.ref.extraction if self.ref is not None else ""

    @property
    def notes(self) -> list[str]:
        return self.render.notes


@dataclass
class Report:
    """The whole build: figure reports plus run metadata."""

    figures: list[FigureReport]
    metadata: dict

    def verdicts(self) -> dict[str, str]:
        return {
            fig.key: fig.score.verdict if fig.score is not None else "n/a"
            for fig in self.figures
        }

    def to_json(self) -> dict:
        """Machine-readable summary (written as ``report.json``).

        Stats legitimately hold ``inf``/``nan`` (an un-drained queue's
        drain time, a percentile with no samples); those encode as the
        strings ``"inf"``/``"-inf"``/``"nan"`` so the file stays strict
        JSON (``json.dumps`` would otherwise emit bare ``Infinity``
        tokens that JavaScript and jq reject).
        """
        out = {"metadata": self.metadata, "figures": {}}
        for fig in self.figures:
            entry = {
                "title": fig.title,
                "backend": fig.backend,
                "scale": fig.scale,
                "scenarios": fig.n_specs,
                "cached": fig.n_cached,
                "failed": fig.n_failed,
                "wall_time_s": round(fig.wall_time_s, 3),
                "events_processed": fig.events_processed,
                "events_per_s": _json_number(
                    round(fig.events_per_s, 1)
                    if fig.events_per_s is not None else None
                ),
                "verdict": "n/a",
                "stats": {
                    k: _json_number(v) for k, v in fig.render.stats.items()
                },
            }
            if fig.divergence is not None:
                entry["divergence"] = {
                    k: _json_number(v)
                    for k, v in fig.divergence["summary"].items()
                }
            if fig.score is not None:
                entry.update({
                    "verdict": fig.score.verdict,
                    "nrmse": _json_number(fig.score.nrmse),
                    "trend": _json_number(fig.score.trend),
                    "checks_passed": sum(
                        1 for c in fig.score.checks if c.passed
                    ),
                    "checks_total": len(fig.score.checks),
                })
            out["figures"][fig.key] = entry
        return out


def resolve_figures(names: list[str] | None, fastest: bool) -> list[str]:
    """Figure keys for a report request (CLI semantics)."""
    if fastest:
        if names:
            raise SystemExit(
                "--fastest selects its own figure subset "
                f"({', '.join(FASTEST_FIGURES)}); drop --figures or --fastest"
            )
        return list(FASTEST_FIGURES)
    if not names:
        return list(REPORT_FIGURES)
    from ..cli import _resolve

    keys = []
    for name in names:
        key = _resolve(name)
        if key not in REPORT_FIGURES:
            raise SystemExit(f"experiment {key!r} has no report entry")
        if key not in keys:
            keys.append(key)
    return keys


def _ref_panels(ref) -> list[Panel]:
    """The digitized paper curves, grouped per panel, as plot panels."""
    panels = []
    for key in ref.panel_keys():
        members = ref.series_for(key)
        units = ref.units.get(key, {})
        panels.append(Panel(
            key=f"ref-{key}",
            title=f"{ref.title} [{key}]",
            series=[
                Series(name=s.name, x=list(s.x), y=list(s.y))
                for s in members
            ],
            x_label=units.get("x", ""),
            y_label=units.get("y", ""),
        ))
    return panels


def build_figure(
    key: str,
    backend: str,
    scale: str,
    runner: SweepRunner,
    seed: int = 1,
    telemetry=None,
) -> FigureReport:
    """Sweep + render + score one figure (no files written).

    ``telemetry`` (a :class:`repro.obs.Telemetry`, usually the runner's
    own) adds per-figure ``figure`` and ``score`` spans around the
    sweep and the render/score phases.
    """
    entry = REPORT_FIGURES[key]
    effective_backend = backend if entry.fluid_ok else "packet"
    specs = entry.module.scenarios(scale=scale)
    if effective_backend != "packet":
        # Cells that already carry a non-packet backend (a grid mixing
        # fluid and hybrid cells) keep it; only default-packet cells are
        # moved to the requested engine.  The figure's backend badge
        # then reflects what actually ran, e.g. ``fluid+hybrid``.
        specs = [
            s if s.backend != "packet"
            else s.replaced(backend=effective_backend)
            for s in specs
        ]
    badge = "+".join(sorted({s.backend for s in specs}))
    started = time.perf_counter()
    with telemetry.span("figure", figure=key) if telemetry is not None \
            else nullcontext():
        records = runner.run(specs)
    wall = time.perf_counter() - started
    # Quarantined cells (error/timeout) never reach the figure's render —
    # it sees only the surviving (spec, record) pairs and the report
    # badges the loss instead of aborting the whole build.
    failed = [r for r in records if not r.ok]
    ok_pairs = [(s, r) for s, r in zip(specs, records) if r.ok]
    ok_specs = [s for s, _ in ok_pairs]
    ok_records = [r for _, r in ok_pairs]
    with telemetry.span("score", figure=key) if telemetry is not None \
            else nullcontext():
        try:
            render = entry.module.render(ok_specs, ok_records)
        except Exception as exc:
            if not failed:
                raise         # a real render bug, not missing cells
            # The failures starved the render of cells it requires:
            # degrade to an empty figure carrying the failure note.
            render = FigureRender(
                figure=key, title=entry.title, panels=[],
                notes=[f"render skipped: {type(exc).__name__}: {exc}"],
            )
        if failed:
            statuses: dict[str, int] = {}
            for record in failed:
                statuses[record.status] = statuses.get(record.status, 0) + 1
            detail = ", ".join(f"{n} {s}" for s, n in sorted(statuses.items()))
            render.notes.append(
                f"{len(failed)} of {len(specs)} cells failed ({detail}); "
                f"rendered from the {len(ok_records)} surviving cells. "
                f"Failed: " + "; ".join(
                    f"{r.label} [{(r.error or {}).get('type', r.status)}]"
                    for r in failed[:6]
                ) + ("..." if len(failed) > 6 else "")
            )
        if effective_backend != backend:
            render.notes.append(
                f"{key} is packet-only (see README 'Simulation backends'); "
                f"the requested {backend!r} backend was overridden."
            )
        ref = load_refdata(key)
        score = score_figure(render, ref) if ref is not None else None
    return FigureReport(
        key=key,
        title=render.title,
        backend=badge,
        scale=scale,
        render=render,
        score=score,
        ref=ref,
        n_specs=len(specs),
        n_cached=sum(1 for r in records if r.cached),
        n_failed=len(failed),
        wall_time_s=wall,
        events_processed=sum(r.events_processed for r in records),
        fresh_events=sum(r.events_processed for r in records if not r.cached),
        fresh_wall_s=sum(r.wall_time_s for r in records if not r.cached),
        panel_svgs=[render_panel(p) for p in render.panels],
        ref_svgs=[render_panel(p) for p in _ref_panels(ref)]
        if ref is not None else [],
    )


# -- fig13 divergence drilldown ---------------------------------------------------

def _stride(values: list, cap: int) -> list:
    """Every n-th element so the result stays under ``cap`` points."""
    step = max(1, -(-len(values) // cap))
    return values[::step]


def _divergence_panel(streams: dict[str, list[dict]]) -> Panel:
    """The decision-marked rate timeline: both backends, every flow.

    Lines are each flow's rate trajectory (the ``rate_after`` step
    function, decimated for SVG size); markers sit at individual
    decision instants, so the chart shows *when* each control loop
    acted, not just where its rate ended up.
    """
    from ..obs.divergence import by_flow, decision_records, rate_trajectory

    series = []
    for backend in ("packet", "fluid"):
        flows = by_flow(decision_records(streams[backend]))
        marker_pts: list[tuple[float, float]] = []
        for flow_id in sorted(flows):
            times, rates = rate_trajectory(flows[flow_id])
            pts = _stride(list(zip(times, rates)), 400)
            series.append(Series(
                name=f"{backend} flow {flow_id}",
                x=[t / 1000.0 for t, _ in pts],        # ns -> us
                y=[r * 8.0 for _, r in pts],           # B/ns -> Gbps
            ))
            marker_pts.extend(zip(times, rates))
        marker_pts.sort()
        marker_pts = _stride(marker_pts, 150)
        series.append(Series(
            name=f"{backend} decisions",
            x=[t / 1000.0 for t, _ in marker_pts],
            y=[r * 8.0 for _, r in marker_pts],
            kind="marker",
        ))
    return Panel(
        key="cc-divergence",
        title="CC decision timeline: packet vs fluid (HPCC, 2-to-1 incast)",
        series=series,
        x_label="time (us)",
        y_label="rate (Gbps)",
    )


def build_divergence_drilldown(
    scale: str = "bench", threshold: float = 0.25
) -> tuple[dict, Panel]:
    """Run fig13's HPCC cell on both backends and diff the decisions.

    Uses a 2-to-1 incast (fig13's strategy comparison shrunk to two
    senders) so the packet run stays cheap inside a report build.
    Returns ``(compare_decisions output, timeline panel)``.
    """
    from ..experiments import figure13
    from ..obs.divergence import compare_decisions
    from ..runner.execute import execute_spec

    specs = figure13.scenarios(scale=scale, params={"fan_in": 2})
    spec = next(s for s in specs if (s.label or "") == "HPCC")
    streams = {}
    for backend in ("packet", "fluid"):
        record = execute_spec(spec.replaced(backend=backend), decisions=True)
        streams[backend] = record.telemetry or []
    div = compare_decisions(streams["packet"], streams["fluid"],
                            threshold=threshold)
    div["spec"] = {"label": spec.label, "spec_hash": spec.spec_hash,
                   "program": spec.program, "cc": spec.cc.name}
    return div, _divergence_panel(streams)


# -- the hybrid co-simulation cell ------------------------------------------------

def _build_hybrid_cell(out: Path, scale: str = "bench") -> str:
    """Run one hybrid fig11 cell and write ``hybrid_fig11.json``.

    The ``--fastest`` artifact carries a single HPCC 50%-load FatTree
    cell on the hybrid backend (10% packet foreground, fluid
    background) so every CI build exercises the co-simulation path end
    to end on a real figure workload.  Returns the metadata summary
    line.
    """
    from ..experiments import figure11
    from ..runner import CcChoice
    from ..runner.execute import execute_spec

    spec = figure11.scenarios(
        scale=scale, cases=("50%",),
        schemes=(CcChoice("hpcc", label="HPCC"),),
    )[0].replaced(
        backend="hybrid",
        **{"workload.foreground": {"kind": "frac", "x": 0.1}},
    )
    started = time.perf_counter()
    record = execute_spec(spec)
    wall = time.perf_counter() - started
    extras = record.extras or {}
    payload = {
        "spec_hash": spec.spec_hash,
        "label": spec.label,
        "backend": spec.backend,
        "scale": scale,
        "hybrid_mode": extras.get("hybrid_mode"),
        "foreground_flows": extras.get("foreground_flows"),
        "background_flows": extras.get("background_flows"),
        "hybrid_epochs": extras.get("hybrid_epochs"),
        "events_processed": record.events_processed,
        "duration_ns": _json_number(record.duration_ns),
        "n_fct": len(record.fct or []),
        "wall_time_s": round(wall, 3),
    }
    (out / "hybrid_fig11.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
    return (
        f"fig11 {spec.label} on hybrid "
        f"({payload['foreground_flows']} fg / "
        f"{payload['background_flows']} bg flows, "
        f"{payload['hybrid_epochs']} epochs, {wall:.1f}s) "
        f"-> hybrid_fig11.json"
    )


# -- benchmark trajectory ---------------------------------------------------------

#: Bench-snapshot payload versions this reader understands.  ``None``
#: is the unstamped v1 payload (the PR 3/4 files predate the ``schema``
#: key); a future stamp this code does not know is skipped, not fatal.
_BENCH_SCHEMAS = (None, 1, 2)


def _load_bench_snapshots(root: Path) -> list[tuple[int, dict]]:
    """``BENCH_pr<N>.json`` snapshots, schema-checked and PR-sorted.

    Unparsable files, non-object payloads and unknown schema stamps are
    skipped — a perf trajectory built from surviving snapshots beats an
    aborted report.
    """
    snapshots: list[tuple[int, dict]] = []
    for path in root.glob("BENCH_pr*.json"):
        match = re.fullmatch(r"BENCH_pr(\d+)", path.stem)
        if not match:
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(data, dict) \
                or data.get("schema") not in _BENCH_SCHEMAS:
            continue
        snapshots.append((int(match.group(1)), data))
    snapshots.sort()
    return snapshots


def _pr_axis(snapshots: list[tuple[int, dict]]) -> list[int]:
    """Every PR number from first to last snapshot, present or not.

    The axis deliberately includes the missing PRs (a PR that shipped
    no snapshot, e.g. a docs- or infra-only change): series carry NaN
    there, which the SVG renderer draws as a visible gap instead of a
    bridging line segment that would fake a measurement.
    """
    prs = [pr for pr, _ in snapshots]
    return list(range(min(prs), max(prs) + 1))


def load_bench_trajectory(root: Path) -> Panel | None:
    """Wall time per run_all.py workload across BENCH_pr<N>.json files.

    The series starts at PR 3 (PR 0-2 predate the snapshot convention,
    so ``BENCH_pr1.json``/``BENCH_pr2.json`` intentionally do not
    exist); snapshots missing in between render as explicit gaps.
    """
    snapshots = _load_bench_snapshots(root)
    if not snapshots:
        return None
    per_bench: dict[str, dict[int, float]] = {}
    for pr, data in snapshots:
        for result in data.get("results", []):
            name = result.get("name")
            wall = result.get("wall_time_s")
            if isinstance(name, str) and isinstance(wall, (int, float)):
                per_bench.setdefault(name, {})[pr] = float(wall)
    axis = _pr_axis(snapshots)
    series = [
        Series(name=name, x=[float(p) for p in axis],
               y=[by_pr.get(p, math.nan) for p in axis])
        for name, by_pr in sorted(per_bench.items())
    ]
    return Panel(
        key="bench-trajectory",
        title="run_all.py wall time per PR snapshot",
        series=series,
        x_label="PR", y_label="wall time (s)",
    )


def load_engine_rate_trajectory(root: Path) -> Panel | None:
    """Packet-engine events/s across ``BENCH_pr<N>.json`` snapshots.

    The ``engine_events`` entry records wall time for a fixed
    200k-event chain workload; dividing gives the substrate throughput
    trend the telemetry panel plots next to the live per-figure rates.
    Missing PR snapshots render as explicit gaps, like the wall-time
    trajectory.
    """
    snapshots = _load_bench_snapshots(root)
    if not snapshots:
        return None
    by_pr: dict[int, float] = {}
    for pr, data in snapshots:
        for result in data.get("results", []):
            if result.get("name") != "engine_events":
                continue
            wall = result.get("wall_time_s")
            events = result.get("params", {}).get("events")
            if isinstance(wall, (int, float)) and wall > 0 \
                    and isinstance(events, (int, float)):
                by_pr[pr] = float(events) / float(wall)
    if not by_pr:
        return None
    axis = _pr_axis(snapshots)
    return Panel(
        key="engine-rate-trajectory",
        title="packet-engine throughput per PR snapshot",
        series=[Series(name="engine events/s",
                       x=[float(p) for p in axis],
                       y=[by_pr.get(p, math.nan) for p in axis])],
        x_label="PR", y_label="events/s",
    )


# -- optional matplotlib rasterization -------------------------------------------

def rasterize_panels(report: Report, out: Path) -> list[Path]:
    """PNG twins of every panel — *only* if matplotlib is installed.

    The SVG report never needs this; it exists for embedding charts in
    tools that cannot render SVG.  Raises ``RuntimeError`` with a clear
    message when matplotlib is unavailable.
    """
    try:
        import matplotlib
    except ImportError:
        raise RuntimeError(
            "matplotlib is not installed; the SVG report is complete "
            "without it — install matplotlib only if you need PNGs"
        )
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    written = []
    for fig_report in report.figures:
        for panel in fig_report.render.panels:
            fig, ax = plt.subplots(figsize=(4.8, 3.0), dpi=120)
            for series in panel.series:
                if series.kind == "bar":
                    ax.bar([str(v) for v in series.x], series.y,
                           label=series.name)
                else:
                    ax.plot(series.x, series.y, label=series.name)
            ax.set_title(panel.title, fontsize=9)
            ax.set_xlabel(panel.x_label)
            ax.set_ylabel(panel.y_label)
            if panel.x_log:
                ax.set_xscale("log")
            if panel.series:
                ax.legend(fontsize=7)
            path = out / f"{fig_report.key}_{panel.key}.png"
            fig.tight_layout()
            fig.savefig(path)
            plt.close(fig)
            written.append(path)
    return written


# -- the top-level build ----------------------------------------------------------

def build_report(
    figures: list[str],
    backend: str = "packet",
    scale: str = "bench",
    out: str | Path = "report",
    cache_dir: str | Path | None = None,
    jobs: int = 1,
    progress=None,
    bench_root: str | Path | None = None,
    telemetry=None,
    hybrid_cell: bool = False,
) -> Report:
    """Build the reproduction report; returns the in-memory summary.

    Writes under ``out``: one ``<figure>_<panel>.svg`` per reproduction
    panel, ``ref_<figure>_<panel>.svg`` per digitized reference panel,
    ``report.json`` (machine-readable verdicts) and ``index.html``.
    ``cache_dir`` defaults to ``<out>/cache``; point it at a previous
    ``hpcc-repro sweep --out`` directory to reuse those records.
    ``telemetry`` (a :class:`repro.obs.Telemetry`, owned and closed by
    the caller) records the build's spans and every run's probe data.
    ``hybrid_cell`` additionally runs one fig11 cell on the hybrid
    backend and writes ``hybrid_fig11.json`` (rides in the
    ``--fastest`` CI artifact).
    """
    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)
    cache = RunCache(cache_dir if cache_dir is not None else out / "cache")
    runner = SweepRunner(jobs=jobs, cache=cache, progress=progress,
                         telemetry=telemetry,
                         journal=str(out / "journal.jsonl"))

    started = time.perf_counter()
    built = [
        build_figure(key, backend=backend, scale=scale, runner=runner,
                     telemetry=telemetry)
        for key in figures
    ]

    # fig13 drilldown: the control-loop flight recorder's backend diff.
    # Best-effort — a drilldown failure becomes a figure note, never a
    # failed report build.
    for fig_report in built:
        if fig_report.key != "fig13":
            continue
        if "hybrid" in fig_report.backend.split("+"):
            # The decision-trace diff is defined for the pure
            # packet-vs-fluid pair; a hybrid cell runs both engines at
            # once, so there is no second backend to diff against.
            fig_report.render.notes.append(
                "divergence drilldown skipped: not defined for hybrid "
                "cells (the diff compares the pure packet and fluid "
                "engines)"
            )
            continue
        try:
            div, div_panel = build_divergence_drilldown(scale=scale)
        except Exception as exc:
            fig_report.render.notes.append(
                f"divergence drilldown skipped: {type(exc).__name__}: {exc}"
            )
            continue
        fig_report.divergence = div
        fig_report.render.panels.append(div_panel)
        fig_report.panel_svgs.append(render_panel(div_panel))
        (out / "divergence.json").write_text(
            json.dumps(div, indent=2, sort_keys=True, allow_nan=False) + "\n"
        )

    scored = [f for f in built if f.score is not None]
    failed_total = sum(f.n_failed for f in built)
    metadata = {
        "backend requested": backend,
        "scale": scale,
        "figures": ", ".join(figures),
        "scored": f"{len(scored)}/{len(built)} figures have refdata "
                  f"({len(available_refdata())} reference files checked in)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "total wall time": f"{time.perf_counter() - started:.2f}s",
        "cache": str(cache.root),
    }
    diverged = next((f.divergence for f in built if f.divergence), None)
    if diverged is not None:
        s = diverged["summary"]
        agreement = s["attribution_agreement"]
        metadata["decision divergence"] = (
            f"{s['flows_compared']} flows diffed across backends "
            f"({s['flows_diverged']} diverged"
            + (f", bottleneck attribution {agreement:.0%} agree"
               if agreement is not None else "")
            + "); see divergence.json"
        )
    if failed_total:
        metadata["failed cells"] = (
            f"{failed_total} quarantined (error/timeout) — figures "
            f"rendered from surviving cells; see journal.jsonl"
        )
    if telemetry is not None:
        sink_path = getattr(telemetry.sink, "path", None)
        metadata["telemetry"] = (
            str(sink_path) if sink_path is not None else "recorded (no file)"
        )
    if hybrid_cell:
        # Best-effort like the drilldown: a broken hybrid cell becomes
        # a metadata note, never a failed report build.
        try:
            metadata["hybrid cell"] = _build_hybrid_cell(out, scale=scale)
        except Exception as exc:
            metadata["hybrid cell"] = (
                f"skipped: {type(exc).__name__}: {exc}"
            )
    report = Report(figures=built, metadata=metadata)

    for fig_report in built:
        for panel, svg in zip(fig_report.render.panels,
                              fig_report.panel_svgs):
            (out / f"{fig_report.key}_{panel.key}.svg").write_text(svg)
        if fig_report.ref_svgs:
            for key, svg in zip(fig_report.ref.panel_keys(),
                                fig_report.ref_svgs):
                (out / f"ref_{fig_report.key}_{key}.svg").write_text(svg)

    bench_dir = Path(bench_root) if bench_root is not None else Path.cwd()
    bench_panel = load_bench_trajectory(bench_dir)
    bench_svg = None
    if bench_panel is not None:
        bench_svg = render_panel(bench_panel)
        (out / "bench_trajectory.svg").write_text(bench_svg)
        metadata["bench trajectory"] = (
            f"{len(bench_panel.series)} workloads from BENCH_pr*.json "
            f"in {bench_dir}"
        )
    else:
        # Not an error (installed packages have no repo checkout), but
        # say so: a silently missing chart reads as a build bug.
        metadata["bench trajectory"] = (
            f"no BENCH_pr*.json snapshots in {bench_dir} - run from the "
            "repository root to include the trajectory chart"
        )

    rate_panel = load_engine_rate_trajectory(bench_dir)
    rate_svg = None
    if rate_panel is not None:
        rate_svg = render_panel(rate_panel)
        (out / "engine_rate_trajectory.svg").write_text(rate_svg)

    (out / "report.json").write_text(
        json.dumps(report.to_json(), indent=2, sort_keys=True,
                   allow_nan=False) + "\n"
    )
    (out / "index.html").write_text(
        render_index(report, bench_svg, rate_svg)
    )
    return report
