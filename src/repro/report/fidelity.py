"""Quantitative fidelity scoring: reproduction versus digitized paper.

Three ingredients, combined into one per-figure verdict:

* **curve deviation** — for every reference series matched by (panel
  key, series name), the reproduction is resampled onto the reference
  grid (after the figure's declared x/y normalization) and scored as
  normalized RMSE (RMSE over the reference's value range);
* **trend agreement** — the fraction of consecutive reference segments
  whose direction (up / down / flat) the reproduction matches; on bar
  panels this degrades gracefully into ordering agreement;
* **checks** — the scalar relations the figure demonstrates (HPCC's
  short-flow tail below DCQCN's, the queue does drain, ...), evaluated
  against the render hook's ``stats`` dict.

Thresholds live *in the refdata file*, per figure, because the tolerable
deviation depends on what the figure claims: a shape-only comparison
across a 10x scale shrink legitimately tolerates more RMSE than a
dimensionless-slowdown ordering.  The extraction notes record each
file's calibration rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .figures import FigureRender
from .refdata import RefCheck, RefFigure, RefSeries

VERDICTS = ("pass", "warn", "fail")

#: Relative tolerance under which a segment counts as "flat" for trend
#: direction matching (fraction of the curve's value range).
FLAT_TOL = 0.02


@dataclass
class SeriesScore:
    panel: str
    name: str
    matched: bool
    nrmse: float | None = None
    trend: float | None = None


@dataclass
class CheckScore:
    id: str
    passed: bool
    detail: str
    note: str = ""


@dataclass
class FidelityScore:
    """One figure's reproduction-fidelity summary."""

    figure: str
    verdict: str
    series: list[SeriesScore] = field(default_factory=list)
    checks: list[CheckScore] = field(default_factory=list)
    nrmse: float | None = None          # mean over matched series
    trend: float | None = None          # mean over matched series
    check_fraction: float | None = None

    @property
    def missing_series(self) -> list[str]:
        return [f"{s.panel}/{s.name}" for s in self.series if not s.matched]

    def summary(self) -> str:
        parts = [f"verdict={self.verdict}"]
        if self.nrmse is not None:
            parts.append(f"nrmse={self.nrmse:.3f}")
        if self.trend is not None:
            parts.append(f"trend={self.trend:.2f}")
        if self.check_fraction is not None:
            done = sum(1 for c in self.checks if c.passed)
            parts.append(f"checks={done}/{len(self.checks)}")
        return " ".join(parts)


# -- curve comparison -------------------------------------------------------------

def _normalize_y(values: list[float]) -> list[float]:
    peak = max((abs(v) for v in values), default=0.0)
    if peak == 0.0:
        return list(values)
    return [v / peak for v in values]


def _normalize_x(xs: list[float], mode: str) -> list[float]:
    if mode == "index":
        return [float(i) for i in range(len(xs))]
    if mode == "span":
        lo, hi = min(xs), max(xs)
        span = hi - lo
        if span == 0.0:
            return [0.0 for _ in xs]
        return [(x - lo) / span for x in xs]
    return list(xs)


def resample(
    x_ref: list[float], x_rep: list[float], y_rep: list[float]
) -> list[float]:
    """Linearly interpolate the reproduction onto the reference grid.

    Reference points outside the reproduction's x-domain clamp to the
    nearest endpoint value (bench runs can be shorter than the paper's
    window; extrapolating would invent data).
    """
    if not x_rep:
        return [math.nan for _ in x_ref]
    out = []
    for xr in x_ref:
        if xr <= x_rep[0]:
            out.append(y_rep[0])
            continue
        if xr >= x_rep[-1]:
            out.append(y_rep[-1])
            continue
        # x_rep is sorted (time axes, bucket ordinals); find the segment.
        lo, hi = 0, len(x_rep) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if x_rep[mid] <= xr:
                lo = mid
            else:
                hi = mid
        x0, x1 = x_rep[lo], x_rep[hi]
        if x1 == x0:
            out.append(y_rep[lo])
        else:
            frac = (xr - x0) / (x1 - x0)
            out.append(y_rep[lo] + frac * (y_rep[hi] - y_rep[lo]))
    return out


def nrmse(reference: list[float], reproduced: list[float]) -> float:
    """RMSE normalized by the reference's value range.

    The denominator is floored at 10% of the reference's peak magnitude
    (1.0 for an all-zero reference): a *flat* reference curve — e.g.
    "the three HPCC bars are near-identical" — would otherwise divide by
    a sliver of noise and report huge deviation for a reproduction that
    is also flat.  With the floor, flat-vs-flat compares on absolute
    deviation relative to the curve's own scale.
    """
    if len(reference) != len(reproduced) or not reference:
        raise ValueError("nrmse needs two equal-length non-empty sequences")
    peak = max(abs(v) for v in reference)
    span = max(max(reference) - min(reference), 0.1 * peak) or 1.0
    total = 0.0
    for r, p in zip(reference, reproduced):
        total += (r - p) ** 2
    return math.sqrt(total / len(reference)) / span


def trend_agreement(reference: list[float], reproduced: list[float]) -> float:
    """Fraction of reference segments whose direction the repro matches.

    Direction is up / down / flat, with "flat" meaning the segment moves
    less than :data:`FLAT_TOL` of the curve's own range.  A single-point
    series has no segments and scores 1.0 (nothing to disagree with).
    """
    if len(reference) != len(reproduced):
        raise ValueError("trend_agreement needs equal-length sequences")
    if len(reference) < 2:
        return 1.0

    def directions(values: list[float]) -> list[int]:
        span = max(values) - min(values)
        tol = FLAT_TOL * span if span > 0 else 0.0
        out = []
        for a, b in zip(values, values[1:]):
            delta = b - a
            if abs(delta) <= tol:
                out.append(0)
            else:
                out.append(1 if delta > 0 else -1)
        return out

    ref_dir = directions(reference)
    rep_dir = directions(reproduced)
    agree = sum(1 for r, p in zip(ref_dir, rep_dir) if r == p)
    return agree / len(ref_dir)


def score_series(
    ref: RefSeries, render: FigureRender, x_mode: str, y_mode: str
) -> SeriesScore:
    panel = render.panel(ref.panel)
    series = panel.series_named(ref.name) if panel is not None else None
    if series is None or not series.x:
        return SeriesScore(panel=ref.panel, name=ref.name, matched=False)
    x_ref = _normalize_x(list(ref.x), x_mode)
    x_rep = _normalize_x(list(series.x), x_mode)
    y_ref = list(ref.y)
    y_rep = resample(x_ref, x_rep, [float(v) for v in series.y])
    if y_mode == "max":
        y_ref = _normalize_y(y_ref)
        y_rep = _normalize_y(y_rep)
    return SeriesScore(
        panel=ref.panel, name=ref.name, matched=True,
        nrmse=nrmse(y_ref, y_rep),
        trend=trend_agreement(y_ref, y_rep),
    )


# -- checks -----------------------------------------------------------------------

def _resolve(value: str | float | None, stats: dict) -> float | None:
    if value is None:
        return None
    if isinstance(value, str):
        got = stats.get(value)
        return None if got is None else float(got)
    return float(value)


def evaluate_check(check: RefCheck, stats: dict) -> CheckScore:
    lhs = _resolve(check.stat, stats)
    if lhs is None or (check.type != "finite" and math.isnan(lhs)):
        return CheckScore(
            id=check.id, passed=False,
            detail=f"stat {check.stat!r} missing from render stats",
            note=check.note,
        )
    if check.type == "finite":
        ok = math.isfinite(lhs)
        return CheckScore(
            id=check.id, passed=ok,
            detail=f"{check.stat} = {lhs:g} ({'finite' if ok else 'not finite'})",
            note=check.note,
        )
    if check.type == "between":
        ok = check.lo <= lhs <= check.hi
        return CheckScore(
            id=check.id, passed=ok,
            detail=f"{check.stat} = {lhs:g} in [{check.lo:g}, {check.hi:g}]: {ok}",
            note=check.note,
        )
    rhs = _resolve(check.than, stats)
    if rhs is None or math.isnan(rhs):
        return CheckScore(
            id=check.id, passed=False,
            detail=f"comparand {check.than!r} missing from render stats",
            note=check.note,
        )
    rhs_scaled = rhs * check.factor
    op = {"le": lhs <= rhs_scaled, "lt": lhs < rhs_scaled,
          "ge": lhs >= rhs_scaled, "gt": lhs > rhs_scaled}[check.type]
    shown_rhs = (
        f"{check.factor:g} x {check.than} ({rhs_scaled:g})"
        if check.factor != 1.0 else f"{rhs_scaled:g}"
    )
    return CheckScore(
        id=check.id, passed=op,
        detail=f"{check.stat} = {lhs:g} {check.type} {shown_rhs}: {op}",
        note=check.note,
    )


# -- the combined score -----------------------------------------------------------

def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


def _tier_ok(score: "FidelityScore", tier: dict) -> bool:
    if "nrmse" in tier and score.nrmse is not None \
            and score.nrmse > tier["nrmse"]:
        return False
    if "trend" in tier and score.trend is not None \
            and score.trend < tier["trend"]:
        return False
    if "checks" in tier and score.check_fraction is not None \
            and score.check_fraction < tier["checks"]:
        return False
    return True


def score_figure(render: FigureRender, ref: RefFigure) -> FidelityScore:
    """Score one rendered figure against its reference bundle."""
    x_mode = ref.normalize.get("x", "none")
    y_mode = ref.normalize.get("y", "none")
    series = [
        score_series(rs, render, x_mode, y_mode) for rs in ref.series
    ]
    checks = [evaluate_check(c, render.stats) for c in ref.checks]

    score = FidelityScore(
        figure=ref.figure,
        verdict="fail",
        series=series,
        checks=checks,
        nrmse=_mean([s.nrmse for s in series if s.matched]),
        trend=_mean([s.trend for s in series if s.matched]),
        check_fraction=(
            sum(1 for c in checks if c.passed) / len(checks)
            if checks else None
        ),
    )
    if score.missing_series:
        # A digitized curve the reproduction never produced can at best
        # warn: the comparison is incomplete, not merely imprecise.
        score.verdict = (
            "warn" if _tier_ok(score, ref.thresholds["warn"]) else "fail"
        )
        return score
    if _tier_ok(score, ref.thresholds["pass"]):
        score.verdict = "pass"
    elif _tier_ok(score, ref.thresholds["warn"]):
        score.verdict = "warn"
    return score
