"""Self-contained HTML assembly for the reproduction report.

One ``index.html``, no network fetches: every chart is an inline SVG
(also written next to it as a standalone ``.svg`` file), the stylesheet
is embedded, and the fidelity tables are plain HTML.  Layout per figure:
reproduction panels on the left, the digitized paper reference on the
right, fidelity badge + metric table underneath.  After the figures, a
"Run telemetry" panel shows what the build cost (per-figure wall time
and engine events/s, with the BENCH_pr*.json substrate-throughput trend
for context) and the benchmark-trajectory chart closes the page.
"""

from __future__ import annotations

import html as _html
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .build import FigureReport, Report

BADGE_COLORS = {
    "pass": "#2e7d32",
    "warn": "#b26a00",
    "fail": "#c62828",
    "n/a": "#757575",
}

_CSS = """
body { font-family: -apple-system, "Segoe UI", Helvetica, Arial, sans-serif;
       margin: 0 auto; max-width: 1080px; padding: 24px; color: #1a1a1a; }
h1 { font-size: 26px; margin-bottom: 4px; }
h2 { font-size: 20px; border-bottom: 2px solid #eee; padding-bottom: 4px;
     margin-top: 40px; }
.meta { color: #555; font-size: 13px; margin-bottom: 24px; }
.meta td { padding: 1px 12px 1px 0; }
.badge { display: inline-block; color: white; border-radius: 4px;
         padding: 2px 10px; font-size: 12px; font-weight: 600;
         vertical-align: middle; margin-left: 8px; }
.panels { display: grid; grid-template-columns: 1fr 1fr; gap: 12px;
          align-items: start; }
.panels .column h3 { font-size: 13px; color: #666; text-transform: uppercase;
                     letter-spacing: 0.06em; margin: 8px 0 4px; }
.panels svg { max-width: 100%; height: auto; border: 1px solid #eee; }
table.fidelity { border-collapse: collapse; font-size: 13px; margin: 10px 0; }
table.fidelity th, table.fidelity td { border: 1px solid #ddd;
         padding: 4px 10px; text-align: left; }
table.fidelity th { background: #f7f7f7; }
.check-pass { color: #2e7d32; font-weight: 600; }
.check-fail { color: #c62828; font-weight: 600; }
.note { color: #666; font-size: 12px; }
.extraction { background: #f7f7f2; border-left: 3px solid #ccc;
              font-size: 12px; color: #555; padding: 6px 10px; margin: 8px 0; }
"""


def esc(text: str) -> str:
    return _html.escape(str(text), quote=True)


def badge(verdict: str) -> str:
    color = BADGE_COLORS.get(verdict, BADGE_COLORS["n/a"])
    return (
        f'<span class="badge" style="background:{color}">'
        f"{esc(verdict.upper())}</span>"
    )


def _fidelity_tables(fig: "FigureReport") -> str:
    score = fig.score
    if score is None:
        return (
            '<p class="note">No digitized reference data for this figure; '
            "fidelity not scored.</p>"
        )
    parts = []
    if score.series:
        rows = []
        for s in score.series:
            if s.matched:
                rows.append(
                    f"<tr><td>{esc(s.panel)}/{esc(s.name)}</td>"
                    f"<td>{s.nrmse:.3f}</td><td>{s.trend:.2f}</td></tr>"
                )
            else:
                rows.append(
                    f"<tr><td>{esc(s.panel)}/{esc(s.name)}</td>"
                    '<td colspan="2" class="check-fail">missing from '
                    "reproduction</td></tr>"
                )
        parts.append(
            '<table class="fidelity"><tr><th>reference curve</th>'
            "<th>nRMSE</th><th>trend agreement</th></tr>"
            + "".join(rows) + "</table>"
        )
    if score.checks:
        rows = []
        for c in score.checks:
            cls = "check-pass" if c.passed else "check-fail"
            word = "pass" if c.passed else "FAIL"
            note = f'<div class="note">{esc(c.note)}</div>' if c.note else ""
            rows.append(
                f"<tr><td>{esc(c.id)}</td>"
                f'<td class="{cls}">{word}</td>'
                f"<td>{esc(c.detail)}{note}</td></tr>"
            )
        parts.append(
            '<table class="fidelity"><tr><th>check</th><th>result</th>'
            "<th>detail</th></tr>" + "".join(rows) + "</table>"
        )
    return "".join(parts)


def _divergence_table(fig: "FigureReport") -> str:
    """The fig13 drilldown: per-flow packet-vs-fluid decision diff."""
    div = fig.divergence
    if not div:
        return ""
    s = div["summary"]
    agreement = s.get("attribution_agreement")
    intro = (
        f'<p class="note">Control-loop flight recorder: the same scenario '
        f"({esc(div.get('spec', {}).get('cc', ''))}, "
        f"{s['flows_compared']} flows) run on both backends with the "
        f"decision tap attached; rate trajectories compared at a "
        f"{div['threshold']:.0%} relative-gap threshold. "
        "Machine-readable copy: <code>divergence.json</code>; "
        "rerun ad hoc with <code>hpcc-repro trace diff</code>.</p>"
    )
    rows = []
    for flow_id, entry in div["flows"].items():
        err = entry["time_weighted_rate_error"]
        first = entry["first_divergence_ns"]
        attr = entry["attribution"]
        err_cell = f"{err:.2%}" if err is not None else "&mdash;"
        first_cell = (f"{first / 1000.0:.2f}us" if first is not None
                      else "never")
        attr_cell = (f"{attr['agree']}/{attr['compared']}" if attr
                     else "&mdash;")
        rows.append(
            f"<tr><td>{esc(flow_id)}</td>"
            f"<td>{entry['packet_decisions']}</td>"
            f"<td>{entry['fluid_decisions']}</td>"
            f"<td>{err_cell}</td><td>{first_cell}</td>"
            f"<td>{attr_cell}</td></tr>"
        )
    foot = ""
    if agreement is not None:
        foot = (
            f'<p class="note">Bottleneck attribution: both backends blamed '
            f"the same hop for {agreement:.1%} of "
            f"{s['attribution_compared']} compared decisions.</p>"
        )
    return (
        "<h3>Backend decision divergence</h3>" + intro
        + '<table class="fidelity"><tr><th>flow</th><th>packet decisions</th>'
        "<th>fluid decisions</th><th>time-weighted rate error</th>"
        "<th>first divergence</th><th>attribution agree</th></tr>"
        + "".join(rows) + "</table>" + foot
    )


def _figure_section(fig: "FigureReport") -> str:
    verdict = fig.score.verdict if fig.score is not None else "n/a"
    failure_badge = ""
    if fig.n_failed:
        failure_badge = (
            f'<span class="badge" style="background:{BADGE_COLORS["fail"]}">'
            f"{fig.n_failed} CELL{'S' if fig.n_failed != 1 else ''} "
            f"FAILED</span>"
        )
    parts = [
        f'<h2 id="{esc(fig.key)}">{esc(fig.title)}{badge(verdict)}'
        f"{failure_badge}</h2>",
        f'<p class="meta">backend: <b>{esc(fig.backend)}</b> &middot; '
        f"scale: {esc(fig.scale)} &middot; {fig.n_specs} scenarios "
        f"({fig.n_cached} cached"
        + (f", {fig.n_failed} failed" if fig.n_failed else "")
        + f") &middot; {fig.wall_time_s:.2f}s</p>",
    ]
    for note in fig.notes:
        parts.append(f'<p class="note">{esc(note)}</p>')
    repro_svgs = "".join(fig.panel_svgs)
    if fig.ref_svgs:
        ref_svgs = "".join(fig.ref_svgs)
        parts.append(
            '<div class="panels"><div class="column">'
            f"<h3>reproduction</h3>{repro_svgs}</div>"
            f'<div class="column"><h3>paper (digitized)</h3>{ref_svgs}</div>'
            "</div>"
        )
    else:
        parts.append(
            f'<div class="panels"><div class="column">'
            f"<h3>reproduction</h3>{repro_svgs}</div></div>"
        )
    parts.append(_fidelity_tables(fig))
    parts.append(_divergence_table(fig))
    if fig.extraction:
        parts.append(
            f'<div class="extraction"><b>extraction notes:</b> '
            f"{esc(fig.extraction)}</div>"
        )
    return "".join(parts)


def _telemetry_section(report: "Report", rate_svg: str | None) -> str:
    """The run-telemetry panel: per-figure build cost + engine trend."""
    rows = []
    for fig in report.figures:
        rate = fig.events_per_s
        rate_cell = f"{rate:,.0f}" if rate is not None else "&mdash; (cached)"
        unit = "steps" if fig.backend == "fluid" else "events"
        rows.append(
            f'<tr><td><a href="#{esc(fig.key)}">{esc(fig.key)}</a></td>'
            f"<td>{esc(fig.backend)}</td>"
            f"<td>{fig.wall_time_s:.2f}</td>"
            f"<td>{fig.n_specs - fig.n_cached}/{fig.n_specs}</td>"
            f"<td>{fig.events_processed:,} {unit}</td>"
            f"<td>{rate_cell}</td></tr>"
        )
    table = (
        '<table class="fidelity"><tr><th>figure</th><th>backend</th>'
        "<th>wall (s)</th><th>computed</th><th>engine work</th>"
        "<th>events/s</th></tr>" + "".join(rows) + "</table>"
    )
    trend = ""
    if rate_svg:
        trend = (
            '<p class="note">Packet-engine substrate throughput (the 200k-'
            "event chain microbench) per checked-in BENCH_pr&lt;N&gt;.json "
            "snapshot &mdash; the baseline the per-figure rates above divide "
            "against.</p>"
            f'<div class="panels"><div class="column">{rate_svg}</div></div>'
        )
    telemetry = report.metadata.get("telemetry")
    note = (
        f'<p class="note">Full probe stream: <code>{esc(telemetry)}</code> '
        "(inspect with <code>hpcc-repro tele summarize</code>).</p>"
        if telemetry else
        '<p class="note">Build again with <code>--telemetry</code> for the '
        "full probe stream (spans, engine gauges, cache stats).</p>"
    )
    return (
        "<h2>Run telemetry</h2>"
        '<p class="note">What this report cost to build: per-figure wall '
        "time and engine work (cached scenarios contribute work but no "
        "wall time; their events/s column shows &mdash;).</p>"
        + table + trend + note
    )


def _summary_table(report: "Report") -> str:
    rows = []
    for fig in report.figures:
        verdict = fig.score.verdict if fig.score is not None else "n/a"
        detail = fig.score.summary() if fig.score is not None else "no refdata"
        rows.append(
            f'<tr><td><a href="#{esc(fig.key)}">{esc(fig.key)}</a></td>'
            f"<td>{esc(fig.backend)}</td><td>{badge(verdict)}</td>"
            f"<td>{esc(detail)}</td></tr>"
        )
    return (
        '<table class="fidelity"><tr><th>figure</th><th>backend</th>'
        "<th>fidelity</th><th>detail</th></tr>" + "".join(rows) + "</table>"
    )


def render_index(report: "Report", bench_svg: str | None,
                 rate_svg: str | None = None) -> str:
    """The whole report as one self-contained HTML document."""
    meta_rows = "".join(
        f"<tr><td>{esc(k)}</td><td>{esc(v)}</td></tr>"
        for k, v in report.metadata.items()
    )
    sections = "".join(_figure_section(fig) for fig in report.figures)
    bench_section = ""
    if bench_svg:
        bench_section = (
            "<h2>Benchmark trajectory</h2>"
            '<p class="note">Wall time of each benchmarks/run_all.py workload '
            "per checked-in BENCH_pr&lt;N&gt;.json snapshot (the series "
            "starts at PR 3; PR 0&ndash;2 predate the convention).</p>"
            f'<div class="panels"><div class="column">{bench_svg}</div></div>'
        )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>HPCC reproduction report</title>
<style>{_CSS}</style>
</head>
<body>
<h1>HPCC reproduction report</h1>
<p class="meta">Reproduction of &ldquo;HPCC: High Precision Congestion
Control&rdquo; (SIGCOMM 2019) &mdash; side-by-side repro-vs-paper figures
with quantitative fidelity scores.</p>
<table class="meta">{meta_rows}</table>
{_summary_table(report)}
{sections}
{_telemetry_section(report, rate_svg)}
{bench_section}
</body>
</html>
"""
