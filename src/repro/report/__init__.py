"""Figure-reproduction reports: refdata, fidelity scoring, SVG, HTML.

The subsystem that turns cached :class:`~repro.runner.RunRecord` sweeps
into a self-contained reproduction report (``hpcc-repro report``):

* **figures** — the render-hook data model (:class:`FigureRender` /
  :class:`Panel` / :class:`Series`) every experiment module maps its
  records into;
* **refdata** — digitized SIGCOMM'19 reference curves and per-figure
  pass/warn thresholds, JSON under ``refdata/`` with a validating
  typed loader;
* **fidelity** — normalized-RMSE + trend-agreement + scalar-check
  scoring of a render against its reference (:func:`score_figure`);
* **svg** / **html** — the dependency-free chart emitter and the
  self-contained ``index.html`` assembly;
* **build** — the pipeline tying it together over the existing
  SweepRunner/RunCache (imported lazily by the CLI; import it as
  ``repro.report.build`` to use it as a library).

This package deliberately does not import ``repro.experiments`` at
import time (the experiment modules import :mod:`repro.report.figures`
for their render hooks; ``build`` resolves modules lazily).
"""

from .fidelity import (
    CheckScore,
    FidelityScore,
    SeriesScore,
    evaluate_check,
    nrmse,
    resample,
    score_figure,
    trend_agreement,
)
from .figures import (
    FigureRender,
    Panel,
    Series,
    bucket_panel,
    cdf_series,
    queue_series,
)
from .refdata import (
    RefCheck,
    RefFigure,
    RefSeries,
    RefdataError,
    available_refdata,
    load_refdata,
    refdata_path,
    validate_refdata,
)
from .svg import PALETTE, nice_ticks, render_panel

__all__ = [
    "CheckScore",
    "FidelityScore",
    "FigureRender",
    "PALETTE",
    "Panel",
    "RefCheck",
    "RefFigure",
    "RefSeries",
    "RefdataError",
    "Series",
    "SeriesScore",
    "available_refdata",
    "bucket_panel",
    "cdf_series",
    "evaluate_check",
    "load_refdata",
    "nice_ticks",
    "nrmse",
    "queue_series",
    "refdata_path",
    "render_panel",
    "resample",
    "score_figure",
    "trend_agreement",
    "validate_refdata",
]
