"""Typed loader for the digitized paper reference data.

Each JSON file under ``refdata/`` captures one SIGCOMM'19 figure:
digitized curve points (``series``), scalar relations the figure
demonstrates (``checks``), the pass/warn thresholds the fidelity scorer
applies (``thresholds``), and free-text ``extraction`` notes recording
how the numbers were read off the published PDF.

The schema is deliberately small and fully validated
(:func:`validate_refdata`): a checked-in reference file that drifts from
the schema fails the test suite, not the report build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

REFDATA_DIR = Path(__file__).parent / "refdata"

#: Allowed ``normalize`` modes.  ``x``: ``index`` aligns curves by sample
#: ordinal (bucket deciles), ``span`` rescales each curve's x to [0, 1]
#: (time axes with different run lengths), ``none`` compares raw x.
#: ``y``: ``max`` rescales each curve by its own peak (shape
#: comparison across absolute-scale gaps), ``none`` compares raw values.
X_MODES = ("none", "index", "span")
Y_MODES = ("none", "max")

CHECK_TYPES = ("le", "lt", "ge", "gt", "between", "finite")


@dataclass(frozen=True)
class RefSeries:
    """One digitized curve, addressed by (panel key, series name)."""

    panel: str
    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    note: str = ""


@dataclass(frozen=True)
class RefCheck:
    """A scalar relation the paper figure demonstrates.

    * ``le``/``lt``/``ge``/``gt`` — compare ``stat`` against ``than``
      (another stat key or a literal number) scaled by ``factor``;
    * ``between`` — ``lo <= stat <= hi``;
    * ``finite`` — the stat exists and is finite (e.g. "the queue does
      drain": drain time is not ``inf``).
    """

    id: str
    type: str
    stat: str
    than: str | float | None = None
    factor: float = 1.0
    lo: float | None = None
    hi: float | None = None
    note: str = ""


@dataclass(frozen=True)
class RefFigure:
    """One paper figure's reference bundle."""

    figure: str
    title: str
    source: str
    extraction: str
    series: tuple[RefSeries, ...]
    checks: tuple[RefCheck, ...]
    thresholds: dict
    normalize: dict = field(default_factory=lambda: {"x": "none", "y": "none"})
    units: dict = field(default_factory=dict)

    def series_for(self, panel: str) -> list[RefSeries]:
        return [s for s in self.series if s.panel == panel]

    def panel_keys(self) -> list[str]:
        keys: list[str] = []
        for s in self.series:
            if s.panel not in keys:
                keys.append(s.panel)
        return keys


class RefdataError(ValueError):
    """A reference file violates the refdata schema."""


def _fail(figure: str, message: str) -> None:
    raise RefdataError(f"refdata {figure!r}: {message}")


def _require_numbers(figure: str, where: str, values) -> tuple[float, ...]:
    if not isinstance(values, list) or not values:
        _fail(figure, f"{where} must be a non-empty list of numbers")
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            _fail(figure, f"{where} contains non-numeric value {v!r}")
        out.append(float(v))
    return tuple(out)


def validate_refdata(data: dict) -> RefFigure:
    """Validate one decoded refdata JSON document; return the typed form."""
    figure = data.get("figure")
    if not isinstance(figure, str) or not figure:
        raise RefdataError("refdata document missing a 'figure' string")
    for key in ("title", "source", "extraction"):
        if not isinstance(data.get(key), str) or not data[key]:
            _fail(figure, f"missing required string field {key!r}")

    normalize = data.get("normalize", {"x": "none", "y": "none"})
    if not isinstance(normalize, dict):
        _fail(figure, "'normalize' must be an object")
    x_mode = normalize.get("x", "none")
    y_mode = normalize.get("y", "none")
    if x_mode not in X_MODES:
        _fail(figure, f"normalize.x {x_mode!r} not in {X_MODES}")
    if y_mode not in Y_MODES:
        _fail(figure, f"normalize.y {y_mode!r} not in {Y_MODES}")

    raw_series = data.get("series", [])
    if not isinstance(raw_series, list):
        _fail(figure, "'series' must be a list")
    series = []
    seen: set[tuple[str, str]] = set()
    for i, entry in enumerate(raw_series):
        if not isinstance(entry, dict):
            _fail(figure, f"series[{i}] must be an object")
        panel, name = entry.get("panel"), entry.get("name")
        if not isinstance(panel, str) or not isinstance(name, str):
            _fail(figure, f"series[{i}] needs string 'panel' and 'name'")
        if (panel, name) in seen:
            _fail(figure, f"duplicate series ({panel!r}, {name!r})")
        seen.add((panel, name))
        x = _require_numbers(figure, f"series[{i}].x", entry.get("x"))
        y = _require_numbers(figure, f"series[{i}].y", entry.get("y"))
        if len(x) != len(y):
            _fail(figure, f"series[{i}]: x has {len(x)} points, y {len(y)}")
        series.append(RefSeries(
            panel=panel, name=name, x=x, y=y,
            note=str(entry.get("note", "")),
        ))

    raw_checks = data.get("checks", [])
    if not isinstance(raw_checks, list):
        _fail(figure, "'checks' must be a list")
    checks = []
    check_ids: set[str] = set()
    for i, entry in enumerate(raw_checks):
        if not isinstance(entry, dict):
            _fail(figure, f"checks[{i}] must be an object")
        cid, ctype = entry.get("id"), entry.get("type")
        if not isinstance(cid, str) or not cid:
            _fail(figure, f"checks[{i}] needs a string 'id'")
        if cid in check_ids:
            _fail(figure, f"duplicate check id {cid!r}")
        check_ids.add(cid)
        if ctype not in CHECK_TYPES:
            _fail(figure, f"checks[{i}].type {ctype!r} not in {CHECK_TYPES}")
        if not isinstance(entry.get("stat"), str):
            _fail(figure, f"checks[{i}] needs a string 'stat'")
        than = entry.get("than")
        if ctype in ("le", "lt", "ge", "gt"):
            if not isinstance(than, (str, int, float)) or isinstance(than, bool):
                _fail(figure,
                      f"checks[{i}] ({ctype}) needs 'than': stat key or number")
        lo, hi = entry.get("lo"), entry.get("hi")
        if ctype == "between":
            for bound, value in (("lo", lo), ("hi", hi)):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    _fail(figure, f"checks[{i}] (between) needs numeric {bound!r}")
        factor = entry.get("factor", 1.0)
        if isinstance(factor, bool) or not isinstance(factor, (int, float)):
            _fail(figure, f"checks[{i}].factor must be a number")
        checks.append(RefCheck(
            id=cid, type=ctype, stat=entry["stat"],
            than=float(than) if isinstance(than, (int, float)) else than,
            factor=float(factor),
            lo=None if lo is None else float(lo),
            hi=None if hi is None else float(hi),
            note=str(entry.get("note", "")),
        ))

    thresholds = data.get("thresholds")
    if not isinstance(thresholds, dict):
        _fail(figure, "'thresholds' must be an object")
    for tier in ("pass", "warn"):
        tier_data = thresholds.get(tier)
        if not isinstance(tier_data, dict):
            _fail(figure, f"thresholds.{tier} must be an object")
        for metric, value in tier_data.items():
            if metric not in ("nrmse", "trend", "checks"):
                _fail(figure, f"unknown threshold metric {metric!r}")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                _fail(figure, f"thresholds.{tier}.{metric} must be a number")

    if not series and not checks:
        _fail(figure, "needs at least one series or one check")

    units = data.get("units", {})
    if not isinstance(units, dict):
        _fail(figure, "'units' must be an object")

    return RefFigure(
        figure=figure,
        title=data["title"],
        source=data["source"],
        extraction=data["extraction"],
        series=tuple(series),
        checks=tuple(checks),
        thresholds=thresholds,
        normalize={"x": x_mode, "y": y_mode},
        units=units,
    )


def refdata_path(figure: str) -> Path:
    return REFDATA_DIR / f"{figure}.json"


def available_refdata() -> list[str]:
    """Figure keys with a checked-in reference file, sorted."""
    return sorted(p.stem for p in REFDATA_DIR.glob("*.json"))


def load_refdata(figure: str) -> RefFigure | None:
    """Load and validate one figure's reference data (None if absent)."""
    path = refdata_path(figure)
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    ref = validate_refdata(data)
    if ref.figure != figure:
        raise RefdataError(
            f"refdata file {path.name} declares figure {ref.figure!r}"
        )
    return ref
