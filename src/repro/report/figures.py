"""The render-hook data model: what one reproduced figure *is*.

Every experiment module declares a ``render(specs, records)`` hook that
maps its :class:`~repro.runner.RunRecord` list into a
:class:`FigureRender` — a backend-neutral bundle of plot panels plus a
flat dict of scalar summary statistics.  The report pipeline
(:mod:`repro.report.build`) feeds the panels to the SVG emitter
(:mod:`repro.report.svg`) and the panels *and* stats to the fidelity
scorer (:mod:`repro.report.fidelity`), which compares them against the
digitized paper curves in :mod:`repro.report.refdata`.

Keep render hooks defensive about backend differences: fluid records
report zero PFC telemetry and label queue samples by fluid-link name
instead of the spec's probe label (:func:`queue_series` bridges that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..metrics.fct import BucketStats

__all__ = [
    "FigureRender",
    "Panel",
    "Series",
    "bucket_panel",
    "cdf_series",
    "queue_series",
]


@dataclass
class Series:
    """One plotted curve (or bar group member).

    ``kind`` selects the mark: ``"line"`` (polyline over x/y),
    ``"ref"`` (dashed polyline, for digitized paper curves),
    ``"marker"`` (unconnected circles — e.g. decision instants on a
    timeline) or ``"bar"`` (categorical bars; ``x`` is the ordinal
    position and ``labels`` names each position).  ``band`` optionally
    carries a ``(lo, hi)`` envelope drawn as a translucent error band
    behind the line.  Non-finite ``y`` values split a line into
    visibly separate segments (a rendered gap, not an interpolation).
    """

    name: str
    x: list[float]
    y: list[float]
    kind: str = "line"
    labels: list[str] | None = None
    band: tuple[list[float], list[float]] | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )


@dataclass
class Panel:
    """One chart of a figure.  ``key`` is the stable identifier the
    refdata JSON references — renaming a title never breaks scoring."""

    key: str
    title: str
    series: list[Series] = field(default_factory=list)
    x_label: str = ""
    y_label: str = ""
    x_log: bool = False

    def series_named(self, name: str) -> Series | None:
        for s in self.series:
            if s.name == name:
                return s
        return None


@dataclass
class FigureRender:
    """Everything the report needs from one reproduced figure."""

    figure: str                 # the CLI key, e.g. "fig11"
    title: str
    panels: list[Panel]
    stats: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def panel(self, key: str) -> Panel | None:
        for p in self.panels:
            if p.key == key:
                return p
        return None


# -- shared series builders -------------------------------------------------------

def bucket_panel(
    key: str,
    title: str,
    per_label: dict[str, list[BucketStats]],
    pct: str = "p95",
    edges: list[int] | None = None,
) -> Panel:
    """A per-size-bucket slowdown panel (the Figure 2/3/10/11 shape).

    X is the bucket ordinal (decile index), which is scale-invariant:
    ``bench`` runs shrink flow sizes by ``size_scale`` but keep the
    decile structure, so curves stay comparable with the paper's.

    Pass the bucket ``edges`` the stats were computed with:
    ``slowdown_by_bucket`` drops empty buckets, so a bare enumeration
    would silently shift every bucket after a gap one ordinal left —
    and index-normalized fidelity scoring would then compare decile k
    against the paper's decile k+1.  With ``edges``, each bucket keeps
    its true decile ordinal even when neighbours are empty.
    """
    series = []
    for label, stats in per_label.items():
        if edges is not None:
            x = [float(edges.index(s.hi)) for s in stats]
        else:
            x = [float(i) for i in range(1, len(stats) + 1)]
        series.append(Series(
            name=label,
            x=x,
            y=[float(getattr(s, pct)) for s in stats],
        ))
    return Panel(
        key=key, title=title, series=series,
        x_label="flow-size bucket (decile)", y_label=f"{pct} FCT slowdown",
    )


def cdf_series(name: str, values: list[float]) -> Series:
    """An empirical CDF as a line series (x = value, y = fraction <= x)."""
    if not values:
        return Series(name=name, x=[], y=[])
    ordered = sorted(values)
    n = len(ordered)
    return Series(
        name=name,
        x=[float(v) for v in ordered],
        y=[(i + 1) / n for i in range(n)],
    )


def queue_series(record, label: str) -> tuple[list[float], list[float]]:
    """A record's bottleneck-queue series, backend-neutral.

    Packet records key queue samples by the spec's probe label
    (``"bneck"``); fluid records key them by fluid-link name
    (``"sw17->16"``).  When the requested label is absent, fall back to
    the sampled series with the largest peak — the congested egress is
    the one every figure's probe points at.
    """
    if label in record.queues:
        times, qlens = record.queue_series(label)
        return list(times), [float(q) for q in qlens]
    best: tuple[list[float], list[float]] = ([], [])
    best_peak = -math.inf
    for candidate in record.queues:
        times, qlens = record.queue_series(candidate)
        peak = max(qlens, default=0.0)
        if peak > best_peak:
            best_peak = peak
            best = (list(times), [float(q) for q in qlens])
    return best
