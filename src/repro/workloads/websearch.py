"""The WebSearch flow-size distribution (DCTCP paper, [8] in HPCC).

The control points below are the decile sizes the HPCC paper uses as
x-axis labels in Figures 2a, 3 and 10 (0, 6.7K, 20K, ..., 30M): each label
is the k-th decile of this distribution.  Heavy-tailed: half the flows are
under 73KB but most bytes come from the multi-megabyte tail.
"""

from __future__ import annotations

from .distributions import EmpiricalCdf

WEBSEARCH_POINTS: tuple[tuple[float, float], ...] = (
    (1, 0.0),
    (6_700, 0.1),
    (20_000, 0.2),
    (30_000, 0.3),
    (50_000, 0.4),
    (73_000, 0.5),
    (200_000, 0.6),
    (1_000_000, 0.7),
    (2_000_000, 0.8),
    (5_000_000, 0.9),
    (30_000_000, 1.0),
)


def websearch() -> EmpiricalCdf:
    return EmpiricalCdf(WEBSEARCH_POINTS, name="WebSearch")
