"""Empirical flow-size distributions.

The paper drives its experiments with the public WebSearch [DCTCP] and
FB_Hadoop [Roy et al., SIGCOMM 2015] flow-size CDFs "instead of our own
traffic traces for reproducibility" (Section 2.3) — the same choice this
reproduction inherits.  A CDF is a list of (size, cumulative probability)
control points; sampling inverts it with linear interpolation between
points, the standard trace-replay approach.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence


class EmpiricalCdf:
    """Inverse-transform sampling over piecewise-linear CDF control points."""

    def __init__(self, points: Sequence[tuple[float, float]], name: str = "cdf") -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [p[0] for p in points]
        probs = [p[1] for p in points]
        if sorted(sizes) != list(sizes) or sorted(probs) != list(probs):
            raise ValueError("CDF points must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError(f"CDF must end at probability 1, got {probs[-1]}")
        if probs[0] < 0:
            raise ValueError("probabilities must be non-negative")
        self.name = name
        self._sizes = [float(s) for s in sizes]
        self._probs = [float(p) for p in probs]

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes, at least 1)."""
        u = rng.random()
        return max(1, int(round(self.quantile(u))))

    def quantile(self, u: float) -> float:
        """The size at cumulative probability ``u`` (linear interpolation)."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"u must be in [0, 1], got {u}")
        probs, sizes = self._probs, self._sizes
        if u <= probs[0]:
            return sizes[0]
        idx = bisect.bisect_left(probs, u)
        if idx >= len(probs):
            return sizes[-1]
        p0, p1 = probs[idx - 1], probs[idx]
        s0, s1 = sizes[idx - 1], sizes[idx]
        if p1 == p0:
            return s1
        return s0 + (s1 - s0) * (u - p0) / (p1 - p0)

    def mean(self) -> float:
        """Expected flow size (exact for the piecewise-linear model)."""
        total = 0.0
        probs, sizes = self._probs, self._sizes
        total += probs[0] * sizes[0]
        for i in range(1, len(probs)):
            mass = probs[i] - probs[i - 1]
            total += mass * (sizes[i] + sizes[i - 1]) / 2.0
        return total

    def cdf_at(self, size: float) -> float:
        """Cumulative probability at a given size."""
        sizes, probs = self._sizes, self._probs
        if size <= sizes[0]:
            return probs[0] if size >= sizes[0] else 0.0
        if size >= sizes[-1]:
            return 1.0
        idx = bisect.bisect_right(sizes, size)
        s0, s1 = sizes[idx - 1], sizes[idx]
        p0, p1 = probs[idx - 1], probs[idx]
        if s1 == s0:
            return p1
        return p0 + (p1 - p0) * (size - s0) / (s1 - s0)

    def deciles(self) -> list[float]:
        """Sizes at cumulative 10%, 20%, ... 100% (figure bucket edges)."""
        return [self.quantile(k / 10.0) for k in range(1, 11)]

    def scaled(self, factor: float) -> "EmpiricalCdf":
        """The same shape with every size multiplied by ``factor``.

        Used to shrink workloads for Python-speed runs while preserving
        the distribution's shape (DESIGN.md substitution 3); bucket edges
        scale with it.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        points = [(max(1.0, s * factor), p) for s, p in zip(self._sizes, self._probs)]
        return EmpiricalCdf(points, name=f"{self.name}x{factor:g}")
