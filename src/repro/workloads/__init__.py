"""Traffic generation: public trace CDFs, Poisson load, incast events."""

from .distributions import EmpiricalCdf
from .fbhadoop import FBHADOOP_POINTS, fbhadoop
from .generator import offered_load, poisson_flows
from .incast import incast_events, incast_period_for_load
from .websearch import WEBSEARCH_POINTS, websearch

__all__ = [
    "EmpiricalCdf",
    "FBHADOOP_POINTS",
    "WEBSEARCH_POINTS",
    "fbhadoop",
    "incast_events",
    "incast_period_for_load",
    "offered_load",
    "poisson_flows",
    "websearch",
]
