"""Open-loop Poisson flow generation at a target network load.

The paper "adjusts the flow generation rates to set the average link loads
to 30% and 50%" (Section 5.1).  For an all-to-all random traffic matrix
the average *host uplink* load equals the offered load, so the arrival
rate is::

    lambda = load x (sum of host uplink capacities) / mean_flow_size

Arrivals are Poisson (exponential inter-arrival times); source and
destination are uniform random distinct hosts, so every uplink carries the
target load in expectation.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..sim.flow import FlowSpec
from .distributions import EmpiricalCdf


def poisson_flows(
    hosts: Sequence[int],
    host_rates: dict[int, float] | float,
    cdf: EmpiricalCdf,
    load: float,
    duration: float,
    seed: int = 1,
    start_offset: float = 0.0,
    first_flow_id: int = 1,
    tag: str = "bg",
    wire_overhead: float = 1.0,
) -> list[FlowSpec]:
    """Generate background flows at an average host-uplink ``load``.

    ``host_rates`` is either a per-host map or one common rate (bytes/ns).
    ``wire_overhead`` inflates the per-flow byte cost for header overhead
    when calibrating load (e.g. 1.048 for 48B headers on 1000B payloads).
    """
    if not 0.0 < load < 1.0:
        raise ValueError(f"load must be in (0, 1), got {load}")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    if isinstance(host_rates, (int, float)):
        rates = {h: float(host_rates) for h in hosts}
    else:
        rates = host_rates
    rng = random.Random(seed)
    total_capacity = sum(rates[h] for h in hosts)       # bytes/ns
    mean_size = cdf.mean() * wire_overhead              # bytes/flow
    rate_flows_per_ns = load * total_capacity / mean_size

    specs: list[FlowSpec] = []
    t = start_offset
    flow_id = first_flow_id
    hosts = list(hosts)
    while True:
        t += rng.expovariate(rate_flows_per_ns)
        if t >= start_offset + duration:
            break
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        while dst == src:
            dst = rng.choice(hosts)
        specs.append(
            FlowSpec(
                flow_id=flow_id, src=src, dst=dst,
                size=cdf.sample(rng), start_time=t, tag=tag,
            )
        )
        flow_id += 1
    return specs


def offered_load(
    specs: Sequence[FlowSpec],
    total_capacity: float,
    duration: float,
) -> float:
    """Measured average load of a flow list (for calibration tests)."""
    total_bytes = sum(s.size for s in specs)
    return total_bytes / (total_capacity * duration)
