"""The FB_Hadoop flow-size distribution (Roy et al., [37] in HPCC).

Control points are the decile sizes Figure 11 uses as x-axis labels
(324, 400, ..., 120K, 10M).  Dominated by sub-KB flows — "90% of the
flows are shorter than 120KB" (Section 5.3) — with a 10MB tail.
"""

from __future__ import annotations

from .distributions import EmpiricalCdf

FBHADOOP_POINTS: tuple[tuple[float, float], ...] = (
    (130, 0.0),
    (324, 0.1),
    (400, 0.2),
    (500, 0.3),
    (600, 0.4),
    (700, 0.5),
    (1_000, 0.6),
    (7_000, 0.7),
    (46_000, 0.8),
    (120_000, 0.9),
    (10_000_000, 1.0),
)


def fbhadoop() -> EmpiricalCdf:
    return EmpiricalCdf(FBHADOOP_POINTS, name="FB_Hadoop")
