"""Synchronized incast events.

The paper's stress test (Section 5.3): "randomly selecting 60 senders and
one receiver, each sending 500KB", repeated so the incast traffic adds 2%
of the network capacity on top of the background load.  The event period
that achieves a target load fraction is::

    period = fan_in x flow_size / (incast_load x total_host_capacity)
"""

from __future__ import annotations

import random
from typing import Sequence

from ..sim.flow import FlowSpec


def incast_events(
    hosts: Sequence[int],
    fan_in: int,
    flow_size: int,
    n_events: int,
    period: float,
    seed: int = 7,
    start_offset: float = 0.0,
    first_flow_id: int = 1_000_000,
    tag: str = "incast",
) -> list[FlowSpec]:
    """``n_events`` incasts, one every ``period`` ns."""
    if fan_in >= len(hosts):
        raise ValueError("fan_in must be smaller than the host count")
    rng = random.Random(seed)
    specs: list[FlowSpec] = []
    flow_id = first_flow_id
    hosts = list(hosts)
    for event in range(n_events):
        t = start_offset + event * period
        receiver = rng.choice(hosts)
        senders = rng.sample([h for h in hosts if h != receiver], fan_in)
        for sender in senders:
            specs.append(
                FlowSpec(
                    flow_id=flow_id, src=sender, dst=receiver,
                    size=flow_size, start_time=t, tag=tag,
                )
            )
            flow_id += 1
    return specs


def incast_period_for_load(
    fan_in: int,
    flow_size: int,
    incast_load: float,
    total_capacity: float,
) -> float:
    """Event period (ns) so incast traffic offers ``incast_load`` x capacity."""
    if not 0.0 < incast_load < 1.0:
        raise ValueError("incast_load must be in (0, 1)")
    return fan_in * flow_size / (incast_load * total_capacity)
