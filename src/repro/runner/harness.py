"""Execution primitives shared by every scenario program.

Moved here from ``repro.experiments.common`` so the sweep runner (which
experiment modules import) sits below the experiments in the layering;
``repro.experiments.common`` re-exports everything for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.queuestats import QueueSampler
from ..network import Network, NetworkConfig
from ..obs import current as current_telemetry
from ..obs import instrument_simulator, maybe_span
from ..sim.flow import FctRecord, FlowSpec
from ..topology.base import Topology
from .spec import CcChoice


@dataclass
class RunResult:
    """Everything an experiment driver needs after one run."""

    net: Network
    records: list[FctRecord]
    sampler: QueueSampler | None
    duration: float
    completed: bool
    dynamics: object | None = None      # PacketDynamicsDriver, if any

    @property
    def metrics(self):
        return self.net.metrics


def setup_network(
    topology: Topology,
    cc: CcChoice,
    base_rtt: float | None = None,
    goodput_bin: float | None = None,
    seed: int = 1,
    **config_kwargs,
) -> Network:
    """Build a network running one CC choice."""
    config = NetworkConfig(
        cc_name=cc.name,
        cc_params=dict(cc.params),
        base_rtt=base_rtt,
        goodput_bin=goodput_bin,
        seed=seed,
        **config_kwargs,
    )
    net = Network(topology, config)
    tel = current_telemetry()
    if tel is not None and tel.decisions is not None:
        net.decision_tap = tel.decisions
    return net


def run_workload(
    net: Network,
    specs: list[FlowSpec],
    deadline: float,
    sample_interval: float | None = None,
    sample_ports: dict | None = None,
) -> RunResult:
    """Offer flows, optionally sample queues, run to completion/deadline.

    When an ambient telemetry context is active (``repro.obs``), the
    simulator gets a :class:`~repro.obs.probes.SimProbe` for the
    duration of the run and the whole thing is timed as the ``run``
    span; otherwise this path is telemetry-free.
    """
    sampler = None
    if sample_interval is not None:
        ports = sample_ports if sample_ports is not None else net.switch_port_labels()
        sampler = QueueSampler(net.sim, ports, sample_interval)
    net.add_flows(specs)
    tel = current_telemetry()
    probe = instrument_simulator(net.sim, tel) if tel is not None else None
    try:
        with maybe_span("run"):
            completed = net.run_until_done(deadline=deadline)
    finally:
        if probe is not None:
            probe.finish(net.sim)
            net.sim.telemetry = None
    if sampler is not None:
        sampler.stop()
    return RunResult(
        net=net,
        records=net.metrics.fct_records,
        sampler=sampler,
        duration=net.sim.now,
        completed=completed,
    )


def generate_load_flows(
    topology: Topology,
    cdf,
    load: float,
    n_flows: int,
    seed: int,
    wire_overhead: float,
    incast: dict | None = None,
) -> tuple[list[FlowSpec], float]:
    """The load-program workload: Poisson background + optional incasts.

    Returns ``(flow specs, workload duration)``.  Both execution backends
    call this with the same arguments, so a packet and a fluid run of one
    scenario offer the *identical* flow population — which is what makes
    cross-backend validation of goodput shares meaningful.
    """
    from ..workloads.generator import poisson_flows
    from ..workloads.incast import incast_events, incast_period_for_load

    rates = {h: topology.host_rate(h) for h in topology.hosts}
    total_capacity = sum(rates.values())
    flow_rate = load * total_capacity / (cdf.mean() * wire_overhead)  # flows/ns
    duration = n_flows / flow_rate
    specs = poisson_flows(
        list(topology.hosts), rates, cdf, load, duration,
        seed=seed, wire_overhead=wire_overhead,
    )
    if incast is not None:
        period = incast_period_for_load(
            incast["fan_in"], incast["flow_size"], incast["load"], total_capacity
        )
        n_events = max(1, int(duration / period))
        specs += incast_events(
            list(topology.hosts), incast["fan_in"], incast["flow_size"],
            n_events, period, seed=seed + 13,
            start_offset=period / 2,
        )
    return specs, duration


def load_experiment(
    topology: Topology,
    cc: CcChoice,
    cdf,
    load: float,
    n_flows: int,
    base_rtt: float,
    seed: int = 1,
    incast: dict | None = None,
    deadline_factor: float = 2.5,
    sample_interval: float | None = None,
    timeline=None,
    **config_kwargs,
) -> RunResult:
    """One background-load run: Poisson flows from ``cdf`` at ``load``.

    The duration follows from the target flow count; ``incast`` optionally
    adds synchronized bursts (keys: fan_in, flow_size, load).  The run gets
    ``deadline_factor`` times the workload duration to drain.  ``timeline``
    (a :class:`~repro.dynamics.events.Timeline`) schedules mid-run network
    events; its driver rides back on ``RunResult.dynamics``.
    """
    with maybe_span("setup"):
        net = setup_network(topology, cc, base_rtt=base_rtt, seed=seed,
                            **config_kwargs)
        wire = (net.config.mtu + net.header) / net.config.mtu
        specs, duration = generate_load_flows(
            topology, cdf, load=load, n_flows=n_flows,
            seed=seed, wire_overhead=wire, incast=incast,
        )
        driver = None
        if timeline:
            from ..dynamics import PacketDynamicsDriver, burst_flow_specs

            next_id = max((s.flow_id for s in specs), default=0) + 1
            bursts, burst_entries = burst_flow_specs(
                timeline, topology.hosts, seed, next_id
            )
            specs = specs + bursts
            driver = PacketDynamicsDriver(net, timeline, burst_entries)
            driver.install()
    result = run_workload(
        net, specs, deadline=duration * deadline_factor,
        sample_interval=sample_interval,
    )
    result.dynamics = driver
    return result
