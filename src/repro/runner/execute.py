"""Scenario execution: programs, the spec interpreter, and the sweep runner.

The **programs** are the generic execution recipes every figure is built
from.  A program takes a :class:`ScenarioSpec` (pure data), builds its
own ``Network``, runs it, and returns a :class:`RunRecord` (pure data
again) — nothing live crosses the boundary, which is what lets
:class:`SweepRunner` fan specs out over a ``ProcessPoolExecutor``.
Because every run is rebuilt from the spec's seed, serial and parallel
sweeps produce byte-identical results.

Telemetry (``repro.obs``) is opt-in per sweep: :func:`execute_spec`
builds a run-scoped memory-sink :class:`~repro.obs.Telemetry` when
asked, programs mark their setup/run/collect phases through the ambient
:func:`~repro.obs.maybe_span` context (a no-op otherwise), and
:class:`SweepRunner` ingests each worker's drained records — carried
across the process pool on the (non-persisted) ``RunRecord.telemetry``
field — into its own file-backed instance.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from .journal import SweepJournal

from ..dynamics import PacketDynamicsDriver, Timeline, burst_flow_specs
from ..obs import Telemetry, maybe_span, using
from ..topology.base import Topology
from ..topology.fattree import FatTreeSpec, fattree
from ..topology.simple import dual_trunk, dumbbell, intree, parking_lot, star
from ..topology.testbed import testbed
from ..workloads.fbhadoop import fbhadoop
from ..workloads.websearch import websearch
from .harness import RunResult, load_experiment, run_workload, setup_network
from .results import RunCache, RunRecord
from .spec import ScenarioSpec

# -- registries (resolved by name inside worker processes) -----------------------

TOPOLOGIES: dict[str, Callable[..., Topology]] = {
    "star": star,
    "dumbbell": dumbbell,
    "parking_lot": parking_lot,
    "intree": intree,
    "testbed": testbed,
    "dual_trunk": dual_trunk,
    "fattree": lambda **kwargs: fattree(FatTreeSpec(**kwargs)),
}

CDFS: dict[str, Callable] = {
    "websearch": websearch,
    "fbhadoop": fbhadoop,
}


def build_topology(spec: ScenarioSpec) -> Topology:
    """Instantiate the spec's topology (cheap: no simulator involved)."""
    try:
        factory = TOPOLOGIES[spec.topology]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGIES))
        raise ValueError(
            f"unknown topology {spec.topology!r}; known: {known}"
        ) from None
    return factory(**spec.topology_params)


def workload_cdf(workload: dict):
    cdf = CDFS[workload["cdf"]]()
    return cdf.scaled(workload.get("size_scale", 1.0))


# -- payload builders -------------------------------------------------------------

def _fct_payload(result: RunResult) -> list[dict]:
    return [
        {
            "flow_id": r.spec.flow_id, "src": r.spec.src, "dst": r.spec.dst,
            "size": r.spec.size, "start_time": r.spec.start_time,
            "tag": r.spec.tag, "start": r.start, "finish": r.finish,
            "ideal": r.ideal,
        }
        for r in result.records
    ]


def _queue_payload(result: RunResult) -> dict[str, dict]:
    if result.sampler is None:
        return {}
    return {
        label: {"times": list(result.sampler.times), "qlens": list(values)}
        for label, values in result.sampler.samples.items()
    }


def _base_extras(spec: ScenarioSpec, result: RunResult, net) -> dict:
    tracker = net.metrics.pause_tracker
    extras: dict = {
        "n_hosts": net.topology.n_hosts,
        "header_bytes": net.header,
        "drops": net.metrics.drop_count,
        "pause_count": tracker.pause_count(),
        "pause_total_ns": tracker.total_pause_time(None),
        "switch_queued_bytes": {
            str(sw): switch.total_queued_bytes()
            for sw, switch in net.switches.items()
        },
    }
    if spec.measure.get("pause_intervals"):
        extras["pause_intervals"] = [
            [iv.device, iv.port, iv.start, iv.end] for iv in tracker.intervals
        ]
        extras["origin_of"] = [
            [device, port, peer]
            for (device, port), peer in net.origin_of.items()
        ]
    if net.metrics.goodput is not None:
        extras["goodput"] = {
            "bin_ns": net.metrics.goodput.bin_ns,
            "bins": {
                str(flow_id): {str(idx): n for idx, n in bins.items()}
                for flow_id, bins in net.metrics.goodput._bins.items()
            },
        }
    return extras


def _finish_record(spec: ScenarioSpec, result: RunResult, net,
                   extras: dict) -> RunRecord:
    return RunRecord(
        spec=spec,
        fct=_fct_payload(result),
        queues=_queue_payload(result),
        extras=extras,
        events_processed=net.sim.events_processed,
        duration_ns=result.duration,
        completed=result.completed,
    )


# -- programs ---------------------------------------------------------------------

def spec_timeline(spec: ScenarioSpec) -> Timeline:
    """The spec's dynamics timeline, legacy ``workload["events"]`` included.

    The legacy list (``[["fail_link"|"restore_link", t, a, b], ...]``) is
    a deprecation shim over the timeline DSL: old JSON specs keep hashing
    identically (the ``dynamics`` field stays empty) and keep running
    identically (a shimmed fail/restore fires as one scheduled callback
    with immediate reconvergence — the pre-dynamics behaviour, pinned by
    the golden determinism fixtures).
    """
    return Timeline.for_spec(spec.dynamics, spec.workload.get("events"))


def _run_load(spec: ScenarioSpec) -> RunRecord:
    """Poisson background traffic from a size CDF, optional incast bursts.

    workload: ``{"cdf", "size_scale", "load", "n_flows", "incast"?,
    "deadline_factor"?}``; measure: ``{"sample_interval"?,
    "pause_intervals"?}``; config: ``NetworkConfig`` overrides
    (``base_rtt`` required for paper fidelity); dynamics: a timeline of
    mid-run events (see ``repro.dynamics``).
    """
    topo = build_topology(spec)
    workload = spec.workload
    config = dict(spec.config)
    base_rtt = config.pop("base_rtt", None)
    result = load_experiment(
        topo, spec.cc, workload_cdf(workload),
        load=workload["load"], n_flows=workload["n_flows"],
        base_rtt=base_rtt, seed=spec.seed,
        incast=workload.get("incast"),
        deadline_factor=workload.get("deadline_factor", 2.5),
        sample_interval=spec.measure.get("sample_interval"),
        timeline=spec_timeline(spec),
        **config,
    )
    net = result.net
    with maybe_span("collect"):
        extras = _base_extras(spec, result, net)
        if result.dynamics is not None:
            extras["link_events"] = result.dynamics.report()
            _merge_burst_flow_ids(extras)
        return _finish_record(spec, result, net, extras)


def _merge_burst_flow_ids(extras: dict) -> None:
    """Surface dynamics-injected burst flows under ``extras["flow_ids"]``.

    The load program has no per-tag flow map of its own (the Poisson
    population is thousands of anonymous ``bg`` flows), but injected
    bursts are few and analyses select them by tag.
    """
    flow_ids: dict[str, list[int]] = extras.get("flow_ids", {})
    for entry in extras.get("link_events", ()):
        if entry.get("type") == "inject_burst":
            flow_ids.setdefault(entry["tag"], []).extend(entry["flow_ids"])
    if flow_ids:
        extras["flow_ids"] = flow_ids


def _resolve_ports(net, declarations) -> dict | None:
    """Resolve a declarative port list to live egress ports.

    Each entry is ``[label, "between", a, b]`` (egress of device ``a``
    toward ``b``) or ``[label, "to_host", h]`` (the switch egress feeding
    host ``h`` — the usual bottleneck probe).
    """
    if declarations is None:
        return None
    ports = {}
    for entry in declarations:
        label, kind = entry[0], entry[1]
        if kind == "between":
            ports[label] = net.port_between(entry[2], entry[3])
        elif kind == "to_host":
            host = entry[2]
            feeder = next(
                peer for (node, peer) in net.port_map if node == host
            )
            ports[label] = net.port_between(feeder, host)
        else:
            raise ValueError(f"unknown sample-port kind {kind!r}")
    return ports


def _run_flows(spec: ScenarioSpec) -> RunRecord:
    """An explicit flow list, optionally with mid-run network dynamics.

    workload: ``{"flows": [[src, dst, size, start?, tag?], ...],
    "deadline", "events"?: the legacy fail/restore shim}``; dynamics: a
    timeline of mid-run events (see ``repro.dynamics``); measure:
    ``{"sample_interval"?, "sample_ports"?, "windows"?,
    "pause_intervals"?}``.
    """
    with maybe_span("setup"):
        topo = build_topology(spec)
        config = dict(spec.config)
        base_rtt = config.pop("base_rtt", None)
        goodput_bin = config.pop("goodput_bin", None)
        net = setup_network(
            topo, spec.cc, base_rtt=base_rtt, goodput_bin=goodput_bin,
            seed=spec.seed, **config,
        )
        workload = spec.workload
        flow_specs = [
            net.make_flow(
                src=entry[0], dst=entry[1], size=entry[2],
                start_time=entry[3] if len(entry) > 3 else 0.0,
                tag=entry[4] if len(entry) > 4 else "bg",
            )
            for entry in workload["flows"]
        ]

        driver = None
        timeline = spec_timeline(spec)
        if timeline:
            bursts, burst_entries = burst_flow_specs(
                timeline, topo.hosts, spec.seed,
                next_flow_id=len(flow_specs) + 1,
            )
            flow_specs = flow_specs + bursts
            driver = PacketDynamicsDriver(net, timeline, burst_entries)
            driver.install()

    result = run_workload(
        net, flow_specs, deadline=workload["deadline"],
        sample_interval=spec.measure.get("sample_interval"),
        sample_ports=_resolve_ports(net, spec.measure.get("sample_ports")),
    )

    with maybe_span("collect"):
        extras = _base_extras(spec, result, net)
        flow_ids: dict[str, list[int]] = {}
        for fs in flow_specs:
            flow_ids.setdefault(fs.tag, []).append(fs.flow_id)
        extras["flow_ids"] = flow_ids
        if driver is not None:
            extras["link_events"] = driver.report()
        if spec.measure.get("windows"):
            windows: dict[str, float | None] = {}
            for fs in flow_specs:
                flow = net.nics[fs.src].flows.get(fs.flow_id)
                window = getattr(flow, "window", None) \
                    if flow is not None else None
                windows[str(fs.flow_id)] = window
            extras["final_windows"] = windows
        return _finish_record(spec, result, net, extras)


def _run_appendix_a1(spec: ScenarioSpec) -> RunRecord:
    """A.1: sumDi/D/1 queueing approximations vs direct simulation.

    workload: ``{"n_sources", "rho", "threshold", "n_periods"?}``.
    """
    from ..analysis.queueing import (
        PeriodicSourcesQueue,
        mean_queue_full_load,
        overflow_probability,
    )

    w = spec.workload
    n_sources, rho = w["n_sources"], w["rho"]
    threshold = w["threshold"]
    n_periods = w.get("n_periods", 200)
    sim = PeriodicSourcesQueue(n_sources, rho, seed=spec.seed)
    extras = {
        "n_sources": n_sources,
        "rho": rho,
        "analytic_mean_full_load": mean_queue_full_load(n_sources),
        "simulated_mean": sim.mean_queue(n_periods=n_periods),
        "analytic_tail": overflow_probability(n_sources, rho, threshold),
        "simulated_tail": sim.tail_probability(threshold, n_periods=n_periods),
    }
    return RunRecord(spec=spec, extras=extras, completed=True)


def _run_appendix_a2(spec: ScenarioSpec) -> RunRecord:
    """A.2: the Pareto-convergence Lemma on random rate networks.

    workload: ``{"n_trials"}``; seed drives the random topologies.
    """
    import numpy as np

    from ..analysis.convergence import random_network

    n_trials = spec.workload["n_trials"]
    rng = np.random.default_rng(spec.seed)
    feasible = monotone = pareto_i = pareto_inf = 0
    for _ in range(n_trials):
        net = random_network(
            n_resources=int(rng.integers(2, 8)),
            n_paths=int(rng.integers(2, 10)),
            rng=rng,
        )
        r0 = rng.uniform(0.1, 5.0, size=net.n_paths)
        trajectory = net.iterate(r0, 5 * net.n_resources)
        if net.is_feasible(trajectory[1]):
            feasible += 1
        if all(
            (trajectory[k + 1] >= trajectory[k] - 1e-9).all()
            for k in range(1, len(trajectory) - 1)
        ):
            monotone += 1
        if net.is_pareto_optimal(trajectory[net.n_resources], tol=0.01):
            pareto_i += 1
        if net.is_pareto_optimal(trajectory[-1]):
            pareto_inf += 1
    extras = {
        "n_trials": n_trials,
        "feasible_after_one": feasible,
        "monotone": monotone,
        "pareto_within_i": pareto_i,
        "pareto_asymptotic": pareto_inf,
    }
    return RunRecord(spec=spec, extras=extras, completed=True)


PROGRAMS: dict[str, Callable[[ScenarioSpec], RunRecord]] = {
    "load": _run_load,
    "flows": _run_flows,
    "appendix_a1": _run_appendix_a1,
    "appendix_a2": _run_appendix_a2,
}


def _packet_overrides() -> dict[str, Callable[[ScenarioSpec], RunRecord]]:
    """The packet backend runs the base table as-is (no overrides)."""
    return {}


def _fluid_overrides() -> dict[str, Callable[[ScenarioSpec], RunRecord]]:
    """Fluid twins of the network programs (lazy: keeps ``repro.runner``
    importable without ``repro.fluid``)."""
    from ..fluid.programs import FLUID_PROGRAMS

    return FLUID_PROGRAMS


def _hybrid_overrides() -> dict[str, Callable[[ScenarioSpec], RunRecord]]:
    """Hybrid (packet-in-fluid) twins of the network programs."""
    from ..hybrid.programs import HYBRID_PROGRAMS

    return HYBRID_PROGRAMS


#: Backend name -> loader returning that backend's program *overrides*
#: (programs absent from the override table — the analytic appendix
#: programs — fall back to the shared packet implementations).  Dispatch
#: is table-driven on purpose: a backend name missing from this table
#: raises instead of silently falling through to the packet engine, so
#: adding a backend to ``BACKENDS`` without wiring its programs is loud.
BACKEND_PROGRAMS: dict[
    str, Callable[[], dict[str, Callable[[ScenarioSpec], RunRecord]]]
] = {
    "packet": _packet_overrides,
    "fluid": _fluid_overrides,
    "hybrid": _hybrid_overrides,
}


def backend_programs(
    backend: str,
) -> dict[str, Callable[[ScenarioSpec], RunRecord]]:
    """The full program table for ``backend``; raises on unknown names."""
    if backend not in BACKEND_PROGRAMS:
        known = ", ".join(sorted(BACKEND_PROGRAMS))
        raise ValueError(
            f"unknown backend {backend!r}; known: {known}"
        )
    table = dict(PROGRAMS)
    table.update(BACKEND_PROGRAMS[backend]())
    return table


def _resolve_program(spec: ScenarioSpec) -> Callable[[ScenarioSpec], RunRecord]:
    """The implementation of ``spec.program`` on ``spec.backend``.

    The fluid and hybrid backends override the network programs
    (``load``/``flows``) with their own twins; the analytic appendix
    programs never touch the packet engine, so all backends share them.
    Imported lazily to keep ``repro.runner`` importable without
    ``repro.fluid``/``repro.hybrid`` (and vice versa).
    """
    if spec.program not in PROGRAMS:
        known = ", ".join(sorted(PROGRAMS))
        raise ValueError(
            f"unknown program {spec.program!r}; known: {known}"
        )
    return backend_programs(spec.backend)[spec.program]


def execute_spec(spec: ScenarioSpec, telemetry: bool = False,
                 decisions: bool = False) -> RunRecord:
    """Run one scenario to completion (the process-pool work unit).

    With ``telemetry=True`` the run executes under a run-scoped,
    memory-backed :class:`~repro.obs.Telemetry` (programs and engine
    probes find it via the ambient context); its drained records ride
    back on ``record.telemetry`` for the sweep's sink.  On an exception
    or a deadline overrun the flight recorder dumps the last samples to
    stderr before the record (or the exception) leaves the worker.

    ``decisions=True`` (implies telemetry) additionally attaches a
    :class:`~repro.obs.DecisionTap` — the execution layer hands it to
    whichever engine the spec selects — and exports one ``decision``
    record per CC control decision into the telemetry stream.
    """
    program = _resolve_program(spec)
    started = time.perf_counter()
    if not (telemetry or decisions):
        record = program(spec)
        record.wall_time_s = time.perf_counter() - started
        return record

    tel = Telemetry(
        run_id=spec.spec_hash,
        labels={
            "label": spec.label or spec.spec_hash,
            "program": spec.program,
            "backend": spec.backend,
            "cc": spec.cc.name,
        },
    )
    if decisions:
        from ..obs import DecisionTap

        tel.decisions = DecisionTap()
    try:
        with using(tel), tel.span("total"):
            record = program(spec)
    except BaseException:
        tel.event("run.exception")
        tel.flight.dump("exception", spec.label or spec.spec_hash)
        raise
    record.wall_time_s = time.perf_counter() - started
    if not record.completed:
        tel.event("run.deadline_overrun", sim_ns=record.duration_ns)
        tel.flight.dump("deadline overrun", spec.label or spec.spec_hash)
    if tel.decisions is not None:
        tel.export_decisions(tel.decisions)
    record.telemetry = tel.drain()
    return record


# -- the sweep runner -------------------------------------------------------------

# Infrastructure failures that mean "this environment cannot fork a pool";
# real execution errors inside a worker become error-status records.
_POOL_ERRORS = (BrokenProcessPool, OSError, PermissionError, ImportError)

ProgressFn = Callable[[RunRecord, int, int], None]

#: Exponential-backoff schedule for pool rebuilds after worker deaths:
#: ``min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * 2**(rebuilds - 1))``.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 1.0


def validate_specs(specs: list[ScenarioSpec]) -> None:
    """Reject malformed specs before any worker starts.

    Input errors — unknown program or topology names — are bugs in the
    calling experiment, not runtime faults, so they raise immediately
    under *every* failure policy: quarantine must never silently eat a
    typo.  The checks are registry-membership only (no simulator work).
    """
    for spec in specs:
        if spec.program not in PROGRAMS:
            known = ", ".join(sorted(PROGRAMS))
            raise ValueError(
                f"unknown program {spec.program!r}; known: {known}"
            )
        if spec.backend not in BACKEND_PROGRAMS:
            known = ", ".join(sorted(BACKEND_PROGRAMS))
            raise ValueError(
                f"unknown backend {spec.backend!r}; known: {known}"
            )
        if spec.program in ("load", "flows") \
                and spec.topology not in TOPOLOGIES:
            known = ", ".join(sorted(TOPOLOGIES))
            raise ValueError(
                f"unknown topology {spec.topology!r}; known: {known}"
            )


def execute_spec_guarded(
    spec: ScenarioSpec, telemetry: bool = False,
    execute: Callable[[ScenarioSpec, bool], RunRecord] | None = None,
    attempt: int = 1,
) -> RunRecord:
    """The process-pool work unit, with failure isolation.

    Runs :func:`execute_spec` (or the injected ``execute`` callable —
    the chaos hooks in the test suite use this) and converts any
    in-worker exception into an ``error``-status :class:`RunRecord`
    instead of letting it tear down the pool.  The original exception
    rides back on the non-persisted ``exception`` field (when picklable)
    so the ``failures="raise"`` policy can re-raise it verbatim.
    """
    work = execute if execute is not None else execute_spec
    started = time.perf_counter()
    try:
        record = work(spec, telemetry)
    except Exception as exc:
        record = RunRecord.failure(
            spec, "error", exc=exc,
            wall_time_s=time.perf_counter() - started, attempts=attempt,
        )
        try:
            pickle.dumps(exc)
        except Exception:
            record.exception = None     # unpicklable: the summary suffices
        return record
    record.attempts = attempt
    return record


class SweepTimeout(TimeoutError):
    """A spec exceeded its wall-clock budget under ``failures="raise"``."""


class SweepRunner:
    """Executes spec lists: cache first, then parallel (or serial) compute.

    * ``jobs`` — worker processes; 1 (default) runs in-process, serially.
    * ``cache`` — a :class:`RunCache` (or a path); hits skip computation
      and completed runs are persisted as soon as they finish.
    * ``progress`` — optional callback ``(record, done, total)``.
    * ``telemetry`` — optional :class:`~repro.obs.Telemetry`; per-run
      records are ingested as they land, plus sweep-level counters
      (cache hits/misses, faults), per-spec wall-time gauges and a
      worker-utilization gauge.  The caller owns the instance.
    * ``failures`` — ``"quarantine"`` (default) turns a failing spec
      into an ``error``/``timeout``-status record and keeps sweeping;
      ``"raise"`` re-raises the first failure (the pre-fault behaviour).
      Input errors (unknown program/topology) raise under both policies.
    * ``retries`` — extra attempts for specs lost to *infrastructure*
      faults (a worker killed by the OOM killer, a broken pool); the
      pool is rebuilt with bounded exponential backoff.  Deterministic
      execution errors are never retried — same spec, same exception.
    * ``spec_timeout`` — per-spec wall-clock budget in seconds; a spec
      still running past it has its worker killed and lands as a
      terminal ``timeout`` record.  ``"auto"`` derives the budget from
      observed runs (10x the slowest fresh ok cell, floor 5s; no
      enforcement until one fresh cell lands).  Enforced on the pool
      path only — a serial (``jobs=1``) run cannot kill itself.
    * ``journal`` — a :class:`~repro.runner.journal.SweepJournal` (or a
      path); every landed cell is appended and fsynced as it finishes,
      making the sweep resumable after a crash (``sweep --resume``).

    Duplicate specs (same :attr:`~ScenarioSpec.spec_hash`) are computed
    once and shared.  If the platform refuses to fork a process pool the
    runner silently degrades to serial execution — results are identical
    either way because every run is rebuilt from its spec.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | str | None = None,
        progress: ProgressFn | None = None,
        telemetry: Telemetry | None = None,
        failures: str = "quarantine",
        retries: int = 2,
        spec_timeout: float | str | None = None,
        journal: "SweepJournal | str | None" = None,
        execute: Callable[[ScenarioSpec, bool], RunRecord] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if failures not in ("quarantine", "raise"):
            raise ValueError(
                f"failures must be 'quarantine' or 'raise', got {failures!r}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if spec_timeout is not None and spec_timeout != "auto" \
                and float(spec_timeout) <= 0:
            raise ValueError(f"spec_timeout must be > 0, got {spec_timeout}")
        self.jobs = jobs
        self.cache = RunCache(cache) if isinstance(cache, str) else cache
        self.progress = progress
        self.telemetry = telemetry
        self.failures = failures
        self.retries = retries
        self.spec_timeout = spec_timeout
        if isinstance(journal, (str, Path)):
            from .journal import SweepJournal

            journal = SweepJournal(journal)
        self.journal = journal
        self._execute = execute
        #: Slowest fresh-ok wall time seen this run (drives "auto" budgets).
        self._slowest_ok = 0.0

    # -- the outer loop ----------------------------------------------------------

    def run(self, specs: list[ScenarioSpec]) -> list[RunRecord]:
        """Execute every spec, returning records in input order.

        Under the default ``failures="quarantine"`` policy the returned
        list always has one record per spec; check ``record.ok`` (or
        ``record.status``) before using a cell's results.
        """
        validate_specs(specs)
        total = len(specs)
        records: list[RunRecord | None] = [None] * total
        done = 0
        tel = self.telemetry
        sweep_started = time.perf_counter()
        self._slowest_ok = 0.0
        if self.journal is not None:
            self.journal.open(total)

        def notify(record: RunRecord) -> None:
            nonlocal done
            done += 1
            if tel is not None:
                tel.gauge("sweep.spec_wall_s", record.wall_time_s,
                          label=record.label, cached=record.cached,
                          status=record.status)
            if self.progress is not None:
                self.progress(record, done, total)

        try:
            # Cache pass + dedupe: one computation per distinct spec hash.
            to_run: dict[str, ScenarioSpec] = {}
            indices: dict[str, list[int]] = {}
            for i, spec in enumerate(specs):
                key = spec.spec_hash
                if key in indices:
                    indices[key].append(i)
                    continue
                indices[key] = [i]
                cached = self.cache.get(spec) if self.cache is not None \
                    else None
                if cached is not None:
                    records[i] = cached
                    if self.journal is not None:
                        self.journal.record(cached)
                    notify(cached)
                else:
                    to_run[key] = spec
            if tel is not None:
                block = tel.counters("sweep.cache")
                block.inc("hits", len(indices) - len(to_run))
                block.inc("misses", len(to_run))

            computed: dict[str, RunRecord] = {}
            if len(to_run) > 1 and self.jobs > 1:
                computed = self._run_pool(to_run, notify)
            for key, spec in to_run.items():
                if key not in computed:           # serial path / pool fallback
                    record = execute_spec_guarded(
                        spec, tel is not None, self._execute
                    )
                    computed[key] = record
                    self._land(record, notify)

            # Fan results back out to every index (duplicates keep their own
            # label/meta via spec reattachment, and their own progress tick).
            for key, positions in indices.items():
                base = records[positions[0]] \
                    if records[positions[0]] is not None else computed[key]
                for i in positions:
                    if records[i] is None:
                        records[i] = base if specs[i] is base.spec \
                            else replace(base, spec=specs[i])
                        if i != positions[0]:
                            notify(records[i])
        finally:
            if self.journal is not None:
                self.journal.close()
        if tel is not None:
            elapsed = time.perf_counter() - sweep_started
            busy = sum(r.wall_time_s for r in records
                       if r is not None and not r.cached)
            tel.gauge("sweep.wall_s", elapsed, specs=total, jobs=self.jobs)
            if elapsed > 0:
                tel.gauge("sweep.worker_utilization",
                          min(1.0, busy / (elapsed * self.jobs)),
                          jobs=self.jobs)
        return [r for r in records if r is not None]

    # -- landing results ---------------------------------------------------------

    def _land(self, record: RunRecord, notify: Callable[[RunRecord], None]
              ) -> None:
        """One terminal outcome: cache, journal, telemetry, policy."""
        if record.ok:
            if not record.cached:
                self._slowest_ok = max(self._slowest_ok, record.wall_time_s)
            if self.cache is not None:
                self.cache.put(record)
        elif self.telemetry is not None:
            self.telemetry.counters("sweep.fault").inc("quarantined")
            self.telemetry.event(
                "sweep.spec_failed", label=record.label,
                status=record.status,
                error=(record.error or {}).get("type", ""),
            )
        if self.telemetry is not None and record.telemetry:
            self.telemetry.ingest(record.telemetry)
            record.telemetry = []
        if self.journal is not None:
            self.journal.record(record)
        notify(record)
        if not record.ok and self.failures == "raise":
            self._raise(record)

    def _raise(self, record: RunRecord) -> None:
        if record.exception is not None:
            raise record.exception
        error = record.error or {}
        detail = f"{record.label}: {error.get('type')}: {error.get('message')}"
        if record.status == "timeout":
            raise SweepTimeout(detail)
        raise RuntimeError(f"sweep cell failed: {detail}")

    def _current_timeout(self) -> float | None:
        """The live per-spec budget (None while "auto" has no sample)."""
        if self.spec_timeout is None:
            return None
        if self.spec_timeout == "auto":
            if self._slowest_ok <= 0.0:
                return None
            return max(5.0, 10.0 * self._slowest_ok)
        return float(self.spec_timeout)

    # -- the pool path -----------------------------------------------------------

    def _run_pool(
        self, to_run: dict[str, ScenarioSpec],
        notify: Callable[[RunRecord], None],
    ) -> dict[str, RunRecord]:
        """Parallel execution with a watchdog; returns whatever completed
        (possibly nothing if the platform cannot spawn a pool — the
        caller's serial loop fills the gaps).

        The submission window is bounded by ``jobs`` so every inflight
        future is actually *running* — which makes submit time a faithful
        start time, and the per-spec deadline meaningful.  Overdue specs
        get the whole pool generation killed (SIGKILL: a hung worker may
        ignore anything milder), land as terminal ``timeout`` records,
        and the collateral inflight specs are requeued onto a fresh pool.
        A worker death (OOM kill, segfault) breaks the pool for every
        inflight future; all of them are requeued — the culprit is
        indistinguishable from the collateral — with attempts bounded by
        ``retries`` and a bounded exponential backoff between rebuilds.
        """
        tel = self.telemetry
        computed: dict[str, RunRecord] = {}
        queue = deque(to_run.items())
        attempts: dict[str, int] = {key: 0 for key in to_run}
        max_attempts = 1 + self.retries
        rebuilds = 0
        pool = self._new_pool()
        if pool is None:
            return computed
        # future -> (key, spec, started_at) for everything submitted.
        inflight: dict = {}

        def land(record: RunRecord, key: str) -> None:
            computed[key] = record
            try:
                self._land(record, notify)
            except BaseException:
                self._kill_pool(pool)
                raise

        def requeue_lost(key: str, spec: ScenarioSpec) -> None:
            """A worker died under this spec: retry or quarantine."""
            if attempts[key] < max_attempts:
                if tel is not None:
                    tel.counters("sweep.fault").inc("retries")
                queue.append((key, spec))
            else:
                land(RunRecord.failure(
                    spec, "error", attempts=attempts[key],
                    detail=f"worker lost {attempts[key]} times "
                           f"(retries={self.retries} exhausted)",
                ), key)

        try:
            while queue or inflight:
                while queue and len(inflight) < self.jobs:
                    key, spec = queue.popleft()
                    attempts[key] += 1
                    try:
                        future = pool.submit(
                            execute_spec_guarded, spec, tel is not None,
                            self._execute, attempts[key],
                        )
                    except _POOL_ERRORS:
                        attempts[key] -= 1
                        queue.appendleft((key, spec))
                        return computed       # degrade to the serial path
                    inflight[future] = (key, spec, time.monotonic())

                timeout = self._current_timeout()
                wait_s = None
                if timeout is not None and inflight:
                    next_deadline = min(
                        started + timeout
                        for _, _, started in inflight.values()
                    )
                    wait_s = max(0.05, next_deadline - time.monotonic())
                finished, _ = wait(set(inflight), timeout=wait_s,
                                   return_when=FIRST_COMPLETED)

                broken = False
                for future in finished:
                    key, spec, _started = inflight.pop(future)
                    try:
                        record = future.result()
                    except _POOL_ERRORS:
                        broken = True
                        requeue_lost(key, spec)
                        continue
                    record.attempts = attempts[key]
                    land(record, key)

                if broken:
                    # One death poisons the whole generation: every other
                    # inflight future is about to raise BrokenProcessPool
                    # too.  Requeue them all and start a fresh pool.
                    if tel is not None:
                        tel.counters("sweep.fault").inc("worker_lost")
                        tel.flight.dump("worker death", "sweep")
                    for future, (key, spec, _started) in list(
                            inflight.items()):
                        requeue_lost(key, spec)
                    inflight.clear()
                    rebuilds += 1
                    pool = self._rebuild_pool(pool, rebuilds)
                    if pool is None:
                        return computed
                    continue

                timeout = self._current_timeout()
                if timeout is None or not inflight:
                    continue
                now = time.monotonic()
                overdue = {
                    future for future, (_k, _s, started) in inflight.items()
                    if now - started > timeout
                }
                if not overdue:
                    continue
                # Watchdog: kill the generation, record the overdue specs
                # as terminal timeouts, requeue the collateral.
                span = tel.span("sweep.watchdog", overdue=len(overdue)) \
                    if tel is not None else nullcontext()
                with span:
                    self._kill_pool(pool)
                    for future, (key, spec, started) in list(
                            inflight.items()):
                        if future in overdue:
                            if tel is not None:
                                tel.counters("sweep.fault").inc("timeouts")
                            land(RunRecord.failure(
                                spec, "timeout",
                                wall_time_s=now - started,
                                attempts=attempts[key],
                                detail=f"exceeded {timeout:.1f}s "
                                       f"wall-clock budget",
                            ), key)
                        else:
                            requeue_lost(key, spec)
                    inflight.clear()
                    rebuilds += 1
                    pool = self._rebuild_pool(pool, rebuilds,
                                              backoff=False)
                    if pool is None:
                        return computed
        finally:
            self._kill_pool(pool)
        return computed

    # -- pool lifecycle ----------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor | None:
        try:
            return ProcessPoolExecutor(max_workers=self.jobs)
        except _POOL_ERRORS:
            return None

    def _rebuild_pool(self, old: ProcessPoolExecutor | None, rebuilds: int,
                      backoff: bool = True) -> ProcessPoolExecutor | None:
        if old is not None:
            self._kill_pool(old)
        if backoff:
            time.sleep(min(_BACKOFF_CAP_S,
                           _BACKOFF_BASE_S * 2 ** (rebuilds - 1)))
        return self._new_pool()

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor | None) -> None:
        """Tear a pool down without waiting on its workers.

        SIGKILL, not terminate: a spec stuck in a tight simulation loop
        never reaches a Python signal handler.  Reaches into
        ``pool._processes`` (CPython implementation detail) defensively —
        if the attribute moves, we degrade to a plain shutdown.
        """
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)
