"""Scenario execution: programs, the spec interpreter, and the sweep runner.

The **programs** are the generic execution recipes every figure is built
from.  A program takes a :class:`ScenarioSpec` (pure data), builds its
own ``Network``, runs it, and returns a :class:`RunRecord` (pure data
again) — nothing live crosses the boundary, which is what lets
:class:`SweepRunner` fan specs out over a ``ProcessPoolExecutor``.
Because every run is rebuilt from the spec's seed, serial and parallel
sweeps produce byte-identical results.

Telemetry (``repro.obs``) is opt-in per sweep: :func:`execute_spec`
builds a run-scoped memory-sink :class:`~repro.obs.Telemetry` when
asked, programs mark their setup/run/collect phases through the ambient
:func:`~repro.obs.maybe_span` context (a no-op otherwise), and
:class:`SweepRunner` ingests each worker's drained records — carried
across the process pool on the (non-persisted) ``RunRecord.telemetry``
field — into its own file-backed instance.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Callable

from ..dynamics import PacketDynamicsDriver, Timeline, burst_flow_specs
from ..obs import Telemetry, maybe_span, using
from ..topology.base import Topology
from ..topology.fattree import FatTreeSpec, fattree
from ..topology.simple import dual_trunk, dumbbell, intree, parking_lot, star
from ..topology.testbed import testbed
from ..workloads.fbhadoop import fbhadoop
from ..workloads.websearch import websearch
from .harness import RunResult, load_experiment, run_workload, setup_network
from .results import RunCache, RunRecord
from .spec import ScenarioSpec

# -- registries (resolved by name inside worker processes) -----------------------

TOPOLOGIES: dict[str, Callable[..., Topology]] = {
    "star": star,
    "dumbbell": dumbbell,
    "parking_lot": parking_lot,
    "intree": intree,
    "testbed": testbed,
    "dual_trunk": dual_trunk,
    "fattree": lambda **kwargs: fattree(FatTreeSpec(**kwargs)),
}

CDFS: dict[str, Callable] = {
    "websearch": websearch,
    "fbhadoop": fbhadoop,
}


def build_topology(spec: ScenarioSpec) -> Topology:
    """Instantiate the spec's topology (cheap: no simulator involved)."""
    try:
        factory = TOPOLOGIES[spec.topology]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGIES))
        raise ValueError(
            f"unknown topology {spec.topology!r}; known: {known}"
        ) from None
    return factory(**spec.topology_params)


def workload_cdf(workload: dict):
    cdf = CDFS[workload["cdf"]]()
    return cdf.scaled(workload.get("size_scale", 1.0))


# -- payload builders -------------------------------------------------------------

def _fct_payload(result: RunResult) -> list[dict]:
    return [
        {
            "flow_id": r.spec.flow_id, "src": r.spec.src, "dst": r.spec.dst,
            "size": r.spec.size, "start_time": r.spec.start_time,
            "tag": r.spec.tag, "start": r.start, "finish": r.finish,
            "ideal": r.ideal,
        }
        for r in result.records
    ]


def _queue_payload(result: RunResult) -> dict[str, dict]:
    if result.sampler is None:
        return {}
    return {
        label: {"times": list(result.sampler.times), "qlens": list(values)}
        for label, values in result.sampler.samples.items()
    }


def _base_extras(spec: ScenarioSpec, result: RunResult, net) -> dict:
    tracker = net.metrics.pause_tracker
    extras: dict = {
        "n_hosts": net.topology.n_hosts,
        "header_bytes": net.header,
        "drops": net.metrics.drop_count,
        "pause_count": tracker.pause_count(),
        "pause_total_ns": tracker.total_pause_time(None),
        "switch_queued_bytes": {
            str(sw): switch.total_queued_bytes()
            for sw, switch in net.switches.items()
        },
    }
    if spec.measure.get("pause_intervals"):
        extras["pause_intervals"] = [
            [iv.device, iv.port, iv.start, iv.end] for iv in tracker.intervals
        ]
        extras["origin_of"] = [
            [device, port, peer]
            for (device, port), peer in net.origin_of.items()
        ]
    if net.metrics.goodput is not None:
        extras["goodput"] = {
            "bin_ns": net.metrics.goodput.bin_ns,
            "bins": {
                str(flow_id): {str(idx): n for idx, n in bins.items()}
                for flow_id, bins in net.metrics.goodput._bins.items()
            },
        }
    return extras


def _finish_record(spec: ScenarioSpec, result: RunResult, net,
                   extras: dict) -> RunRecord:
    return RunRecord(
        spec=spec,
        fct=_fct_payload(result),
        queues=_queue_payload(result),
        extras=extras,
        events_processed=net.sim.events_processed,
        duration_ns=result.duration,
        completed=result.completed,
    )


# -- programs ---------------------------------------------------------------------

def spec_timeline(spec: ScenarioSpec) -> Timeline:
    """The spec's dynamics timeline, legacy ``workload["events"]`` included.

    The legacy list (``[["fail_link"|"restore_link", t, a, b], ...]``) is
    a deprecation shim over the timeline DSL: old JSON specs keep hashing
    identically (the ``dynamics`` field stays empty) and keep running
    identically (a shimmed fail/restore fires as one scheduled callback
    with immediate reconvergence — the pre-dynamics behaviour, pinned by
    the golden determinism fixtures).
    """
    return Timeline.for_spec(spec.dynamics, spec.workload.get("events"))


def _run_load(spec: ScenarioSpec) -> RunRecord:
    """Poisson background traffic from a size CDF, optional incast bursts.

    workload: ``{"cdf", "size_scale", "load", "n_flows", "incast"?,
    "deadline_factor"?}``; measure: ``{"sample_interval"?,
    "pause_intervals"?}``; config: ``NetworkConfig`` overrides
    (``base_rtt`` required for paper fidelity); dynamics: a timeline of
    mid-run events (see ``repro.dynamics``).
    """
    topo = build_topology(spec)
    workload = spec.workload
    config = dict(spec.config)
    base_rtt = config.pop("base_rtt", None)
    result = load_experiment(
        topo, spec.cc, workload_cdf(workload),
        load=workload["load"], n_flows=workload["n_flows"],
        base_rtt=base_rtt, seed=spec.seed,
        incast=workload.get("incast"),
        deadline_factor=workload.get("deadline_factor", 2.5),
        sample_interval=spec.measure.get("sample_interval"),
        timeline=spec_timeline(spec),
        **config,
    )
    net = result.net
    with maybe_span("collect"):
        extras = _base_extras(spec, result, net)
        if result.dynamics is not None:
            extras["link_events"] = result.dynamics.report()
            _merge_burst_flow_ids(extras)
        return _finish_record(spec, result, net, extras)


def _merge_burst_flow_ids(extras: dict) -> None:
    """Surface dynamics-injected burst flows under ``extras["flow_ids"]``.

    The load program has no per-tag flow map of its own (the Poisson
    population is thousands of anonymous ``bg`` flows), but injected
    bursts are few and analyses select them by tag.
    """
    flow_ids: dict[str, list[int]] = extras.get("flow_ids", {})
    for entry in extras.get("link_events", ()):
        if entry.get("type") == "inject_burst":
            flow_ids.setdefault(entry["tag"], []).extend(entry["flow_ids"])
    if flow_ids:
        extras["flow_ids"] = flow_ids


def _resolve_ports(net, declarations) -> dict | None:
    """Resolve a declarative port list to live egress ports.

    Each entry is ``[label, "between", a, b]`` (egress of device ``a``
    toward ``b``) or ``[label, "to_host", h]`` (the switch egress feeding
    host ``h`` — the usual bottleneck probe).
    """
    if declarations is None:
        return None
    ports = {}
    for entry in declarations:
        label, kind = entry[0], entry[1]
        if kind == "between":
            ports[label] = net.port_between(entry[2], entry[3])
        elif kind == "to_host":
            host = entry[2]
            feeder = next(
                peer for (node, peer) in net.port_map if node == host
            )
            ports[label] = net.port_between(feeder, host)
        else:
            raise ValueError(f"unknown sample-port kind {kind!r}")
    return ports


def _run_flows(spec: ScenarioSpec) -> RunRecord:
    """An explicit flow list, optionally with mid-run network dynamics.

    workload: ``{"flows": [[src, dst, size, start?, tag?], ...],
    "deadline", "events"?: the legacy fail/restore shim}``; dynamics: a
    timeline of mid-run events (see ``repro.dynamics``); measure:
    ``{"sample_interval"?, "sample_ports"?, "windows"?,
    "pause_intervals"?}``.
    """
    with maybe_span("setup"):
        topo = build_topology(spec)
        config = dict(spec.config)
        base_rtt = config.pop("base_rtt", None)
        goodput_bin = config.pop("goodput_bin", None)
        net = setup_network(
            topo, spec.cc, base_rtt=base_rtt, goodput_bin=goodput_bin,
            seed=spec.seed, **config,
        )
        workload = spec.workload
        flow_specs = [
            net.make_flow(
                src=entry[0], dst=entry[1], size=entry[2],
                start_time=entry[3] if len(entry) > 3 else 0.0,
                tag=entry[4] if len(entry) > 4 else "bg",
            )
            for entry in workload["flows"]
        ]

        driver = None
        timeline = spec_timeline(spec)
        if timeline:
            bursts, burst_entries = burst_flow_specs(
                timeline, topo.hosts, spec.seed,
                next_flow_id=len(flow_specs) + 1,
            )
            flow_specs = flow_specs + bursts
            driver = PacketDynamicsDriver(net, timeline, burst_entries)
            driver.install()

    result = run_workload(
        net, flow_specs, deadline=workload["deadline"],
        sample_interval=spec.measure.get("sample_interval"),
        sample_ports=_resolve_ports(net, spec.measure.get("sample_ports")),
    )

    with maybe_span("collect"):
        extras = _base_extras(spec, result, net)
        flow_ids: dict[str, list[int]] = {}
        for fs in flow_specs:
            flow_ids.setdefault(fs.tag, []).append(fs.flow_id)
        extras["flow_ids"] = flow_ids
        if driver is not None:
            extras["link_events"] = driver.report()
        if spec.measure.get("windows"):
            windows: dict[str, float | None] = {}
            for fs in flow_specs:
                flow = net.nics[fs.src].flows.get(fs.flow_id)
                window = getattr(flow, "window", None) \
                    if flow is not None else None
                windows[str(fs.flow_id)] = window
            extras["final_windows"] = windows
        return _finish_record(spec, result, net, extras)


def _run_appendix_a1(spec: ScenarioSpec) -> RunRecord:
    """A.1: sumDi/D/1 queueing approximations vs direct simulation.

    workload: ``{"n_sources", "rho", "threshold", "n_periods"?}``.
    """
    from ..analysis.queueing import (
        PeriodicSourcesQueue,
        mean_queue_full_load,
        overflow_probability,
    )

    w = spec.workload
    n_sources, rho = w["n_sources"], w["rho"]
    threshold = w["threshold"]
    n_periods = w.get("n_periods", 200)
    sim = PeriodicSourcesQueue(n_sources, rho, seed=spec.seed)
    extras = {
        "n_sources": n_sources,
        "rho": rho,
        "analytic_mean_full_load": mean_queue_full_load(n_sources),
        "simulated_mean": sim.mean_queue(n_periods=n_periods),
        "analytic_tail": overflow_probability(n_sources, rho, threshold),
        "simulated_tail": sim.tail_probability(threshold, n_periods=n_periods),
    }
    return RunRecord(spec=spec, extras=extras, completed=True)


def _run_appendix_a2(spec: ScenarioSpec) -> RunRecord:
    """A.2: the Pareto-convergence Lemma on random rate networks.

    workload: ``{"n_trials"}``; seed drives the random topologies.
    """
    import numpy as np

    from ..analysis.convergence import random_network

    n_trials = spec.workload["n_trials"]
    rng = np.random.default_rng(spec.seed)
    feasible = monotone = pareto_i = pareto_inf = 0
    for _ in range(n_trials):
        net = random_network(
            n_resources=int(rng.integers(2, 8)),
            n_paths=int(rng.integers(2, 10)),
            rng=rng,
        )
        r0 = rng.uniform(0.1, 5.0, size=net.n_paths)
        trajectory = net.iterate(r0, 5 * net.n_resources)
        if net.is_feasible(trajectory[1]):
            feasible += 1
        if all(
            (trajectory[k + 1] >= trajectory[k] - 1e-9).all()
            for k in range(1, len(trajectory) - 1)
        ):
            monotone += 1
        if net.is_pareto_optimal(trajectory[net.n_resources], tol=0.01):
            pareto_i += 1
        if net.is_pareto_optimal(trajectory[-1]):
            pareto_inf += 1
    extras = {
        "n_trials": n_trials,
        "feasible_after_one": feasible,
        "monotone": monotone,
        "pareto_within_i": pareto_i,
        "pareto_asymptotic": pareto_inf,
    }
    return RunRecord(spec=spec, extras=extras, completed=True)


PROGRAMS: dict[str, Callable[[ScenarioSpec], RunRecord]] = {
    "load": _run_load,
    "flows": _run_flows,
    "appendix_a1": _run_appendix_a1,
    "appendix_a2": _run_appendix_a2,
}


def _resolve_program(spec: ScenarioSpec) -> Callable[[ScenarioSpec], RunRecord]:
    """The implementation of ``spec.program`` on ``spec.backend``.

    The fluid backend overrides the network programs (``load``/``flows``)
    with ``repro.fluid`` twins; the analytic appendix programs never
    touch the packet engine, so both backends share them.  Imported
    lazily to keep ``repro.runner`` importable without ``repro.fluid``
    (and vice versa).
    """
    if spec.program not in PROGRAMS:
        known = ", ".join(sorted(PROGRAMS))
        raise ValueError(
            f"unknown program {spec.program!r}; known: {known}"
        )
    if spec.backend == "fluid":
        from ..fluid.programs import FLUID_PROGRAMS

        return FLUID_PROGRAMS.get(spec.program, PROGRAMS[spec.program])
    return PROGRAMS[spec.program]


def execute_spec(spec: ScenarioSpec, telemetry: bool = False) -> RunRecord:
    """Run one scenario to completion (the process-pool work unit).

    With ``telemetry=True`` the run executes under a run-scoped,
    memory-backed :class:`~repro.obs.Telemetry` (programs and engine
    probes find it via the ambient context); its drained records ride
    back on ``record.telemetry`` for the sweep's sink.  On an exception
    or a deadline overrun the flight recorder dumps the last samples to
    stderr before the record (or the exception) leaves the worker.
    """
    program = _resolve_program(spec)
    started = time.perf_counter()
    if not telemetry:
        record = program(spec)
        record.wall_time_s = time.perf_counter() - started
        return record

    tel = Telemetry(
        run_id=spec.spec_hash,
        labels={
            "label": spec.label or spec.spec_hash,
            "program": spec.program,
            "backend": spec.backend,
            "cc": spec.cc.name,
        },
    )
    try:
        with using(tel), tel.span("total"):
            record = program(spec)
    except BaseException:
        tel.event("run.exception")
        tel.flight.dump("exception", spec.label or spec.spec_hash)
        raise
    record.wall_time_s = time.perf_counter() - started
    if not record.completed:
        tel.event("run.deadline_overrun", sim_ns=record.duration_ns)
        tel.flight.dump("deadline overrun", spec.label or spec.spec_hash)
    record.telemetry = tel.drain()
    return record


# -- the sweep runner -------------------------------------------------------------

# Infrastructure failures that mean "this environment cannot fork a pool";
# real execution errors inside a worker are re-raised, never swallowed.
_POOL_ERRORS = (BrokenProcessPool, OSError, PermissionError, ImportError)

ProgressFn = Callable[[RunRecord, int, int], None]


class SweepRunner:
    """Executes spec lists: cache first, then parallel (or serial) compute.

    * ``jobs`` — worker processes; 1 (default) runs in-process, serially.
    * ``cache`` — a :class:`RunCache` (or a path); hits skip computation
      and completed runs are persisted as soon as they finish.
    * ``progress`` — optional callback ``(record, done, total)``.
    * ``telemetry`` — optional :class:`~repro.obs.Telemetry`; per-run
      records are ingested as they land, plus sweep-level counters
      (cache hits/misses), per-spec wall-time gauges and a worker-
      utilization gauge.  The caller owns the instance (and closes it).

    Duplicate specs (same :attr:`~ScenarioSpec.spec_hash`) are computed
    once and shared.  If the platform refuses to fork a process pool the
    runner silently degrades to serial execution — results are identical
    either way because every run is rebuilt from its spec.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | str | None = None,
        progress: ProgressFn | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = RunCache(cache) if isinstance(cache, str) else cache
        self.progress = progress
        self.telemetry = telemetry

    def run(self, specs: list[ScenarioSpec]) -> list[RunRecord]:
        """Execute every spec, returning records in input order."""
        total = len(specs)
        records: list[RunRecord | None] = [None] * total
        done = 0
        tel = self.telemetry
        sweep_started = time.perf_counter()

        def notify(record: RunRecord) -> None:
            nonlocal done
            done += 1
            if tel is not None:
                tel.gauge("sweep.spec_wall_s", record.wall_time_s,
                          label=record.label, cached=record.cached)
            if self.progress is not None:
                self.progress(record, done, total)

        # Cache pass + dedupe: one computation per distinct spec hash.
        to_run: dict[str, ScenarioSpec] = {}
        indices: dict[str, list[int]] = {}
        for i, spec in enumerate(specs):
            key = spec.spec_hash
            if key in indices:
                indices[key].append(i)
                continue
            indices[key] = [i]
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                records[i] = cached
                notify(cached)
            else:
                to_run[key] = spec
        if tel is not None:
            block = tel.counters("sweep.cache")
            block.inc("hits", len(indices) - len(to_run))
            block.inc("misses", len(to_run))

        computed: dict[str, RunRecord] = {}
        if len(to_run) > 1 and self.jobs > 1:
            computed = self._run_pool(to_run, notify)
        for key, spec in to_run.items():
            if key not in computed:               # serial path / pool fallback
                computed[key] = execute_spec(spec, tel is not None)
                self._store(computed[key])
                notify(computed[key])

        # Fan results back out to every index (duplicates keep their own
        # label/meta via spec reattachment, and get their own progress tick).
        for key, positions in indices.items():
            base = records[positions[0]] if records[positions[0]] is not None \
                else computed[key]
            for i in positions:
                if records[i] is None:
                    records[i] = base if specs[i] is base.spec \
                        else replace(base, spec=specs[i])
                    if i != positions[0]:
                        notify(records[i])
        if tel is not None:
            elapsed = time.perf_counter() - sweep_started
            busy = sum(r.wall_time_s for r in records
                       if r is not None and not r.cached)
            tel.gauge("sweep.wall_s", elapsed, specs=total, jobs=self.jobs)
            if elapsed > 0:
                tel.gauge("sweep.worker_utilization",
                          min(1.0, busy / (elapsed * self.jobs)),
                          jobs=self.jobs)
        return [r for r in records if r is not None]

    def _store(self, record: RunRecord) -> None:
        if self.cache is not None:
            self.cache.put(record)
        if self.telemetry is not None and record.telemetry:
            self.telemetry.ingest(record.telemetry)
            record.telemetry = []

    def _run_pool(
        self, to_run: dict[str, ScenarioSpec], notify: Callable[[RunRecord], None]
    ) -> dict[str, RunRecord]:
        """Parallel execution; returns whatever completed (possibly nothing
        if the platform cannot spawn a pool — the caller fills the gaps).

        Only pool *infrastructure* failures degrade to the serial path:
        a pool that won't start, submissions that won't fork, or a pool
        that dies mid-flight (``BrokenProcessPool``).  Errors raised by a
        spec's own execution, and cache-write failures, propagate.
        """
        computed: dict[str, RunRecord] = {}
        try:
            pool = ProcessPoolExecutor(max_workers=self.jobs)
        except _POOL_ERRORS:
            return computed
        with pool:
            try:
                futures = {
                    pool.submit(execute_spec, spec,
                                self.telemetry is not None): key
                    for key, spec in to_run.items()
                }
            except _POOL_ERRORS:
                return computed
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    try:
                        record = future.result()
                    except BrokenProcessPool:
                        return computed
                    computed[futures[future]] = record
                    self._store(record)
                    notify(record)
        return computed
