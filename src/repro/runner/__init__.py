"""Declarative scenario specs and the parallel sweep runner.

Four layers (see ``ROADMAP.md`` and the module docstrings):

* **spec** — :class:`ScenarioSpec` (hashable, JSON-able, picklable) and
  :class:`ScenarioGrid` for cartesian sweep expansion;
* **execution** — :class:`SweepRunner` (process-pool parallelism with a
  serial fallback) over generic scenario programs (:func:`execute_spec`);
* **results** — :class:`RunRecord` persistence and the content-addressed
  :class:`RunCache`;
* **consumers** — every ``repro.experiments`` figure declares a grid and
  post-processes the records; ``hpcc-repro sweep`` drives grids from the
  shell.
"""

from .execute import (
    CDFS,
    PROGRAMS,
    TOPOLOGIES,
    SweepRunner,
    SweepTimeout,
    build_topology,
    execute_spec,
    execute_spec_guarded,
    validate_specs,
    workload_cdf,
)
from .harness import (
    RunResult,
    generate_load_flows,
    load_experiment,
    run_workload,
    setup_network,
)
from .journal import SweepJournal, plan_resume
from .results import RunCache, RunRecord, write_records_csv
from .spec import (
    BACKENDS,
    CcChoice,
    ScenarioGrid,
    ScenarioSpec,
    axis,
    cc_axis,
    seed_axis,
)

__all__ = [
    "BACKENDS",
    "CDFS",
    "CcChoice",
    "PROGRAMS",
    "RunCache",
    "RunRecord",
    "RunResult",
    "ScenarioGrid",
    "ScenarioSpec",
    "SweepJournal",
    "SweepRunner",
    "SweepTimeout",
    "TOPOLOGIES",
    "axis",
    "build_topology",
    "cc_axis",
    "execute_spec",
    "execute_spec_guarded",
    "generate_load_flows",
    "plan_resume",
    "validate_specs",
    "workload_cdf",
    "load_experiment",
    "run_workload",
    "seed_axis",
    "setup_network",
    "write_records_csv",
]
