"""Declarative scenario specifications.

A :class:`ScenarioSpec` names everything one simulation run needs — the
topology factory, the CC scheme, the workload, the seed and the scale —
as plain data: no callables, no live objects.  That buys three things:

* **hashable** — :attr:`ScenarioSpec.spec_hash` is a stable digest of the
  execution-relevant fields, so results can be cached content-addressed;
* **serializable** — specs round-trip through JSON, so sweeps are
  resumable and results carry their provenance;
* **picklable** — specs cross process boundaries cleanly, so a sweep can
  fan out over a ``ProcessPoolExecutor`` (each worker rebuilds its own
  ``Network`` from the spec).

:class:`ScenarioGrid` expands cartesian products of schemes, parameters
and seeds into spec lists — the paper's figure matrices as one-liners.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class CcChoice:
    """A labelled CC configuration, e.g. DCQCN with specific timers."""

    name: str                        # registry name
    label: str | None = None         # display label (defaults to name)
    params: dict = field(default_factory=dict)

    @property
    def display(self) -> str:
        return self.label or self.name

    def to_json(self) -> dict:
        return {"name": self.name, "label": self.label, "params": dict(self.params)}

    @classmethod
    def from_json(cls, data: dict) -> "CcChoice":
        return cls(
            name=data["name"],
            label=data.get("label"),
            params=dict(data.get("params") or {}),
        )


# Fields that determine what a run computes.  ``label`` and ``meta`` are
# presentation/grouping only: two specs differing only there produce the
# same results, share a cache entry and compare equal.  ``backend`` IS
# identity: a packet and a fluid run of the same scenario compute
# different things and must never share a cache entry.  ``dynamics`` is
# identity too, but an *empty* timeline is omitted from the canonical
# encoding so every pre-dynamics spec keeps its original hash (and cache
# entries survive).
_IDENTITY_FIELDS = (
    "program", "topology", "topology_params", "cc",
    "workload", "config", "measure", "seed", "scale", "backend",
    "dynamics",
)

BACKENDS = ("packet", "fluid", "hybrid")


@dataclass(frozen=True, eq=False)
class ScenarioSpec:
    """One cell of an evaluation grid, as pure data.

    ``program`` names the execution recipe (see ``repro.runner.execute``):

    * ``"load"``  — Poisson background traffic from a named size CDF,
      optionally with synchronized incasts (the Figure 2/3/10/11/12 shape);
    * ``"flows"`` — an explicit flow list with optional mid-run link
      events (the Figure 6/9/13/14, Appendix A.4 and failover shape);
    * ``"appendix_a1"`` / ``"appendix_a2"`` — the analytic experiments.

    ``topology`` names a factory in the topology registry and
    ``topology_params`` its kwargs; ``config`` holds ``NetworkConfig``
    overrides (``base_rtt``, ``buffer_bytes``, ``transport``, ...);
    ``measure`` declares what to record (queue sampling, pause intervals,
    final windows); ``meta`` carries consumer-side grouping keys.

    ``backend`` selects the execution engine: ``"packet"`` (the
    discrete-event simulator), ``"fluid"`` (the flow-level fast path in
    ``repro.fluid``) or ``"hybrid"`` (packet foreground flows inside a
    fluid background matrix, ``repro.hybrid``).  It is part of the
    spec's identity hash.  The hybrid backend reads the
    ``workload["foreground"]`` selector (see
    :func:`repro.hybrid.select.parse_foreground`) to split the flow
    population; the selector lives in ``workload`` so it is
    hash-distinct automatically.

    ``dynamics`` declares mid-run network events as a
    :class:`~repro.dynamics.events.Timeline` (accepted directly, stored
    in its JSON form): link failures and recoveries, degradations, flap
    trains and scheduled incast bursts.  It is hash-distinct — two specs
    differing only in their fault schedule never share a cache entry —
    and sweepable via :func:`~repro.dynamics.events.dynamics_axis`.
    """

    program: str
    topology: str = ""
    cc: CcChoice = CcChoice("hpcc")
    topology_params: dict = field(default_factory=dict)
    workload: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    measure: dict = field(default_factory=dict)
    seed: int = 1
    scale: str = "bench"
    backend: str = "packet"
    dynamics: dict = field(default_factory=dict)
    label: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {known}"
            )
        dynamics = self.dynamics
        if dynamics:
            from ..dynamics.events import Timeline

            if isinstance(dynamics, Timeline):
                object.__setattr__(self, "dynamics", dynamics.to_json())
            else:
                Timeline.from_json(dynamics)    # eager validation

    # -- identity --------------------------------------------------------------

    def identity(self) -> dict:
        """The execution-relevant fields as a JSON-able dict."""
        out: dict[str, Any] = {}
        for name in _IDENTITY_FIELDS:
            value = getattr(self, name)
            out[name] = value.to_json() if isinstance(value, CcChoice) else value
        if not out["dynamics"]:
            del out["dynamics"]         # legacy hash compatibility
        return out

    def canonical(self) -> str:
        """A canonical JSON encoding of :meth:`identity` (sorted, compact)."""
        return json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))

    @property
    def spec_hash(self) -> str:
        """Stable content hash: the cache key and the on-disk file stem."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    # -- serialization ----------------------------------------------------------

    def to_json(self) -> dict:
        data = self.identity()
        data["label"] = self.label
        data["meta"] = self.meta
        return data

    @classmethod
    def from_json(cls, data: dict) -> "ScenarioSpec":
        kwargs = dict(data)
        kwargs["cc"] = CcChoice.from_json(kwargs.get("cc") or {"name": "hpcc"})
        return cls(**kwargs)

    # -- derivation -------------------------------------------------------------

    def replaced(self, **updates) -> "ScenarioSpec":
        """A copy with dotted-path updates applied.

        Top-level field names (``seed=3``, ``cc=...``) replace the field;
        dotted paths reach into dict fields without mutating the original
        (``**{"workload.load": 0.5, "config.buffer_bytes": 1_000_000}``).
        """
        field_updates: dict[str, Any] = {}
        for path, value in updates.items():
            if "." not in path:
                field_updates[path] = value
                continue
            top, rest = path.split(".", 1)
            base = field_updates.get(top, getattr(self, top))
            if not isinstance(base, dict):
                raise TypeError(f"cannot descend into non-dict field {top!r}")
            tree = copy.deepcopy(base)
            node = tree
            keys = rest.split(".")
            for key in keys[:-1]:
                node = node.setdefault(key, {})
            node[keys[-1]] = value
            field_updates[top] = tree
        return dataclasses.replace(self, **field_updates)


# -- grid expansion --------------------------------------------------------------

Axis = Sequence[dict]


def axis(path: str, values: Iterable) -> list[dict]:
    """One sweep axis: vary a single (possibly dotted) field."""
    return [{path: value} for value in values]


def cc_axis(schemes: Iterable[CcChoice]) -> list[dict]:
    """Sweep the CC scheme, labelling each spec with the scheme's display name."""
    return [{"cc": cc, "label": cc.display} for cc in schemes]


def seed_axis(seeds: Iterable[int]) -> list[dict]:
    return axis("seed", seeds)


class ScenarioGrid:
    """A cartesian product of sweep axes over one base spec.

    Each axis is a sequence of update dicts (see :meth:`ScenarioSpec.replaced`);
    an update may touch several fields at once, which is how coupled axes
    like Figure 12's flow-control choices (transport + PFC + label) stay a
    single axis.

    >>> grid = ScenarioGrid(base, cc_axis(SCHEMES), axis("seed", [1, 2, 3]))
    >>> len(grid.expand()) == len(SCHEMES) * 3
    True
    """

    def __init__(self, base: ScenarioSpec, *axes: Axis) -> None:
        self.base = base
        self.axes: tuple[Axis, ...] = tuple(axes)

    def add(self, axis_: Axis) -> "ScenarioGrid":
        self.axes = self.axes + (axis_,)
        return self

    def __len__(self) -> int:
        n = 1
        for ax in self.axes:
            n *= len(ax)
        return n

    def expand(self) -> list[ScenarioSpec]:
        """Expand the product into a flat spec list (row-major order)."""
        specs: list[ScenarioSpec] = []
        for combo in itertools.product(*self.axes):
            updates: dict[str, Any] = {}
            for part in combo:
                updates.update(part)
            specs.append(self.base.replaced(**updates))
        return specs
