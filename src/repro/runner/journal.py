"""The sweep journal: an append-only JSONL log of cell outcomes.

A sweep writes one line per landed cell — ``spec_hash``, terminal
``status`` (``ok``/``error``/``timeout``), attempts consumed and wall
time — flushed as each cell finishes, so the journal survives the sweep
process dying mid-run.  ``hpcc-repro sweep --resume journal.jsonl``
reads it back and skips every cell that already landed ``ok``; cells
recorded as ``error`` or ``timeout`` (or never recorded at all) re-run.

The journal is *accounting*, not results: the run cache holds the data,
the journal holds the ledger of what was attempted and how it went.
Identity is the content-addressed spec hash, so a resumed sweep matches
cells even if labels or metadata changed between invocations.

Lines also carry a ``sweep`` header record (first line) with the spec
count and start timestamp, purely for humans reading the file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterable, Mapping

from .results import RECORD_STATUSES, RunRecord
from .spec import ScenarioSpec

JOURNAL_FORMAT = 1


class SweepJournal:
    """Append-only JSONL ledger of sweep-cell outcomes.

    Each :meth:`record` call appends one line and flushes it to the OS
    immediately — a killed sweep leaves at worst one truncated final
    line, which :meth:`load` skips.  Re-recording a hash supersedes the
    earlier line (last-wins on load), so retries and resumed runs simply
    append.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None

    # -- writing ----------------------------------------------------------------

    def open(self, n_specs: int) -> None:
        """Start (or continue) the journal file for a sweep of n_specs."""
        self._handle = self.path.open("a")
        self._append({
            "kind": "sweep",
            "format": JOURNAL_FORMAT,
            "n_specs": n_specs,
            "started_at": time.time(),
            "pid": os.getpid(),
        })

    def record(self, record: RunRecord) -> None:
        """Land one cell outcome; flushed before returning."""
        entry = {
            "kind": "cell",
            "spec_hash": record.spec_hash,
            "label": record.spec.label,
            "status": record.status,
            "attempts": record.attempts,
            "wall_time_s": round(record.wall_time_s, 6),
            "cached": record.cached,
        }
        if record.error is not None:
            entry["error"] = {
                "type": record.error.get("type", ""),
                "message": record.error.get("message", "")[:500],
            }
        self._append(entry)

    def _append(self, entry: dict) -> None:
        if self._handle is None:
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading ----------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> dict[str, dict]:
        """Latest outcome per spec hash: ``{spec_hash: cell_entry}``.

        Tolerates a truncated final line (the crash case the journal
        exists for) and unknown statuses from future formats (dropped).
        """
        outcomes: dict[str, dict] = {}
        journal_path = Path(path)
        if not journal_path.exists():
            return outcomes
        with journal_path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue        # truncated tail of a killed sweep
                if entry.get("kind") != "cell":
                    continue
                if entry.get("status") not in RECORD_STATUSES:
                    continue
                spec_hash = entry.get("spec_hash")
                if spec_hash:
                    outcomes[spec_hash] = entry
        return outcomes

    @staticmethod
    def completed_hashes(outcomes: Mapping[str, dict]) -> set[str]:
        """Hashes whose latest outcome is ``ok`` — the resume skip-set."""
        return {
            spec_hash for spec_hash, entry in outcomes.items()
            if entry.get("status") == "ok"
        }


def plan_resume(
    specs: Iterable[ScenarioSpec], journal_path: str | Path
) -> tuple[list[ScenarioSpec], list[str], dict[str, dict]]:
    """Split a spec list against a prior journal.

    Returns ``(to_run, skipped_hashes, outcomes)``: the specs whose
    latest journalled outcome is not ``ok`` (plus any never attempted),
    the hashes being skipped, and the raw outcome map for reporting.
    """
    outcomes = SweepJournal.load(journal_path)
    done = SweepJournal.completed_hashes(outcomes)
    to_run: list[ScenarioSpec] = []
    skipped: list[str] = []
    for spec in specs:
        if spec.spec_hash in done:
            skipped.append(spec.spec_hash)
        else:
            to_run.append(spec)
    return to_run, skipped, outcomes
