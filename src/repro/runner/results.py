"""Run results: serializable records, persistence and the on-disk cache.

A :class:`RunRecord` is everything a figure needs from one scenario run,
as plain JSON-able data: FCT records, queue-length series, goodput bins,
pause intervals and assorted counters.  Reconstruction helpers hand back
the same objects the live network would have produced
(:class:`~repro.sim.flow.FctRecord`,
:class:`~repro.metrics.timeseries.GoodputTracker`,
:class:`~repro.sim.pfc.PauseTracker`), so figure post-processing is
byte-identical whether a record came from a fresh run, another process,
or the cache.

:class:`RunCache` is content-addressed on the spec hash: re-running a
figure skips every already-computed cell.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..metrics.fct import percentile
from ..metrics.timeseries import GoodputTracker
from ..sim.flow import FctRecord, FlowSpec
from ..sim.pfc import PauseInterval, PauseTracker
from .spec import ScenarioSpec

#: 2 added ``status``/``error``/``attempts`` (the fault-tolerance fields);
#: format-1 records predate them and load with the ``ok`` defaults.
RECORD_FORMAT = 2

_READABLE_FORMATS = frozenset({1, RECORD_FORMAT})

#: Terminal execution outcomes a record can carry.
RECORD_STATUSES = ("ok", "error", "timeout")


@dataclass
class RunRecord:
    """One executed scenario: the spec, its results, and run accounting."""

    spec: ScenarioSpec
    fct: list[dict] = field(default_factory=list)
    queues: dict[str, dict] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    events_processed: int = 0
    duration_ns: float = 0.0
    completed: bool = False
    wall_time_s: float = 0.0
    #: Execution outcome: ``ok`` (results are valid), ``error`` (the
    #: program raised — see ``error``), ``timeout`` (killed by the sweep
    #: watchdog).  Only ``ok`` records are ever persisted to the cache.
    status: str = "ok"
    #: For non-ok records: ``{"type", "message", "traceback"}`` — the
    #: exception class name, its message, and a short traceback summary.
    error: dict | None = None
    #: Execution attempts consumed (retries after worker deaths included).
    attempts: int = 1
    cached: bool = False        # set by the cache on a hit; not persisted
    #: Telemetry records drained from the run's obs registry; carried
    #: across the process pool for the sweep sink, not persisted.
    telemetry: list = field(default_factory=list)
    #: The original exception object (when picklable) behind an ``error``
    #: status; carried across the process pool so the ``failures="raise"``
    #: policy can re-raise it verbatim.  Never persisted.
    exception: BaseException | None = None

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash

    @property
    def label(self) -> str:
        return self.spec.label or self.spec_hash

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def failure(cls, spec: ScenarioSpec, status: str,
                exc: BaseException | None = None,
                wall_time_s: float = 0.0, attempts: int = 1,
                detail: str = "") -> "RunRecord":
        """A quarantined outcome: no results, just the failure accounting."""
        if status not in RECORD_STATUSES or status == "ok":
            raise ValueError(f"not a failure status: {status!r}")
        import traceback as _tb

        if exc is not None:
            summary = "".join(
                _tb.format_exception(type(exc), exc, exc.__traceback__,
                                     limit=8)
            )
            error = {"type": type(exc).__name__, "message": str(exc),
                     "traceback": summary}
        else:
            error = {"type": status, "message": detail, "traceback": ""}
        return cls(spec=spec, status=status, error=error, exception=exc,
                   wall_time_s=wall_time_s, attempts=attempts)

    # -- reconstruction ---------------------------------------------------------

    def fct_records(self) -> list[FctRecord]:
        """The run's finished flows as live :class:`FctRecord` objects."""
        return [
            FctRecord(
                spec=FlowSpec(
                    flow_id=r["flow_id"], src=r["src"], dst=r["dst"],
                    size=r["size"], start_time=r["start_time"], tag=r["tag"],
                ),
                start=r["start"], finish=r["finish"], ideal=r["ideal"],
            )
            for r in self.fct
        ]

    def finish_times(self) -> dict[int, float]:
        return {r["flow_id"]: r["finish"] for r in self.fct}

    def flow_ids(self, tag: str) -> list[int]:
        """Flow ids of one workload tag, in spec order."""
        ids = self.extras.get("flow_ids", {})
        return list(ids.get(tag, []))

    def goodput(self) -> GoodputTracker | None:
        """Rebuild the goodput tracker (if the run recorded one)."""
        data = self.extras.get("goodput")
        if not data:
            return None
        tracker = GoodputTracker(data["bin_ns"])
        for flow_id, bins in data["bins"].items():
            tracker._bins[int(flow_id)] = {
                int(idx): nbytes for idx, nbytes in bins.items()
            }
        return tracker

    def pause_tracker(self) -> PauseTracker:
        """Rebuild a tracker from recorded intervals (requires the
        ``pause_intervals`` measure flag; otherwise only the summary
        counters in ``extras`` are available)."""
        tracker = PauseTracker()
        for device, port, start, end in self.extras.get("pause_intervals", []):
            tracker.intervals.append(PauseInterval(device, port, start, end))
        return tracker

    def final_windows(self) -> dict[int, float | None]:
        """Per-flow sender window at the end of the run (``windows`` flag)."""
        return {
            int(flow_id): window
            for flow_id, window in self.extras.get("final_windows", {}).items()
        }

    def switch_queued_bytes(self) -> dict[int, int]:
        """Bytes still buffered in each switch when the run ended."""
        return {
            int(sw): queued
            for sw, queued in self.extras.get("switch_queued_bytes", {}).items()
        }

    def link_events(self) -> list[dict]:
        """The run's dynamics accounting, one entry per timeline event.

        Every entry carries ``type``/``time``/``fired``; link events add
        ``a``/``b`` plus — symmetrically on both ``fail_link`` *and*
        ``restore_link`` — ``packets_lost_down`` (casualties of the down
        period the event opened or closed), ``reroutes`` (ECMP groups
        changed on the packet backend, flows repathed on fluid),
        ``dests_recomputed`` and ``detected_at`` (when routing
        reconverged — ``time + detection_delay``).  ``degrade_link``
        records its factors; ``inject_burst`` its ``flow_ids``.
        """
        return list(self.extras.get("link_events", []))

    def origin_map(self) -> dict[tuple[int, int], int]:
        return {
            (device, port): peer
            for device, port, peer in self.extras.get("origin_of", [])
        }

    def queue_series(self, label: str) -> tuple[list[float], list[int]]:
        data = self.queues[label]
        return data["times"], data["qlens"]

    def all_queue_samples(self) -> list[int]:
        merged: list[int] = []
        for data in self.queues.values():
            merged.extend(data["qlens"])
        return merged

    # -- serialization ----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "format": RECORD_FORMAT,
            "spec": self.spec.to_json(),
            "spec_hash": self.spec_hash,
            "fct": self.fct,
            "queues": self.queues,
            "extras": self.extras,
            "events_processed": self.events_processed,
            "duration_ns": self.duration_ns,
            "completed": self.completed,
            "wall_time_s": self.wall_time_s,
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunRecord":
        fmt = data.get("format", 1)
        if fmt not in _READABLE_FORMATS:
            raise ValueError(f"unreadable record format {fmt!r}")
        status = data.get("status", "ok")
        if status not in RECORD_STATUSES:
            raise ValueError(f"unknown record status {status!r}")
        return cls(
            spec=ScenarioSpec.from_json(data["spec"]),
            fct=data["fct"],
            queues=data["queues"],
            extras=data["extras"],
            events_processed=data["events_processed"],
            duration_ns=data["duration_ns"],
            completed=data["completed"],
            wall_time_s=data["wall_time_s"],
            status=status,
            error=data.get("error"),
            attempts=data.get("attempts", 1),
        )

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), sort_keys=True))
        return path

    @classmethod
    def read_json(cls, path: str | Path) -> "RunRecord":
        return cls.from_json(json.loads(Path(path).read_text()))


def write_records_csv(records: Iterable[RunRecord], path: str | Path) -> int:
    """One summary row per record; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "spec_hash", "label", "program", "topology", "cc", "seed", "scale",
            "flows_finished", "completed", "duration_ns", "events_processed",
            "slowdown_p50", "slowdown_p95", "slowdown_p99", "wall_time_s",
            "cached", "status", "attempts",
        ])
        for record in records:
            slowdowns = [
                (r["finish"] - r["start"]) / r["ideal"]
                if r["ideal"] > 0 else float("inf")
                for r in record.fct
            ]
            writer.writerow([
                record.spec_hash, record.spec.label, record.spec.program,
                record.spec.topology, record.spec.cc.display, record.spec.seed,
                record.spec.scale, len(record.fct), record.completed,
                f"{record.duration_ns:.1f}", record.events_processed,
                f"{percentile(slowdowns, 50):.4f}" if slowdowns else "",
                f"{percentile(slowdowns, 95):.4f}" if slowdowns else "",
                f"{percentile(slowdowns, 99):.4f}" if slowdowns else "",
                f"{record.wall_time_s:.3f}", record.cached,
                record.status, record.attempts,
            ])
            count += 1
    return count


class RunCache:
    """Content-addressed record store: ``<root>/<spec_hash>.json``.

    Two specs that would compute the same thing share one entry; label
    and metadata changes never invalidate it (they are excluded from the
    hash — see :meth:`ScenarioSpec.identity`).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.spec_hash}.json"

    def get(self, spec: ScenarioSpec) -> RunRecord | None:
        path = self.path_for(spec)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return None             # unreadable right now: miss, keep the file
        try:
            record = RunRecord.from_json(json.loads(text))
            if not record.ok:
                raise ValueError(f"non-ok record cached: {record.status}")
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._quarantine(path)  # corrupt/alien entry: sideline it, miss
            return None
        record.spec = spec          # keep the caller's label/meta
        record.cached = True
        return record

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Rename a bad entry to ``*.corrupt`` so it stops shadowing the
        slot (a rerun can then repopulate it) but stays on disk for
        inspection.  ``cache stats`` counts the quarantined files."""
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            pass                    # racing cleaner/permission issue: leave it

    def put(self, record: RunRecord) -> Path:
        if not record.ok:
            raise ValueError(
                f"refusing to cache a {record.status!r} record "
                f"({record.spec_hash}): only ok results are reusable"
            )
        path = self.path_for(record.spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record.to_json(), sort_keys=True))
        tmp.replace(path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __contains__(self, spec: ScenarioSpec) -> bool:
        return self.path_for(spec).exists()

    def clear(self) -> int:
        removed = 0
        for pattern in ("*.json", "*.corrupt"):
            for entry in self.root.glob(pattern):
                entry.unlink()
                removed += 1
        return removed

    def stats(self) -> dict:
        """Cache accounting: entry/byte totals plus a (backend, program)
        breakdown — what ``hpcc-repro cache stats`` prints."""
        entries = 0
        total_bytes = 0
        corrupt = 0
        by_kind: dict[tuple[str, str], int] = {}
        for path in self.root.glob("*.json"):
            entries += 1
            total_bytes += path.stat().st_size
            try:
                spec = json.loads(path.read_text()).get("spec", {})
            except (json.JSONDecodeError, OSError):
                corrupt += 1
                continue
            key = (spec.get("backend", "packet"), spec.get("program", "?"))
            by_kind[key] = by_kind.get(key, 0) + 1
        return {
            "entries": entries,
            "total_bytes": total_bytes,
            "by_kind": by_kind,
            "corrupt": corrupt,
            "quarantined": sum(1 for _ in self.root.glob("*.corrupt")),
        }
