"""Fluid network state: directed links, flow paths, the routed graph.

The fluid backend abandons packets entirely.  A :class:`FluidLink` is a
directed edge carrying an *aggregate byte rate*; its egress queue is a
real number integrated forward in time (``q += (arrival - capacity) x
dt``), and its cumulative ``tx_bytes``/``rx_bytes`` counters are exactly
the registers an INT-capable switch would expose — which is how the HPCC
adapter computes Eqn (2)'s ``qlen``/``txRate`` inputs analytically
instead of reading them off packet telemetry.

Two representations of the same registers coexist:

* the **object view** (:class:`FluidLink`) — one Python object per
  directed edge, the stable surface the dynamics subsystem mutates and
  tests introspect;
* the **array view** (:class:`LinkArrays`) — a struct-of-arrays block
  (one numpy vector per register, indexed by :attr:`FluidLink.index`)
  that the vectorized engine steps.  The engine owns the arrays while
  stepping and synchronizes with the objects at event boundaries
  (``pull``/``push``), so both views always agree whenever non-engine
  code can observe them.

Paths are chosen with the same deterministic ECMP-by-hash discipline as
the packet simulator: at every switch the next hop is drawn from the
neighbours one BFS hop closer to the destination, keyed by ``(flow_id,
src, dst, node)``.  Parallel links between the same node pair are
aggregated into one fluid link with the summed capacity — fluid rates
have no notion of per-member hashing.

The graph is *live*: the network-dynamics subsystem fails, restores and
degrades individual link members mid-run.  Pooled capacities move, the
BFS distance cache invalidates, and subsequent :meth:`FluidGraph.path`
calls route over the alive subgraph only — the fluid analogue of
routing reconvergence (the engine decides *when* to recompute paths,
honouring the timeline's detection delay).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..sim.routing import ecmp_hash
from ..topology.base import Topology

__all__ = ["FluidGraph", "FluidLink", "FluidPath", "LinkArrays"]


class _Member:
    """One physical link of a (possibly parallel) node pair."""

    __slots__ = ("rate", "delay", "up")

    def __init__(self, rate: float, delay: float) -> None:
        self.rate = rate
        self.delay = delay
        self.up = True


class FluidLink:
    """One directed edge of the fluid network.

    ``queue`` only ever grows on switch egress (``is_switch_egress``);
    a host's own uplink is paced at the source, so oversubscription
    there is resolved by rate throttling, not queueing — mirroring the
    packet NIC, which never contributes INT hops either.

    ``capacity`` is the pooled rate of the pair's *up* members; a fully
    failed edge keeps its object (flows still pointing at it throttle to
    zero until the engine recomputes their paths) with capacity 0.

    ``label`` is precomputed (it used to be a per-call f-string
    property, which sat on the queue-sampling hot path) and ``index``
    is the link's fixed row in :class:`LinkArrays`.
    """

    __slots__ = (
        "a", "b", "capacity", "delay", "is_switch_egress", "buffer_bytes",
        "queue", "tx_bytes", "rx_bytes", "dropped_bytes",
        "arrival", "throttled", "scale", "label", "index",
    )

    def __init__(
        self,
        a: int,
        b: int,
        capacity: float,
        delay: float,
        is_switch_egress: bool,
        buffer_bytes: float,
    ) -> None:
        self.a = a
        self.b = b
        self.capacity = capacity        # bytes/ns (pooled over up members)
        self.delay = delay              # propagation, ns
        self.is_switch_egress = is_switch_egress
        self.buffer_bytes = buffer_bytes
        self.queue = 0.0                # bytes
        self.tx_bytes = 0.0             # cumulative bytes emitted
        self.rx_bytes = 0.0             # cumulative bytes offered
        self.dropped_bytes = 0.0        # fluid lost to overflow or link cuts
        # Per-step scratch registers (owned by the scalar engine's loop).
        self.arrival = 0.0
        self.throttled = 0.0
        self.scale = 1.0
        self.label = f"sw{a}->{b}"
        self.index = -1                 # row in LinkArrays, set by the graph

    def queue_delay(self) -> float:
        if self.capacity <= 0.0:
            return 0.0              # dead edge: queue was flushed at the cut
        return self.queue / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidLink({self.a}->{self.b} cap={self.capacity:.3f}B/ns "
            f"q={self.queue:.0f})"
        )


class FluidPath:
    """A flow's route at one instant: the links it loads, plus latency."""

    __slots__ = ("links", "int_links", "base_rtt", "mtu_latency")

    def __init__(self, links: list[FluidLink], mtu_wire: int, ack_size: int) -> None:
        self.links = links
        # INT telemetry comes from switch egress ports only, exactly as
        # in the packet simulator (hosts do not append hops).
        self.int_links = [l for l in links if l.is_switch_egress]
        # Uncontended round trip: full-MTU store-and-forward out, an
        # ACK-sized frame back — the ``Network.pair_base_rtt`` formula.
        forward = sum(l.delay + mtu_wire / l.capacity for l in links)
        backward = sum(l.delay + ack_size / l.capacity for l in links)
        self.base_rtt = forward + backward
        self.mtu_latency = forward

    def queue_delay(self) -> float:
        return sum(l.queue_delay() for l in self.links)


class LinkArrays:
    """Struct-of-arrays view of every directed link's hot registers.

    Row ``i`` belongs to ``graph.link_list[i]`` (``link.index == i``).
    The vectorized engine steps these vectors directly; ``pull`` refreshes
    them from the object view (after dynamics mutated capacities or
    flushed queues) and ``push`` writes the integrated state back so the
    object view — dynamics accounting, tests, ``total_queued_bytes`` —
    observes what the arrays computed.
    """

    __slots__ = ("links", "n", "capacity", "queue", "tx", "rx", "dropped",
                 "egress", "buffer")

    def __init__(self, links: list[FluidLink]) -> None:
        self.links = links
        self.n = len(links)
        self.egress = np.array([l.is_switch_egress for l in links], dtype=bool)
        self.buffer = np.array([l.buffer_bytes for l in links])
        self.capacity = np.empty(self.n)
        self.queue = np.empty(self.n)
        self.tx = np.empty(self.n)
        self.rx = np.empty(self.n)
        self.dropped = np.empty(self.n)
        self.pull()

    def pull(self) -> None:
        """Refresh every register from the object view."""
        for i, l in enumerate(self.links):
            self.capacity[i] = l.capacity
            self.queue[i] = l.queue
            self.tx[i] = l.tx_bytes
            self.rx[i] = l.rx_bytes
            self.dropped[i] = l.dropped_bytes

    def push(self) -> None:
        """Write the integrated registers back to the object view."""
        queue = self.queue.tolist()
        tx = self.tx.tolist()
        rx = self.rx.tolist()
        dropped = self.dropped.tolist()
        for i, l in enumerate(self.links):
            l.queue = queue[i]
            l.tx_bytes = tx[i]
            l.rx_bytes = rx[i]
            l.dropped_bytes = dropped[i]


class FluidGraph:
    """The routed fluid network built from a :class:`Topology`."""

    def __init__(self, topology: Topology, buffer_bytes: float) -> None:
        self.topology = topology
        self.links: dict[tuple[int, int], FluidLink] = {}
        # Undirected member lists keyed like ``links`` (both directions
        # share the list object, so one state flip moves both).
        self._members: dict[tuple[int, int], list[_Member]] = {}
        for spec in topology.links:
            member = _Member(spec.rate, spec.delay)
            for a, b in ((spec.a, spec.b), (spec.b, spec.a)):
                existing = self._members.get((a, b))
                if existing is not None:
                    existing.append(member)
                    self.links[(a, b)].capacity += spec.rate   # parallel pool
                else:
                    self._members[(a, b)] = [member]
                    self.links[(a, b)] = FluidLink(
                        a, b, spec.rate, spec.delay,
                        is_switch_egress=not topology.is_host(a),
                        buffer_bytes=buffer_bytes,
                    )
        # Fix the duplicated member list: both directions must share one.
        for spec in topology.links:
            self._members[(spec.b, spec.a)] = self._members[(spec.a, spec.b)]
        #: Fixed enumeration of the directed links; ``link.index`` is the
        #: row every :class:`LinkArrays` register uses for this link.
        self.link_list: list[FluidLink] = list(self.links.values())
        for i, link in enumerate(self.link_list):
            link.index = i
        self._egress_links: list[FluidLink] = [
            l for l in self.link_list if l.is_switch_egress
        ]
        self._neighbors: dict[int, list[int]] = {
            n: [] for n in range(topology.n_hosts + topology.n_switches)
        }
        for a, b in self.links:
            self._neighbors[a].append(b)
        self._dist_to: dict[int, dict[int, int]] = {}
        self._alive_neighbors: dict[int, list[int]] | None = None

    def link_arrays(self) -> LinkArrays:
        """A fresh struct-of-arrays block over :attr:`link_list`."""
        return LinkArrays(self.link_list)

    # -- dynamics ----------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the routing caches (after any member state change)."""
        self._dist_to.clear()
        self._alive_neighbors = None

    def _refresh_pair(self, a: int, b: int) -> None:
        members = self._members[(a, b)]
        capacity = sum(m.rate for m in members if m.up)
        up = [m for m in members if m.up]
        delay = up[0].delay if up else self.links[(a, b)].delay
        for key in ((a, b), (b, a)):
            link = self.links[key]
            link.capacity = capacity
            link.delay = delay

    def _flush_share(self, a: int, b: int, fraction: float) -> float:
        """Flush ``fraction`` of both directions' queues to drops.

        The fluid analogue of packets already serialized toward a cut
        fiber: the share of queued fluid attributable to the failed
        member is lost, not re-queued.
        """
        flushed = 0.0
        for key in ((a, b), (b, a)):
            link = self.links[key]
            if link.queue <= 0.0:
                continue
            lost = link.queue * fraction
            link.dropped_bytes += lost
            link.queue -= lost
            flushed += lost
        return flushed

    def fail_link(self, a: int, b: int) -> float:
        """Cut one up member of the pair; returns the bytes flushed."""
        members = self._members.get((a, b))
        if not members:
            raise LookupError(f"no link between {a} and {b}")
        old_capacity = self.links[(a, b)].capacity
        member = next((m for m in members if m.up), None)
        if member is None:
            raise LookupError(f"no up link between {a} and {b}")
        member.up = False
        flushed = 0.0
        if old_capacity > 0.0:
            flushed = self._flush_share(a, b, member.rate / old_capacity)
        self._refresh_pair(a, b)
        self.invalidate()
        return flushed

    def restore_link(self, a: int, b: int) -> None:
        """Bring the oldest failed member of the pair back up."""
        members = self._members.get((a, b))
        if not members:
            raise LookupError(f"no link between {a} and {b}")
        member = next((m for m in members if not m.up), None)
        if member is None:
            raise LookupError(f"no down link between {a} and {b}")
        member.up = True
        self._refresh_pair(a, b)
        self.invalidate()

    def degrade_link(
        self,
        a: int,
        b: int,
        rate_factor: float | None = None,
        delay_factor: float | None = None,
    ) -> None:
        """Scale the first up member's rate and/or delay in place."""
        members = self._members.get((a, b))
        if not members:
            raise LookupError(f"no link between {a} and {b}")
        member = next((m for m in members if m.up), None)
        if member is None:
            raise LookupError(f"no up link between {a} and {b}")
        if rate_factor is not None:
            member.rate *= rate_factor
        if delay_factor is not None:
            member.delay *= delay_factor
        self._refresh_pair(a, b)
        self.invalidate()

    # -- routing -----------------------------------------------------------------

    def _alive(self, a: int, b: int) -> bool:
        return self.links[(a, b)].capacity > 0.0

    def _up_neighbors(self) -> dict[int, list[int]]:
        """``node -> sorted alive peers``; rebuilt lazily per topology
        version so BFS and ECMP selection skip per-edge capacity checks."""
        alive = self._alive_neighbors
        if alive is None:
            alive = {
                node: sorted(
                    peer for peer in peers if self._alive(node, peer)
                )
                for node, peers in self._neighbors.items()
            }
            self._alive_neighbors = alive
        return alive

    def _distances(self, dst: int) -> dict[int, int]:
        dist = self._dist_to.get(dst)
        if dist is None:
            neighbors = self._up_neighbors()
            dist = {dst: 0}
            frontier = deque([dst])
            while frontier:
                node = frontier.popleft()
                d = dist[node] + 1
                for peer in neighbors[node]:
                    if peer not in dist:
                        dist[peer] = d
                        frontier.append(peer)
            self._dist_to[dst] = dist
        return dist

    def path(self, flow_id: int, src: int, dst: int,
             mtu_wire: int, ack_size: int) -> FluidPath:
        """The flow's ECMP route over the links currently up."""
        dist = self._distances(dst)
        if src not in dist:
            raise ValueError(f"no route from {src} to {dst}")
        neighbors = self._up_neighbors()
        links: list[FluidLink] = []
        node = src
        while node != dst:
            d_next = dist[node] - 1
            candidates = [
                peer for peer in neighbors[node]
                if dist.get(peer, -1) == d_next
            ]
            if not candidates:
                raise ValueError(f"no route from {src} to {dst} at {node}")
            if len(candidates) == 1:
                peer = candidates[0]
            else:
                peer = candidates[
                    ecmp_hash(flow_id, src, dst, node) % len(candidates)
                ]
            links.append(self.links[(node, peer)])
            node = peer
        return FluidPath(links, mtu_wire, ack_size)

    # -- introspection -----------------------------------------------------------

    def switch_egress_links(self) -> list[FluidLink]:
        """Every switch-egress link (cached; membership never changes)."""
        return self._egress_links

    def total_queued_bytes(self) -> dict[int, float]:
        """Bytes queued per switch (mirrors ``switch_queued_bytes``)."""
        queued: dict[int, float] = {}
        for link in self.link_list:
            if link.is_switch_egress and link.queue > 0:
                queued[link.a] = queued.get(link.a, 0.0) + link.queue
        return queued
