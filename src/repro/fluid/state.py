"""Fluid network state: directed links, flow paths, the routed graph.

The fluid backend abandons packets entirely.  A :class:`FluidLink` is a
directed edge carrying an *aggregate byte rate*; its egress queue is a
real number integrated forward in time (``q += (arrival - capacity) x
dt``), and its cumulative ``tx_bytes``/``rx_bytes`` counters are exactly
the registers an INT-capable switch would expose — which is how the HPCC
adapter computes Eqn (2)'s ``qlen``/``txRate`` inputs analytically
instead of reading them off packet telemetry.

Paths are fixed per flow, chosen with the same deterministic
ECMP-by-hash discipline as the packet simulator: at every switch the
next hop is drawn from the neighbours one BFS hop closer to the
destination, keyed by ``(flow_id, src, dst, node)``.  Parallel links
between the same node pair are aggregated into one fluid link with the
summed capacity — fluid rates have no notion of per-member hashing.
"""

from __future__ import annotations

from ..sim.routing import bfs_distances, ecmp_hash
from ..topology.base import Topology


class FluidLink:
    """One directed edge of the fluid network.

    ``queue`` only ever grows on switch egress (``is_switch_egress``);
    a host's own uplink is paced at the source, so oversubscription
    there is resolved by rate throttling, not queueing — mirroring the
    packet NIC, which never contributes INT hops either.
    """

    __slots__ = (
        "a", "b", "capacity", "delay", "is_switch_egress", "buffer_bytes",
        "queue", "tx_bytes", "rx_bytes", "dropped_bytes",
        "arrival", "throttled", "scale",
    )

    def __init__(
        self,
        a: int,
        b: int,
        capacity: float,
        delay: float,
        is_switch_egress: bool,
        buffer_bytes: float,
    ) -> None:
        self.a = a
        self.b = b
        self.capacity = capacity        # bytes/ns
        self.delay = delay              # propagation, ns
        self.is_switch_egress = is_switch_egress
        self.buffer_bytes = buffer_bytes
        self.queue = 0.0                # bytes
        self.tx_bytes = 0.0             # cumulative bytes emitted
        self.rx_bytes = 0.0             # cumulative bytes offered
        self.dropped_bytes = 0.0        # fluid lost to buffer overflow
        # Per-step scratch registers (owned by the engine's step loop).
        self.arrival = 0.0
        self.throttled = 0.0
        self.scale = 1.0

    @property
    def label(self) -> str:
        return f"sw{self.a}->{self.b}"

    def queue_delay(self) -> float:
        return self.queue / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidLink({self.a}->{self.b} cap={self.capacity:.3f}B/ns "
            f"q={self.queue:.0f})"
        )


class FluidPath:
    """A flow's fixed route: the links it loads, plus latency summaries."""

    __slots__ = ("links", "int_links", "base_rtt", "mtu_latency")

    def __init__(self, links: list[FluidLink], mtu_wire: int, ack_size: int) -> None:
        self.links = links
        # INT telemetry comes from switch egress ports only, exactly as
        # in the packet simulator (hosts do not append hops).
        self.int_links = [l for l in links if l.is_switch_egress]
        # Uncontended round trip: full-MTU store-and-forward out, an
        # ACK-sized frame back — the ``Network.pair_base_rtt`` formula.
        forward = sum(l.delay + mtu_wire / l.capacity for l in links)
        backward = sum(l.delay + ack_size / l.capacity for l in links)
        self.base_rtt = forward + backward
        self.mtu_latency = forward

    def queue_delay(self) -> float:
        return sum(l.queue / l.capacity for l in self.links)


class FluidGraph:
    """The routed fluid network built from a :class:`Topology`."""

    def __init__(self, topology: Topology, buffer_bytes: float) -> None:
        self.topology = topology
        self.links: dict[tuple[int, int], FluidLink] = {}
        for spec in topology.links:
            for a, b in ((spec.a, spec.b), (spec.b, spec.a)):
                existing = self.links.get((a, b))
                if existing is not None:
                    existing.capacity += spec.rate     # parallel links pool
                else:
                    self.links[(a, b)] = FluidLink(
                        a, b, spec.rate, spec.delay,
                        is_switch_egress=not topology.is_host(a),
                        buffer_bytes=buffer_bytes,
                    )
        self._adjacency = topology.adjacency()
        self._dist_to: dict[int, dict[int, int]] = {}

    def _distances(self, dst: int) -> dict[int, int]:
        dist = self._dist_to.get(dst)
        if dist is None:
            dist = bfs_distances(self.topology, dst)
            self._dist_to[dst] = dist
        return dist

    def path(self, flow_id: int, src: int, dst: int,
             mtu_wire: int, ack_size: int) -> FluidPath:
        """The flow's ECMP route as a list of fluid links."""
        dist = self._distances(dst)
        if src not in dist:
            raise ValueError(f"no route from {src} to {dst}")
        links: list[FluidLink] = []
        node = src
        while node != dst:
            candidates = sorted(
                peer for peer, _ in self._adjacency[node]
                if dist.get(peer, -1) == dist[node] - 1
            )
            if not candidates:
                raise ValueError(f"no route from {src} to {dst} at {node}")
            if len(candidates) == 1:
                peer = candidates[0]
            else:
                peer = candidates[
                    ecmp_hash(flow_id, src, dst, node) % len(candidates)
                ]
            links.append(self.links[(node, peer)])
            node = peer
        return FluidPath(links, mtu_wire, ack_size)

    def switch_egress_links(self) -> list[FluidLink]:
        return [l for l in self.links.values() if l.is_switch_egress]

    def total_queued_bytes(self) -> dict[int, float]:
        """Bytes queued per switch (mirrors ``switch_queued_bytes``)."""
        queued: dict[int, float] = {}
        for link in self.links.values():
            if link.is_switch_egress and link.queue > 0:
                queued[link.a] = queued.get(link.a, 0.0) + link.queue
        return queued
