"""Per-flow goodput binning shared by both fluid engines.

``FluidEngine._record_goodput`` used to spread every delivery segment
over its time bins with a Python loop — ``O(bins)`` per call, which a
single long-lived flow crossing thousands of bins (a background flow in
a millisecond-binned failover run) turns into millions of dict
operations.  The recorder keeps recording **O(1)**: a delivery is stored
as a ``(t0, t1, payload)`` segment, and the bin fill happens once, at
materialization time, as a closed-form vectorized overlap computation
(`np.add.at` over the flow's dense bin range).

The materialized shape — ``{flow_id: {bin_index: payload_bytes}}`` —
and the per-bin arithmetic (uniform rate over ``[t0, t1]``, clipped to
each bin, single-bin segments credited exactly) are identical to the
old loop, including the accumulation order of overlapping segments.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GoodputRecorder"]


class GoodputRecorder:
    """Accumulates delivery segments; bins them lazily and vectorized."""

    __slots__ = ("bin_ns", "_segments")

    def __init__(self, bin_ns: float) -> None:
        if bin_ns <= 0:
            raise ValueError(f"goodput bin must be positive, got {bin_ns}")
        self.bin_ns = bin_ns
        self._segments: dict[int, list[tuple[float, float, float]]] = {}

    def record(self, flow_id: int, t0: float, t1: float, payload: float) -> None:
        """Note ``payload`` bytes delivered uniformly over ``[t0, t1]``."""
        self._segments.setdefault(flow_id, []).append((t0, t1, payload))

    def _fill(self, segments: list[tuple[float, float, float]]) -> dict[int, float]:
        bin_ns = self.bin_ns
        t0s = np.array([s[0] for s in segments])
        t1s = np.array([s[1] for s in segments])
        pays = np.array([s[2] for s in segments])
        i0 = (t0s / bin_ns).astype(np.int64)
        i1 = (t1s / bin_ns).astype(np.int64)
        # A segment inside one bin (or degenerate in time) credits its
        # payload to that bin exactly — no rate round trip.
        single = (i0 == i1) | (t1s <= t0s)
        counts = np.where(single, 1, i1 - i0 + 1)
        total = int(counts.sum())
        starts = np.zeros(len(segments), dtype=np.int64)
        starts[1:] = np.cumsum(counts)[:-1]
        # Bin index per (segment, bin) pair, segments in recording order
        # so overlapping contributions accumulate exactly like the old
        # sequential loop did.
        local = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        idx = np.repeat(i0, counts) + local
        span = t1s - t0s
        rate = np.divide(pays, span, out=np.zeros_like(pays), where=span > 0)
        lo = np.maximum(np.repeat(t0s, counts), idx * bin_ns)
        hi = np.minimum(np.repeat(t1s, counts), (idx + 1) * bin_ns)
        vals = np.repeat(rate, counts) * np.maximum(hi - lo, 0.0)
        vals[starts[single]] = pays[single]
        base = int(idx.min())
        dense = np.zeros(int(idx.max()) - base + 1)
        np.add.at(dense, idx - base, vals)
        nz = np.flatnonzero(dense)
        return dict(zip((nz + base).tolist(), dense[nz].tolist()))

    def bins(self) -> dict[int, dict[int, float]]:
        """``{flow_id: {bin_index: bytes}}``, materialized on demand."""
        return {
            flow_id: self._fill(segments)
            for flow_id, segments in self._segments.items()
        }

    def payload(self) -> dict:
        """The ``RunRecord.extras["goodput"]`` shape."""
        return {
            "bin_ns": self.bin_ns,
            "bins": {
                str(flow_id): {str(idx): n for idx, n in bins.items()}
                for flow_id, bins in self.bins().items()
            },
        }
