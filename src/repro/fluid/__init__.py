"""Fluid-model fast path: flow-level simulation of the paper's schemes.

A second execution backend next to the packet-level simulator: per-flow
sending rates advance in RTT-granularity steps, links aggregate rates
into utilization and queue growth, and the *same* ``repro.core``
congestion-control algorithms close the loop through per-scheme adapters
(HPCC's INT inputs are computed analytically from the fluid state).

Select it per scenario with ``ScenarioSpec(backend="fluid")`` or from
the shell with ``hpcc-repro sweep --backend fluid``; see README's
"Simulation backends" for the fidelity trade-offs.
"""

from .adapters import (
    ADAPTER_FAMILIES,
    FlowProxy,
    RateAdapter,
    StepSignals,
    adapter_for,
    fluid_supported,
)
from .engine import FluidEngine, FluidFlow
from .goodput import GoodputRecorder
from .reference import ScalarFluidEngine
from .state import FluidGraph, FluidLink, FluidPath, LinkArrays

__all__ = [
    "ADAPTER_FAMILIES",
    "FluidEngine",
    "FluidFlow",
    "GoodputRecorder",
    "LinkArrays",
    "ScalarFluidEngine",
    "FluidGraph",
    "FluidLink",
    "FluidPath",
    "FlowProxy",
    "RateAdapter",
    "StepSignals",
    "adapter_for",
    "fluid_supported",
]
