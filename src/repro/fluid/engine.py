"""The fluid fast path: array-native flow-level simulation.

Where the packet engine processes one event per packet/ACK/credit, the
:class:`FluidEngine` advances the whole network one RTT at a time — and
it does so *vectorized*: every active flow lives as a row in a
struct-of-arrays block, every link as a row in
:class:`~repro.fluid.state.LinkArrays`, and the five sub-steps of the
fluid model run as numpy operations over all flows at once.

The model per step (semantics identical to the scalar reference in
:mod:`repro.fluid.reference`):

1. every active flow requests its CC-controlled rate (window-limited
   schemes request ``min(rate, W/T)``) — one ``np.minimum`` chain;
2. requested rates aggregate into per-link arrivals (``np.bincount``
   over the flows' flattened path-link rows); oversubscribed links
   throttle proportionally;
3. the throttle cascades along each flow's path (an upstream bottleneck
   shields downstream links) — an exclusive per-path prefix-min, run as
   one ``np.minimum.accumulate`` along the hop axis;
4. link queues integrate ``(arrival - capacity) x dt`` and the
   cumulative ``tx/rx`` byte registers advance — element-wise over the
   links currently touched by live flows (untouched queues freeze,
   exactly as in the scalar engine);
5. flows deliver ``achieved_rate x dt`` bytes, complete mid-step by
   interpolation, and — once per accumulated RTT — each flow's adapter
   replays one RTT of its scheme's packet events (synthetic INT ACK,
   CNP stream, RTT echo, ECN marks) against the *real* ``core/``
   algorithm, producing the next step's rate.

Paths are stored as a padded hop matrix: row ``i`` of ``_hops`` holds
flow ``i``'s link indices, right-padded with a *dummy* link row (index
``L``) whose registers are rigged so padding is arithmetically inert —
scale 1.0, queueing delay 0.0, mark probability 0.0, and arrival
contributions land on the dummy row and are discarded.  Admitting a
flow therefore writes one row; no index structures rebuild.  A small
CSR block (``_il``/``_il_off``) additionally tracks each flow's INT
telemetry links (switch egress with capacity > 0) for schemes that
read per-hop state, rebuilt whenever dynamics change capacities.

CC adapters fire once per accumulated RTT: arrival- and
event-shortened mini-steps accumulate ``elapsed``/``delivered``/
``marked`` per flow, and the adapter sees one aggregated
:class:`StepSignals` when a full ``step`` has elapsed.  That is the
cadence every scheme in the paper is defined at (the scalar engine
fires on every mini-step; on runs whose steps are never shortened the
two engines produce bit-identical trajectories).

Network dynamics run at *event boundaries*: scheduled timeline events
(link cuts, recoveries, degradations) shorten the step so they fire at
their exact instant, synchronize the array view back into the live
:class:`~repro.fluid.state.FluidGraph` objects (``push``), mutate the
graph, re-``pull``, and rebuild the flow rows.  Routing reconvergence
(:meth:`FluidEngine.reconverge`) recomputes every flow's ECMP path over
the alive subgraph — reroute decisions depend only on topology and the
deterministic ECMP hash, so they are identical across both engines.
A flow whose destination became unreachable parks (zero rate, CC
frozen) until a restore re-routes it.

Cost per step is a handful of ``O(flows x path length)`` numpy kernels
— independent of bandwidth, flow size and packet count, and amortizing
the Python interpreter across every active flow.  That is what makes
k=16 FatTrees (1024+ hosts) tractable; see
``benchmarks/bench_fluid_engine.py`` for the measured speedup over the
scalar reference.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable

import numpy as np

from ..core.base import CcEnv
from ..core.registry import get_scheme
from ..sim.ecn import EcnConfig
from ..sim.flow import FctRecord, FlowSpec
from ..sim.packet import ACK_SIZE, BASE_HEADER, INT_OVERHEAD, IntHop
from ..sim.units import MB
from ..topology.base import Topology
from .adapters import FluidClock, FlowProxy, RateAdapter, StepSignals, adapter_for
from .goodput import GoodputRecorder
from .state import FluidGraph, FluidPath

_EPS = 1e-9
_INF = float("inf")
_NO_HOPS: list[IntHop] = []


class FluidFlow:
    """One flow's fluid state: route, remaining bytes, CC adapter.

    The array engine keeps the *hot* per-step state (remaining bytes,
    rate, accumulators) in its row arrays while the flow is admitted;
    the object fields are the durable home, synchronized whenever rows
    rebuild (events, reconvergence, compaction).
    """

    __slots__ = (
        "spec", "path", "proxy", "adapter", "line_rate", "ideal",
        "remaining", "req", "achieved", "topo_version",
        "elapsed", "acc_delivered", "acc_marked", "hops",
    )

    def __init__(
        self,
        spec: FlowSpec,
        path: FluidPath | None,
        proxy: FlowProxy,
        adapter: RateAdapter,
        line_rate: float,
        ideal: float,
        wire_bytes: float,
    ) -> None:
        self.spec = spec
        self.path = path                # None while parked (no route)
        self.proxy = proxy
        self.adapter = adapter
        self.line_rate = line_rate
        self.ideal = ideal              # uncontended FCT, ns
        self.remaining = wire_bytes     # wire bytes still to deliver
        self.req = 0.0                  # requested rate this step
        self.achieved = 0.0             # post-throttle rate this step
        self.topo_version = 0           # graph version the path was built on
        self.elapsed = 0.0              # ns since the last CC adapter fire
        self.acc_delivered = 0.0        # wire bytes since the last fire
        self.acc_marked = 0.0           # mark-weighted bytes since the fire
        self.hops: list[IntHop] | None = None   # reused INT telemetry row


class FluidEngine:
    """Vectorized flow-level simulation of one topology + CC scheme.

    Mirrors the :class:`~repro.network.Network` surface where it makes
    sense: ``add_flows`` then ``run(deadline)``; results land in
    ``fct_records`` (live :class:`FctRecord` objects, same as the packet
    path's metrics hub would produce).  The scalar reference
    implementation with identical semantics is
    :class:`repro.fluid.reference.ScalarFluidEngine`.
    """

    def __init__(
        self,
        topology: Topology,
        cc_name: str = "hpcc",
        cc_params: dict | None = None,
        base_rtt: float | None = None,
        mtu: int = 1000,
        buffer_bytes: float = 32 * MB,
        step: float | None = None,
        sample_interval: float | None = None,
        goodput_bin: float | None = None,
    ) -> None:
        self.topology = topology
        self.scheme = get_scheme(cc_name)
        self.cc_params = dict(cc_params or {})
        self.mtu = mtu
        self.header = BASE_HEADER + (INT_OVERHEAD if self.scheme.needs_int else 0)
        self.wire_factor = (mtu + self.header) / mtu
        self.base_rtt = (
            base_rtt
            if base_rtt is not None
            else 1.05 * topology.base_rtt_estimate(mtu + self.header)
        )
        #: Step length: one base RTT by default — the cadence at which
        #: every scheme in the paper reacts to feedback anyway.
        self.step = step if step is not None else self.base_rtt
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")
        self.graph = FluidGraph(topology, float(buffer_bytes))
        #: Struct-of-arrays link registers (see LinkArrays): the engine
        #: owns these while stepping and push/pulls at event boundaries.
        self.arrays = self.graph.link_arrays()
        self.clock = FluidClock()
        self.now = 0.0
        self.steps = 0
        self.flow_steps = 0             # sum of active flows over steps
        self.completed = False
        self.fct_records: list[FctRecord] = []
        #: Optional :class:`repro.obs.probes.FluidProbe`; when ``None``
        #: (the default) the step loop calls ``_advance`` directly.
        self.telemetry = None
        #: Optional control-loop flight recorder (a
        #: :class:`~repro.core.base.DecisionTap`), mirroring
        #: ``Network.decision_tap``; attach before ``add_flows``.
        self.decision_tap = None
        #: Optional per-link external (foreground) rates in bytes/ns,
        #: length ``arrays.n``.  When set (only by the hybrid engine's
        #: epoch coupling), every capacity term in ``_advance`` uses the
        #: residual ``capacity - ext_rates``, and the cumulative
        #: external bytes are folded into the INT registers the CC
        #: adapters read, so background flows see the foreground as
        #: cross-traffic.  ``None`` (the default) leaves the pure-fluid
        #: step loop bit-identical.
        self.ext_rates = None
        #: Optional per-link external (foreground) queue depths in
        #: bytes, folded into ECN marking and queueing-delay estimates.
        self.ext_qlen = None
        self._ext_bytes = None          # cumulative ext_rates integral

        self._starts: list[FluidFlow] = []      # sorted by start_time
        self._next_idx = 0
        self._parked: list[FluidFlow] = []      # routeless until a restore
        self._sorted = True
        self._topo_version = 0

        # Min-heap of (time, seq, fn): drivers schedule before the run,
        # and detection-delay callbacks push more mid-run.
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._event_seq = 0

        self._needs_int = self.scheme.needs_int
        self._ecn_policy = self.scheme.default_ecn(self.cc_params)
        self._ecn_stale = True
        self._ecn_kmin = self._ecn_kmax = self._ecn_pmax = None
        self._ecn_span = None

        # -- flow rows (struct-of-arrays, padded hop matrix) -----------------
        cap = 64
        #: Padding target: one row past the real links; scale/queue-delay/
        #: mark lookups are extended with an inert entry at this index.
        self._dummy = self.arrays.n
        self._flows: list[FluidFlow] = []       # row -> flow object
        self._n = 0                             # rows in use (incl. dead)
        self._alive_n = 0                       # rows still delivering
        self._il_nnz = 0                        # CSR telemetry entries in use
        self._alive = np.zeros(cap, dtype=bool)
        self._rate = np.zeros(cap)              # CC rate (mirror of proxy)
        self._window = np.zeros(cap)            # CC window (inf if rate-only)
        self._line = np.zeros(cap)              # NIC line rate cap
        self._remaining = np.zeros(cap)         # wire bytes left
        self._brtt = np.zeros(cap)              # path base RTT
        self._elapsed = np.zeros(cap)           # ns since last CC fire
        self._dacc = np.zeros(cap)              # delivered since last fire
        self._macc = np.zeros(cap)              # mark-weighted bytes since
        self._H = 8                             # hop-matrix width
        self._hopm = np.full((cap, self._H), self._dummy, dtype=np.int64)
        self._il_off = np.zeros(cap + 1, dtype=np.int64)
        self._il = np.zeros(256, dtype=np.int64)
        self._touched_idx = np.zeros(0, dtype=np.int64)
        self._touched_eg_idx = np.zeros(0, dtype=np.int64)
        self._touched_eg_mask = np.zeros(0, dtype=bool)
        self._touched_stale = True
        #: Adapters fire when a full step has accumulated; the epsilon
        #: absorbs float dust from summing shortened mini-steps.
        self._fire_at = self.step - 1e-9
        self._sig = StepSignals(
            hops=_NO_HOPS, rtt=0.0, mark_prob=0.0,
            delivered=0.0, now=0.0, dt=0.0,
        )

        self.sample_interval = sample_interval
        self._last_sample = -_INF
        self._sample_links = (
            self.graph.switch_egress_links() if sample_interval is not None else []
        )
        self.queue_samples: dict[str, dict[str, list[float]]] = {
            link.label: {"times": [], "qlens": []} for link in self._sample_links
        }
        self._sample_idx = np.array(
            [link.index for link in self._sample_links], dtype=np.int64
        )
        self._sample_series = [
            self.queue_samples[link.label] for link in self._sample_links
        ]
        self.goodput_bin = goodput_bin
        self._goodput = (
            GoodputRecorder(goodput_bin) if goodput_bin is not None else None
        )

    # -- flow admission ----------------------------------------------------------

    def add_flow(self, spec: FlowSpec) -> None:
        line_rate = self.topology.host_rate(spec.src)
        path = self._route(spec)
        env = CcEnv(
            sim=self.clock, line_rate=line_rate, base_rtt=self.base_rtt,
            mtu=self.mtu, header=self.header,
        )
        adapter = adapter_for(self.scheme, env, self.cc_params)
        proxy = FlowProxy()
        adapter.install(proxy)
        tap = self.decision_tap
        if tap is not None:
            # Same wiring as HostNic.start_flow: attach the per-flow
            # trace and anchor it at the line-rate start state (stamped
            # at the flow's start time — fluid admits flows lazily).
            trace = tap.trace(spec.flow_id, self.scheme.name)
            adapter.algo.tap = trace
            trace.record(spec.start_time, "install", None, proxy.rate,
                         proxy.window, proxy.rate, proxy.window, {})
        bottleneck = min(line_rate, self.topology.host_rate(spec.dst))
        flow = FluidFlow(
            spec, path, proxy, adapter, line_rate,
            ideal=spec.size * self.wire_factor / bottleneck
            + (path.base_rtt if path is not None else self.base_rtt),
            wire_bytes=spec.size * self.wire_factor,
        )
        flow.topo_version = self._topo_version
        self._starts.append(flow)
        self._sorted = False

    def add_flows(self, specs) -> None:
        for spec in specs:
            self.add_flow(spec)

    def _route(self, spec: FlowSpec) -> FluidPath | None:
        try:
            return self.graph.path(
                spec.flow_id, spec.src, spec.dst,
                mtu_wire=self.mtu + self.header, ack_size=ACK_SIZE,
            )
        except ValueError:
            return None

    # -- row bookkeeping ---------------------------------------------------------

    def _ensure_rows(self, need: int) -> None:
        cap = self._rate.shape[0]
        if need <= cap:
            return
        new = max(need, cap * 2)
        for name in (
            "_rate", "_window", "_line", "_remaining", "_brtt",
            "_elapsed", "_dacc", "_macc",
        ):
            a = getattr(self, name)
            b = np.zeros(new)
            b[:cap] = a
            setattr(self, name, b)
        alive = np.zeros(new, dtype=bool)
        alive[:cap] = self._alive
        self._alive = alive
        hopm = np.full((new, self._H), self._dummy, dtype=np.int64)
        hopm[:cap] = self._hopm
        self._hopm = hopm
        il_off = np.zeros(new + 1, dtype=np.int64)
        il_off[:cap + 1] = self._il_off
        self._il_off = il_off

    def _ensure_width(self, k: int) -> None:
        if k <= self._H:
            return
        cap = self._hopm.shape[0]
        hopm = np.full((cap, k), self._dummy, dtype=np.int64)
        hopm[:, :self._H] = self._hopm
        self._hopm = hopm
        self._H = k

    def _append_row(self, flow: FluidFlow) -> None:
        """Materialize one routed flow as a row of the hop matrix."""
        n = self._n
        self._ensure_rows(n + 1)
        links = flow.path.links
        k = len(links)
        self._ensure_width(k)
        self._flows.append(flow)
        self._alive[n] = True
        self._rate[n] = flow.proxy.rate
        w = flow.proxy.window
        self._window[n] = _INF if w is None else w
        self._line[n] = flow.line_rate
        self._remaining[n] = flow.remaining
        self._brtt[n] = flow.path.base_rtt
        self._elapsed[n] = flow.elapsed
        self._dacc[n] = flow.acc_delivered
        self._macc[n] = flow.acc_marked
        row = self._hopm[n]
        row[:k] = [l.index for l in links]
        row[k:] = self._dummy
        if self._needs_int:
            # Telemetry links: switch egress with capacity > 0 (a cut
            # edge still on this flow's pre-reconvergence path returns
            # no ACKs from beyond the cut — no INT signal).
            ints = [
                l.index for l in flow.path.int_links if l.capacity > 0.0
            ]
            m = len(ints)
            il = self._il
            if self._il_nnz + m > il.shape[0]:
                grown = np.zeros(
                    max(self._il_nnz + m, il.shape[0] * 2), dtype=np.int64
                )
                grown[:self._il_nnz] = il[:self._il_nnz]
                self._il = grown
            self._il[self._il_nnz:self._il_nnz + m] = ints
            self._il_nnz += m
            self._il_off[n + 1] = self._il_nnz
            if flow.hops is None or len(flow.hops) != m:
                flow.hops = [
                    IntHop(bandwidth=0.0, ts=0.0, tx_bytes=0.0, qlen=0.0,
                           rx_bytes=0.0)
                    for _ in range(m)
                ]
        self._n = n + 1
        self._alive_n += 1

    def _save_rows(self) -> None:
        """Sync hot row state back into the flow objects."""
        n = self._n
        if not n:
            return
        rem = self._remaining[:n].tolist()
        ela = self._elapsed[:n].tolist()
        dac = self._dacc[:n].tolist()
        mac = self._macc[:n].tolist()
        for i, flow in enumerate(self._flows):
            flow.remaining = rem[i]
            flow.elapsed = ela[i]
            flow.acc_delivered = dac[i]
            flow.acc_marked = mac[i]

    def _set_rows(self, flows: list[FluidFlow]) -> None:
        """Rebuild every row array from scratch for ``flows`` (in order)."""
        self._flows = []
        self._n = 0
        self._alive_n = 0
        self._il_nnz = 0
        self._alive[:] = False
        self._il_off[0] = 0
        for flow in flows:
            self._append_row(flow)
        self._touched_stale = True

    def _rebuild_rows(self) -> None:
        """Save + rebuild the alive rows (after a capacity change)."""
        self._save_rows()
        alive = self._alive
        self._set_rows([f for i, f in enumerate(self._flows) if alive[i]])

    def _retouch(self) -> None:
        """Recompute the set of links carrying at least one live flow."""
        n = self._n
        mask = np.zeros(self._dummy + 1, dtype=bool)
        if n:
            mask[self._hopm[:n][self._alive[:n]].ravel()] = True
        ti = np.flatnonzero(mask[:self._dummy])
        self._touched_idx = ti
        em = self.arrays.egress[ti]
        self._touched_eg_mask = em
        self._touched_eg_idx = ti[em]
        self._touched_stale = False

    def _refresh_ecn(self) -> None:
        """Per-link RED parameters as vectors (rebuilt on capacity changes)."""
        count = self.arrays.n
        kmin = np.zeros(count)
        kmax = np.full(count, _INF)
        pmax = np.zeros(count)
        cache: dict[float, EcnConfig] = {}
        for link in self.graph.link_list:
            c = link.capacity
            if c <= 0.0:
                continue
            config = cache.get(c)
            if config is None:
                config = self._ecn_policy.for_rate(c)
                cache[c] = config
            i = link.index
            kmin[i] = config.kmin
            kmax[i] = config.kmax
            pmax[i] = config.pmax
        self._ecn_kmin = kmin
        self._ecn_kmax = kmax
        self._ecn_pmax = pmax
        self._ecn_span = kmax - kmin
        self._ecn_stale = False

    # -- network dynamics --------------------------------------------------------

    def schedule_event(self, at: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at simulated time ``at`` (an exact step boundary).

        Events fire in time order (ties in registration order); like the
        packet path, events beyond the end of the run never fire.
        Scheduling from inside an event callback is allowed — that is how
        detection delays work.
        """
        heapq.heappush(self._events, (at, self._event_seq, fn))
        self._event_seq += 1

    def fail_link(self, a: int, b: int) -> float:
        """Cut one member of the pair; capacity pools down immediately.

        Returns the queued bytes flushed (the in-flight casualty
        estimate).  Paths are *not* recomputed — call :meth:`reconverge`
        when routing detects the change.
        """
        self.arrays.push()
        flushed = self.graph.fail_link(a, b)
        self.arrays.pull()
        self._rebuild_rows()
        self._ecn_stale = True
        return flushed

    def restore_link(self, a: int, b: int) -> None:
        self.arrays.push()
        self.graph.restore_link(a, b)
        self.arrays.pull()
        self._rebuild_rows()
        self._ecn_stale = True

    def degrade_link(
        self, a: int, b: int,
        rate_factor: float | None = None,
        delay_factor: float | None = None,
    ) -> None:
        self.arrays.push()
        self.graph.degrade_link(
            a, b, rate_factor=rate_factor, delay_factor=delay_factor
        )
        self.arrays.pull()
        self._rebuild_rows()
        self._ecn_stale = True

    def reconverge(self) -> int:
        """Recompute every in-flight and pending flow's path.

        The fluid analogue of routing reconvergence: active flows pick up
        their post-change ECMP route (deterministic hash, so a restored
        trunk gets its old flows back), parked flows re-admit if a route
        reappeared, and newly routeless flows park.  Returns the number
        of flows whose path changed (the reroute count) — a function of
        topology and the ECMP hash only, hence identical to the scalar
        reference engine's.
        """
        self._topo_version += 1
        self.graph.invalidate()
        self._ecn_stale = True
        self._save_rows()
        rerouted = 0
        still_active: list[FluidFlow] = []
        parked: list[FluidFlow] = []
        alive = self._alive
        for i, flow in enumerate(self._flows):
            if not alive[i]:
                continue
            old_links = None if flow.path is None else flow.path.links
            flow.path = self._route(flow.spec)
            flow.topo_version = self._topo_version
            if flow.path is None:
                parked.append(flow)
                rerouted += 1
            else:
                if old_links is None or flow.path.links != old_links:
                    rerouted += 1
                still_active.append(flow)
        for flow in self._parked:
            flow.path = self._route(flow.spec)
            flow.topo_version = self._topo_version
            if flow.path is None:
                parked.append(flow)
            else:
                rerouted += 1
                still_active.append(flow)
        self._parked = parked
        self._set_rows(still_active)
        return rerouted

    # -- the step loop -----------------------------------------------------------

    def run(self, deadline: float) -> bool:
        """Advance until every flow finished or ``deadline`` (ns) hits.

        Returns True when all flows completed.  Steps are ``self.step``
        long, shortened to land exactly on the next flow arrival or the
        next scheduled dynamics event, so both are honoured precisely.
        """
        if not self._sorted:
            self._starts.sort(key=lambda f: (f.spec.start_time, f.spec.flow_id))
            self._sorted = True
        starts = self._starts
        events = self._events
        probe = self.telemetry
        while True:
            # Fire dynamics events that are due.
            while events and events[0][0] <= self.now + _EPS:
                heapq.heappop(events)[2]()
            # Admit flows that are due (on the current topology).
            while (
                self._next_idx < len(starts)
                and starts[self._next_idx].spec.start_time <= self.now + _EPS
            ):
                flow = starts[self._next_idx]
                self._next_idx += 1
                if flow.topo_version != self._topo_version:
                    flow.path = self._route(flow.spec)
                    flow.topo_version = self._topo_version
                if flow.path is None:
                    self._parked.append(flow)
                else:
                    self._append_row(flow)
                    self._touched_stale = True
            if self.now >= deadline - _EPS:
                break
            next_start = (
                starts[self._next_idx].spec.start_time
                if self._next_idx < len(starts) else None
            )
            next_event = events[0][0] if events else None
            if not self._alive_n:
                if not self._parked and self._next_idx >= len(starts):
                    # Every flow finished: stop here, leaving later
                    # timeline events unfired — the packet path's
                    # run_until_done semantics (fired=False accounting).
                    break
                # Idle (or fully parked): fast-forward to whatever can
                # change the world next; nothing left means we are done
                # (parked flows with no pending restore can never finish).
                targets = [t for t in (next_start, next_event) if t is not None]
                if not targets:
                    break
                target = min(targets)
                if target >= deadline:
                    break
                if target > self.now:
                    self.now = target
                    self.clock.now = self.now
                continue
            dt = self.step
            if next_start is not None:
                dt = min(dt, next_start - self.now)
            if next_event is not None:
                dt = min(dt, next_event - self.now)
            dt = min(dt, deadline - self.now)
            if dt <= _EPS:
                dt = _EPS
            if probe is None:
                self._advance(dt)
            else:
                kernel_t0 = time.perf_counter()
                self._advance(dt)
                probe.record_step(self, time.perf_counter() - kernel_t0)
        self.completed = (
            not self._alive_n and not self._parked
            and self._next_idx >= len(starts)
        )
        self.arrays.push()
        return self.completed

    def _advance(self, dt: float) -> None:
        if self._touched_stale:
            self._retouch()
        A = self.arrays
        L = self._dummy
        n = self._n
        alive = self._alive[:n]
        hopm = self._hopm[:n]
        remaining = self._remaining[:n]
        n_active = self._alive_n

        # 1. requested rates (window-limited schemes pace at W/T).
        req = np.minimum(self._rate[:n], self._window[:n] / self.base_rtt)
        np.minimum(req, self._line[:n], out=req)
        req *= alive
        # 2. per-link offered arrivals -> proportional throttle factors.
        #    Row-major ravel order means per-link accumulation order is
        #    flow-major — the same order as the scalar engine's loops.
        # Effective capacity: pure-fluid runs keep ``A.capacity`` itself
        # (``ext_rates is None`` — same array object, bit-identical);
        # under hybrid coupling the background half sees only the
        # residual left over by measured foreground rates, floored at 1%
        # of line rate so a saturated link throttles instead of dividing
        # by zero.
        ext = self.ext_rates
        if ext is None:
            cap = A.capacity
        else:
            cap = np.maximum(A.capacity - ext[:L], 0.01 * A.capacity)
            if self._ext_bytes is None:
                self._ext_bytes = np.zeros(L)
            self._ext_bytes += ext[:L] * dt
        flat = hopm.ravel()
        req_h = np.broadcast_to(req[:, None], hopm.shape)
        arrival = np.bincount(flat, weights=req_h.ravel(), minlength=L + 1)
        scale = np.ones(L + 1)
        over = arrival[:L] > cap
        np.divide(cap, arrival[:L], out=scale[:L], where=over)
        # 3. cascade the throttle along each path (upstream bottlenecks
        #    shield downstream links): exclusive prefix-min per row.
        sc = scale[hopm]
        cum = np.minimum.accumulate(sc, axis=1)
        w = np.empty_like(cum)
        w[:, 0] = req
        np.multiply(cum[:, :-1], req[:, None], out=w[:, 1:])
        achieved = req * cum[:, -1]
        throttled = np.bincount(flat, weights=w.ravel(), minlength=L + 1)
        # 4. integrate link state on the touched subset (untouched queues
        #    freeze, matching the scalar engine).  Only switch egress
        #    queues grow: a host's own uplink is paced at the source, so
        #    it never queues or drops — matching the packet NIC, which
        #    contributes no INT hop either.
        ti = self._touched_idx
        te = self._touched_eg_idx
        em = self._touched_eg_mask
        inflow = throttled[ti] * dt
        qt = A.queue[ti]
        tx = qt + inflow
        np.minimum(tx, cap[ti] * dt, out=tx)
        A.tx[ti] += tx
        A.rx[ti] += inflow
        q = qt[em] + inflow[em] - tx[em]
        buf = A.buffer[te]
        excess = q - buf
        over_b = excess > 0.0
        if over_b.any():
            A.dropped[te[over_b]] += excess[over_b]
            q[over_b] = buf[over_b]
        q[q <= _EPS] = 0.0
        A.queue[te] = q
        # 5. deliver bytes; complete by interpolation; accumulate CC
        #    signals and fire adapters whose RTT window filled up.
        start_t = self.now
        self.now = start_t + dt
        self.clock.now = self.now
        delivered = achieved * dt
        done = delivered >= (remaining - 1e-6)
        done &= alive
        extq = self.ext_qlen
        qc = A.queue if extq is None else A.queue + extq[:L]
        qdiv = np.zeros(L + 1)
        np.divide(qc, cap, out=qdiv[:L], where=cap > 0.0)
        qdelay = qdiv[hopm].sum(axis=1)
        goodput = self._goodput
        flows = self._flows
        any_done = done.any()
        if any_done:
            idxs = np.flatnonzero(done)
            ach_l = achieved[idxs].tolist()
            rem_l = remaining[idxs].tolist()
            qd_l = qdelay[idxs].tolist()
            brtt_l = self._brtt[idxs].tolist()
            for i, ach, rem, qd, brtt in zip(
                idxs.tolist(), ach_l, rem_l, qd_l, brtt_l
            ):
                flow = flows[i]
                t_send = rem / ach if ach > 0 else dt
                if goodput is not None and rem > 0:
                    goodput.record(
                        flow.spec.flow_id, start_t, start_t + t_send,
                        rem / self.wire_factor,
                    )
                flow.remaining = 0.0
                flow.proxy.done = True
                self.fct_records.append(FctRecord(
                    spec=flow.spec, start=flow.spec.start_time,
                    finish=start_t + t_send + brtt + qd, ideal=flow.ideal,
                ))
            alive[idxs] = False
            self._alive_n -= idxs.size
            self._touched_stale = True
        remaining -= delivered
        if any_done:
            remaining[idxs] = 0.0
        if goodput is not None:
            rows = np.flatnonzero(alive & (delivered > 0))
            if rows.size:
                d_l = delivered[rows].tolist()
                for i, d in zip(rows.tolist(), d_l):
                    goodput.record(
                        flows[i].spec.flow_id, start_t, self.now,
                        d / self.wire_factor,
                    )
        # CC accumulators: elapsed time, delivered and mark-weighted
        # bytes per flow; fire adapters once a full step accumulated.
        elapsed = self._elapsed[:n]
        dacc = self._dacc[:n]
        macc = self._macc[:n]
        first = elapsed == 0.0          # single-mini-step window so far
        elapsed += dt
        dacc += delivered
        mark_flow = None
        if self._ecn_policy is not None:
            if self._ecn_stale:
                self._refresh_ecn()
            one_minus = np.ones(L + 1)
            p = np.divide(
                self._ecn_pmax * (qc - self._ecn_kmin), self._ecn_span,
                out=np.zeros(L), where=self._ecn_span > 0.0,
            )
            p[qc <= self._ecn_kmin] = 0.0
            p[qc >= self._ecn_kmax] = 1.0
            np.subtract(1.0, p, out=one_minus[:L])
            # Host links and dead links carry p == 0, so the product
            # over *all* path hops equals the scalar engine's product
            # over telemetry links only (1.0 factors are exact).
            mark_flow = 1.0 - one_minus[hopm].prod(axis=1)
            macc += mark_flow * delivered
        fire = alive & (elapsed >= self._fire_at)
        if fire.any():
            self._fire(
                np.flatnonzero(fire), qdelay, mark_flow, first,
                elapsed, dacc, macc,
            )
        self.steps += 1
        self.flow_steps += n_active
        if (
            self.sample_interval is not None
            and self.now - self._last_sample >= self.sample_interval
        ):
            self._last_sample = self.now
            qv = A.queue[self._sample_idx].tolist()
            for series, qlen in zip(self._sample_series, qv):
                series["times"].append(self.now)
                series["qlens"].append(qlen)
        # Compact dead rows away once they dominate the arrays.
        dead = self._n - self._alive_n
        if dead >= 64 and dead * 2 >= self._n:
            self._rebuild_rows()

    def _fire(
        self,
        fidx: np.ndarray,
        qdelay: np.ndarray,
        mark_flow: np.ndarray | None,
        first: np.ndarray,
        elapsed: np.ndarray,
        dacc: np.ndarray,
        macc: np.ndarray,
    ) -> None:
        """Replay one accumulated RTT through each fired flow's adapter.

        ``sig.mark_prob`` is the delivered-weighted mean mark probability
        over the window; for a single-mini-step window it is the step's
        instantaneous value, bit-identical to the scalar engine's.
        """
        A = self.arrays
        flows = self._flows
        now = self.now
        fl = fidx.tolist()
        rtt_l = (self._brtt[fidx] + qdelay[fidx]).tolist()
        del_l = dacc[fidx].tolist()
        dt_l = elapsed[fidx].tolist()
        if mark_flow is not None:
            fd = dacc[fidx]
            mark_l = np.where(
                first[fidx],
                mark_flow[fidx],
                np.divide(
                    macc[fidx], fd, out=np.zeros(fidx.size), where=fd > 0.0
                ),
            ).tolist()
        else:
            mark_l = None
        needs_int = self._needs_int
        if needs_int:
            # Gather only the fired flows' telemetry links (the full CSR
            # block also spans dead and not-yet-firing rows).
            off0 = self._il_off[fidx]
            cnt = self._il_off[fidx + 1] - off0
            bases = np.cumsum(cnt) - cnt
            total = int(cnt.sum())
            pos = (
                np.arange(total, dtype=np.int64)
                - np.repeat(bases, cnt) + np.repeat(off0, cnt)
            )
            ilv = self._il[pos]
            cap_l = A.capacity[ilv].tolist()
            txv = A.tx[ilv]
            rxv = A.rx[ilv]
            qv = A.queue[ilv]
            # Hybrid coupling: the adapters' INT view folds the
            # foreground share in, exactly as packet switches fold the
            # background into their stamps — both CC populations then
            # react to the *combined* utilization.
            if self._ext_bytes is not None:
                extb = self._ext_bytes[ilv]
                txv = txv + extb
                rxv = rxv + extb
            if self.ext_qlen is not None:
                qv = qv + self.ext_qlen[ilv]
            tx_l = txv.tolist()
            q_l = qv.tolist()
            rx_l = rxv.tolist()
            bases_l = bases.tolist()
        sig = self._sig
        sig.now = now
        for k, i in enumerate(fl):
            flow = flows[i]
            if needs_int:
                hops = flow.hops
                base = bases_l[k]
                for h, hop in enumerate(hops):
                    j = base + h
                    hop.bandwidth = cap_l[j]
                    hop.ts = now
                    hop.tx_bytes = tx_l[j]
                    hop.qlen = q_l[j]
                    hop.rx_bytes = rx_l[j]
                sig.hops = hops
            else:
                sig.hops = _NO_HOPS
            sig.rtt = rtt_l[k]
            sig.mark_prob = mark_l[k] if mark_l is not None else 0.0
            sig.delivered = del_l[k]
            sig.dt = dt_l[k]
            flow.adapter.update(flow.proxy, sig)
        self._rate[fidx] = [flows[i].proxy.rate for i in fl]
        win = []
        for i in fl:
            w = flows[i].proxy.window
            win.append(_INF if w is None else w)
        self._window[fidx] = win
        elapsed[fidx] = 0.0
        dacc[fidx] = 0.0
        macc[fidx] = 0.0

    # -- results -----------------------------------------------------------------

    def ideal_fct(self, spec: FlowSpec) -> float:
        """Uncontended FCT, the packet path's formula: line-rate transmit
        plus the pair's base RTT (store-and-forward out, ACK back).
        Admitted flows carry this precomputed as ``FluidFlow.ideal``."""
        rate = min(
            self.topology.host_rate(spec.src), self.topology.host_rate(spec.dst)
        )
        path = self.graph.path(
            spec.flow_id, spec.src, spec.dst,
            mtu_wire=self.mtu + self.header, ack_size=ACK_SIZE,
        )
        return spec.size * self.wire_factor / rate + path.base_rtt

    @property
    def goodput_bins(self) -> dict[int, dict[int, float]]:
        return self._goodput.bins() if self._goodput is not None else {}

    def goodput_payload(self) -> dict | None:
        """The recorded goodput bins in ``RunRecord.extras`` shape."""
        if self._goodput is None:
            return None
        return self._goodput.payload()

    def dropped_bytes(self) -> float:
        self.arrays.push()
        return sum(l.dropped_bytes for l in self.graph.links.values())

    def switch_queued_bytes(self) -> dict[int, float]:
        self.arrays.push()
        return self.graph.total_queued_bytes()
