"""The fluid fast path: flow-level simulation in RTT-granularity steps.

Where the packet engine processes one event per packet/ACK/credit, the
:class:`FluidEngine` advances the whole network one RTT at a time:

1. every active flow requests its CC-controlled rate (window-limited
   schemes request ``min(rate, W/T)``);
2. requested rates aggregate into per-link arrivals; oversubscribed
   links throttle proportionally, and the throttle cascades along each
   flow's path (an upstream bottleneck shields downstream links);
3. link queues integrate ``(arrival - capacity) x dt``, and the
   cumulative ``tx/rx`` byte registers advance — the same quantities an
   INT switch reports;
4. flows deliver ``achieved_rate x dt`` bytes and complete mid-step by
   interpolation;
5. each surviving flow's adapter replays one RTT of its scheme's packet
   events (synthetic INT ACK, CNP stream, RTT echo, ECN marks) against
   the *real* ``core/`` algorithm, producing next step's rate.

Cost per step is ``O(sum of active path lengths)`` — independent of
bandwidth, flow size and packet count, which is what buys the orders of
magnitude on Figure-11-sized fabrics.  The trade-offs (no PFC, no
per-packet loss/retransmission, smoothed sub-RTT transients) are listed
in README's "Simulation backends".
"""

from __future__ import annotations

from ..core.base import CcEnv
from ..core.registry import get_scheme
from ..sim.ecn import EcnConfig
from ..sim.flow import FctRecord, FlowSpec
from ..sim.packet import ACK_SIZE, BASE_HEADER, INT_OVERHEAD, IntHop
from ..sim.units import MB
from ..topology.base import Topology
from .adapters import FluidClock, FlowProxy, RateAdapter, StepSignals, adapter_for
from .state import FluidGraph, FluidPath

_EPS = 1e-9


class FluidFlow:
    """One flow's fluid state: route, remaining bytes, CC adapter."""

    __slots__ = (
        "spec", "path", "proxy", "adapter", "line_rate", "ideal",
        "remaining", "req", "achieved",
    )

    def __init__(
        self,
        spec: FlowSpec,
        path: FluidPath,
        proxy: FlowProxy,
        adapter: RateAdapter,
        line_rate: float,
        ideal: float,
        wire_bytes: float,
    ) -> None:
        self.spec = spec
        self.path = path
        self.proxy = proxy
        self.adapter = adapter
        self.line_rate = line_rate
        self.ideal = ideal              # uncontended FCT, ns
        self.remaining = wire_bytes     # wire bytes still to deliver
        self.req = 0.0                  # requested rate this step
        self.achieved = 0.0             # post-throttle rate this step


class FluidEngine:
    """Flow-level simulation of one topology + CC scheme.

    Mirrors the :class:`~repro.network.Network` surface where it makes
    sense: ``add_flows`` then ``run(deadline)``; results land in
    ``fct_records`` (live :class:`FctRecord` objects, same as the packet
    path's metrics hub would produce).
    """

    def __init__(
        self,
        topology: Topology,
        cc_name: str = "hpcc",
        cc_params: dict | None = None,
        base_rtt: float | None = None,
        mtu: int = 1000,
        buffer_bytes: float = 32 * MB,
        step: float | None = None,
        sample_interval: float | None = None,
    ) -> None:
        self.topology = topology
        self.scheme = get_scheme(cc_name)
        self.cc_params = dict(cc_params or {})
        self.mtu = mtu
        self.header = BASE_HEADER + (INT_OVERHEAD if self.scheme.needs_int else 0)
        self.wire_factor = (mtu + self.header) / mtu
        self.base_rtt = (
            base_rtt
            if base_rtt is not None
            else 1.05 * topology.base_rtt_estimate(mtu + self.header)
        )
        #: Step length: one base RTT by default — the cadence at which
        #: every scheme in the paper reacts to feedback anyway.
        self.step = step if step is not None else self.base_rtt
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")
        self.graph = FluidGraph(topology, float(buffer_bytes))
        self.clock = FluidClock()
        self.now = 0.0
        self.steps = 0
        self.flow_steps = 0             # sum of active flows over steps
        self.completed = False
        self.fct_records: list[FctRecord] = []

        self._starts: list[FluidFlow] = []      # sorted by start_time
        self._next_idx = 0
        self._active: list[FluidFlow] = []
        self._sorted = True

        ecn_policy = self.scheme.default_ecn(self.cc_params)
        self._ecn_policy = ecn_policy
        self._ecn_configs: dict[int, EcnConfig] = {}

        self.sample_interval = sample_interval
        self._last_sample = -float("inf")
        self._sample_links = (
            self.graph.switch_egress_links() if sample_interval is not None else []
        )
        self.queue_samples: dict[str, dict[str, list[float]]] = {
            link.label: {"times": [], "qlens": []} for link in self._sample_links
        }

    # -- flow admission ----------------------------------------------------------

    def add_flow(self, spec: FlowSpec) -> None:
        line_rate = self.topology.host_rate(spec.src)
        path = self.graph.path(
            spec.flow_id, spec.src, spec.dst,
            mtu_wire=self.mtu + self.header, ack_size=ACK_SIZE,
        )
        env = CcEnv(
            sim=self.clock, line_rate=line_rate, base_rtt=self.base_rtt,
            mtu=self.mtu, header=self.header,
        )
        adapter = adapter_for(self.scheme, env, self.cc_params)
        proxy = FlowProxy()
        adapter.install(proxy)
        bottleneck = min(line_rate, self.topology.host_rate(spec.dst))
        self._starts.append(FluidFlow(
            spec, path, proxy, adapter, line_rate,
            ideal=spec.size * self.wire_factor / bottleneck + path.base_rtt,
            wire_bytes=spec.size * self.wire_factor,
        ))
        self._sorted = False

    def add_flows(self, specs) -> None:
        for spec in specs:
            self.add_flow(spec)

    # -- the step loop -----------------------------------------------------------

    def run(self, deadline: float) -> bool:
        """Advance until every flow finished or ``deadline`` (ns) hits.

        Returns True when all flows completed.  Steps are ``self.step``
        long, shortened to land exactly on the next flow arrival so
        start times are honoured precisely.
        """
        if not self._sorted:
            self._starts.sort(key=lambda f: (f.spec.start_time, f.spec.flow_id))
            self._sorted = True
        starts = self._starts
        while self._active or self._next_idx < len(starts):
            if not self._active:
                nxt = starts[self._next_idx].spec.start_time
                if nxt >= deadline:
                    break
                if nxt > self.now:
                    self.now = nxt              # idle-period fast-forward
            if self.now >= deadline - _EPS:
                break
            while (
                self._next_idx < len(starts)
                and starts[self._next_idx].spec.start_time <= self.now + _EPS
            ):
                self._active.append(starts[self._next_idx])
                self._next_idx += 1
            dt = self.step
            if self._next_idx < len(starts):
                dt = min(dt, starts[self._next_idx].spec.start_time - self.now)
            dt = min(dt, deadline - self.now)
            if dt <= _EPS:
                dt = _EPS
            self._advance(dt)
        self.completed = not self._active and self._next_idx >= len(starts)
        return self.completed

    def _advance(self, dt: float) -> None:
        active = self._active
        # 1. requested rates (window-limited schemes pace at W/T).
        for f in active:
            r = f.proxy.rate
            w = f.proxy.window
            if w is not None:
                paced = w / self.base_rtt
                if paced < r:
                    r = paced
            if r > f.line_rate:
                r = f.line_rate
            f.req = r
        # 2. per-link offered arrivals -> proportional throttle factors.
        touched: dict[int, object] = {}
        for f in active:
            for link in f.path.links:
                key = id(link)
                if key not in touched:
                    touched[key] = link
                    link.arrival = 0.0
                    link.throttled = 0.0
                link.arrival += f.req
        for link in touched.values():
            link.scale = (
                1.0 if link.arrival <= link.capacity
                else link.capacity / link.arrival
            )
        # 3. cascade the throttle along each path (upstream bottlenecks
        #    shield downstream links) and pin each flow's achieved rate.
        for f in active:
            s = 1.0
            req = f.req
            for link in f.path.links:
                link.throttled += req * s
                if link.scale < s:
                    s = link.scale
            f.achieved = req * s
        # 4. integrate link state.  Only switch egress queues: a host's
        #    own uplink is paced at the source (excess was throttled in
        #    step 2/3), so it never queues or drops — matching the
        #    packet NIC, which contributes no INT hop either.
        for link in touched.values():
            inflow = link.throttled * dt
            tx = link.queue + inflow
            cap = link.capacity * dt
            if tx > cap:
                tx = cap
            link.tx_bytes += tx
            link.rx_bytes += inflow
            if not link.is_switch_egress:
                continue
            q = link.queue + inflow - tx
            if q > link.buffer_bytes:
                link.dropped_bytes += q - link.buffer_bytes
                q = link.buffer_bytes
            link.queue = q if q > _EPS else 0.0
        # 5. deliver bytes; complete by interpolation; update CC.
        start_t = self.now
        self.now = start_t + dt
        self.clock.now = self.now
        survivors: list[FluidFlow] = []
        for f in active:
            delivered = f.achieved * dt
            if delivered >= f.remaining - 1e-6:
                t_send = f.remaining / f.achieved if f.achieved > 0 else dt
                finish = (
                    start_t + t_send
                    + f.path.base_rtt + f.path.queue_delay()
                )
                f.remaining = 0.0
                f.proxy.done = True
                self.fct_records.append(FctRecord(
                    spec=f.spec, start=f.spec.start_time, finish=finish,
                    ideal=f.ideal,
                ))
            else:
                f.remaining -= delivered
                survivors.append(f)
        self._active = survivors
        for f in survivors:
            f.adapter.update(f.proxy, self._signals(f, dt))
        self.steps += 1
        self.flow_steps += len(active)
        if (
            self.sample_interval is not None
            and self.now - self._last_sample >= self.sample_interval
        ):
            self._last_sample = self.now
            for link in self._sample_links:
                series = self.queue_samples[link.label]
                series["times"].append(self.now)
                series["qlens"].append(link.queue)

    # -- per-flow feedback -------------------------------------------------------

    def _signals(self, f: FluidFlow, dt: float) -> StepSignals:
        delivered = f.achieved * dt
        hops: list[IntHop] = []
        if self.scheme.needs_int:
            hops = [
                IntHop(
                    bandwidth=link.capacity, ts=self.now,
                    tx_bytes=link.tx_bytes, qlen=link.queue,
                    rx_bytes=link.rx_bytes,
                )
                for link in f.path.int_links
            ]
        mark_prob = 0.0
        if self._ecn_policy is not None:
            clear = 1.0
            for link in f.path.int_links:
                key = id(link)
                config = self._ecn_configs.get(key)
                if config is None:
                    config = self._ecn_policy.for_rate(link.capacity)
                    self._ecn_configs[key] = config
                p = _marking_probability(config, link.queue)
                if p > 0.0:
                    clear *= 1.0 - p
            mark_prob = 1.0 - clear
        rtt = f.path.base_rtt + f.path.queue_delay()
        return StepSignals(
            hops=hops, rtt=rtt, mark_prob=mark_prob,
            delivered=delivered, now=self.now, dt=dt,
        )

    # -- results -----------------------------------------------------------------

    def ideal_fct(self, spec: FlowSpec) -> float:
        """Uncontended FCT, the packet path's formula: line-rate transmit
        plus the pair's base RTT (store-and-forward out, ACK back).
        Admitted flows carry this precomputed as ``FluidFlow.ideal``."""
        rate = min(
            self.topology.host_rate(spec.src), self.topology.host_rate(spec.dst)
        )
        path = self.graph.path(
            spec.flow_id, spec.src, spec.dst,
            mtu_wire=self.mtu + self.header, ack_size=ACK_SIZE,
        )
        return spec.size * self.wire_factor / rate + path.base_rtt

    def dropped_bytes(self) -> float:
        return sum(l.dropped_bytes for l in self.graph.links.values())

    def switch_queued_bytes(self) -> dict[int, float]:
        return self.graph.total_queued_bytes()


def _marking_probability(config: EcnConfig, qlen: float) -> float:
    if qlen <= config.kmin:
        return 0.0
    if qlen >= config.kmax:
        return 1.0
    return config.pmax * (qlen - config.kmin) / (config.kmax - config.kmin)
