"""Fluid-backend scenario programs: the same specs, a different engine.

These mirror the ``load`` and ``flows`` programs of
``repro.runner.execute`` but run on :class:`FluidEngine`.  Everything
upstream (topology factory, workload CDF, Poisson/incast flow
generation, the dynamics timeline) and downstream (the
:class:`RunRecord` payload shape) is shared with the packet path, so
figure post-processing — slowdown buckets, queue series, goodput
trajectories, link-event accounting, summary CSVs — works unchanged on
fluid records.

Network-dynamics timelines run natively: the
:class:`~repro.dynamics.fluid.FluidDynamicsDriver` applies link events
at step boundaries and recomputes paths at detection time, so failover
scenarios execute at fluid speed instead of raising.

What fluid cannot express is zeroed or approximated openly, never faked:

* PFC pause telemetry reports zero (the model is lossless and
  pause-free by construction);
* a cut link's in-flight casualties are estimated from the flushed
  queue share (there are no packets to count);
* ``NetworkConfig`` knobs with no fluid meaning (``transport``,
  ``pfc_enabled``, ...) are recorded under ``extras["fluid_ignored_config"]``
  so a record always says what it did not model.
"""

from __future__ import annotations

from ..dynamics import FluidDynamicsDriver, burst_flow_specs
from ..obs import current as current_telemetry
from ..obs import instrument_fluid, maybe_span
from ..runner.execute import build_topology, spec_timeline, workload_cdf
from ..runner.harness import generate_load_flows
from ..runner.results import RunRecord
from ..runner.spec import ScenarioSpec
from ..sim.flow import FlowSpec
from ..sim.units import MB
from ..topology.base import Topology
from .engine import FluidEngine
from .reference import ScalarFluidEngine

#: ``config["fluid_engine"]`` values -> engine implementations.  The
#: default (key absent) is the vectorized array engine; ``"scalar"``
#: selects the loop-per-flow reference implementation — same semantics,
#: kept for equivalence testing and as the speedup baseline.
_ENGINES = {"array": FluidEngine, "scalar": ScalarFluidEngine}


def _make_engine(
    topology: Topology, spec: ScenarioSpec
) -> tuple[FluidEngine, list[str]]:
    config = dict(spec.config)
    engine_cls = _ENGINES[config.pop("fluid_engine", "array")]
    engine = engine_cls(
        topology,
        cc_name=spec.cc.name,
        cc_params=spec.cc.params,
        base_rtt=config.pop("base_rtt", None),
        mtu=config.pop("mtu", 1000),
        buffer_bytes=config.pop("buffer_bytes", 32 * MB),
        step=config.pop("fluid_step", None),
        sample_interval=spec.measure.get("sample_interval"),
        goodput_bin=config.pop("goodput_bin", None),
    )
    tel = current_telemetry()
    if tel is not None and tel.decisions is not None:
        engine.decision_tap = tel.decisions
    return engine, sorted(config)       # leftovers have no fluid meaning


def _make_driver(
    engine: FluidEngine, spec: ScenarioSpec, flow_specs: list[FlowSpec]
) -> tuple[FluidDynamicsDriver | None, list[FlowSpec]]:
    """Install the spec's dynamics timeline (if any) on the engine.

    Burst flows are materialized with the *same* helper and flow-id
    sequence as the packet program, so both backends inject the
    identical population.
    """
    timeline = spec_timeline(spec)
    if not timeline:
        return None, flow_specs
    next_id = max((fs.flow_id for fs in flow_specs), default=0) + 1
    bursts, burst_entries = burst_flow_specs(
        timeline, engine.topology.hosts, spec.seed, next_id
    )
    driver = FluidDynamicsDriver(engine, timeline, burst_entries)
    driver.install()
    return driver, flow_specs + bursts


def _timed_run(engine, deadline: float) -> bool:
    """Run the engine under the ambient telemetry context, if any.

    Attaches the :class:`~repro.obs.probes.FluidProbe` (array engine
    only — the scalar reference has no array registers to sample) and
    times the whole run as the ``run`` span; with no ambient telemetry
    this is a plain ``engine.run``.
    """
    tel = current_telemetry()
    probe = instrument_fluid(engine, tel) if tel is not None else None
    try:
        with maybe_span("run"):
            return engine.run(deadline=deadline)
    finally:
        if probe is not None:
            probe.finish(engine)
            engine.telemetry = None


def _record(
    spec: ScenarioSpec,
    engine: FluidEngine,
    completed: bool,
    ignored_config: list[str],
    driver: FluidDynamicsDriver | None = None,
) -> RunRecord:
    packet_wire = engine.mtu + engine.header
    extras: dict = {
        "n_hosts": engine.topology.n_hosts,
        "header_bytes": engine.header,
        "drops": int(engine.dropped_bytes() / packet_wire),
        "pause_count": 0,
        "pause_total_ns": 0.0,
        "switch_queued_bytes": {
            str(sw): int(q) for sw, q in engine.switch_queued_bytes().items()
        },
        "fluid_steps": engine.steps,
        "fluid_flow_steps": engine.flow_steps,
    }
    goodput = engine.goodput_payload()
    if goodput is not None:
        extras["goodput"] = goodput
    if driver is not None:
        extras["link_events"] = driver.report()
    if ignored_config:
        extras["fluid_ignored_config"] = ignored_config
    return RunRecord(
        spec=spec,
        fct=[
            {
                "flow_id": r.spec.flow_id, "src": r.spec.src, "dst": r.spec.dst,
                "size": r.spec.size, "start_time": r.spec.start_time,
                "tag": r.spec.tag, "start": r.start, "finish": r.finish,
                "ideal": r.ideal,
            }
            for r in engine.fct_records
        ],
        queues={
            label: {"times": list(s["times"]), "qlens": list(s["qlens"])}
            for label, s in engine.queue_samples.items()
        },
        extras=extras,
        events_processed=engine.steps,
        duration_ns=engine.now,
        completed=completed,
    )


def _run_load_fluid(spec: ScenarioSpec) -> RunRecord:
    """Fluid twin of the packet ``load`` program.

    The flow population (Poisson background + incast bursts) is generated
    by the *same* code with the same seed, so a packet and a fluid run of
    one spec simulate the identical offered workload.
    """
    with maybe_span("setup"):
        topology = build_topology(spec)
        engine, ignored = _make_engine(topology, spec)
        workload = spec.workload
        flows, duration = generate_load_flows(
            topology, workload_cdf(workload),
            load=workload["load"], n_flows=workload["n_flows"],
            seed=spec.seed, wire_overhead=engine.wire_factor,
            incast=workload.get("incast"),
        )
        driver, flows = _make_driver(engine, spec, flows)
        engine.add_flows(flows)
    completed = _timed_run(
        engine, deadline=duration * workload.get("deadline_factor", 2.5)
    )
    with maybe_span("collect"):
        record = _record(spec, engine, completed, ignored, driver)
        if driver is not None:
            # The load population is anonymous bg flows, but injected
            # bursts are selectable by tag — mirror the packet program.
            from ..runner.execute import _merge_burst_flow_ids

            _merge_burst_flow_ids(record.extras)
    return record


def _run_flows_fluid(spec: ScenarioSpec) -> RunRecord:
    """Fluid twin of the packet ``flows`` program, dynamics included."""
    with maybe_span("setup"):
        topology = build_topology(spec)
        engine, ignored = _make_engine(topology, spec)
        flow_specs = [
            FlowSpec(
                flow_id=i, src=entry[0], dst=entry[1], size=entry[2],
                start_time=entry[3] if len(entry) > 3 else 0.0,
                tag=entry[4] if len(entry) > 4 else "bg",
            )
            for i, entry in enumerate(spec.workload["flows"], start=1)
        ]
        driver, flow_specs = _make_driver(engine, spec, flow_specs)
        engine.add_flows(flow_specs)
    completed = _timed_run(engine, deadline=spec.workload["deadline"])
    with maybe_span("collect"):
        record = _record(spec, engine, completed, ignored, driver)
        flow_ids: dict[str, list[int]] = {}
        for fs in flow_specs:
            flow_ids.setdefault(fs.tag, []).append(fs.flow_id)
        record.extras["flow_ids"] = flow_ids
        if spec.measure.get("windows"):
            record.extras["final_windows"] = {
                str(f.spec.flow_id): f.proxy.window for f in engine._starts
            }
    return record


#: Program name -> fluid implementation.  The analytic appendix programs
#: are backend-independent; ``execute_spec`` reuses the packet entries.
FLUID_PROGRAMS = {
    "load": _run_load_fluid,
    "flows": _run_flows_fluid,
}
