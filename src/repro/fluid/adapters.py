"""Per-scheme rate-update adapters: fluid signals in, ``core/`` laws out.

The fluid engine does not reimplement any congestion-control law.  Each
adapter owns a *real* algorithm instance from ``repro.core`` (the same
classes the packet NIC installs) and, once per RTT-granularity step,
synthesizes the event that algorithm reacts to in the packet world:

* **INT family** (HPCC and its ablation variants) — a synthetic ACK whose
  ``IntHop`` stack is filled from the fluid links' ``qlen``/``tx_bytes``
  registers, so ``MeasureInflight``/``ComputeWind`` run verbatim;
* **CNP family** (DCQCN, DCQCN+win) — the NP's CNP stream derived from
  the analytic ECN marking probability, plus the RP's increase/alpha
  timers advanced in fluid time;
* **RTT family** (TIMELY, TIMELY+win) — an ACK echoing a timestamp
  ``now - rtt`` where ``rtt`` is the base RTT plus the path's queueing
  delay;
* **ECN family** (DCTCP) — two cumulative ACKs splitting the step's
  delivered bytes into marked and unmarked fractions.

The algorithms mutate a :class:`FlowProxy` exactly as they would a live
flow; the engine reads back ``rate``/``window`` and turns them into the
next step's fluid sending rate.
"""

from __future__ import annotations

from ..core.base import CcAlgorithm, CcEnv
from ..core.registry import SchemeInfo, get_scheme
from ..core.windowed import WindowedCc
from ..sim.packet import IntHop, Packet, PacketType


class FluidClock:
    """The ``env.sim`` stand-in: algorithms only read ``now`` off it.

    (The packet schemes also schedule :class:`PeriodicTask` timers in
    ``install`` — adapters never call ``install``; they replay the timers
    themselves in fluid time, so a bare clock is all the env needs.)
    """

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


class FlowProxy:
    """The ``flow`` object the CC algorithms mutate."""

    __slots__ = ("rate", "window", "snd_nxt", "done")

    def __init__(self) -> None:
        self.rate = 0.0
        self.window: float | None = None
        self.snd_nxt = 0.0
        self.done = False


class StepSignals:
    """Everything one flow's adapter needs from one fluid step."""

    __slots__ = ("hops", "rtt", "mark_prob", "delivered", "now", "dt")

    def __init__(
        self,
        hops: list[IntHop],
        rtt: float,
        mark_prob: float,
        delivered: float,
        now: float,
        dt: float,
    ) -> None:
        self.hops = hops                # per switch-egress hop telemetry
        self.rtt = rtt                  # base + queueing, ns
        self.mark_prob = mark_prob      # per-packet ECN mark probability
        self.delivered = delivered      # wire bytes delivered this step
        self.now = now
        self.dt = dt


class _SentBytes:
    """Stands in for a data packet in ``on_packet_sent`` (byte counters)."""

    __slots__ = ("wire_size",)

    def __init__(self, wire_size: float) -> None:
        self.wire_size = wire_size


class RateAdapter:
    """Base adapter: owns one live CC algorithm and its windowed-ness."""

    def __init__(self, env: CcEnv, algo: CcAlgorithm) -> None:
        self.env = env
        self.algo = algo
        self.inner = algo.inner if isinstance(algo, WindowedCc) else algo
        # One synthetic ACK, reused for every update: the fluid loop
        # hands it to the algorithm synchronously and nothing retains it
        # (HPCC snapshots INT hops via ``copy_from``), so a fresh
        # allocation per step would only feed the GC.
        self._ack_pkt = Packet(PacketType.ACK, flow_id=0, src=0, dst=0)

    def _ack(self) -> Packet:
        ack = self._ack_pkt
        ack.ecn = False
        ack.int_hops = None
        return ack

    def install(self, proxy: FlowProxy) -> None:
        """Line-rate start without touching the packet ``install`` hooks
        (which would schedule simulator timers the fluid world replays
        itself)."""
        proxy.rate = self.env.line_rate
        proxy.window = (
            self.env.bdp if isinstance(self.algo, WindowedCc) else None
        )

    def update(self, proxy: FlowProxy, sig: StepSignals) -> None:
        raise NotImplementedError


class IntAdapter(RateAdapter):
    """HPCC and variants: per-RTT synthetic ACK with an analytic INT stack."""

    def install(self, proxy: FlowProxy) -> None:
        proxy.rate = self.env.line_rate
        proxy.window = self.env.bdp             # Winit = B_nic x T

    def update(self, proxy: FlowProxy, sig: StepSignals) -> None:
        # Advancing snd_nxt before the ACK makes every step a Wc-update
        # step (ack.seq > last_update_seq): one reaction per RTT, which
        # is exactly the reference-window cadence of Algorithm 1.
        proxy.snd_nxt += max(1.0, sig.delivered)
        ack = self._ack()
        ack.seq = proxy.snd_nxt
        ack.int_hops = sig.hops
        self.algo.on_ack(proxy, ack, sig.now)


class CnpAdapter(RateAdapter):
    """DCQCN (+win): analytic CNP stream plus timers replayed in fluid time."""

    def __init__(self, env: CcEnv, algo: CcAlgorithm) -> None:
        super().__init__(env, algo)
        self._cnp_credit = 0.0
        self._inc_elapsed = 0.0
        self._alpha_elapsed = 0.0

    def install(self, proxy: FlowProxy) -> None:
        super().install(proxy)
        proxy.rate = self.inner.rc

    def update(self, proxy: FlowProxy, sig: StepSignals) -> None:
        inner = self.inner
        # NP: at most one CNP per Td window; a window yields a CNP when
        # at least one of its packets is marked, so the expected CNP
        # count over dt is (dt/Td) x P[>=1 mark among the window's pkts].
        if sig.mark_prob > 0.0 and sig.delivered > 0.0:
            pkts_per_td = (
                (sig.delivered / sig.dt) * inner.td / self.env.packet_wire_size
            )
            p_window = 1.0 - (1.0 - sig.mark_prob) ** max(pkts_per_td, 0.0)
            self._cnp_credit += (sig.dt / inner.td) * p_window
            while self._cnp_credit >= 1.0:
                self._cnp_credit -= 1.0
                self.algo.on_cnp(proxy, sig.now)
                self._inc_elapsed = 0.0         # on_cnp resets the Ti timer
        # RP byte counter: one aggregate "packet" carrying the step's bytes.
        if sig.delivered > 0.0:
            self.algo.on_packet_sent(proxy, _SentBytes(sig.delivered), sig.now)
        # RP rate-increase timer (period Ti).
        self._inc_elapsed += sig.dt
        while self._inc_elapsed >= inner.ti:
            self._inc_elapsed -= inner.ti
            inner._on_increase_timer(proxy)
        # Alpha decay timer.
        self._alpha_elapsed += sig.dt
        while self._alpha_elapsed >= inner.alpha_timer:
            self._alpha_elapsed -= inner.alpha_timer
            inner._on_alpha_timer()


class RttAdapter(RateAdapter):
    """TIMELY (+win): ACKs echoing the fluid path's analytic RTT."""

    def update(self, proxy: FlowProxy, sig: StepSignals) -> None:
        ack = self._ack()
        ack.ts_tx = sig.now - sig.rtt
        self.algo.on_ack(proxy, ack, sig.now)


class EcnAdapter(RateAdapter):
    """DCTCP: cumulative ACKs carrying the analytic marked-byte fraction."""

    def __init__(self, env: CcEnv, algo: CcAlgorithm) -> None:
        super().__init__(env, algo)
        self._acked = 0.0

    def install(self, proxy: FlowProxy) -> None:
        proxy.rate = self.env.line_rate
        proxy.window = self.env.bdp             # slow start removed (S5.1)

    def update(self, proxy: FlowProxy, sig: StepSignals) -> None:
        delivered = max(1.0, sig.delivered)
        marked = sig.mark_prob * delivered
        proxy.snd_nxt += delivered
        if marked > 0.0:
            ack = self._ack()
            ack.ack_seq = self._acked + marked
            ack.ecn = True
            self.algo.on_ack(proxy, ack, sig.now)
        ack = self._ack()
        ack.ack_seq = self._acked + delivered
        self.algo.on_ack(proxy, ack, sig.now)
        self._acked += delivered


# Scheme name -> adapter class.  Every scheme the paper's figures sweep
# has a fluid adapter; newly registered schemes must add one explicitly
# (there is no safe generic fallback for unknown dynamics).
ADAPTER_FAMILIES: dict[str, type[RateAdapter]] = {
    "hpcc": IntAdapter,
    "hpcc-perack": IntAdapter,
    "hpcc-perrtt": IntAdapter,
    "hpcc-rxrate": IntAdapter,
    "dcqcn": CnpAdapter,
    "dcqcn+win": CnpAdapter,
    "timely": RttAdapter,
    "timely+win": RttAdapter,
    "dctcp": EcnAdapter,
}


def adapter_for(scheme: SchemeInfo, env: CcEnv, params: dict) -> RateAdapter:
    """Build one flow's adapter around a fresh algorithm instance."""
    try:
        family = ADAPTER_FAMILIES[scheme.name]
    except KeyError:
        known = ", ".join(sorted(ADAPTER_FAMILIES))
        raise ValueError(
            f"scheme {scheme.name!r} has no fluid adapter; known: {known}"
        ) from None
    return family(env, scheme.make(env, params))


def fluid_supported(name: str) -> bool:
    """Whether a registered scheme can run on the fluid backend."""
    get_scheme(name)                    # raise on unknown schemes
    return name in ADAPTER_FAMILIES
