"""The scalar reference fluid engine (pre-array implementation).

This is the original per-flow/per-link Python implementation of the
fluid step loop, kept verbatim as the semantic baseline for the
array-native :class:`~repro.fluid.engine.FluidEngine`:

* the scalar-vs-array equivalence tests (``tests/test_fluid_array.py``)
  pin the vectorized engine's FCTs, goodput bins, reroute counts and
  queue trajectories against this implementation per scheme;
* ``benchmarks/bench_fluid_engine.py`` measures the array engine's
  speedup against it (the "PR 5 tip" baseline);
* ``ScenarioSpec(config={"fluid_engine": "scalar"})`` selects it for
  any run, so regressions can be bisected to the data plane.

Semantics are documented in :mod:`repro.fluid.engine`; the two engines
share :class:`~repro.fluid.engine.FluidFlow`, the adapters, the graph
and the goodput recorder, and differ only in how the five sub-steps of
``_advance`` are executed.  One deliberate difference: the scalar
engine fires every flow's CC adapter on *every* mini-step (even
arrival-shortened ones), while the array engine batches adapter fires
to once per accumulated RTT — the cadence the schemes are defined at.
On runs whose steps are never shortened the two are numerically
identical.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..core.base import CcEnv
from ..core.registry import get_scheme
from ..sim.ecn import EcnConfig
from ..sim.flow import FctRecord, FlowSpec
from ..sim.packet import ACK_SIZE, BASE_HEADER, INT_OVERHEAD, IntHop
from ..sim.units import MB
from ..topology.base import Topology
from .adapters import FluidClock, FlowProxy, StepSignals, adapter_for
from .engine import FluidFlow
from .goodput import GoodputRecorder
from .state import FluidGraph, FluidPath

_EPS = 1e-9


class ScalarFluidEngine:
    """Flow-level simulation of one topology + CC scheme (scalar loops).

    Mirrors the :class:`~repro.network.Network` surface where it makes
    sense: ``add_flows`` then ``run(deadline)``; results land in
    ``fct_records`` (live :class:`FctRecord` objects, same as the packet
    path's metrics hub would produce).
    """

    def __init__(
        self,
        topology: Topology,
        cc_name: str = "hpcc",
        cc_params: dict | None = None,
        base_rtt: float | None = None,
        mtu: int = 1000,
        buffer_bytes: float = 32 * MB,
        step: float | None = None,
        sample_interval: float | None = None,
        goodput_bin: float | None = None,
    ) -> None:
        self.topology = topology
        self.scheme = get_scheme(cc_name)
        self.cc_params = dict(cc_params or {})
        self.mtu = mtu
        self.header = BASE_HEADER + (INT_OVERHEAD if self.scheme.needs_int else 0)
        self.wire_factor = (mtu + self.header) / mtu
        self.base_rtt = (
            base_rtt
            if base_rtt is not None
            else 1.05 * topology.base_rtt_estimate(mtu + self.header)
        )
        #: Step length: one base RTT by default — the cadence at which
        #: every scheme in the paper reacts to feedback anyway.
        self.step = step if step is not None else self.base_rtt
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")
        self.graph = FluidGraph(topology, float(buffer_bytes))
        self.clock = FluidClock()
        self.now = 0.0
        self.steps = 0
        self.flow_steps = 0             # sum of active flows over steps
        self.completed = False
        self.fct_records: list[FctRecord] = []
        #: Optional control-loop flight recorder, mirroring
        #: ``FluidEngine.decision_tap``; attach before ``add_flows``.
        self.decision_tap = None

        self._starts: list[FluidFlow] = []      # sorted by start_time
        self._next_idx = 0
        self._active: list[FluidFlow] = []
        self._parked: list[FluidFlow] = []      # routeless until a restore
        self._sorted = True
        self._topo_version = 0

        # Min-heap of (time, seq, fn): drivers schedule before the run,
        # and detection-delay callbacks push more mid-run.
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._event_seq = 0

        ecn_policy = self.scheme.default_ecn(self.cc_params)
        self._ecn_policy = ecn_policy
        self._ecn_configs: dict[int, EcnConfig] = {}

        self.sample_interval = sample_interval
        self._last_sample = -float("inf")
        self._sample_links = (
            self.graph.switch_egress_links() if sample_interval is not None else []
        )
        self.queue_samples: dict[str, dict[str, list[float]]] = {
            link.label: {"times": [], "qlens": []} for link in self._sample_links
        }
        self.goodput_bin = goodput_bin
        self._goodput = (
            GoodputRecorder(goodput_bin) if goodput_bin is not None else None
        )

    # -- flow admission ----------------------------------------------------------

    def add_flow(self, spec: FlowSpec) -> None:
        line_rate = self.topology.host_rate(spec.src)
        path = self._route(spec)
        env = CcEnv(
            sim=self.clock, line_rate=line_rate, base_rtt=self.base_rtt,
            mtu=self.mtu, header=self.header,
        )
        adapter = adapter_for(self.scheme, env, self.cc_params)
        proxy = FlowProxy()
        adapter.install(proxy)
        tap = self.decision_tap
        if tap is not None:
            trace = tap.trace(spec.flow_id, self.scheme.name)
            adapter.algo.tap = trace
            trace.record(spec.start_time, "install", None, proxy.rate,
                         proxy.window, proxy.rate, proxy.window, {})
        bottleneck = min(line_rate, self.topology.host_rate(spec.dst))
        flow = FluidFlow(
            spec, path, proxy, adapter, line_rate,
            ideal=spec.size * self.wire_factor / bottleneck
            + (path.base_rtt if path is not None else self.base_rtt),
            wire_bytes=spec.size * self.wire_factor,
        )
        flow.topo_version = self._topo_version
        self._starts.append(flow)
        self._sorted = False

    def add_flows(self, specs) -> None:
        for spec in specs:
            self.add_flow(spec)

    def _route(self, spec: FlowSpec) -> FluidPath | None:
        try:
            return self.graph.path(
                spec.flow_id, spec.src, spec.dst,
                mtu_wire=self.mtu + self.header, ack_size=ACK_SIZE,
            )
        except ValueError:
            return None

    # -- network dynamics --------------------------------------------------------

    def schedule_event(self, at: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at simulated time ``at`` (an exact step boundary).

        Events fire in time order (ties in registration order); like the
        packet path, events beyond the end of the run never fire.
        Scheduling from inside an event callback is allowed — that is how
        detection delays work.
        """
        heapq.heappush(self._events, (at, self._event_seq, fn))
        self._event_seq += 1

    def fail_link(self, a: int, b: int) -> float:
        """Cut one member of the pair; capacity pools down immediately.

        Returns the queued bytes flushed (the in-flight casualty
        estimate).  Paths are *not* recomputed — call :meth:`reconverge`
        when routing detects the change.
        """
        return self.graph.fail_link(a, b)

    def restore_link(self, a: int, b: int) -> None:
        self.graph.restore_link(a, b)

    def degrade_link(
        self, a: int, b: int,
        rate_factor: float | None = None,
        delay_factor: float | None = None,
    ) -> None:
        self.graph.degrade_link(
            a, b, rate_factor=rate_factor, delay_factor=delay_factor
        )

    def reconverge(self) -> int:
        """Recompute every in-flight and pending flow's path.

        The fluid analogue of routing reconvergence: active flows pick up
        their post-change ECMP route (deterministic hash, so a restored
        trunk gets its old flows back), parked flows re-admit if a route
        reappeared, and newly routeless flows park.  Returns the number
        of flows whose path changed (the reroute count).
        """
        self._topo_version += 1
        self.graph.invalidate()
        self._ecn_configs.clear()
        rerouted = 0
        still_active: list[FluidFlow] = []
        parked: list[FluidFlow] = []
        for flow in self._active:
            old_links = None if flow.path is None else flow.path.links
            flow.path = self._route(flow.spec)
            flow.topo_version = self._topo_version
            if flow.path is None:
                parked.append(flow)
                rerouted += 1
            else:
                if old_links is None or flow.path.links != old_links:
                    rerouted += 1
                still_active.append(flow)
        for flow in self._parked:
            flow.path = self._route(flow.spec)
            flow.topo_version = self._topo_version
            if flow.path is None:
                parked.append(flow)
            else:
                rerouted += 1
                still_active.append(flow)
        self._active = still_active
        self._parked = parked
        return rerouted

    # -- the step loop -----------------------------------------------------------

    def run(self, deadline: float) -> bool:
        """Advance until every flow finished or ``deadline`` (ns) hits.

        Returns True when all flows completed.  Steps are ``self.step``
        long, shortened to land exactly on the next flow arrival or the
        next scheduled dynamics event, so both are honoured precisely.
        """
        if not self._sorted:
            self._starts.sort(key=lambda f: (f.spec.start_time, f.spec.flow_id))
            self._sorted = True
        starts = self._starts
        events = self._events
        while True:
            # Fire dynamics events that are due.
            while events and events[0][0] <= self.now + _EPS:
                heapq.heappop(events)[2]()
            # Admit flows that are due (on the current topology).
            while (
                self._next_idx < len(starts)
                and starts[self._next_idx].spec.start_time <= self.now + _EPS
            ):
                flow = starts[self._next_idx]
                self._next_idx += 1
                if flow.topo_version != self._topo_version:
                    flow.path = self._route(flow.spec)
                    flow.topo_version = self._topo_version
                if flow.path is None:
                    self._parked.append(flow)
                else:
                    self._active.append(flow)
            if self.now >= deadline - _EPS:
                break
            next_start = (
                starts[self._next_idx].spec.start_time
                if self._next_idx < len(starts) else None
            )
            next_event = events[0][0] if events else None
            if not self._active:
                if not self._parked and self._next_idx >= len(starts):
                    # Every flow finished: stop here, leaving later
                    # timeline events unfired — the packet path's
                    # run_until_done semantics (fired=False accounting).
                    break
                # Idle (or fully parked): fast-forward to whatever can
                # change the world next; nothing left means we are done
                # (parked flows with no pending restore can never finish).
                targets = [t for t in (next_start, next_event) if t is not None]
                if not targets:
                    break
                target = min(targets)
                if target >= deadline:
                    break
                if target > self.now:
                    self.now = target
                    self.clock.now = self.now
                continue
            dt = self.step
            if next_start is not None:
                dt = min(dt, next_start - self.now)
            if next_event is not None:
                dt = min(dt, next_event - self.now)
            dt = min(dt, deadline - self.now)
            if dt <= _EPS:
                dt = _EPS
            self._advance(dt)
        self.completed = (
            not self._active and not self._parked
            and self._next_idx >= len(starts)
        )
        return self.completed

    def _advance(self, dt: float) -> None:
        active = self._active
        # 1. requested rates (window-limited schemes pace at W/T).
        for f in active:
            r = f.proxy.rate
            w = f.proxy.window
            if w is not None:
                paced = w / self.base_rtt
                if paced < r:
                    r = paced
            if r > f.line_rate:
                r = f.line_rate
            f.req = r
        # 2. per-link offered arrivals -> proportional throttle factors.
        touched: dict[int, object] = {}
        for f in active:
            for link in f.path.links:
                key = id(link)
                if key not in touched:
                    touched[key] = link
                    link.arrival = 0.0
                    link.throttled = 0.0
                link.arrival += f.req
        for link in touched.values():
            link.scale = (
                1.0 if link.arrival <= link.capacity
                else link.capacity / link.arrival
            )
        # 3. cascade the throttle along each path (upstream bottlenecks
        #    shield downstream links) and pin each flow's achieved rate.
        for f in active:
            s = 1.0
            req = f.req
            for link in f.path.links:
                link.throttled += req * s
                if link.scale < s:
                    s = link.scale
            f.achieved = req * s
        # 4. integrate link state.  Only switch egress queues: a host's
        #    own uplink is paced at the source (excess was throttled in
        #    step 2/3), so it never queues or drops — matching the
        #    packet NIC, which contributes no INT hop either.
        for link in touched.values():
            inflow = link.throttled * dt
            tx = link.queue + inflow
            cap = link.capacity * dt
            if tx > cap:
                tx = cap
            link.tx_bytes += tx
            link.rx_bytes += inflow
            if not link.is_switch_egress:
                continue
            q = link.queue + inflow - tx
            if q > link.buffer_bytes:
                link.dropped_bytes += q - link.buffer_bytes
                q = link.buffer_bytes
            link.queue = q if q > _EPS else 0.0
        # 5. deliver bytes; complete by interpolation; update CC.
        start_t = self.now
        self.now = start_t + dt
        self.clock.now = self.now
        goodput = self._goodput
        survivors: list[FluidFlow] = []
        for f in active:
            delivered = f.achieved * dt
            if delivered >= f.remaining - 1e-6:
                t_send = f.remaining / f.achieved if f.achieved > 0 else dt
                finish = (
                    start_t + t_send
                    + f.path.base_rtt + f.path.queue_delay()
                )
                if goodput is not None and f.remaining > 0:
                    goodput.record(
                        f.spec.flow_id, start_t, start_t + t_send,
                        f.remaining / self.wire_factor,
                    )
                f.remaining = 0.0
                f.proxy.done = True
                self.fct_records.append(FctRecord(
                    spec=f.spec, start=f.spec.start_time, finish=finish,
                    ideal=f.ideal,
                ))
            else:
                if goodput is not None and delivered > 0:
                    goodput.record(
                        f.spec.flow_id, start_t, self.now,
                        delivered / self.wire_factor,
                    )
                f.remaining -= delivered
                survivors.append(f)
        self._active = survivors
        for f in survivors:
            f.adapter.update(f.proxy, self._signals(f, dt))
        self.steps += 1
        self.flow_steps += len(active)
        if (
            self.sample_interval is not None
            and self.now - self._last_sample >= self.sample_interval
        ):
            self._last_sample = self.now
            for link in self._sample_links:
                series = self.queue_samples[link.label]
                series["times"].append(self.now)
                series["qlens"].append(link.queue)

    # -- per-flow feedback -------------------------------------------------------

    def _signals(self, f: FluidFlow, dt: float) -> StepSignals:
        delivered = f.achieved * dt
        hops: list[IntHop] = []
        if self.scheme.needs_int:
            # A capacity-0 link is a cut edge still on this flow's
            # pre-reconvergence path: no ACKs return from beyond a cut,
            # so it contributes no telemetry (and no division by zero).
            hops = [
                IntHop(
                    bandwidth=link.capacity, ts=self.now,
                    tx_bytes=link.tx_bytes, qlen=link.queue,
                    rx_bytes=link.rx_bytes,
                )
                for link in f.path.int_links
                if link.capacity > 0.0
            ]
        mark_prob = 0.0
        if self._ecn_policy is not None:
            clear = 1.0
            for link in f.path.int_links:
                if link.capacity <= 0.0:
                    continue
                key = id(link)
                config = self._ecn_configs.get(key)
                if config is None:
                    config = self._ecn_policy.for_rate(link.capacity)
                    self._ecn_configs[key] = config
                p = _marking_probability(config, link.queue)
                if p > 0.0:
                    clear *= 1.0 - p
            mark_prob = 1.0 - clear
        rtt = f.path.base_rtt + f.path.queue_delay()
        return StepSignals(
            hops=hops, rtt=rtt, mark_prob=mark_prob,
            delivered=delivered, now=self.now, dt=dt,
        )

    # -- results -----------------------------------------------------------------

    def ideal_fct(self, spec: FlowSpec) -> float:
        """Uncontended FCT, the packet path's formula: line-rate transmit
        plus the pair's base RTT (store-and-forward out, ACK back).
        Admitted flows carry this precomputed as ``FluidFlow.ideal``."""
        rate = min(
            self.topology.host_rate(spec.src), self.topology.host_rate(spec.dst)
        )
        path = self.graph.path(
            spec.flow_id, spec.src, spec.dst,
            mtu_wire=self.mtu + self.header, ack_size=ACK_SIZE,
        )
        return spec.size * self.wire_factor / rate + path.base_rtt

    @property
    def goodput_bins(self) -> dict[int, dict[int, float]]:
        return self._goodput.bins() if self._goodput is not None else {}

    def goodput_payload(self) -> dict | None:
        """The recorded goodput bins in ``RunRecord.extras`` shape."""
        if self._goodput is None:
            return None
        return self._goodput.payload()

    def dropped_bytes(self) -> float:
        return sum(l.dropped_bytes for l in self.graph.links.values())

    def switch_queued_bytes(self) -> dict[int, float]:
        return self.graph.total_queued_bytes()


def _marking_probability(config: EcnConfig, qlen: float) -> float:
    if qlen <= config.kmin:
        return 0.0
    if qlen >= config.kmax:
        return 1.0
    return config.pmax * (qlen - config.kmin) / (config.kmax - config.kmin)
