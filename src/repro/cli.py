"""``hpcc-repro`` — run any of the paper's experiments from the shell.

Examples::

    hpcc-repro list
    hpcc-repro run fig13
    hpcc-repro run fig11 --scale full
    hpcc-repro schemes
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .core.registry import available_schemes
from .experiments import (
    appendix_a,
    failover,
    figure01,
    figure02,
    figure03,
    figure06,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
)

EXPERIMENTS: dict[str, tuple[str, Callable[[], None]]] = {
    "fig1": ("PFC pause propagation and suppressed bandwidth", figure01.main),
    "fig2": ("DCQCN timer trade-off (throughput vs stability)", figure02.main),
    "fig3": ("DCQCN ECN-threshold trade-off (bandwidth vs latency)", figure03.main),
    "fig6": ("txRate vs rxRate feedback", figure06.main),
    "fig9": ("testbed micro-benchmarks: HPCC vs DCQCN", figure09.main),
    "fig10": ("testbed WebSearch FCT + queue CDF", figure10.main),
    "fig11": ("large-scale FatTree, six CC schemes", figure11.main),
    "fig12": ("flow-control choices (PFC / GBN / IRN)", figure12.main),
    "fig13": ("per-ACK vs per-RTT vs HPCC reaction", figure13.main),
    "fig14": ("WAI tuning", figure14.main),
    "appendix": ("Appendix A: A.1 queueing, A.2 lemma, A.4 window limits",
                 appendix_a.main),
    "failover": ("extension: CC behaviour across a link failure",
                 failover.main),
}

_ALIASES = {
    "figure1": "fig1", "fig01": "fig1", "figure01": "fig1",
    "figure2": "fig2", "fig02": "fig2", "figure02": "fig2",
    "figure3": "fig3", "fig03": "fig3", "figure03": "fig3",
    "figure6": "fig6", "fig06": "fig6", "figure06": "fig6",
    "figure9": "fig9", "fig09": "fig9", "figure09": "fig9",
    "figure10": "fig10", "figure11": "fig11", "figure12": "fig12",
    "figure13": "fig13", "figure14": "fig14",
    "a": "appendix", "appendix_a": "appendix",
}


def _resolve(name: str) -> str:
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise SystemExit(f"unknown experiment {name!r}; known: {known}")
    return key


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hpcc-repro",
        description="Reproduce the experiments of 'HPCC: High Precision "
                    "Congestion Control' (SIGCOMM 2019).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("schemes", help="list registered CC schemes")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="e.g. fig13, fig11, appendix")
    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        for name, (desc, _) in EXPERIMENTS.items():
            print(f"{name:10s} {desc}")
        return 0
    if args.command == "schemes":
        for scheme in available_schemes():
            print(scheme)
        return 0
    if args.command == "run":
        key = _resolve(args.experiment)
        EXPERIMENTS[key][1]()
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
