"""``hpcc-repro`` — run any of the paper's experiments from the shell.

Examples::

    hpcc-repro list
    hpcc-repro run fig13
    hpcc-repro run fig11 --scale full
    hpcc-repro run fig11 --backend fluid
    hpcc-repro sweep fig10 fig11 --jobs 4 --out results/
    hpcc-repro sweep fig11 --seeds 1,2,3 --jobs 8
    hpcc-repro sweep fig11 --backend fluid --scale full
    hpcc-repro sweep fig11 --backend fluid --telemetry
    hpcc-repro report --fastest
    hpcc-repro report --figures fig11 fig13 --backend fluid --out report/
    hpcc-repro tele summarize sweep-results/telemetry.jsonl
    hpcc-repro tele summarize sweep-results/telemetry.jsonl --json
    hpcc-repro trace diff fig13 --scenario HPCC --out divergence.json
    hpcc-repro cache stats --dir results/
    hpcc-repro cache clear --dir results/
    hpcc-repro schemes

``sweep`` expands each experiment's declared scenario grid
(``scenarios()``), executes it on a process pool, and persists one
``RunRecord`` JSON per scenario (content-addressed by spec hash) plus a
``summary.csv`` under ``--out``.  Re-running the same sweep hits the
cache and recomputes nothing; ``--no-cache`` forces fresh runs.
Progress ticks per completed scenario on stderr (``--quiet`` silences
them).  ``--backend fluid`` runs every scenario on the flow-level fluid
engine instead of the packet simulator — hash-distinct, so packet and
fluid records coexist in one cache; ``cache stats``/``cache clear``
inspect and prune that directory.

``report`` builds the HTML/SVG reproduction report (``repro.report``):
it sweeps whatever the requested figures are missing (reusing any
cache directory via ``--cache``), renders every figure's panels
side-by-side with the digitized paper curves, and scores fidelity
per figure (pass/warn/fail).  ``--fastest`` builds the cheap fluid
subset CI uploads on every PR.

``--telemetry [PATH]`` (on ``run``, ``sweep`` and ``report``) records
the run-telemetry JSONL stream (``repro.obs``: phase spans, engine
probes, cache/utilization stats) alongside the primary output;
``tele summarize PATH`` renders any such file — including
``PacketTracer.to_jsonl`` exports — as a text digest (``--json`` for
machine-readable aggregates).

``trace diff SPEC`` is the control-loop flight recorder's analyzer:
it runs one scenario on *both* execution backends with the per-flow
:class:`~repro.obs.DecisionTap` attached, aligns the CC decision
timelines, and reports per-flow time-weighted rate error, time of
first divergence, and (for INT schemes) bottleneck-attribution
agreement.  ``--out`` writes the machine-readable ``divergence.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .core.registry import available_schemes
from .experiments import (
    appendix_a,
    failover,
    figure01,
    figure02,
    figure03,
    figure06,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    flapping,
    linkfail,
)

# name -> (description, module). Modules expose main(scale=...) and
# scenarios(scale=..., seed=...).
EXPERIMENTS = {
    "fig1": ("PFC pause propagation and suppressed bandwidth", figure01),
    "fig2": ("DCQCN timer trade-off (throughput vs stability)", figure02),
    "fig3": ("DCQCN ECN-threshold trade-off (bandwidth vs latency)", figure03),
    "fig6": ("txRate vs rxRate feedback", figure06),
    "fig9": ("testbed micro-benchmarks: HPCC vs DCQCN", figure09),
    "fig10": ("testbed WebSearch FCT + queue CDF", figure10),
    "fig11": ("large-scale FatTree, six CC schemes", figure11),
    "fig12": ("flow-control choices (PFC / GBN / IRN)", figure12),
    "fig13": ("per-ACK vs per-RTT vs HPCC reaction", figure13),
    "fig14": ("WAI tuning", figure14),
    "appendix": ("Appendix A: A.1 queueing, A.2 lemma, A.4 window limits",
                 appendix_a),
    "failover": ("extension: CC behaviour across a link failure",
                 failover),
    "linkfail": ("extension: FatTree link-failure sweep (dynamics "
                 "timelines, fluid-first)", linkfail),
    "flapping": ("extension: flapping-trunk oscillation study "
                 "(HPCC vs DCQCN)", flapping),
}

_ALIASES = {
    "figure1": "fig1", "fig01": "fig1", "figure01": "fig1",
    "figure2": "fig2", "fig02": "fig2", "figure02": "fig2",
    "figure3": "fig3", "fig03": "fig3", "figure03": "fig3",
    "figure6": "fig6", "fig06": "fig6", "figure06": "fig6",
    "figure9": "fig9", "fig09": "fig9", "figure09": "fig9",
    "figure10": "fig10", "figure11": "fig11", "figure12": "fig12",
    "figure13": "fig13", "figure14": "fig14",
    "a": "appendix", "appendix_a": "appendix",
}


def _resolve(name: str) -> str:
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise SystemExit(f"unknown experiment {name!r}; known: {known}")
    return key


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_seeds(text: str | None) -> list[int] | None:
    if text is None:
        return None
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"bad --seeds value {text!r}; expected e.g. 1,2,3")


def _fmt_eta(seconds: float) -> str:
    if seconds >= 90:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def _progress_ticker(args):
    """The sweep's stderr ticker: one ``[done/total]`` line per finished
    scenario (stderr so ``--out``-style stdout redirects stay clean);
    ``--quiet`` disables it.

    Once at least one scenario has been *computed* (cache hits carry no
    timing signal), remaining lines carry an ETA: mean computed wall
    time times the scenarios left, divided by the worker count.
    """
    if getattr(args, "quiet", False):
        return None
    jobs = getattr(args, "jobs", 1)
    walls: list[float] = []

    def progress(record, done, total):
        if record.cached:
            status = "cache"
        else:
            walls.append(record.wall_time_s)
            status = f"{record.wall_time_s:.2f}s"
        eta = ""
        remaining = total - done
        if remaining and walls:
            estimate = sum(walls) / len(walls) * remaining / jobs
            eta = f"  eta ~{_fmt_eta(estimate)}"
        print(
            f"[{done}/{total}] {record.label}  ({status}){eta}",
            file=sys.stderr, flush=True,
        )

    return progress


def _make_telemetry(args, default_path: Path, run_id: str):
    """The file-backed ``Telemetry`` behind ``--telemetry [PATH]``.

    Returns ``(telemetry, path)`` — or ``(None, None)`` when the flag
    is absent, so callers stay on the zero-overhead path.
    """
    raw = getattr(args, "telemetry", None)
    if raw is None:
        return None, None
    from .obs import JsonlSink, Telemetry

    path = Path(raw) if raw else default_path
    try:
        # Telemetry writes the meta header on construction, so opening
        # AND the first write both fail CLI-style here, not mid-sweep.
        return Telemetry(run_id=run_id, sink=JsonlSink(path)), path
    except OSError as exc:
        raise SystemExit(f"cannot write telemetry file {path}: {exc}")


def _require_fluid_for_large(scale: str, backend: str) -> None:
    """The ``large`` tier (figure 11's k=16, 1024-host fabric) is only
    tractable on the fluid engine (or hybrid, whose packet half is a
    thin foreground); refuse to launch it on pure packet."""
    if scale == "large" and backend not in ("fluid", "hybrid"):
        raise SystemExit(
            "error: --scale large is only tractable on the fluid engine; "
            "add --backend fluid (or --backend hybrid)"
        )


def _apply_foreground(args, specs):
    """Apply ``--foreground`` to every spec (hybrid backend only)."""
    foreground = getattr(args, "foreground", None)
    if foreground is None:
        return specs
    if args.backend != "hybrid":
        raise SystemExit(
            "error: --foreground only applies to --backend hybrid"
        )
    from .hybrid.select import parse_foreground

    try:
        selector = parse_foreground(foreground)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    return [
        spec.replaced(**{"workload.foreground": selector}) for spec in specs
    ]


def _cmd_sweep(args) -> int:
    from .runner import RunCache, SweepRunner, write_records_csv

    _require_fluid_for_large(args.scale, args.backend)
    seeds = _parse_seeds(args.seeds)
    specs = []
    try:
        for name in args.experiments:
            module = EXPERIMENTS[_resolve(name)][1]
            if seeds is None:
                specs.extend(module.scenarios(scale=args.scale))
            else:
                for seed in seeds:
                    specs.extend(module.scenarios(scale=args.scale, seed=seed))
    except ValueError as exc:
        # e.g. a scale tier the experiment does not define ("large" on a
        # bench/full-only figure) -> CLI-style error, not a traceback.
        raise SystemExit(f"error: {exc}")
    if not specs:
        print("nothing to run")
        return 1
    if args.backend != "packet":
        specs = [spec.replaced(backend=args.backend) for spec in specs]
    specs = _apply_foreground(args, specs)

    out = Path(args.out)
    try:
        out.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SystemExit(f"cannot create --out directory {out}: {exc}")
    cache = None if args.no_cache else RunCache(out)

    spec_timeout = args.spec_timeout
    if spec_timeout is not None and spec_timeout != "auto":
        try:
            spec_timeout = float(spec_timeout)
        except ValueError:
            raise SystemExit(
                f"error: --spec-timeout must be a number of seconds or "
                f"'auto', got {args.spec_timeout!r}"
            )

    if args.resume is not None:
        from .runner import plan_resume

        if not Path(args.resume).is_file():
            raise SystemExit(f"error: no sweep journal at {args.resume}")
        to_run, skipped, _ = plan_resume(specs, args.resume)
        print(
            f"resuming from {args.resume}: {len(skipped)} ok cells "
            f"skipped, {len(to_run)} to (re)run", file=sys.stderr,
        )
        if skipped and cache is None:
            print(
                "warning: --no-cache makes --resume re-run ok cells too "
                "(their results only live in the cache)", file=sys.stderr,
            )

    tel, tel_path = _make_telemetry(
        args, out / "telemetry.jsonl",
        run_id="sweep:" + "+".join(args.experiments),
    )
    started = time.perf_counter()
    journal_path = out / "journal.jsonl"
    runner = SweepRunner(
        jobs=args.jobs, cache=cache, progress=_progress_ticker(args),
        telemetry=tel, failures=args.on_error, retries=args.retries,
        spec_timeout=spec_timeout, journal=str(journal_path),
    )
    try:
        records = runner.run(specs)
    except ValueError as exc:
        # Scenario-level input errors (fluid-unsupported events/schemes,
        # unknown topologies) exit CLI-style, not as a traceback.
        raise SystemExit(f"error: {exc}")
    finally:
        if tel is not None:
            tel.close()
    elapsed = time.perf_counter() - started

    if cache is None:                       # still persist the (ok) records
        for record in records:
            if record.ok:
                record.write_json(out / f"{record.spec_hash}.json")
    write_records_csv(records, out / "summary.csv")
    hits = sum(1 for r in records if r.cached)
    failed = [r for r in records if not r.ok]
    print(
        f"{len(records)} scenarios ({hits} cached) in {elapsed:.2f}s "
        f"with --jobs {args.jobs} -> {out}"
    )
    if failed:
        by_status: dict[str, int] = {}
        for record in failed:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        detail = ", ".join(
            f"{count} {status}" for status, count in sorted(by_status.items())
        )
        print(
            f"warning: {len(failed)} cells failed ({detail}); "
            f"re-run with --resume {journal_path}", file=sys.stderr,
        )
        for record in failed:
            error = record.error or {}
            print(
                f"  {record.status:7s} {record.label}: "
                f"{error.get('type', '')}: {error.get('message', '')}",
                file=sys.stderr,
            )
    if tel_path is not None:
        print(f"telemetry -> {tel_path}")
    return 0


def _cmd_run(args) -> int:
    _require_fluid_for_large(args.scale, args.backend)
    if args.profile or args.profile_out:
        return _profiled(args)
    return _run_experiment(args)


def _run_experiment(args) -> int:
    key = _resolve(args.experiment)
    module = EXPERIMENTS[key][1]
    if args.backend == "packet" and args.telemetry is None:
        _apply_foreground(args, [])   # --foreground must still be rejected
        module.main(scale=args.scale)
        return 0
    # Fluid backend (or a telemetry-instrumented run on either engine):
    # run the experiment's declared grid through the spec path and print
    # a backend-neutral summary (the packet ``main`` tables read
    # packet-only telemetry).
    from .metrics.fct import percentile, slowdowns
    from .metrics.reporter import format_table
    from .runner import SweepRunner

    try:
        specs = [
            spec.replaced(backend=args.backend)
            for spec in module.scenarios(scale=args.scale)
        ]
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    specs = _apply_foreground(args, specs)
    tel, tel_path = _make_telemetry(
        args, Path("telemetry.jsonl"), run_id=f"run:{key}"
    )
    try:
        records = SweepRunner(
            progress=_progress_ticker(args), telemetry=tel
        ).run(specs)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if tel is not None:
            tel.close()
    rows = []
    for spec, record in zip(specs, records):
        slows = slowdowns(record.fct_records())
        rows.append((
            spec.label or spec.spec_hash,
            len(record.fct),
            f"{percentile(slows, 50):.2f}" if slows else "-",
            f"{percentile(slows, 95):.2f}" if slows else "-",
            f"{record.wall_time_s:.2f}",
        ))
    print(format_table(
        ["scenario", "flows", "p50 slowdown", "p95 slowdown", "wall (s)"],
        rows, title=f"{key} on the {args.backend} backend "
                    f"({args.scale} scale)",
    ))
    if tel_path is not None:
        print(f"telemetry -> {tel_path}")
    return 0


def _profiled(args) -> int:
    """Run the experiment under cProfile; print the top cumulative table.

    This is the profiling recipe behind the engine's perf work (see
    README "Performance"): `hpcc-repro run fig11 --profile` answers
    "where do the cycles go" without any harness editing.
    ``--profile-out PATH`` additionally keeps the raw ``pstats`` dump
    for offline digging (``python -m pstats PATH``, snakeviz, ...).
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _run_experiment(args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print(f"\n--- cProfile: top {args.profile_limit} by cumulative time ---",
              file=sys.stderr)
        stats.print_stats(args.profile_limit)
        if args.profile_out:
            out = Path(args.profile_out)
            if out.parent != Path(""):
                out.parent.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(out)
            print(f"profile stats -> {out}", file=sys.stderr)
    return status


def _cmd_report(args) -> int:
    from .report.build import FASTEST_FIGURES, build_report, resolve_figures

    figures = resolve_figures(args.figures, args.fastest)
    backend = args.backend
    if backend is None:
        # --fastest is the CI/regression path: the fluid backend makes
        # the whole build a few seconds; full reports default to packet.
        backend = "fluid" if args.fastest else "packet"
    _require_fluid_for_large(args.scale, backend)
    tel, tel_path = _make_telemetry(
        args, Path(args.out) / "telemetry.jsonl",
        run_id="report:" + "+".join(figures),
    )
    try:
        report = build_report(
            figures,
            backend=backend,
            scale=args.scale,
            out=args.out,
            cache_dir=args.cache,
            jobs=args.jobs,
            progress=_progress_ticker(args),
            telemetry=tel,
            hybrid_cell=args.fastest,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if tel is not None:
            tel.close()
    if args.png:
        from .report.build import rasterize_panels

        try:
            written = rasterize_panels(report, Path(args.out))
        except RuntimeError as exc:
            raise SystemExit(f"error: {exc}")
        print(f"{len(written)} PNG panels -> {args.out}")
    for key, verdict in report.verdicts().items():
        print(f"{key:10s} {verdict}")
    print(f"report -> {Path(args.out) / 'index.html'}")
    if tel_path is not None:
        print(f"telemetry -> {tel_path}")
    if args.fastest:
        print(f"(--fastest subset: {', '.join(FASTEST_FIGURES)}; "
              f"backend {backend})")
    return 0


def _cmd_tele(args) -> int:
    from .obs.summarize import summarize_file

    if not Path(args.path).is_file():
        print(f"no telemetry file at {args.path}", file=sys.stderr)
        return 1
    text, status = summarize_file(args.path, as_json=args.json)
    print(text)
    return status


def _load_trace_spec(args):
    """Resolve ``trace diff``'s SPEC: a spec-JSON path or experiment name."""
    import json

    from .runner.spec import ScenarioSpec

    path = Path(args.spec)
    if path.is_file():
        try:
            return ScenarioSpec.from_json(json.loads(path.read_text()))
        except (ValueError, TypeError, KeyError) as exc:
            raise SystemExit(f"error: cannot load spec from {path}: {exc}")
    module = EXPERIMENTS[_resolve(args.spec)][1]
    try:
        specs = module.scenarios(scale=args.scale)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.scenario is not None:
        wanted = args.scenario.lower()
        matches = [s for s in specs if wanted in (s.label or "").lower()]
        if not matches:
            known = ", ".join(s.label or s.spec_hash for s in specs)
            raise SystemExit(
                f"error: no scenario matching {args.scenario!r}; known: {known}"
            )
        specs = matches
    return specs[0]


def _cmd_trace(args) -> int:
    """``trace diff``: one spec, both backends, decision-stream diff."""
    import json

    from .obs import compare_decisions, format_divergence
    from .runner.execute import execute_spec

    spec = _load_trace_spec(args)
    label = spec.label or spec.spec_hash
    streams = {}
    for backend in ("packet", "fluid"):
        print(f"running {label} on the {backend} backend ...",
              file=sys.stderr, flush=True)
        try:
            record = execute_spec(spec.replaced(backend=backend),
                                  decisions=True)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        if not record.completed:
            print(f"warning: {backend} run hit its deadline before all "
                  f"flows finished; diffing the partial trace",
                  file=sys.stderr)
        streams[backend] = record.telemetry or []
    div = compare_decisions(streams["packet"], streams["fluid"],
                            threshold=args.threshold)
    div["spec"] = {"label": spec.label, "spec_hash": spec.spec_hash,
                   "program": spec.program, "cc": spec.cc.name}
    print(format_divergence(div))
    if args.out is not None:
        out = Path(args.out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(div, indent=2, sort_keys=True,
                                  allow_nan=False) + "\n")
        print(f"divergence -> {out}")
    return 0


def _cmd_cache(args) -> int:
    from .runner import RunCache

    root = Path(args.dir)
    if not root.is_dir():
        print(f"no cache directory at {root}")
        return 1
    cache = RunCache(root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached records from {root}")
        return 0
    stats = cache.stats()
    print(
        f"{root}: {stats['entries']} records, "
        f"{stats['total_bytes'] / 1_000_000:.2f}MB"
    )
    for (backend, program), count in sorted(stats["by_kind"].items()):
        print(f"  {backend:8s} {program:12s} {count}")
    if stats["corrupt"]:
        print(f"  ({stats['corrupt']} unreadable entries)")
    if stats["quarantined"]:
        print(f"  ({stats['quarantined']} quarantined *.corrupt files)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hpcc-repro",
        description="Reproduce the experiments of 'HPCC: High Precision "
                    "Congestion Control' (SIGCOMM 2019).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("schemes", help="list registered CC schemes")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="e.g. fig13, fig11, appendix")
    run.add_argument(
        "--scale", choices=("bench", "full", "large"), default="bench",
        help="bench = shrunk for Python speed (default); full = paper sizes",
    )
    run.add_argument(
        "--backend", choices=("packet", "fluid", "hybrid"), default="packet",
        help="execution engine: packet-level simulation (default), the "
             "flow-level fluid fast path, or hybrid packet-in-fluid "
             "co-simulation",
    )
    run.add_argument(
        "--foreground", default=None, metavar="SEL",
        help="hybrid backend: which flows run packet-level — all, none, "
             "count:N, frac:X or tag:a,b (default frac:0.1)",
    )
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-scenario progress ticker (fluid backend)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the hottest functions to stderr",
    )
    run.add_argument(
        "--profile-limit", type=_positive_int, default=25, metavar="N",
        help="rows in the --profile table (default 25)",
    )
    run.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="write the raw cProfile pstats dump to PATH (implies "
             "--profile)",
    )
    run.add_argument(
        "--telemetry", nargs="?", const="", default=None, metavar="PATH",
        help="record run telemetry JSONL (default PATH: telemetry.jsonl); "
             "routes the run through the sweep path on either backend",
    )

    sweep = sub.add_parser(
        "sweep", help="run experiment grids in parallel, with caching"
    )
    sweep.add_argument(
        "experiments", nargs="+", help="experiment names, e.g. fig10 fig11"
    )
    sweep.add_argument(
        "--scale", choices=("bench", "full", "large"), default="bench",
        help="scenario scale (default bench)",
    )
    sweep.add_argument(
        "--backend", choices=("packet", "fluid", "hybrid"), default="packet",
        help="execution engine for every scenario in the sweep",
    )
    sweep.add_argument(
        "--foreground", default=None, metavar="SEL",
        help="hybrid backend: which flows run packet-level — all, none, "
             "count:N, frac:X or tag:a,b (default frac:0.1)",
    )
    sweep.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes (default 1 = serial)",
    )
    sweep.add_argument(
        "--out", default="sweep-results", metavar="DIR",
        help="directory for RunRecord JSONs + summary.csv "
             "(default sweep-results/)",
    )
    sweep.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="comma-separated seeds; expands the grid once per seed",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="recompute every scenario even if a record exists in --out",
    )
    sweep.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-scenario stderr progress ticker",
    )
    sweep.add_argument(
        "--telemetry", nargs="?", const="", default=None, metavar="PATH",
        help="record sweep telemetry JSONL "
             "(default PATH: <out>/telemetry.jsonl)",
    )
    sweep.add_argument(
        "--on-error", choices=("quarantine", "raise"), default="quarantine",
        help="failing cells become error-status records (quarantine, "
             "default) or abort the sweep (raise)",
    )
    sweep.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts for cells lost to worker deaths "
             "(default 2; deterministic execution errors never retry)",
    )
    sweep.add_argument(
        "--spec-timeout", default=None, metavar="SECONDS",
        help="per-cell wall-clock budget; overdue cells are killed and "
             "recorded as timeouts.  'auto' derives 10x the slowest "
             "fresh cell (floor 5s).  Needs --jobs >= 2.",
    )
    sweep.add_argument(
        "--resume", default=None, metavar="JOURNAL",
        help="resume from a sweep journal: cells it records as ok are "
             "served from the cache, failed cells re-run",
    )

    report = sub.add_parser(
        "report",
        help="build the HTML/SVG reproduction report with fidelity scores",
    )
    report.add_argument(
        "--figures", nargs="+", default=None, metavar="FIG",
        help="figures to include (default: all); e.g. --figures fig11 fig13",
    )
    report.add_argument(
        "--fastest", action="store_true",
        help="build only the fast fluid-eligible subset (what CI uploads); "
             "implies --backend fluid unless overridden",
    )
    report.add_argument(
        "--backend", choices=("packet", "fluid", "hybrid"), default=None,
        help="execution engine (default: packet, or fluid with --fastest); "
             "packet-only figures always stay on the packet engine",
    )
    report.add_argument(
        "--scale", choices=("bench", "full", "large"), default="bench",
        help="scenario scale (default bench)",
    )
    report.add_argument(
        "--out", default="report", metavar="DIR",
        help="output directory for index.html + SVGs (default report/)",
    )
    report.add_argument(
        "--cache", default=None, metavar="DIR",
        help="RunCache directory to reuse (e.g. a sweep's --out); "
             "default <out>/cache",
    )
    report.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for missing scenarios (default 1)",
    )
    report.add_argument(
        "--png", action="store_true",
        help="additionally rasterize every panel to PNG (requires "
             "matplotlib; the SVG report never does)",
    )
    report.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-scenario stderr progress ticker",
    )
    report.add_argument(
        "--telemetry", nargs="?", const="", default=None, metavar="PATH",
        help="record build telemetry JSONL "
             "(default PATH: <out>/telemetry.jsonl)",
    )

    tele = sub.add_parser(
        "tele", help="inspect run-telemetry JSONL files"
    )
    tele.add_argument(
        "action", choices=("summarize",),
        help="summarize = aggregate spans/counters/gauges as text",
    )
    tele.add_argument("path", metavar="PATH", help="telemetry JSONL file")
    tele.add_argument(
        "--json", action="store_true",
        help="emit the aggregates as a JSON document instead of text",
    )

    trace = sub.add_parser(
        "trace",
        help="diff the CC decision traces of both execution backends",
    )
    trace.add_argument(
        "action", choices=("diff",),
        help="diff = run one scenario on the packet AND fluid engines "
             "with the decision tap attached, then align the traces",
    )
    trace.add_argument(
        "spec", metavar="SPEC",
        help="a ScenarioSpec JSON file, or an experiment name (e.g. "
             "fig13) whose first/--scenario grid cell is used",
    )
    trace.add_argument(
        "--scenario", default=None, metavar="LABEL",
        help="with an experiment name: pick the grid cell whose label "
             "contains LABEL (case-insensitive), e.g. --scenario HPCC",
    )
    trace.add_argument(
        "--scale", choices=("bench", "full", "large"), default="bench",
        help="scenario scale for experiment-name specs (default bench)",
    )
    trace.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="relative rate gap that counts as divergence (default 0.25)",
    )
    trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="additionally write the machine-readable divergence.json",
    )

    cache = sub.add_parser(
        "cache", help="inspect or prune a sweep's RunCache directory"
    )
    cache.add_argument(
        "action", choices=("stats", "clear"),
        help="stats = entry counts and sizes; clear = delete every record",
    )
    cache.add_argument(
        "--dir", default="sweep-results", metavar="DIR",
        help="cache directory (a sweep's --out; default sweep-results/)",
    )

    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        for name, (desc, _) in EXPERIMENTS.items():
            print(f"{name:10s} {desc}")
        return 0
    if args.command == "schemes":
        for scheme in available_schemes():
            print(scheme)
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "tele":
        return _cmd_tele(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "cache":
        return _cmd_cache(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
