"""``hpcc-repro`` — run any of the paper's experiments from the shell.

Examples::

    hpcc-repro list
    hpcc-repro run fig13
    hpcc-repro run fig11 --scale full
    hpcc-repro sweep fig10 fig11 --jobs 4 --out results/
    hpcc-repro sweep fig11 --seeds 1,2,3 --jobs 8
    hpcc-repro schemes

``sweep`` expands each experiment's declared scenario grid
(``scenarios()``), executes it on a process pool, and persists one
``RunRecord`` JSON per scenario (content-addressed by spec hash) plus a
``summary.csv`` under ``--out``.  Re-running the same sweep hits the
cache and recomputes nothing; ``--no-cache`` forces fresh runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .core.registry import available_schemes
from .experiments import (
    appendix_a,
    failover,
    figure01,
    figure02,
    figure03,
    figure06,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
)

# name -> (description, module). Modules expose main(scale=...) and
# scenarios(scale=..., seed=...).
EXPERIMENTS = {
    "fig1": ("PFC pause propagation and suppressed bandwidth", figure01),
    "fig2": ("DCQCN timer trade-off (throughput vs stability)", figure02),
    "fig3": ("DCQCN ECN-threshold trade-off (bandwidth vs latency)", figure03),
    "fig6": ("txRate vs rxRate feedback", figure06),
    "fig9": ("testbed micro-benchmarks: HPCC vs DCQCN", figure09),
    "fig10": ("testbed WebSearch FCT + queue CDF", figure10),
    "fig11": ("large-scale FatTree, six CC schemes", figure11),
    "fig12": ("flow-control choices (PFC / GBN / IRN)", figure12),
    "fig13": ("per-ACK vs per-RTT vs HPCC reaction", figure13),
    "fig14": ("WAI tuning", figure14),
    "appendix": ("Appendix A: A.1 queueing, A.2 lemma, A.4 window limits",
                 appendix_a),
    "failover": ("extension: CC behaviour across a link failure",
                 failover),
}

_ALIASES = {
    "figure1": "fig1", "fig01": "fig1", "figure01": "fig1",
    "figure2": "fig2", "fig02": "fig2", "figure02": "fig2",
    "figure3": "fig3", "fig03": "fig3", "figure03": "fig3",
    "figure6": "fig6", "fig06": "fig6", "figure06": "fig6",
    "figure9": "fig9", "fig09": "fig9", "figure09": "fig9",
    "figure10": "fig10", "figure11": "fig11", "figure12": "fig12",
    "figure13": "fig13", "figure14": "fig14",
    "a": "appendix", "appendix_a": "appendix",
}


def _resolve(name: str) -> str:
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise SystemExit(f"unknown experiment {name!r}; known: {known}")
    return key


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_seeds(text: str | None) -> list[int] | None:
    if text is None:
        return None
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"bad --seeds value {text!r}; expected e.g. 1,2,3")


def _cmd_sweep(args) -> int:
    from .runner import RunCache, SweepRunner, write_records_csv

    seeds = _parse_seeds(args.seeds)
    specs = []
    for name in args.experiments:
        module = EXPERIMENTS[_resolve(name)][1]
        if seeds is None:
            specs.extend(module.scenarios(scale=args.scale))
        else:
            for seed in seeds:
                specs.extend(module.scenarios(scale=args.scale, seed=seed))
    if not specs:
        print("nothing to run")
        return 1

    out = Path(args.out)
    try:
        out.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SystemExit(f"cannot create --out directory {out}: {exc}")
    cache = None if args.no_cache else RunCache(out)

    def progress(record, done, total):
        status = "cache" if record.cached else f"{record.wall_time_s:.2f}s"
        print(f"[{done}/{total}] {record.label}  ({status})", flush=True)

    started = time.perf_counter()
    runner = SweepRunner(jobs=args.jobs, cache=cache, progress=progress)
    records = runner.run(specs)
    elapsed = time.perf_counter() - started

    if cache is None:                       # still persist the records
        for record in records:
            record.write_json(out / f"{record.spec_hash}.json")
    write_records_csv(records, out / "summary.csv")
    hits = sum(1 for r in records if r.cached)
    print(
        f"{len(records)} scenarios ({hits} cached) in {elapsed:.2f}s "
        f"with --jobs {args.jobs} -> {out}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hpcc-repro",
        description="Reproduce the experiments of 'HPCC: High Precision "
                    "Congestion Control' (SIGCOMM 2019).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("schemes", help="list registered CC schemes")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="e.g. fig13, fig11, appendix")
    run.add_argument(
        "--scale", choices=("bench", "full"), default="bench",
        help="bench = shrunk for Python speed (default); full = paper sizes",
    )

    sweep = sub.add_parser(
        "sweep", help="run experiment grids in parallel, with caching"
    )
    sweep.add_argument(
        "experiments", nargs="+", help="experiment names, e.g. fig10 fig11"
    )
    sweep.add_argument(
        "--scale", choices=("bench", "full"), default="bench",
        help="scenario scale (default bench)",
    )
    sweep.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes (default 1 = serial)",
    )
    sweep.add_argument(
        "--out", default="sweep-results", metavar="DIR",
        help="directory for RunRecord JSONs + summary.csv "
             "(default sweep-results/)",
    )
    sweep.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="comma-separated seeds; expands the grid once per seed",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="recompute every scenario even if a record exists in --out",
    )

    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        for name, (desc, _) in EXPERIMENTS.items():
            print(f"{name:10s} {desc}")
        return 0
    if args.command == "schemes":
        for scheme in available_schemes():
            print(scheme)
        return 0
    if args.command == "run":
        key = _resolve(args.experiment)
        EXPERIMENTS[key][1].main(scale=args.scale)
        return 0
    if args.command == "sweep":
        return _cmd_sweep(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
