"""Hybrid packet-in-fluid co-simulation (``backend="hybrid"``).

The packet engine is faithful but slow; the fluid engine is fast but
flow-granular.  The hybrid backend runs both at once: a scenario's flow
population is partitioned by a ``workload["foreground"]`` selector into
a *foreground* set simulated packet-by-packet (full INT/ECN/PFC
fidelity, per-ACK CC decisions) and a *background* set advanced by the
array-native fluid step loop, coupled through the shared per-link
registers each epoch (see :mod:`repro.hybrid.coupling`).  Foreground
flows keep packet-level fidelity while "millions of users" of
background load cost near-fluid time.

Degenerate limits are exact by construction: an all-foreground
partition delegates to the pure packet program and an all-background
partition to the pure fluid program, so both are bit-identical to the
single-engine backends (pinned by ``tests/test_hybrid.py``).
"""

from .coupling import BgLinkView, HybridCoupler
from .engine import HybridEngine
from .select import DEFAULT_SELECTOR, parse_foreground, partition_specs

__all__ = [
    "BgLinkView",
    "HybridCoupler",
    "HybridEngine",
    "DEFAULT_SELECTOR",
    "parse_foreground",
    "partition_specs",
]
