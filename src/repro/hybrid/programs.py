"""Hybrid-backend scenario programs: packet foreground, fluid background.

These mirror the ``load`` and ``flows`` programs of
``repro.runner.execute``: the same topology factory, workload CDF,
Poisson/incast generation and dynamics timeline produce the *identical*
flow population, which is then split by the spec's
``workload["foreground"]`` selector (:mod:`repro.hybrid.select`).  The
foreground half runs on the packet ``Network``, the background half on
the :class:`~repro.fluid.engine.FluidEngine`, and
:class:`~repro.hybrid.engine.HybridEngine` advances both in lockstep
epochs.

Degenerate partitions delegate wholesale: an all-foreground spec runs
the pure packet program and an all-background spec the pure fluid
program (only ``record.spec`` and the ``hybrid_mode`` extras marker
differ), which is what makes the equivalence suite's bit-identity
pins (``tests/test_hybrid.py``) hold by construction rather than by
tolerance.

Config keys by consumer — the contract documented in
``docs/architecture.md``:

* shared: ``base_rtt``, ``mtu``, ``buffer_bytes``, ``goodput_bin``;
* packet half only: ``transport``, ``pfc_enabled``, ``int_enabled``,
  ``pfc``, ``ecn``, ``rto``, ``gbn_recovery_cap`` (and every other
  ``NetworkConfig`` knob);
* fluid half only: ``fluid_step`` (``fluid_engine`` is ignored — the
  coupler needs the array registers);
* hybrid only: ``hybrid_epoch`` (default: the fluid step, one base
  RTT), ``hybrid_min_residual`` (serialization floor, default 0.05).

Mixed-mode records carry both halves: merged FCTs (sorted by finish
time), packet-half queue samples, merged goodput bins, packet events
plus fluid steps as ``events_processed``, and a ``hybrid`` extras block
with the partition sizes and epoch count.
"""

from __future__ import annotations

from dataclasses import replace

from ..dynamics import FluidDynamicsDriver, PacketDynamicsDriver, burst_flow_specs
from ..fluid.engine import FluidEngine
from ..metrics.queuestats import QueueSampler
from ..obs import current as current_telemetry
from ..obs import instrument_fluid, instrument_simulator, maybe_span
from ..runner.execute import (
    _base_extras,
    _fct_payload,
    _merge_burst_flow_ids,
    _resolve_ports,
    build_topology,
    spec_timeline,
    workload_cdf,
)
from ..runner.harness import RunResult, generate_load_flows, setup_network
from ..runner.results import RunRecord
from ..runner.spec import ScenarioSpec
from ..sim.flow import FlowSpec
from ..sim.units import MB
from .engine import HybridEngine
from .select import partition_specs

#: Config keys no half of a hybrid run consumes directly.
_HYBRID_KEYS = ("hybrid_epoch", "hybrid_min_residual")
#: Config keys only the fluid half understands (stripped before the
#: packet ``NetworkConfig`` sees them).
_FLUID_KEYS = ("fluid_step", "fluid_engine")


class _HybridConfig:
    """The spec's config, split by consuming half."""

    def __init__(self, spec: ScenarioSpec) -> None:
        config = dict(spec.config)
        self.epoch = config.pop("hybrid_epoch", None)
        self.min_residual = config.pop("hybrid_min_residual", 0.05)
        self.fluid_step = config.pop("fluid_step", None)
        self.ignored: list[str] = []
        if config.pop("fluid_engine", None) is not None:
            # The coupler reads/writes the array registers, so the
            # scalar reference engine cannot back a hybrid run.
            self.ignored.append("fluid_engine")
        self.base_rtt = config.pop("base_rtt", None)
        self.goodput_bin = config.pop("goodput_bin", None)
        self.mtu = config.get("mtu", 1000)
        self.buffer_bytes = config.get("buffer_bytes", 32 * MB)
        self.packet = config          # remaining NetworkConfig overrides


def _strip_config(spec: ScenarioSpec, keys: tuple[str, ...]) -> ScenarioSpec:
    """A copy of ``spec`` with the named config keys removed."""
    config = {k: v for k, v in spec.config.items() if k not in keys}
    if config == spec.config:
        return spec
    return replace(spec, config=config)


def _delegate(
    spec: ScenarioSpec, program, strip: tuple[str, ...],
    mode: str, n_fg: int, n_bg: int,
) -> RunRecord:
    """Run a degenerate partition on the pure backend it collapses to.

    The delegated program sees a spec stripped of the config keys it
    would reject (or noisily ignore); the returned record is re-stamped
    with the original hybrid spec so caching and reporting key off the
    right identity.
    """
    record = program(_strip_config(spec, strip))
    record.spec = spec
    record.extras["hybrid_mode"] = mode
    record.extras["foreground_flows"] = n_fg
    record.extras["background_flows"] = n_bg
    return record


def _delegate_packet(spec, n_fg):
    from ..runner.execute import PROGRAMS

    return _delegate(
        spec, PROGRAMS[spec.program], _HYBRID_KEYS + _FLUID_KEYS,
        "all_foreground", n_fg, 0,
    )


def _delegate_fluid(spec, n_bg):
    from ..fluid.programs import FLUID_PROGRAMS

    return _delegate(
        spec, FLUID_PROGRAMS[spec.program], _HYBRID_KEYS,
        "all_background", 0, n_bg,
    )


def _make_fluid_half(topology, spec: ScenarioSpec, cfg: _HybridConfig):
    """The background engine: always the array implementation.

    Queue sampling stays on the packet half (one coherent label set in
    the record), so the fluid half never gets a ``sample_interval``.
    """
    engine = FluidEngine(
        topology,
        cc_name=spec.cc.name,
        cc_params=spec.cc.params,
        base_rtt=cfg.base_rtt,
        mtu=cfg.mtu,
        buffer_bytes=cfg.buffer_bytes,
        step=cfg.fluid_step,
        goodput_bin=cfg.goodput_bin,
    )
    tel = current_telemetry()
    if tel is not None and tel.decisions is not None:
        engine.decision_tap = tel.decisions
    return engine


def _install_dynamics(net, engine, timeline, burst_entries):
    """Mirror the timeline onto both halves.

    Each half applies fail/restore/degrade natively (the packet driver
    on the calendar queue, the fluid driver on the event heap); burst
    flows were already materialized into the partitioned population, so
    only the packet driver carries the accounting entries (one report,
    no double counting).
    """
    drivers = []
    if timeline:
        packet_driver = PacketDynamicsDriver(net, timeline, burst_entries)
        packet_driver.install()
        fluid_driver = FluidDynamicsDriver(engine, timeline, [])
        fluid_driver.install()
        drivers = [packet_driver, fluid_driver]
    return drivers


def _run_mixed(
    spec: ScenarioSpec,
    topology,
    cfg: _HybridConfig,
    net,
    foreground: list[FlowSpec],
    background: list[FlowSpec],
    timeline,
    burst_entries: list[dict],
    deadline: float,
    sample_ports: dict | None,
) -> RunRecord:
    """Build, couple and run both halves; assemble the merged record."""
    with maybe_span("setup"):
        engine = _make_fluid_half(topology, spec, cfg)
        drivers = _install_dynamics(net, engine, timeline, burst_entries)
        net.add_flows(foreground)
        engine.add_flows(background)
        sampler = None
        interval = spec.measure.get("sample_interval")
        if interval is not None:
            ports = sample_ports if sample_ports is not None \
                else net.switch_port_labels()
            sampler = QueueSampler(net.sim, ports, interval)
        hybrid = HybridEngine(
            net, engine, epoch=cfg.epoch, min_residual=cfg.min_residual,
        )

    tel = current_telemetry()
    sim_probe = instrument_simulator(net.sim, tel) if tel is not None else None
    fluid_probe = instrument_fluid(engine, tel) if tel is not None else None
    try:
        with maybe_span("run"):
            completed = hybrid.run(deadline)
    finally:
        if sim_probe is not None:
            sim_probe.finish(net.sim)
            net.sim.telemetry = None
        if fluid_probe is not None:
            fluid_probe.finish(engine)
            engine.telemetry = None
    if sampler is not None:
        sampler.stop()

    with maybe_span("collect"):
        result = RunResult(
            net=net, records=net.metrics.fct_records, sampler=sampler,
            duration=hybrid.now, completed=completed,
        )
        extras = _base_extras(spec, result, net)
        packet_wire = engine.mtu + engine.header
        extras["drops"] += int(engine.dropped_bytes() / packet_wire)
        extras["fluid_steps"] = engine.steps
        extras["fluid_flow_steps"] = engine.flow_steps
        extras["hybrid_mode"] = "mixed"
        extras["foreground_flows"] = len(foreground)
        extras["background_flows"] = len(background)
        extras["hybrid_epoch"] = hybrid.epoch
        extras["hybrid_epochs"] = hybrid.epochs
        extras["foreground_flow_ids"] = sorted(
            fs.flow_id for fs in foreground
        )
        if cfg.ignored:
            extras["fluid_ignored_config"] = cfg.ignored
        if drivers:
            extras["link_events"] = drivers[0].report()
        fluid_goodput = engine.goodput_payload()
        if fluid_goodput is not None:
            if "goodput" in extras:
                extras["goodput"]["bins"].update(fluid_goodput["bins"])
            else:
                extras["goodput"] = fluid_goodput
        if spec.measure.get("windows"):
            windows: dict[str, float | None] = {}
            for fs in foreground:
                flow = net.nics[fs.src].flows.get(fs.flow_id)
                windows[str(fs.flow_id)] = getattr(flow, "window", None) \
                    if flow is not None else None
            for f in engine._starts:
                windows[str(f.spec.flow_id)] = f.proxy.window
            extras["final_windows"] = windows
        fct = _fct_payload(result) + [
            {
                "flow_id": r.spec.flow_id, "src": r.spec.src,
                "dst": r.spec.dst, "size": r.spec.size,
                "start_time": r.spec.start_time, "tag": r.spec.tag,
                "start": r.start, "finish": r.finish, "ideal": r.ideal,
            }
            for r in engine.fct_records
        ]
        fct.sort(key=lambda r: (r["finish"], r["flow_id"]))
        queues = {}
        if sampler is not None:
            queues = {
                label: {"times": list(sampler.times), "qlens": list(values)}
                for label, values in sampler.samples.items()
            }
        return RunRecord(
            spec=spec,
            fct=fct,
            queues=queues,
            extras=extras,
            events_processed=hybrid.events_processed,
            duration_ns=hybrid.now,
            completed=completed,
        )


def _run_load_hybrid(spec: ScenarioSpec) -> RunRecord:
    """Hybrid twin of the packet ``load`` program.

    The Poisson/incast population is generated by the same helper with
    the packet half's wire overhead (exactly as the packet program
    does), then partitioned; degenerate partitions delegate to the pure
    backends.
    """
    with maybe_span("setup"):
        topology = build_topology(spec)
        cfg = _HybridConfig(spec)
        net = setup_network(
            topology, spec.cc, base_rtt=cfg.base_rtt,
            goodput_bin=cfg.goodput_bin, seed=spec.seed, **cfg.packet,
        )
        workload = spec.workload
        wire = (net.config.mtu + net.header) / net.config.mtu
        flows, duration = generate_load_flows(
            topology, workload_cdf(workload),
            load=workload["load"], n_flows=workload["n_flows"],
            seed=spec.seed, wire_overhead=wire,
            incast=workload.get("incast"),
        )
        timeline = spec_timeline(spec)
        bursts: list[FlowSpec] = []
        burst_entries: list[dict] = []
        if timeline:
            next_id = max((fs.flow_id for fs in flows), default=0) + 1
            bursts, burst_entries = burst_flow_specs(
                timeline, topology.hosts, spec.seed, next_id
            )
        population = flows + bursts
        foreground, background = partition_specs(
            population, workload.get("foreground")
        )
    if not background:
        return _delegate_packet(spec, len(foreground))
    if not foreground:
        return _delegate_fluid(spec, len(background))
    record = _run_mixed(
        spec, topology, cfg, net, foreground, background,
        timeline, burst_entries,
        deadline=duration * workload.get("deadline_factor", 2.5),
        sample_ports=None,
    )
    _merge_burst_flow_ids(record.extras)
    return record


def _run_flows_hybrid(spec: ScenarioSpec) -> RunRecord:
    """Hybrid twin of the packet ``flows`` program, dynamics included."""
    with maybe_span("setup"):
        topology = build_topology(spec)
        cfg = _HybridConfig(spec)
        workload = spec.workload
        flow_specs = [
            FlowSpec(
                flow_id=i, src=entry[0], dst=entry[1], size=entry[2],
                start_time=entry[3] if len(entry) > 3 else 0.0,
                tag=entry[4] if len(entry) > 4 else "bg",
            )
            for i, entry in enumerate(workload["flows"], start=1)
        ]
        timeline = spec_timeline(spec)
        bursts: list[FlowSpec] = []
        burst_entries: list[dict] = []
        if timeline:
            next_id = max((fs.flow_id for fs in flow_specs), default=0) + 1
            bursts, burst_entries = burst_flow_specs(
                timeline, topology.hosts, spec.seed, next_id
            )
        population = flow_specs + bursts
        foreground, background = partition_specs(
            population, workload.get("foreground")
        )
    if not background:
        return _delegate_packet(spec, len(foreground))
    if not foreground:
        return _delegate_fluid(spec, len(background))
    with maybe_span("setup"):
        net = setup_network(
            topology, spec.cc, base_rtt=cfg.base_rtt,
            goodput_bin=cfg.goodput_bin, seed=spec.seed, **cfg.packet,
        )
        sample_ports = _resolve_ports(net, spec.measure.get("sample_ports"))
    record = _run_mixed(
        spec, topology, cfg, net, foreground, background,
        timeline, burst_entries,
        deadline=workload["deadline"], sample_ports=sample_ports,
    )
    flow_ids: dict[str, list[int]] = {}
    for fs in population:
        flow_ids.setdefault(fs.tag, []).append(fs.flow_id)
    record.extras["flow_ids"] = flow_ids
    return record


#: Program name -> hybrid implementation.  The analytic appendix
#: programs are backend-independent; ``execute_spec`` reuses the packet
#: entries.
HYBRID_PROGRAMS = {
    "load": _run_load_hybrid,
    "flows": _run_flows_hybrid,
}
