"""Foreground-flow selection for the hybrid backend.

A hybrid spec carries its partition rule in ``workload["foreground"]``
(inside ``workload`` on purpose: the workload dict is spec identity, so
two partitions of one scenario never share a cache entry).  The rule is
a small JSON dict; :func:`parse_foreground` builds one from the CLI's
``--foreground`` string and :func:`partition_specs` applies it to a
generated flow population:

* ``{"kind": "all"}`` / ``{"kind": "none"}`` — the degenerate limits
  (pure packet / pure fluid);
* ``{"kind": "count", "n": N}`` — the first ``N`` flows to start;
* ``{"kind": "frac", "x": X}`` — the first ``round(X * n)`` flows;
* ``{"kind": "tag", "tags": [...]}`` — flows whose tag is listed
  (e.g. ``incast`` victims under a Poisson background).

Selection is deterministic: "first" means ``(start_time, flow_id)``
order, and the returned halves preserve the input list order, so a
partition is a pure function of the spec — resumed and re-run sweeps
partition identically.
"""

from __future__ import annotations

from ..sim.flow import FlowSpec

#: A hybrid spec with no explicit selector foregrounds the first 10% of
#: the population — the regime the backend exists for (a thin foreground
#: under heavy modeled background, the >=5x speedup gate in
#: ``benchmarks/bench_hybrid.py``).
DEFAULT_SELECTOR: dict = {"kind": "frac", "x": 0.1}

_KINDS = ("all", "none", "count", "frac", "tag")


def parse_foreground(text: str) -> dict:
    """Parse a ``--foreground`` CLI value into a selector dict.

    Accepted forms: ``all``, ``none``, ``count:N``, ``frac:X`` and
    ``tag:a,b,...``.
    """
    text = text.strip()
    if text in ("all", "none"):
        return {"kind": text}
    kind, sep, arg = text.partition(":")
    if not sep or kind not in _KINDS:
        raise ValueError(
            f"bad foreground selector {text!r}; expected all, none, "
            "count:N, frac:X or tag:a,b"
        )
    if kind == "count":
        n = int(arg)
        if n < 0:
            raise ValueError(f"count must be >= 0, got {n}")
        return {"kind": "count", "n": n}
    if kind == "frac":
        x = float(arg)
        if not 0.0 <= x <= 1.0:
            raise ValueError(f"frac must be in [0, 1], got {x}")
        return {"kind": "frac", "x": x}
    tags = [t for t in arg.split(",") if t]
    if not tags:
        raise ValueError("tag selector needs at least one tag")
    return {"kind": "tag", "tags": tags}


def _foreground_ids(specs: list[FlowSpec], selector: dict) -> set[int]:
    kind = selector.get("kind")
    if kind == "all":
        return {fs.flow_id for fs in specs}
    if kind == "none":
        return set()
    if kind == "tag":
        tags = set(selector["tags"])
        return {fs.flow_id for fs in specs if fs.tag in tags}
    if kind == "count":
        n = int(selector["n"])
    elif kind == "frac":
        n = round(float(selector["x"]) * len(specs))
    else:
        known = ", ".join(_KINDS)
        raise ValueError(
            f"unknown foreground selector kind {kind!r}; known: {known}"
        )
    ordered = sorted(specs, key=lambda fs: (fs.start_time, fs.flow_id))
    return {fs.flow_id for fs in ordered[:n]}


def partition_specs(
    specs: list[FlowSpec], selector: dict | None
) -> tuple[list[FlowSpec], list[FlowSpec]]:
    """Split a flow population into ``(foreground, background)``.

    ``None`` selects :data:`DEFAULT_SELECTOR`.  Both returned lists
    preserve the order of ``specs``.
    """
    if selector is None:
        selector = DEFAULT_SELECTOR
    fg_ids = _foreground_ids(specs, selector)
    foreground = [fs for fs in specs if fs.flow_id in fg_ids]
    background = [fs for fs in specs if fs.flow_id not in fg_ids]
    return foreground, background
