"""The hybrid lockstep loop: one calendar queue, one step loop, one clock.

:class:`HybridEngine` owns an already-populated packet ``Network``
(foreground flows) and ``FluidEngine`` (background flows) over the same
topology and advances them in lockstep *epochs*: per epoch the coupler
publishes the fluid registers to the packet half, the packet calendar
queue runs to the epoch boundary, the measured foreground rates are
folded back into the fluid capacity terms, and the fluid step loop runs
to the same boundary.  Both clocks therefore agree at every boundary
and each half sees the other at most one epoch stale — the documented
coupling error, which shrinks with ``hybrid_epoch`` (default: the fluid
step, one base RTT).

The loop ends when the deadline hits or both halves report completion
(matching each engine's own run-until-done semantics — pending timeline
events after the last flow are left unfired, as in both pure backends).
"""

from __future__ import annotations

from .coupling import HybridCoupler


class HybridEngine:
    """Lockstep co-simulation driver over a packet and a fluid half.

    Both halves must be fully built (flows added, dynamics installed)
    before construction; the constructor attaches the coupler's link
    views, so a freshly constructed ``HybridEngine`` already alters the
    packet half's ECN/INT/serialization inputs.  Degenerate partitions
    never construct one — ``repro.hybrid.programs`` delegates those
    straight to the pure backends.
    """

    def __init__(
        self,
        net,
        engine,
        epoch: float | None = None,
        min_residual: float = 0.05,
    ) -> None:
        self.net = net
        self.engine = engine
        self.epoch = epoch if epoch is not None else engine.step
        if self.epoch <= 0:
            raise ValueError(f"epoch must be positive, got {self.epoch}")
        self.coupler = HybridCoupler(net, engine, min_residual=min_residual)
        self.epochs = 0

    @property
    def events_processed(self) -> int:
        """Packet events plus fluid steps — the hybrid work metric."""
        return self.net.sim.events_processed + self.engine.steps

    @property
    def now(self) -> float:
        """The co-simulation clock (both halves agree at boundaries)."""
        return max(self.net.sim.now, self.engine.now)

    def run(self, deadline: float) -> bool:
        """Advance both halves to ``deadline`` or joint completion.

        Returns True when every flow on both halves completed.  The
        packet metrics hub is finalized on exit, mirroring
        ``Network.run_until_done``.
        """
        net = self.net
        engine = self.engine
        coupler = self.coupler
        epoch = self.epoch
        t = min(net.sim.now, engine.now)
        prev_dt = 0.0
        packet_done = net.metrics.flows.n_outstanding == 0
        try:
            while t < deadline:
                t_next = min(t + epoch, deadline)
                dt = t_next - t
                coupler.push_background(t, prev_dt)
                net.run(until=t_next)
                coupler.push_foreground(dt)
                engine.run(deadline=t_next)
                self.epochs += 1
                prev_dt = dt
                t = t_next
                packet_done = net.metrics.flows.n_outstanding == 0
                if packet_done and engine.completed:
                    break
        finally:
            net.finalize()
        return packet_done and engine.completed
