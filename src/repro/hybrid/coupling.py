"""Epoch coupling between the packet and fluid halves of a hybrid run.

The two engines share the network's *links*, not its flows, so the
coupling contract is per-link and directional, exchanged once per epoch
(default: one base RTT, the fluid step length):

* **fluid -> packet** (:meth:`HybridCoupler.push_background`): before
  the packet half advances an epoch, every bound egress port gets a
  :class:`BgLinkView` snapshot of the fluid link registers — background
  queue depth (folded into WRED/ECN marking and INT ``qlen``),
  cumulative background bytes (folded into INT ``tx``/``rx``, linearly
  extrapolated at the measured background rate inside the epoch so
  inter-ACK txRate estimates see smooth cross-traffic) and the
  ``residual`` capacity fraction left over for packet serialization.
* **packet -> fluid** (:meth:`HybridCoupler.push_foreground`): after
  the packet half advances, per-port ``tx_bytes`` deltas become
  per-link foreground rates in ``FluidEngine.ext_rates``; the fluid
  step loop then throttles the background against the residual
  ``capacity - ext_rates`` instead of the full line rate.

Register ownership is strict and disjoint: packet ports own the
foreground queue (bytes physically enqueued), the fluid arrays own the
background queue (modeled fluid), and each half only ever *reads* the
other's contribution through this coupler — neither mutates the other's
registers, so there is no double counting and detaching the coupler
restores both engines bit-identically.

Approximations, stated openly: background state is piecewise-constant
within an epoch (the first epoch sees no background at all), parallel
trunk members bound to one pooled fluid link share a single view, and
PFC/buffer occupancy never sees background bytes (the fluid model is
lossless per queue; drops there are accounted separately).
"""

from __future__ import annotations

import numpy as np


class BgLinkView:
    """One link's background share, as seen by the packet half.

    Updated in place once per epoch by :class:`HybridCoupler`; the
    packet hot paths (``Switch.receive``/``_on_emit``,
    ``EgressPort._kick``) read it through a single ``is None`` gate.
    """

    __slots__ = ("qlen", "tx0", "rate", "t0", "residual")

    def __init__(self) -> None:
        self.qlen = 0.0         # background queue depth, bytes
        self.tx0 = 0.0          # cumulative background bytes at t0
        self.rate = 0.0         # background rate over the last epoch, B/ns
        self.t0 = 0.0           # epoch start this snapshot was taken at
        self.residual = 1.0     # capacity fraction left for the packet half


class _Binding:
    """One shared link: the fluid row and its packet egress ports."""

    __slots__ = ("index", "link", "ports", "view", "prev_fg_tx", "prev_bg_tx")

    def __init__(self, index: int, link, ports: list) -> None:
        self.index = index
        self.link = link
        self.ports = ports
        self.view = BgLinkView()
        self.prev_fg_tx = 0.0       # summed packet tx_bytes at last epoch
        self.prev_bg_tx = 0.0       # fluid arrays.tx at last epoch


class HybridCoupler:
    """Builds and drives the per-link bindings between the two halves.

    Construction walks ``net.port_map`` and binds every directed link
    that also exists in the fluid graph: switch egress ports get their
    view registered on the owning switch (INT/ECN fold-in) *and* on the
    port (residual serialization); host NIC uplinks get the port-side
    view only (hosts stamp no INT hops).  ``min_residual`` floors the
    serialization share so a background-saturated link degrades
    gracefully instead of stalling the packet half.
    """

    def __init__(self, net, engine, min_residual: float = 0.05) -> None:
        if not 0.0 < min_residual <= 1.0:
            raise ValueError(
                f"min_residual must be in (0, 1], got {min_residual}"
            )
        self.net = net
        self.engine = engine
        self.min_residual = min_residual
        self.bindings: list[_Binding] = []
        self.ext_rates = np.zeros(engine.arrays.n)
        self.ext_qlen = np.zeros(engine.arrays.n)
        for (a, b), port_ids in net.port_map.items():
            link = engine.graph.links.get((a, b))
            if link is None:
                continue
            if a in net.switches:
                switch = net.switches[a]
                ports = [switch.ports[pid] for pid in port_ids]
            else:
                ports = [net.nics[a].port]
            binding = _Binding(link.index, link, ports)
            for port in ports:
                port.bg_view = binding.view
            if a in net.switches:
                switch = net.switches[a]
                if switch.bg_views is None:
                    switch.bg_views = {}
                for pid in port_ids:
                    switch.bg_views[pid] = binding.view
            self.bindings.append(binding)

    # -- per-epoch exchanges -----------------------------------------------------

    def push_background(self, t0: float, dt: float) -> None:
        """Snapshot fluid registers into the packet-side views.

        Called *before* the packet half advances the epoch starting at
        ``t0``; ``dt`` is the length of the previous epoch (the window
        the background rate is measured over).
        """
        A = self.engine.arrays
        queue = A.queue
        tx = A.tx
        capacity = A.capacity
        min_residual = self.min_residual
        for binding in self.bindings:
            i = binding.index
            view = binding.view
            bg_tx = float(tx[i])
            rate = (bg_tx - binding.prev_bg_tx) / dt if dt > 0.0 else 0.0
            binding.prev_bg_tx = bg_tx
            view.qlen = float(queue[i])
            view.tx0 = bg_tx
            view.rate = rate
            view.t0 = t0
            cap = float(capacity[i])
            if cap > 0.0:
                view.residual = max(min_residual, 1.0 - rate / cap)
            else:
                # A failed link carries no fluid; the packet half's own
                # dynamics driver handles the outage.
                view.residual = 1.0

    def push_foreground(self, dt: float) -> None:
        """Fold measured packet rates into the fluid capacity terms.

        Called *after* the packet half advanced an epoch of length
        ``dt``; the fluid half then runs the same epoch against the
        residual capacity.
        """
        ext = self.ext_rates
        extq = self.ext_qlen
        for binding in self.bindings:
            fg_tx = 0.0
            fg_qlen = 0.0
            for port in binding.ports:
                fg_tx += port.tx_bytes
                fg_qlen += port.qlen_bytes
            ext[binding.index] = (
                (fg_tx - binding.prev_fg_tx) / dt if dt > 0.0 else 0.0
            )
            extq[binding.index] = fg_qlen
            binding.prev_fg_tx = fg_tx
        self.engine.ext_rates = ext
        self.engine.ext_qlen = extq

    def detach(self) -> None:
        """Remove every view, restoring both engines' pure hot paths."""
        for binding in self.bindings:
            for port in binding.ports:
                port.bg_view = None
        for switch in self.net.switches.values():
            switch.bg_views = None
        self.engine.ext_rates = None
        self.engine.ext_qlen = None
