"""Appendix A.3: additive increase and fairness.

At equilibrium of the per-source update

    R(t + RTT) = R(t) * Utarget / U(t + RTT) + a

the paper derives::

    R    = a * (1 - Utarget / U)^(-1)
    U(i) = Utarget * (1 - a / R(i))^(-1)

and, with per-resource registers, the alpha-fair aggregation

    R = ( sum_i R_i^(-alpha) )^(-1/alpha)

whose limits are max-min fairness (alpha -> inf), proportional fairness
(alpha = 1) and rate-sum maximization (alpha -> 0).  These closed forms
are checked against fixed-point iteration in the tests.
"""

from __future__ import annotations

import math
from typing import Sequence


def equilibrium_rate(a: float, u_target: float, u: float) -> float:
    """R = a / (1 - Utarget / U); requires U > Utarget."""
    if u <= u_target:
        raise ValueError("equilibrium requires U > Utarget")
    return a / (1.0 - u_target / u)


def equilibrium_utilization(a: float, u_target: float, rate: float) -> float:
    """U(i) = Utarget / (1 - a / R(i)); requires R > a."""
    if rate <= a:
        raise ValueError("equilibrium requires R > a")
    return u_target / (1.0 - a / rate)


def max_stable_ai(u_target: float, min_rate: float) -> float:
    """Largest additive step keeping the most congested link under 100%.

    Appendix A.3: U(1) < 1 iff a < R(1) x (1 - Utarget); e.g. with
    Utarget = 95% the step must stay below 5% of the slowest flow's rate.
    """
    if not 0 < u_target < 1:
        raise ValueError("u_target must be in (0, 1)")
    return min_rate * (1.0 - u_target)


def iterate_single_resource(
    n_flows: int,
    capacity: float,
    a: float,
    u_target: float,
    n_steps: int = 2000,
    r0: float | None = None,
) -> tuple[float, float]:
    """Fixed-point iteration of the A.3 update on one shared resource.

    Returns (per-flow rate, utilization) after ``n_steps`` synchronous
    rounds; tests compare this against the closed forms above.
    """
    r = r0 if r0 is not None else capacity / n_flows
    for _ in range(n_steps):
        u = n_flows * r / capacity
        r = r * u_target / u + a
    return r, n_flows * r / capacity


def alpha_fair_rate(per_resource_rates: Sequence[float], alpha: float) -> float:
    """Eqn (7): R = (sum R_i^-alpha)^(-1/alpha)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if not per_resource_rates:
        raise ValueError("need at least one resource rate")
    if any(r <= 0 for r in per_resource_rates):
        raise ValueError("rates must be positive")
    total = sum(r ** (-alpha) for r in per_resource_rates)
    return total ** (-1.0 / alpha)


def alpha_fair_limits(per_resource_rates: Sequence[float]) -> dict[str, float]:
    """The named limits of Eqn (7) for reference/tests."""
    return {
        "max_min (alpha->inf)": min(per_resource_rates),
        "proportional (alpha=1)": alpha_fair_rate(per_resource_rates, 1.0),
        "harmonic-ish (alpha=2)": alpha_fair_rate(per_resource_rates, 2.0),
    }


def wai_rule_of_thumb(winit: float, eta: float, n_flows: int) -> float:
    """Section 3.3: WAI = Winit x (1 - eta) / N."""
    if n_flows < 1:
        raise ValueError("n_flows must be >= 1")
    return winit * (1.0 - eta) / n_flows


def fairness_convergence_time(
    w_start: float, w_fair: float, wai: float, base_rtt: float
) -> float:
    """Rough rounds-to-fairness estimate: AI closes the gap by WAI per RTT."""
    if wai <= 0:
        raise ValueError("wai must be positive")
    gap = abs(w_fair - w_start)
    return math.ceil(gap / wai) * base_rtt
