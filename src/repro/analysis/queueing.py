"""Appendix A.1: queueing at a sub-100% utilized resource.

With N paced (periodic) sources at total load rho on a deterministic
server, the paper cites two classic results for the sum-of-D_i/D/1 queue:

* at 100% load the mean queue is about sqrt(pi N / 8) packets,
* at 95% load with 50 sources the mean queue is ~3 packets and
  P(Q > 20) ~ 1e-9 (Brownian-bridge approximation).

``mean_queue_full_load`` and ``overflow_probability`` give the analytic
approximations; :class:`PeriodicSourcesQueue` is a tiny standalone
simulation of N periodic sources feeding a unit-rate server, used by the
tests and the A.1 benchmark to confirm the approximations — and thereby
the design decision that eta = 95% plus pacing keeps queues near zero.
"""

from __future__ import annotations

import math
import random


def mean_queue_full_load(n_sources: int) -> float:
    """Mean queue (packets) of N superposed periodic sources at rho = 1."""
    if n_sources < 1:
        raise ValueError("need at least one source")
    return math.sqrt(math.pi * n_sources / 8.0)


def overflow_probability(n_sources: int, rho: float, threshold: float) -> float:
    """Brownian-bridge tail estimate P(Q > threshold) for rho < 1.

    The standard heavy-traffic approximation for the ND/D/1 queue:
    P(Q > b) ~ exp(-2 b (b + N (1 - rho)) / N).
    """
    if not 0 < rho <= 1:
        raise ValueError("rho must be in (0, 1]")
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    n = float(n_sources)
    b = float(threshold)
    return math.exp(-2.0 * b * (b + n * (1.0 - rho)) / n)


class PeriodicSourcesQueue:
    """Simulate N periodic unit-packet sources into a unit-rate server.

    Source i emits one packet every ``n / rho`` time units starting at a
    random phase; the server transmits one packet per time unit.  This is
    exactly the sum-of-D_i/D/1 model of Appendix A.1.
    """

    def __init__(self, n_sources: int, rho: float, seed: int = 1) -> None:
        if n_sources < 1:
            raise ValueError("need at least one source")
        if not 0 < rho <= 1:
            raise ValueError("rho must be in (0, 1]")
        self.n = n_sources
        self.rho = rho
        self.period = n_sources / rho
        self.rng = random.Random(seed)

    def sample_queue(self, n_periods: int = 50) -> list[float]:
        """Queue length observed at each arrival over ``n_periods`` cycles."""
        # Generate all arrivals: source i has phase p_i, arrivals p_i + m*period.
        offsets = [self.rng.uniform(0, self.period) for _ in range(self.n)]
        arrivals: list[float] = []
        for off in offsets:
            for m in range(n_periods):
                arrivals.append(off + m * self.period)
        arrivals.sort()
        # Single server, unit service time: Lindley recursion on workload.
        queue_samples: list[float] = []
        workload = 0.0
        last_t = 0.0
        for t in arrivals:
            workload = max(0.0, workload - (t - last_t))
            queue_samples.append(workload)   # packets waiting (incl. in service)
            workload += 1.0
            last_t = t
        # Skip the first period (warm-up transient).
        skip = self.n
        return queue_samples[skip:]

    def mean_queue(self, n_periods: int = 50) -> float:
        samples = self.sample_queue(n_periods)
        return sum(samples) / len(samples)

    def tail_probability(self, threshold: float, n_periods: int = 50) -> float:
        samples = self.sample_queue(n_periods)
        return sum(1 for s in samples if s > threshold) / len(samples)
