"""Executable versions of the paper's Appendix A analysis."""

from .convergence import RateNetwork, random_network
from .fairness import (
    alpha_fair_limits,
    alpha_fair_rate,
    equilibrium_rate,
    equilibrium_utilization,
    fairness_convergence_time,
    iterate_single_resource,
    max_stable_ai,
    wai_rule_of_thumb,
)
from .queueing import (
    PeriodicSourcesQueue,
    mean_queue_full_load,
    overflow_probability,
)

__all__ = [
    "PeriodicSourcesQueue",
    "RateNetwork",
    "alpha_fair_limits",
    "alpha_fair_rate",
    "equilibrium_rate",
    "equilibrium_utilization",
    "fairness_convergence_time",
    "iterate_single_resource",
    "max_stable_ai",
    "mean_queue_full_load",
    "overflow_probability",
    "random_network",
    "wai_rule_of_thumb",
]
