"""Appendix A.2: fast convergence of utilization.

Implements the discrete-time model of recursions (5)-(6)::

    Y(n)   = A R(n)
    R_j(n+1) = R_j(n) / max_i { Y_i(n) A_ij / C_i }

and checks the Lemma numerically:

(i)   rates are feasible (Y <= C) after one step,
(ii)  rates are non-decreasing after the first step,
(iii) rates are constant and Pareto-optimal after at most I steps.

The module is deliberately free of the packet simulator: it is the pure
mathematical model the paper analyses, used by tests and the Appendix A.2
benchmark to validate the control law that HPCC's MI term implements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RateNetwork:
    """A resources x paths incidence model (Appendix A.2 notation)."""

    incidence: np.ndarray      # A: shape (I, J), 0/1
    capacities: np.ndarray     # C: shape (I,), > 0

    def __post_init__(self) -> None:
        a = np.asarray(self.incidence)
        c = np.asarray(self.capacities)
        if a.ndim != 2:
            raise ValueError("incidence must be a 2-D matrix")
        if c.shape != (a.shape[0],):
            raise ValueError("capacities must have one entry per resource")
        if (c <= 0).any():
            raise ValueError("capacities must be positive")
        if ((a != 0) & (a != 1)).any():
            raise ValueError("incidence entries must be 0 or 1")
        if (a.sum(axis=0) == 0).any():
            raise ValueError("every path must use at least one resource")

    @property
    def n_resources(self) -> int:
        return self.incidence.shape[0]

    @property
    def n_paths(self) -> int:
        return self.incidence.shape[1]

    def loads(self, rates: np.ndarray) -> np.ndarray:
        """Y = A R."""
        return self.incidence @ rates

    def is_feasible(self, rates: np.ndarray, tol: float = 1e-9) -> bool:
        return bool((self.loads(rates) <= self.capacities * (1 + tol)).all())

    def step(self, rates: np.ndarray) -> np.ndarray:
        """One synchronous update of recursion (6)."""
        rates = np.asarray(rates, dtype=float)
        if (rates <= 0).any():
            raise ValueError("rates must be positive")
        y = self.loads(rates)
        # k_j = max_i { Y_i A_ij / C_i } over the resources path j uses.
        ratios = (y / self.capacities)[:, None] * self.incidence
        k = ratios.max(axis=0)
        return rates / k

    def iterate(self, rates: np.ndarray, n_steps: int) -> list[np.ndarray]:
        """The trajectory [R(0), R(1), ..., R(n_steps)]."""
        out = [np.asarray(rates, dtype=float)]
        for _ in range(n_steps):
            out.append(self.step(out[-1]))
        return out

    def is_pareto_optimal(self, rates: np.ndarray, tol: float = 1e-6) -> bool:
        """Every path crosses at least one saturated resource."""
        y = self.loads(rates)
        saturated = y >= self.capacities * (1 - tol)
        for j in range(self.n_paths):
            uses = self.incidence[:, j] > 0
            if not saturated[uses].any():
                return False
        return True

    def converged_rates(self, rates: np.ndarray) -> np.ndarray:
        """Run the recursion for I steps (the Lemma's bound) and return R."""
        trajectory = self.iterate(rates, self.n_resources)
        return trajectory[-1]


def random_network(
    n_resources: int,
    n_paths: int,
    rng: np.random.Generator,
    p_use: float = 0.4,
) -> RateNetwork:
    """A random instance for property tests (every path uses >= 1 resource)."""
    a = (rng.random((n_resources, n_paths)) < p_use).astype(float)
    for j in range(n_paths):
        if a[:, j].sum() == 0:
            a[rng.integers(n_resources), j] = 1.0
    c = rng.uniform(0.5, 10.0, size=n_resources)
    return RateNetwork(a, c)
