"""The network-dynamics timeline DSL.

A :class:`Timeline` is a declarative schedule of typed mid-run events —
the scenario class HPCC's Section 2.3 cares most about (DCQCN's traffic
oscillations during link failures) and the one PCC argues CC schemes
must be judged on: *changing* network conditions, not steady state.

Five event types cover the paper's dynamic scenarios:

* :class:`FailLink` — cut one link between two nodes (parallel links
  fail one at a time, like individual fibers);
* :class:`RestoreLink` — bring the oldest failed link of a pair back;
* :class:`DegradeLink` — scale a link's rate and/or propagation delay
  in place (a flaky optic, an oversubscribed tunnel) without touching
  routing;
* :class:`FlapLink` — a periodic fail/restore train (``count`` outages
  of ``down_time`` each, one per ``period``), the routing-instability
  scenario;
* :class:`InjectBurst` — a synchronized ``fan_in``-to-one incast pulse
  at a scheduled instant, for reaction-time studies.

Timelines are pure data: they round-trip through JSON (so they live on
:class:`~repro.runner.spec.ScenarioSpec` as the hash-distinct
``dynamics`` field), sort themselves by time, validate eagerly, and
expand composites (flaps) into primitives that both execution backends
interpret identically.  :func:`dynamics_axis` turns a list of timelines
into a sweep axis, so fault schedules vary across a grid like any other
parameter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Callable, Iterable

from ..sim.flow import FlowSpec

__all__ = [
    "DegradeLink",
    "DynEvent",
    "EVENT_TYPES",
    "FailLink",
    "FlapLink",
    "InjectBurst",
    "RestoreLink",
    "Timeline",
    "burst_flow_specs",
    "dynamics_axis",
]


@dataclass(frozen=True)
class DynEvent:
    """Base of every timeline event: a typed record with a fire time."""

    at: float                           # ns

    kind = ""                           # overridden per subclass

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(f"{self.kind}: event time must be >= 0, got {self.at}")

    def to_json(self) -> dict:
        data = {"type": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is not None:
                data[f.name] = value
        return data

    @classmethod
    def from_json(cls, data: dict) -> "DynEvent":
        kwargs = {k: v for k, v in data.items() if k != "type"}
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - names)
        if unknown:
            raise ValueError(f"{cls.kind}: unknown fields {unknown}")
        return cls(**kwargs)


@dataclass(frozen=True)
class _LinkEvent(DynEvent):
    """An event targeting one link between nodes ``a`` and ``b``."""

    a: int = -1
    b: int = -1

    def validate(self) -> None:
        super().validate()
        if self.a < 0 or self.b < 0 or self.a == self.b:
            raise ValueError(
                f"{self.kind}: needs two distinct node ids, got ({self.a}, {self.b})"
            )


@dataclass(frozen=True)
class FailLink(_LinkEvent):
    kind = "fail_link"


@dataclass(frozen=True)
class RestoreLink(_LinkEvent):
    kind = "restore_link"


@dataclass(frozen=True)
class DegradeLink(_LinkEvent):
    """Scale a link's rate and/or delay (factors apply to current values)."""

    kind = "degrade_link"

    rate_factor: float | None = None
    delay_factor: float | None = None

    def validate(self) -> None:
        super().validate()
        if self.rate_factor is None and self.delay_factor is None:
            raise ValueError("degrade_link: set rate_factor and/or delay_factor")
        if self.rate_factor is not None and self.rate_factor <= 0:
            raise ValueError(
                f"degrade_link: rate_factor must be positive, got {self.rate_factor}"
            )
        if self.delay_factor is not None and self.delay_factor <= 0:
            raise ValueError(
                f"degrade_link: delay_factor must be positive, got {self.delay_factor}"
            )


@dataclass(frozen=True)
class FlapLink(_LinkEvent):
    """``count`` outages of ``down_time`` each, starting every ``period``."""

    kind = "flap_link"

    period: float = 0.0
    down_time: float = 0.0
    count: int = 1

    def validate(self) -> None:
        super().validate()
        if self.down_time <= 0:
            raise ValueError(
                f"flap_link: down_time must be positive, got {self.down_time}"
            )
        if self.count < 1:
            raise ValueError(f"flap_link: count must be >= 1, got {self.count}")
        if self.count > 1 and self.period <= self.down_time:
            raise ValueError(
                "flap_link: period must exceed down_time "
                f"(got period={self.period}, down_time={self.down_time})"
            )

    def primitives(self) -> list[_LinkEvent]:
        """The flap as an alternating fail/restore train."""
        out: list[_LinkEvent] = []
        for i in range(self.count):
            start = self.at + i * self.period
            out.append(FailLink(at=start, a=self.a, b=self.b))
            out.append(RestoreLink(at=start + self.down_time, a=self.a, b=self.b))
        return out


@dataclass(frozen=True)
class InjectBurst(DynEvent):
    """A synchronized incast pulse: ``fan_in`` flows of ``flow_size`` into
    ``dst`` at time ``at`` (senders drawn deterministically from the seed)."""

    kind = "inject_burst"

    dst: int = -1
    fan_in: int = 0
    flow_size: int = 0
    tag: str = "burst"

    def validate(self) -> None:
        super().validate()
        if self.dst < 0:
            raise ValueError(f"inject_burst: dst must be a host id, got {self.dst}")
        if self.fan_in < 1:
            raise ValueError(f"inject_burst: fan_in must be >= 1, got {self.fan_in}")
        if self.flow_size <= 0:
            raise ValueError(
                f"inject_burst: flow_size must be positive, got {self.flow_size}"
            )


EVENT_TYPES: dict[str, type[DynEvent]] = {
    cls.kind: cls
    for cls in (FailLink, RestoreLink, DegradeLink, FlapLink, InjectBurst)
}


class Timeline:
    """An immutable, time-sorted schedule of dynamics events.

    ``detection_delay`` models routing-protocol reaction time: a link
    state change takes effect on the data plane immediately (packets
    drop, capacity moves) but routing reconverges only ``detection_delay``
    ns later — 0 (the default) reconverges at the event instant, which is
    what the legacy ``workload["events"]`` hook always did.
    """

    __slots__ = ("events", "detection_delay")

    def __init__(
        self,
        events: Iterable[DynEvent] = (),
        detection_delay: float = 0.0,
    ) -> None:
        ordered = sorted(events, key=lambda e: e.at)   # stable for ties
        for event in ordered:
            if not isinstance(event, DynEvent):
                raise TypeError(f"not a dynamics event: {event!r}")
            event.validate()
        if detection_delay < 0:
            raise ValueError(
                f"detection_delay must be >= 0, got {detection_delay}"
            )
        self.events: tuple[DynEvent, ...] = tuple(ordered)
        self.detection_delay = float(detection_delay)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(e.kind for e in self.events)
        return f"Timeline([{kinds}], detection_delay={self.detection_delay})"

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "events": [event.to_json() for event in self.events],
            "detection_delay": self.detection_delay,
        }

    @classmethod
    def from_json(cls, data: dict | list) -> "Timeline":
        """Parse ``{"events": [...], "detection_delay"?}`` (or a bare
        event list)."""
        if isinstance(data, list):
            data = {"events": data}
        events = []
        for entry in data.get("events", ()):
            kind = entry.get("type")
            event_cls = EVENT_TYPES.get(kind)
            if event_cls is None:
                known = ", ".join(sorted(EVENT_TYPES))
                raise ValueError(f"unknown dynamics event {kind!r}; known: {known}")
            events.append(event_cls.from_json(entry))
        return cls(events, detection_delay=data.get("detection_delay", 0.0))

    @classmethod
    def for_spec(
        cls, dynamics: dict | None, legacy_events: Iterable | None = None
    ) -> "Timeline":
        """The timeline one scenario spec declares.

        Merges the first-class ``spec.dynamics`` field with the legacy
        ``workload["events"]`` list (``[kind, t, a, b]`` rows — the
        pre-dynamics failover hook), which rides along as a deprecation
        shim: old JSON specs keep hashing and running identically.
        """
        timeline = cls.from_json(dynamics) if dynamics else cls()
        if not legacy_events:
            return timeline
        legacy: list[DynEvent] = []
        for row in legacy_events:
            kind, at, a, b = row[0], row[1], row[2], row[3]
            if kind == "fail_link":
                legacy.append(FailLink(at=at, a=a, b=b))
            elif kind == "restore_link":
                legacy.append(RestoreLink(at=at, a=a, b=b))
            else:
                raise ValueError(f"unknown link event {kind!r}")
        return cls(
            list(timeline.events) + legacy,
            detection_delay=timeline.detection_delay,
        )

    # -- expansion ---------------------------------------------------------------

    def primitives(self) -> list[tuple[int, DynEvent]]:
        """Every event as primitives, time-sorted: ``(origin index, event)``.

        Flaps expand into their fail/restore trains; the origin index
        points back into :attr:`events` so accounting can attribute an
        expanded primitive to its composite.
        """
        out: list[tuple[int, DynEvent]] = []
        for idx, event in enumerate(self.events):
            if isinstance(event, FlapLink):
                out.extend((idx, prim) for prim in event.primitives())
            else:
                out.append((idx, event))
        out.sort(key=lambda pair: pair[1].at)
        return out


# -- burst materialization --------------------------------------------------------

def burst_flow_specs(
    timeline: Timeline,
    hosts: Iterable[int],
    seed: int,
    next_flow_id: int,
) -> tuple[list[FlowSpec], list[dict]]:
    """Materialize every :class:`InjectBurst` as concrete flow specs.

    Senders are drawn with a deterministic per-event RNG, so the packet
    and fluid backends (which both call this with the same arguments)
    inject the *identical* burst population.  Returns ``(flow specs,
    accounting entries)``; entries carry the flow ids for
    ``RunRecord.link_events()`` and get their ``fired`` flag set by the
    driver once the run's end time is known.
    """
    host_list = list(hosts)
    specs: list[FlowSpec] = []
    entries: list[dict] = []
    for idx, event in enumerate(timeline.events):
        if not isinstance(event, InjectBurst):
            continue
        candidates = [h for h in host_list if h != event.dst]
        if event.fan_in > len(candidates):
            raise ValueError(
                f"inject_burst: fan_in {event.fan_in} exceeds the "
                f"{len(candidates)} available senders"
            )
        rng = random.Random((seed * 1_000_003 + idx) & 0xFFFFFFFF)
        srcs = rng.sample(candidates, event.fan_in)
        flow_ids = []
        for src in srcs:
            specs.append(FlowSpec(
                flow_id=next_flow_id, src=src, dst=event.dst,
                size=event.flow_size, start_time=event.at, tag=event.tag,
            ))
            flow_ids.append(next_flow_id)
            next_flow_id += 1
        entries.append({
            "type": event.kind, "time": event.at, "dst": event.dst,
            "fan_in": event.fan_in, "tag": event.tag, "fired": False,
            "flow_ids": flow_ids,
        })
    return specs, entries


# -- sweep integration ------------------------------------------------------------

def dynamics_axis(
    timelines: Iterable[Timeline | dict],
    label: Callable[[int, Timeline], str] | None = None,
) -> list[dict]:
    """A sweep axis varying the fault schedule.

    Each grid cell gets one timeline; ``label`` (optional) derives the
    spec label from ``(index, timeline)`` so sweeps stay readable::

        grid = ScenarioGrid(base, cc_axis(SCHEMES),
                            dynamics_axis(timelines, lambda i, t: f"flap{i}"))
    """
    axis = []
    for idx, timeline in enumerate(timelines):
        if isinstance(timeline, dict):
            timeline = Timeline.from_json(timeline)
        entry: dict = {"dynamics": timeline}
        if label is not None:
            entry["label"] = label(idx, timeline)
        axis.append(entry)
    return axis
