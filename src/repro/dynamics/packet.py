"""Packet-backend dynamics driver: timelines onto a live ``Network``.

Schedules every primitive of a :class:`~repro.dynamics.events.Timeline`
on the simulator and keeps per-event accounting.  The data plane and the
control plane react at different times, as in a real fabric:

* a link cut (or recovery) takes effect on the wire immediately —
  traffic serialized into a dead link is lost and counted;
* routing reconverges ``detection_delay`` later (0 by default), through
  the scoped incremental recompute in
  :class:`~repro.sim.routing.RoutingState`; the reconvergence report
  (destination columns recomputed, ECMP groups changed) lands in the
  event's accounting entry.

With ``detection_delay == 0`` cut and reconvergence share one scheduled
callback, so runs driven through the legacy ``workload["events"]`` shim
replay the exact event structure (and therefore ``events_processed``)
of the pre-dynamics hook — the golden determinism fixtures pin that.
"""

from __future__ import annotations

from .events import DegradeLink, FailLink, RestoreLink, Timeline

__all__ = ["PacketDynamicsDriver"]


class PacketDynamicsDriver:
    """Installs one timeline onto a packet :class:`~repro.network.Network`."""

    def __init__(
        self,
        net,
        timeline: Timeline,
        burst_entries: list[dict] | None = None,
    ) -> None:
        self.net = net
        self.timeline = timeline
        self.entries: list[dict] = []
        self._burst_entries = list(burst_entries or ())
        # id(link) -> (link, packets_lost_down snapshot at cut, fail entry).
        self._open_outages: dict[int, tuple[object, int, dict]] = {}
        self._installed = False

    # -- scheduling --------------------------------------------------------------

    def install(self) -> None:
        """Schedule every primitive event on the network's simulator.

        Burst flows are *not* scheduled here — they are ordinary flow
        specs (see :func:`~repro.dynamics.events.burst_flow_specs`) the
        program adds alongside the workload; the driver only tracks
        their accounting entries.
        """
        if self._installed:
            raise RuntimeError("driver already installed")
        self._installed = True
        sim = self.net.sim
        for _origin, event in self.timeline.primitives():
            if isinstance(event, FailLink):
                entry = self._link_entry(event)
                entry["packets_lost_down"] = 0
                sim.at(event.at, self._fire_fail, event, entry)
            elif isinstance(event, RestoreLink):
                entry = self._link_entry(event)
                entry["packets_lost_down"] = 0
                sim.at(event.at, self._fire_restore, event, entry)
            elif isinstance(event, DegradeLink):
                entry = self._link_entry(event)
                entry["rate_factor"] = event.rate_factor
                entry["delay_factor"] = event.delay_factor
                sim.at(event.at, self._fire_degrade, event, entry)
            # InjectBurst primitives carry no scheduled action: their
            # flows start themselves.
        self.entries.extend(self._burst_entries)
        self.entries.sort(key=lambda e: e["time"])

    def _link_entry(self, event) -> dict:
        entry = {
            "type": event.kind, "time": event.at,
            "a": event.a, "b": event.b, "fired": False,
        }
        self.entries.append(entry)
        return entry

    # -- event callbacks ---------------------------------------------------------

    def _fire_fail(self, event: FailLink, entry: dict) -> None:
        entry["fired"] = True
        link = self.net.fail_link(event.a, event.b, reroute=False)
        self._open_outages[id(link)] = (link, link.packets_lost_down, entry)
        self._detect(entry, link)

    def _fire_restore(self, event: RestoreLink, entry: dict) -> None:
        entry["fired"] = True
        link = self.net.restore_link(event.a, event.b, reroute=False)
        _link, snapshot, fail_entry = self._open_outages.pop(
            id(link), (link, 0, None)
        )
        lost = link.packets_lost_down - snapshot
        entry["packets_lost_down"] = lost
        if fail_entry is not None:
            fail_entry["packets_lost_down"] = lost
        self._detect(entry, link)

    def _fire_degrade(self, event: DegradeLink, entry: dict) -> None:
        entry["fired"] = True
        self.net.degrade_link(
            event.a, event.b,
            rate_factor=event.rate_factor,
            delay_factor=event.delay_factor,
        )

    def _detect(self, entry: dict, link) -> None:
        delay = self.timeline.detection_delay
        if delay > 0.0:
            self.net.sim.at(self.net.sim.now + delay, self._reconverge, entry, link)
        else:
            self._reconverge(entry, link)

    def _reconverge(self, entry: dict, link) -> None:
        report = self.net.reconverge(link)
        entry["detected_at"] = self.net.sim.now
        entry["reroutes"] = report.groups_changed
        entry["dests_recomputed"] = report.dests_recomputed

    # -- results -----------------------------------------------------------------

    def report(self) -> list[dict]:
        """The accounting entries, after the run.

        Closes still-open outages (a cut with no matching restore keeps
        losing packets until the run ends — the legacy single-cut
        semantics) and resolves burst ``fired`` flags against the final
        simulation clock.
        """
        now = self.net.sim.now
        for link, snapshot, fail_entry in self._open_outages.values():
            fail_entry["packets_lost_down"] = link.packets_lost_down - snapshot
        for entry in self._burst_entries:
            entry["fired"] = entry["time"] <= now
        return self.entries
