"""Network dynamics: declarative fault injection and reconvergence.

The subsystem has three layers:

* **timeline DSL** (:mod:`repro.dynamics.events`) — typed mid-run events
  (``fail_link``, ``restore_link``, ``degrade_link``, ``flap_link``,
  ``inject_burst``) composed into a :class:`Timeline`: pure data, JSON
  round-trip, the hash-distinct ``dynamics`` field of a
  :class:`~repro.runner.spec.ScenarioSpec`, sweepable via
  :func:`dynamics_axis`;
* **packet driver** (:mod:`repro.dynamics.packet`) — schedules events on
  the discrete-event simulator; link state changes hit the data plane
  immediately, routing reconverges after the timeline's
  ``detection_delay`` through the scoped incremental recompute in
  :class:`repro.sim.routing.RoutingState`;
* **fluid driver** (:mod:`repro.dynamics.fluid`) — the same primitives
  at flow level: pooled capacities move at event boundaries and paths
  recompute at detection time, so failover scenarios run at fluid speed.

Both drivers emit the same accounting shape into
``RunRecord.extras["link_events"]`` (fired flags, symmetric
``packets_lost_down`` on fail *and* restore, reroute counts, detection
timestamps), so post-processing is backend-neutral.
"""

from .events import (
    EVENT_TYPES,
    DegradeLink,
    DynEvent,
    FailLink,
    FlapLink,
    InjectBurst,
    RestoreLink,
    Timeline,
    burst_flow_specs,
    dynamics_axis,
)
from .fluid import FluidDynamicsDriver
from .packet import PacketDynamicsDriver

__all__ = [
    "EVENT_TYPES",
    "DegradeLink",
    "DynEvent",
    "FailLink",
    "FlapLink",
    "FluidDynamicsDriver",
    "InjectBurst",
    "PacketDynamicsDriver",
    "RestoreLink",
    "Timeline",
    "burst_flow_specs",
    "dynamics_axis",
]
