"""Fluid-backend dynamics driver: timelines onto a :class:`FluidEngine`.

The fluid twin of :class:`~repro.dynamics.packet.PacketDynamicsDriver`,
interpreting the same primitives with the same two-phase semantics:

* at the event instant the *data plane* changes — a failed member's
  capacity leaves the pooled fluid link (its share of queued fluid is
  flushed to drops, the in-flight-casualty estimate), a restored member
  pools back in, a degradation rescales rate/delay;
* ``detection_delay`` later the *control plane* reconverges — every
  in-flight and pending flow's path is recomputed over the alive graph
  (``FluidEngine.reconverge``), which is also when parked flows re-admit.

Accounting entries mirror the packet driver's shape so
``RunRecord.link_events()`` is backend-neutral: ``packets_lost_down``
is the flushed fluid expressed in wire-packet equivalents, and
``reroutes`` counts flows whose path changed (the packet side counts
changed ECMP groups — both are "how much traffic moved", per backend).
"""

from __future__ import annotations

from .events import DegradeLink, FailLink, RestoreLink, Timeline

__all__ = ["FluidDynamicsDriver"]


class FluidDynamicsDriver:
    """Installs one timeline onto a :class:`~repro.fluid.engine.FluidEngine`."""

    def __init__(
        self,
        engine,
        timeline: Timeline,
        burst_entries: list[dict] | None = None,
    ) -> None:
        self.engine = engine
        self.timeline = timeline
        self.entries: list[dict] = []
        self._burst_entries = list(burst_entries or ())
        # (a, b) normalized -> [fail entries with an open outage], oldest first.
        self._open_outages: dict[tuple[int, int], list[dict]] = {}
        self._installed = False

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("driver already installed")
        self._installed = True
        engine = self.engine
        for _origin, event in self.timeline.primitives():
            if isinstance(event, FailLink):
                entry = self._link_entry(event)
                entry["packets_lost_down"] = 0
                engine.schedule_event(
                    event.at, self._firer(self._fire_fail, event, entry)
                )
            elif isinstance(event, RestoreLink):
                entry = self._link_entry(event)
                entry["packets_lost_down"] = 0
                engine.schedule_event(
                    event.at, self._firer(self._fire_restore, event, entry)
                )
            elif isinstance(event, DegradeLink):
                entry = self._link_entry(event)
                entry["rate_factor"] = event.rate_factor
                entry["delay_factor"] = event.delay_factor
                engine.schedule_event(
                    event.at, self._firer(self._fire_degrade, event, entry)
                )
        self.entries.extend(self._burst_entries)
        self.entries.sort(key=lambda e: e["time"])

    def _link_entry(self, event) -> dict:
        entry = {
            "type": event.kind, "time": event.at,
            "a": event.a, "b": event.b, "fired": False,
        }
        self.entries.append(entry)
        return entry

    @staticmethod
    def _firer(fn, event, entry):
        return lambda: fn(event, entry)

    # -- event callbacks ---------------------------------------------------------

    def _pair(self, event) -> tuple[int, int]:
        return (min(event.a, event.b), max(event.a, event.b))

    def _fire_fail(self, event: FailLink, entry: dict) -> None:
        entry["fired"] = True
        flushed = self.engine.fail_link(event.a, event.b)
        lost = int(flushed / (self.engine.mtu + self.engine.header))
        entry["packets_lost_down"] = lost
        self._open_outages.setdefault(self._pair(event), []).append(entry)
        self._detect(entry)

    def _fire_restore(self, event: RestoreLink, entry: dict) -> None:
        entry["fired"] = True
        self.engine.restore_link(event.a, event.b)
        open_fails = self._open_outages.get(self._pair(event))
        if open_fails:
            fail_entry = open_fails.pop(0)
            entry["packets_lost_down"] = fail_entry["packets_lost_down"]
        self._detect(entry)

    def _fire_degrade(self, event: DegradeLink, entry: dict) -> None:
        entry["fired"] = True
        self.engine.degrade_link(
            event.a, event.b,
            rate_factor=event.rate_factor,
            delay_factor=event.delay_factor,
        )
        # No routing change (hop counts are unchanged), but paths cache
        # per-link latency constants and the ECN configs key off rates:
        # refresh both at the event boundary.
        self._reconverge(entry)

    def _detect(self, entry: dict) -> None:
        delay = self.timeline.detection_delay
        if delay > 0.0:
            self.engine.schedule_event(
                self.engine.now + delay,
                lambda: self._reconverge(entry),
            )
        else:
            self._reconverge(entry)

    def _reconverge(self, entry: dict) -> None:
        rerouted = self.engine.reconverge()
        entry["detected_at"] = self.engine.now
        entry["reroutes"] = rerouted

    # -- results -----------------------------------------------------------------

    def report(self) -> list[dict]:
        """The accounting entries, after the run."""
        now = self.engine.now
        for entry in self._burst_entries:
            entry["fired"] = entry["time"] <= now
        return self.entries
