"""The packet-level discrete-event simulator substrate (the ns-3 stand-in)."""

from .buffer import BufferConfig, SharedBuffer
from .ecn import EcnConfig, EcnMarker, EcnPolicy
from .engine import PeriodicTask, SimulationError, Simulator, Timer
from .flow import FctRecord, FlowSpec, FlowTable
from .link import Link
from .nic import HostNic, NicConfig
from .packet import IntHop, Packet, PacketType
from .pfc import PauseInterval, PauseTracker, PfcConfig, PfcController
from .queues import EgressPort
from .switch import Switch
from .trace import PacketTracer, TraceEvent

__all__ = [
    "BufferConfig",
    "EcnConfig",
    "EcnMarker",
    "EcnPolicy",
    "EgressPort",
    "FctRecord",
    "FlowSpec",
    "FlowTable",
    "HostNic",
    "IntHop",
    "Link",
    "NicConfig",
    "Packet",
    "PacketTracer",
    "PacketType",
    "TraceEvent",
    "PauseInterval",
    "PauseTracker",
    "PeriodicTask",
    "PfcConfig",
    "PfcController",
    "SharedBuffer",
    "SimulationError",
    "Simulator",
    "Switch",
    "Timer",
]
