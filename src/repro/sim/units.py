"""Units and conversions used throughout the simulator.

The simulator clock is a float measured in nanoseconds.  Bandwidths are
stored as bytes per nanosecond (1 Gbps == 0.125 B/ns), which makes
``size_bytes / rate`` directly yield a duration in nanoseconds.
"""

from __future__ import annotations

import re

# Time constants, in nanoseconds.
NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0

# Size constants, in bytes.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1_024
MIB = 1_048_576

_BANDWIDTH_UNITS = {
    "bps": 1e-9 / 8,
    "kbps": 1e-6 / 8,
    "mbps": 1e-3 / 8,
    "gbps": 1.0 / 8,
    "tbps": 1e3 / 8,
}

_TIME_UNITS = {
    "ns": NS,
    "us": US,
    "ms": MS,
    "s": SEC,
    "sec": SEC,
}

_SIZE_UNITS = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "kib": KIB,
    "mib": MIB,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z]+)\s*$")


class UnitError(ValueError):
    """Raised when a quantity string cannot be parsed."""


def _parse(text: str, units: dict[str, float], kind: str) -> float:
    match = _QUANTITY_RE.match(text)
    if not match:
        raise UnitError(f"cannot parse {kind} quantity {text!r}")
    value, unit = match.groups()
    factor = units.get(unit.lower())
    if factor is None:
        raise UnitError(f"unknown {kind} unit {unit!r} in {text!r}")
    return float(value) * factor


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per nanosecond."""
    return value / 8.0


def bytes_per_ns_to_gbps(rate: float) -> float:
    """Convert bytes per nanosecond back to gigabits per second."""
    return rate * 8.0


def parse_bandwidth(text: str | float) -> float:
    """Parse a bandwidth such as ``"100Gbps"`` into bytes per nanosecond.

    A bare number is interpreted as bytes per nanosecond already.
    """
    if isinstance(text, (int, float)):
        return float(text)
    return _parse(text, _BANDWIDTH_UNITS, "bandwidth")


def parse_time(text: str | float) -> float:
    """Parse a duration such as ``"5us"`` into nanoseconds.

    A bare number is interpreted as nanoseconds already.
    """
    if isinstance(text, (int, float)):
        return float(text)
    return _parse(text, _TIME_UNITS, "time")


def parse_size(text: str | int) -> int:
    """Parse a byte size such as ``"400KB"`` into an integer byte count.

    A bare number is interpreted as bytes already.
    """
    if isinstance(text, (int, float)):
        return int(text)
    return int(_parse(text, _SIZE_UNITS, "size"))


def fmt_time(ns: float) -> str:
    """Render a nanosecond duration with a human-friendly unit."""
    if ns >= SEC:
        return f"{ns / SEC:.3f}s"
    if ns >= MS:
        return f"{ns / MS:.3f}ms"
    if ns >= US:
        return f"{ns / US:.3f}us"
    return f"{ns:.1f}ns"


def fmt_bytes(n: float) -> str:
    """Render a byte count with a human-friendly unit."""
    if n >= GB:
        return f"{n / GB:.2f}GB"
    if n >= MB:
        return f"{n / MB:.2f}MB"
    if n >= KB:
        return f"{n / KB:.1f}KB"
    return f"{n:.0f}B"


def fmt_rate(rate: float) -> str:
    """Render a bytes-per-ns rate as Gbps."""
    return f"{bytes_per_ns_to_gbps(rate):.2f}Gbps"
