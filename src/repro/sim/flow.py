"""Flow descriptors and completion records."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FlowSpec:
    """An application-level transfer request.

    ``tag`` labels the workload class (e.g. ``"bg"`` for load traffic,
    ``"incast"``, ``"mice"``) so metrics can slice by traffic type the way
    the paper's figures do.
    """

    flow_id: int
    src: int
    dst: int
    size: int               # bytes
    start_time: float       # ns
    tag: str = "bg"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow size must be positive, got {self.size}")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")


@dataclass
class FctRecord:
    """A finished flow with its completion statistics."""

    spec: FlowSpec
    start: float
    finish: float
    ideal: float

    @property
    def fct(self) -> float:
        return self.finish - self.start

    @property
    def slowdown(self) -> float:
        """FCT normalized by the flow's ideal (uncontended) FCT."""
        return self.fct / self.ideal if self.ideal > 0 else float("inf")


@dataclass
class FlowTable:
    """All flows of a run: requested, running, finished."""

    specs: dict[int, FlowSpec] = field(default_factory=dict)
    finished: dict[int, FctRecord] = field(default_factory=dict)

    def add(self, spec: FlowSpec) -> None:
        if spec.flow_id in self.specs:
            raise ValueError(f"duplicate flow id {spec.flow_id}")
        self.specs[spec.flow_id] = spec

    def complete(self, record: FctRecord) -> None:
        self.finished[record.spec.flow_id] = record

    @property
    def n_outstanding(self) -> int:
        return len(self.specs) - len(self.finished)
