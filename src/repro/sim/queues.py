"""Egress ports: FIFO queueing, serialization, PFC pause, INT counters.

A port serializes one packet at a time at its configured rate; the link then
adds propagation delay.  PFC pause frames travel through a small control
queue that is served ahead of data and is never paused, matching how real
switches emit PFC at the highest priority.

The port keeps the counters INT exposes (Figure 7): cumulative transmitted
bytes (``tx_bytes``) and instantaneous queue length (``qlen_bytes``), plus
the cumulative *enqueued* bytes (``rx_bytes``) used by the HPCC-rxRate
design-choice variant.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .engine import Simulator
from .packet import Packet


class EgressPort:
    """One transmit direction of a device's port."""

    def __init__(
        self,
        sim: Simulator,
        owner,
        port_id: int,
        rate: float,
        on_emit: Optional[Callable[[Packet, "EgressPort"], None]] = None,
        on_idle: Optional[Callable[["EgressPort"], None]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"port rate must be positive, got {rate}")
        self.sim = sim
        self.owner = owner
        self.port_id = port_id
        self.rate = rate                      # bytes per ns
        self.link = None                      # set when wired
        self._queue: deque[Packet] = deque()
        self._control: deque[Packet] = deque()
        self._busy = False
        self.paused = False
        self.qlen_bytes = 0
        self.tx_bytes = 0                     # cumulative emitted wire bytes
        self.rx_bytes = 0                     # cumulative enqueued wire bytes
        self.packets_emitted = 0
        self.on_emit = on_emit                # hook: INT stamping, buffer release
        self.on_idle = on_idle                # hook: NIC pump
        self._pause_started: float | None = None
        self.total_paused = 0.0

    # -- queue state ---------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_len_packets(self) -> int:
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing is being serialized and no data is queued."""
        return not self._busy and not self._queue and not self._control

    def serialization_time(self, wire_size: int) -> float:
        return wire_size / self.rate

    # -- enqueue paths -------------------------------------------------------

    def enqueue(self, pkt: Packet) -> None:
        """Queue a data-plane packet (data, ACK, NACK, CNP)."""
        self._queue.append(pkt)
        self.qlen_bytes += pkt.wire_size
        self.rx_bytes += pkt.wire_size
        self._kick()

    def enqueue_control(self, pkt: Packet) -> None:
        """Queue a link-local control frame (PFC); bypasses pause."""
        self._control.append(pkt)
        self._kick()

    # -- pause / resume ------------------------------------------------------

    def set_paused(self, paused: bool) -> None:
        if paused == self.paused:
            return
        self.paused = paused
        now = self.sim.now
        if paused:
            self._pause_started = now
        else:
            if self._pause_started is not None:
                self.total_paused += now - self._pause_started
                self._pause_started = None
            self._kick()
            if self.idle and self.on_idle is not None:
                self.on_idle(self)

    def paused_time(self, now: float) -> float:
        """Total paused duration including a still-open pause."""
        open_time = 0.0
        if self._pause_started is not None:
            open_time = now - self._pause_started
        return self.total_paused + open_time

    # -- transmission --------------------------------------------------------

    def _kick(self) -> None:
        if self._busy:
            return
        if self._control:
            pkt = self._control.popleft()
        elif self._queue and not self.paused:
            pkt = self._queue.popleft()
            self.qlen_bytes -= pkt.wire_size
        else:
            return
        self._busy = True
        self.tx_bytes += pkt.wire_size
        self.packets_emitted += 1
        if self.on_emit is not None:
            self.on_emit(pkt, self)
        self.sim.schedule(self.serialization_time(pkt.wire_size), self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self._busy = False
        if self.link is not None:
            self.link.deliver(pkt, self)
        self._kick()
        if self.idle and self.on_idle is not None:
            self.on_idle(self)
