"""Egress ports: FIFO queueing, serialization, PFC pause, INT counters.

A port serializes one packet at a time at its configured rate; the link then
adds propagation delay.  PFC pause frames travel through a small control
queue that is served ahead of data and is never paused, matching how real
switches emit PFC at the highest priority.

The port keeps the counters INT exposes (Figure 7): cumulative transmitted
bytes (``tx_bytes``) and instantaneous queue length (``qlen_bytes``), plus
the cumulative *enqueued* bytes (``rx_bytes``) used by the HPCC-rxRate
design-choice variant.

Fused transmission path
-----------------------
Serialization start is the only synchronous step: the packet is dequeued,
INT-stamped (``on_emit``) and its arrival at the peer scheduled in one go
(``Link.transmit`` folds serialization + propagation into a single event).
The serialize-done callback is scheduled only when someone needs it — the
port has an ``on_idle`` listener (host NICs pump on it) or more traffic is
already queued.  A switch port forwarding into an empty queue therefore
costs one scheduled event per packet, not two; ``busy`` is tracked as a
``_busy_until`` timestamp instead of a flag.  Fused-away completions are
still counted in ``events_processed`` (see the engine's event-count
contract), so the counter — and with it the golden determinism fixtures —
is invariant to this optimization.

Two caveats of the fused design:

* the fused credit is booked at serialization *start*, so on a run
  truncated mid-serialization (a deadline with incomplete flows)
  ``events_processed`` can lead the canonical count by up to one per
  mid-serialization fused port.  FCT records and event ordering are
  unaffected; runs that complete (everything the golden fixtures pin)
  match exactly;
* fusion assumes ``on_idle`` listeners are wired at construction time.
  Attaching ``on_idle`` to a port that already carried traffic is
  unsupported: an in-flight fused serialization would end without the
  completion callback the new listener expects.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .engine import Simulator
from .packet import Packet


class EgressPort:
    """One transmit direction of a device's port."""

    def __init__(
        self,
        sim: Simulator,
        owner,
        port_id: int,
        rate: float,
        on_emit: Optional[Callable[[Packet, "EgressPort"], None]] = None,
        on_idle: Optional[Callable[["EgressPort"], None]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"port rate must be positive, got {rate}")
        self.sim = sim
        self.owner = owner
        self.port_id = port_id
        self.rate = rate                      # bytes per ns
        self.link = None                      # set when wired
        self._queue: deque[Packet] = deque()
        self._control: deque[Packet] = deque()
        self._busy_until = 0.0                # serializing while now < this
        self._done_event: list | None = None  # completion wakeup, if needed
        self.paused = False
        self.qlen_bytes = 0
        self.tx_bytes = 0                     # cumulative emitted wire bytes
        self.rx_bytes = 0                     # cumulative enqueued wire bytes
        self.packets_emitted = 0
        self.on_emit = on_emit                # hook: INT stamping, buffer release
        self.on_idle = on_idle                # hook: NIC pump
        # Hybrid coupling: a BgLinkView whose ``residual`` fraction of
        # the line rate is left over by fluid background traffic; when
        # set, serialization slows down to model sharing the wire.
        # ``None`` (the default) keeps the pure-packet path untouched.
        self.bg_view = None
        self._pause_started: float | None = None
        self.total_paused = 0.0

    # -- queue state ---------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized.

        With a fused completion the port frees exactly at ``_busy_until``;
        with a scheduled completion it stays busy until that event runs
        (matters only for same-timestamp ordering).
        """
        return self._done_event is not None or self.sim.now < self._busy_until

    @property
    def queue_len_packets(self) -> int:
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing is being serialized and no data is queued."""
        # `not busy` inlined: this property is on the NIC pump's hot path.
        return (
            not self._queue
            and not self._control
            and self._done_event is None
            and self.sim.now >= self._busy_until
        )

    def serialization_time(self, wire_size: int) -> float:
        return wire_size / self.rate

    # -- enqueue paths -------------------------------------------------------

    def enqueue(self, pkt: Packet) -> None:
        """Queue a data-plane packet (data, ACK, NACK, CNP)."""
        self._queue.append(pkt)
        size = pkt.wire_size
        self.qlen_bytes += size
        self.rx_bytes += size
        if self._done_event is None:
            self._unfuse_or_kick()

    def enqueue_control(self, pkt: Packet) -> None:
        """Queue a link-local control frame (PFC); bypasses pause."""
        self._control.append(pkt)
        if self._done_event is None:
            self._unfuse_or_kick()

    def _unfuse_or_kick(self) -> None:
        """New work arrived with no completion wakeup scheduled: either the
        current (fused) serialization needs a real completion after all, or
        the port is free and can start serializing now."""
        sim = self.sim
        if sim.now < self._busy_until:
            self._done_event = sim.at(self._busy_until, self._tx_done)
            sim.events_processed -= 1     # hand the fused credit back
        else:
            self._kick()

    # -- pause / resume ------------------------------------------------------

    def set_paused(self, paused: bool) -> None:
        if paused == self.paused:
            return
        self.paused = paused
        now = self.sim.now
        if paused:
            self._pause_started = now
        else:
            if self._pause_started is not None:
                self.total_paused += now - self._pause_started
                self._pause_started = None
            self._kick()
            if self.on_idle is not None and self.idle:
                self.on_idle(self)

    def paused_time(self, now: float) -> float:
        """Total paused duration including a still-open pause."""
        open_time = 0.0
        if self._pause_started is not None:
            open_time = now - self._pause_started
        return self.total_paused + open_time

    # -- transmission --------------------------------------------------------

    def _kick(self) -> None:
        sim = self.sim
        if self._done_event is not None or sim.now < self._busy_until:
            return
        if self._control:
            pkt = self._control.popleft()
        elif self._queue and not self.paused:
            pkt = self._queue.popleft()
            self.qlen_bytes -= pkt.wire_size
        else:
            return
        size = pkt.wire_size
        self.tx_bytes += size
        self.packets_emitted += 1
        ser = size / self.rate
        if (view := self.bg_view) is not None:
            ser /= view.residual
        # Mark busy and credit the logical serialize-done *before* the
        # on_emit hook: the hook can re-enter the enqueue paths (a switch
        # releasing buffer may emit a PFC frame, in the hairpin case out
        # of this very port), and those must see the port busy and may
        # legitimately un-fuse the completion (refunding this credit).
        self._busy_until = sim.now + ser
        sim.events_processed += 1
        if self.on_emit is not None:
            self.on_emit(pkt, self)
        link = self.link
        if link is not None:
            link.transmit(pkt, self, ser)
        if self._done_event is None and (
            self.on_idle is not None or self._queue or self._control
        ):
            # Someone needs the serialize-done callback after all: make it
            # a real event and hand the fused credit back (the firing will
            # count it).
            self._done_event = sim.at(self._busy_until, self._tx_done)
            sim.events_processed -= 1

    def _tx_done(self) -> None:
        self._done_event = None
        self._kick()
        if self.on_idle is not None and self.idle:
            self.on_idle(self)
