"""The switch model.

Brings together the substrate pieces: shared-buffer admission
(``repro.sim.buffer``), WRED ECN marking (``repro.sim.ecn``), PFC
(``repro.sim.pfc``), ECMP forwarding (``repro.sim.routing``) and INT
stamping at packet emission (Figure 7 semantics: the telemetry a packet
carries is the egress-port state at the moment it is dequeued, so the qlen
it reports is the queue it left *behind* — exactly the Figure 5 scenario).
"""

from __future__ import annotations

from .buffer import BufferConfig, SharedBuffer
from .ecn import EcnMarker, EcnPolicy
from .engine import Simulator
from .packet import (
    Packet,
    PacketType,
    make_pause,
    new_hop,
    recycle_hops,
    recycle_packet,
)
from .pfc import PauseTracker, PfcConfig, PfcController
from .queues import EgressPort
from .routing import ecmp_select


class Switch:
    """A shared-buffer output-queued switch."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        buffer_config: BufferConfig,
        pfc_config: PfcConfig,
        ecn_policy: EcnPolicy | None = None,
        int_enabled: bool = True,
        pause_tracker: PauseTracker | None = None,
        metrics=None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.buffer = SharedBuffer(buffer_config)
        self.pfc = PfcController(self, pfc_config, pause_tracker)
        self.int_enabled = int_enabled
        self.pause_tracker = pause_tracker
        self.metrics = metrics
        self.ports: dict[int, EgressPort] = {}
        self.port_peer: dict[int, int] = {}
        self._peer_port: dict[int, int] = {}  # peer -> first port, built at wiring
        # dst host -> tuple of candidate egress ports (ECMP group)
        self.routing_table: dict[int, tuple[int, ...]] = {}
        self._ecn_policy = ecn_policy
        self._markers: dict[int, EcnMarker] = {}
        self._seed = seed
        self.drops = 0
        self.no_route_drops = 0
        # Hybrid coupling: port_id -> BgLinkView (repro.hybrid.coupling)
        # exposing the fluid background share of this port's link.  When
        # set, ECN marks on combined fg+bg queue depth and INT stamps
        # fold the background registers in; ``None`` (the default)
        # leaves the pure-packet data path untouched.
        self.bg_views = None

    # -- wiring (called by Network) -------------------------------------------

    def add_port(self, port_id: int, rate: float, peer: int) -> EgressPort:
        port = EgressPort(
            self.sim, self, port_id, rate, on_emit=self._on_emit
        )
        self.ports[port_id] = port
        self.port_peer[port_id] = peer
        self._peer_port.setdefault(peer, port_id)
        if self._ecn_policy is not None:
            self._markers[port_id] = EcnMarker(
                self._ecn_policy.for_rate(rate),
                seed=self._seed * 131 + port_id,
            )
        return port

    def install_routes(self, table: dict[int, tuple[int, ...]]) -> None:
        self.routing_table = table

    # -- data path -------------------------------------------------------------

    def receive(self, pkt: Packet, in_port: int) -> None:
        ptype = pkt.ptype
        if ptype is PacketType.PAUSE or ptype is PacketType.RESUME:
            self._handle_pfc_frame(pkt, in_port)
            recycle_packet(pkt)
            return
        ports = self.routing_table.get(pkt.dst)
        if not ports:
            # No route: either a mis-wired topology or a destination cut
            # off by failure injection.  Real switches blackhole this.
            self.no_route_drops += 1
            if self.metrics is not None:
                self.metrics.record_drop(pkt, self.node_id)
            recycle_hops(pkt)
            recycle_packet(pkt)
            return
        out_id = ecmp_select(ports, pkt.flow_id, pkt.src, pkt.dst)
        size = pkt.wire_size
        prio = pkt.priority
        if not self.buffer.occupy(in_port, out_id, prio, size):
            self.drops += 1
            if self.metrics is not None:
                self.metrics.record_drop(pkt, self.node_id)
            recycle_hops(pkt)
            recycle_packet(pkt)
            return
        pkt._ingress_ref = (in_port, out_id, prio, size)
        out = self.ports[out_id]
        if (
            ptype is PacketType.DATA
            and not pkt.ecn
            and (marker := self._markers.get(out_id)) is not None
        ):
            qlen = out.qlen_bytes
            if (views := self.bg_views) is not None \
                    and (view := views.get(out_id)) is not None:
                qlen += view.qlen
            if marker.should_mark(qlen):
                pkt.ecn = True
        out.enqueue(pkt)
        self.pfc.on_ingress_change(in_port, prio)

    def _on_emit(self, pkt: Packet, port: EgressPort) -> None:
        """Emission hook: stamp INT, release buffer, re-check PFC."""
        hops = pkt.int_hops
        if hops is not None and self.int_enabled and pkt.ptype is PacketType.DATA:
            now = self.sim.now
            tx = port.tx_bytes
            qlen = port.qlen_bytes
            rx = port.rx_bytes
            if (views := self.bg_views) is not None \
                    and (view := views.get(port.port_id)) is not None:
                # Fold the fluid background share into the register
                # snapshot: cumulative bytes extrapolate linearly at the
                # background rate inside the epoch so inter-ACK txRate
                # estimates see the background as smooth cross-traffic.
                bg_bytes = view.tx0 + view.rate * (now - view.t0)
                tx += bg_bytes
                rx += bg_bytes
                qlen += view.qlen
            hops.append(new_hop(port.rate, now, tx, qlen, rx))
            pkt.hop_count += 1
        ref = pkt._ingress_ref
        if ref is not None:
            in_port, out_port, prio, size = ref
            pkt._ingress_ref = None
            self.buffer.release(in_port, out_port, prio, size)
            self.pfc.on_ingress_change(in_port, prio)

    # -- PFC -------------------------------------------------------------------

    def send_pause(self, in_port: int, priority: int, pause: bool) -> None:
        """Emit a PAUSE/RESUME frame upstream on ``in_port``."""
        self.ports[in_port].enqueue_control(make_pause(priority, pause))

    def _handle_pfc_frame(self, pkt: Packet, in_port: int) -> None:
        port = self.ports[in_port]
        pause = pkt.ptype is PacketType.PAUSE
        was_paused = port.paused
        port.set_paused(pause)
        if self.pause_tracker is not None and pause != was_paused:
            if pause:
                self.pause_tracker.on_paused(self.node_id, in_port, self.sim.now)
            else:
                self.pause_tracker.on_resumed(self.node_id, in_port, self.sim.now)

    # -- introspection ----------------------------------------------------------

    def port_to(self, peer: int) -> EgressPort:
        """The first egress port attached to ``peer`` (convenience).

        O(1): served from a peer->port index built at wiring time —
        samplers call this for every labelled port on every run setup.
        """
        port_id = self._peer_port.get(peer)
        if port_id is None:
            raise LookupError(f"switch {self.node_id} has no port to {peer}")
        return self.ports[port_id]

    def total_queued_bytes(self) -> int:
        return sum(port.qlen_bytes for port in self.ports.values())
