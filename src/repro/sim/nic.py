"""The host NIC: flows, pacing, windows, ACK generation.

Models the paper's FPGA NIC (Section 4.2): a flow scheduler that serves
active flows round-robin, paces each flow at its CC-assigned rate, enforces
the CC-assigned sending window, and runs the RoCEv2 receiver (per-packet
ACK/NACK, DCQCN CNP generation, go-back-N or IRN recovery).

Scheduling works on transmit opportunities: whenever the egress port goes
idle the NIC picks the next flow that (a) has data or retransmissions
pending, (b) has window room, and (c) has accumulated pacing credit.  If
every flow is pacing-blocked, a wakeup is scheduled for the earliest
eligible instant; window-blocked flows are retried when an ACK arrives.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.base import CcAlgorithm
from .engine import Simulator, Timer
from .flow import FlowSpec
from .packet import (
    Packet,
    PacketType,
    make_ack,
    make_cnp,
    make_data_packet,
    recycle_hops,
    recycle_packet,
)
from .queues import EgressPort
from .transport import make_receiver, make_sender


@dataclass
class NicConfig:
    """Host NIC behaviour knobs (shared across all hosts of a network)."""

    mtu: int = 1000                     # payload bytes per data packet
    int_enabled: bool = False
    transport: str = "gbn"              # 'gbn' or 'irn'
    cnp_interval: float | None = None   # DCQCN NP min CNP gap, ns
    rto: float = 1_000_000.0            # retransmission timeout, ns
    min_rewind_gap: float = 10_000.0    # GBN rewind suppression window, ns
    gbn_recovery_cap: int | None = 16_000   # GBN post-rewind burst cap, bytes
    irn_window: float | None = None     # IRN's fixed BDP window cap, bytes
    rate_floor: float = 1e-5            # pacing floor, bytes/ns


class SenderFlow:
    """Sender-side runtime state of one flow."""

    __slots__ = (
        "spec", "cc", "window", "rate", "next_pace", "sender",
        "done", "fct_recorded", "rto_timer", "cc_state", "first_sent",
    )

    def __init__(self, spec: FlowSpec, cc: CcAlgorithm, sender) -> None:
        self.spec = spec
        self.cc = cc
        self.window: float | None = None
        self.rate: float = 0.0
        self.next_pace: float = 0.0
        self.sender = sender
        self.done = False
        self.fct_recorded = False
        self.rto_timer: Timer | None = None
        self.cc_state = None      # algorithm-private per-flow state
        self.first_sent: float | None = None

    @property
    def inflight(self) -> int:
        return self.sender.inflight

    @property
    def snd_nxt(self) -> int:
        return self.sender.snd_nxt

    @property
    def snd_una(self) -> int:
        return self.sender.snd_una

    def window_allows(self, payload: int) -> bool:
        if self.window is None:
            return True
        if self.inflight == 0:
            return True      # never deadlock: one packet may always probe
        return self.inflight + payload <= self.window + 1e-9


class ReceiverFlow:
    """Receiver-side runtime state of one flow."""

    __slots__ = ("state", "last_cnp", "bytes_received")

    def __init__(self, state) -> None:
        self.state = state
        self.last_cnp = -float("inf")
        self.bytes_received = 0


class HostNic:
    """A host with one NIC port."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        rate: float,
        config: NicConfig,
        cc_factory,
        metrics,
        pause_tracker=None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.cc_factory = cc_factory
        self.metrics = metrics
        self.pause_tracker = pause_tracker
        self.port = EgressPort(sim, self, 0, rate, on_idle=self._on_port_idle)
        self.flows: dict[int, SenderFlow] = {}
        self.recv_flows: dict[int, ReceiverFlow] = {}
        self._active: deque[SenderFlow] = deque()
        self._wake: list | None = None      # scheduled pacing wakeup entry

    # -- flow lifecycle -----------------------------------------------------------

    def start_flow(self, spec: FlowSpec) -> SenderFlow:
        """Begin sending a flow now (callers schedule this at spec.start_time)."""
        if spec.flow_id in self.flows:
            raise ValueError(f"flow {spec.flow_id} already started")
        cc = self.cc_factory(spec)
        sender = make_sender(
            self.config.transport, spec.size,
            min_rewind_gap=self.config.min_rewind_gap,
            recovery_cap=self.config.gbn_recovery_cap,
        )
        flow = SenderFlow(spec, cc, sender)
        cc.install(flow)
        if cc.tap is not None:
            # Anchor the decision trace at the line-rate start state.
            cc.tap.record(self.sim.now, "install", None, flow.rate,
                          flow.window, flow.rate, flow.window, {})
        if self.config.irn_window is not None:
            cap = self.config.irn_window
            flow.window = cap if flow.window is None else min(flow.window, cap)
        flow.next_pace = self.sim.now
        flow.rto_timer = Timer(self.sim, self._on_rto, flow)
        self.flows[spec.flow_id] = flow
        self._active.append(flow)
        flow.rto_timer.arm(self.config.rto)
        self._maybe_pump()
        return flow

    def _complete_flow(self, flow: SenderFlow) -> None:
        flow.done = True
        if flow.rto_timer is not None:
            flow.rto_timer.cancel()
        flow.cc.on_flow_done(flow, self.sim.now)
        if not flow.fct_recorded:
            flow.fct_recorded = True
            self.metrics.record_fct(flow.spec, flow.spec.start_time, self.sim.now)
        try:
            self._active.remove(flow)
        except ValueError:
            pass

    # -- transmit path -----------------------------------------------------------

    def _on_port_idle(self, port: EgressPort) -> None:
        self._pump()

    def _maybe_pump(self) -> None:
        if self.port.idle and not self.port.paused:
            self._pump()

    def _pump(self) -> None:
        sim = self.sim
        wake = self._wake
        if wake is not None:
            sim.cancel(wake)
            self._wake = None
        port = self.port
        if not port.idle or port.paused:
            return
        now = sim.now
        active = self._active
        mtu = self.config.mtu
        earliest: float | None = None
        for _ in range(len(active)):
            flow = active[0]
            active.rotate(-1)
            if flow.done:
                continue
            nxt = flow.sender.peek_next(mtu)
            if nxt is None:
                continue
            seq, payload = nxt
            if not flow.window_allows(payload):
                continue
            if flow.next_pace > now:
                if earliest is None or flow.next_pace < earliest:
                    earliest = flow.next_pace
                continue
            self._send_data(flow, seq, payload, now)
            return
        if earliest is not None:
            self._wake = sim.at(earliest, self._pump)

    def _send_data(self, flow: SenderFlow, seq: int, payload: int, now: float) -> None:
        pkt = make_data_packet(
            flow.spec.flow_id, self.node_id, flow.spec.dst,
            seq, payload, self.config.int_enabled, now,
        )
        flow.sender.mark_sent(seq, payload)
        if flow.first_sent is None:
            flow.first_sent = now
        flow.cc.on_packet_sent(flow, pkt, now)
        rate = max(flow.rate, self.config.rate_floor)
        flow.next_pace = max(now, flow.next_pace) + pkt.wire_size / rate
        self.port.enqueue(pkt)
        self._arm_rto(flow)

    # -- receive path -------------------------------------------------------------

    def receive(self, pkt: Packet, in_port: int) -> None:
        ptype = pkt.ptype
        if ptype is PacketType.DATA:
            self._on_data(pkt)
        elif ptype is PacketType.ACK or ptype is PacketType.NACK:
            self._on_ack(pkt)
        elif ptype is PacketType.CNP:
            flow = self.flows.get(pkt.flow_id)
            recycle_packet(pkt)
            if flow is not None and not flow.done:
                flow.cc.on_cnp(flow, self.sim.now)
                self._maybe_pump()
        elif ptype is PacketType.PAUSE or ptype is PacketType.RESUME:
            self._on_pfc(pkt)
            recycle_packet(pkt)

    def _on_data(self, pkt: Packet) -> None:
        rf = self.recv_flows.get(pkt.flow_id)
        if rf is None:
            rf = ReceiverFlow(make_receiver(self.config.transport))
            self.recv_flows[pkt.flow_id] = rf
        is_nack, ack_seq = rf.state.on_data(pkt.seq, pkt.payload)
        rf.bytes_received += pkt.payload
        self.metrics.record_delivered(pkt.payload)
        ack = make_ack(pkt, ack_seq, self.sim.now, nack=is_nack)
        if is_nack and hasattr(rf.state, "first_hole_end"):
            # IRN: the NACK names the missing range's end so the sender
            # retransmits exactly the hole, not everything it sent since.
            hole_end = rf.state.first_hole_end()
            if hole_end is not None:
                ack.seq = hole_end
        self.port.enqueue(ack)
        interval = self.config.cnp_interval
        if interval is not None and pkt.ecn:
            now = self.sim.now
            if now - rf.last_cnp >= interval:
                rf.last_cnp = now
                self.port.enqueue(make_cnp(pkt.flow_id, self.node_id, pkt.src))
        # The data packet is fully consumed (its INT stack moved onto the
        # ACK in make_ack): return it to the freelist.
        recycle_packet(pkt)

    def _on_ack(self, pkt: Packet) -> None:
        flow = self.flows.get(pkt.flow_id)
        if flow is None or flow.done:
            recycle_hops(pkt)
            recycle_packet(pkt)
            return
        now = self.sim.now
        newly = flow.sender.on_ack(pkt.ack_seq)
        if newly:
            self.metrics.record_ack_bytes(pkt.flow_id, now, newly)
        if pkt.ptype is PacketType.NACK:
            flow.sender.on_nack(pkt.ack_seq, pkt.seq, now)
            flow.cc.on_nack(flow, pkt, now)
        else:
            flow.cc.on_ack(flow, pkt, now)
        if flow.sender.complete:
            self._complete_flow(flow)
        else:
            if newly:
                self._arm_rto(flow)
        # CC algorithms copy any INT state they keep (see core/hpcc.py), so
        # the ACK and its hop records are dead here: recycle both.
        recycle_hops(pkt)
        recycle_packet(pkt)
        self._maybe_pump()

    def _on_pfc(self, pkt: Packet) -> None:
        pause = pkt.ptype is PacketType.PAUSE
        was = self.port.paused
        self.port.set_paused(pause)
        if self.pause_tracker is not None and pause != was:
            if pause:
                self.pause_tracker.on_paused(self.node_id, 0, self.sim.now)
            else:
                self.pause_tracker.on_resumed(self.node_id, 0, self.sim.now)

    # -- timers --------------------------------------------------------------------

    def _arm_rto(self, flow: SenderFlow) -> None:
        # Re-arming a Timer that is already pending is O(1) (lazy deferral):
        # the per-ACK cancel-and-reschedule pattern no longer floods the
        # calendar queue with tombstones.
        flow.rto_timer.arm(self.config.rto)

    def _on_rto(self, flow: SenderFlow) -> None:
        if flow.done:
            return
        if not flow.sender.complete:
            flow.sender.on_timeout(self.sim.now)
            flow.cc.on_timeout(flow, self.sim.now)
        flow.rto_timer.arm(self.config.rto)
        self._maybe_pump()
