"""Loss-recovery transports: go-back-N and IRN.

The paper's production deployment uses go-back-N with PFC making the fabric
lossless; Figure 12 additionally evaluates go-back-N *without* PFC and IRN
(selective retransmission with a BDP-bounded window, after Mittal et al.).

The sender-side state machines expose a uniform interface consumed by
``repro.sim.nic``:

* ``peek_next(mtu)``       -> (seq, payload) or None
* ``mark_sent(seq, size)``  consume what ``peek_next`` returned
* ``on_ack(ack_seq)``      -> newly acknowledged byte count
* ``on_nack(ack_seq, oos_seq)``  react to an out-of-sequence report
* ``on_timeout()``          RTO fallback

Sequence numbers are byte offsets (RoCE-style).
"""

from __future__ import annotations


class GbnSender:
    """Go-back-N: a NACK (or timeout) rewinds ``snd_nxt`` to the hole.

    ``recovery_cap`` bounds the post-rewind retransmission burst: after a
    rewind the sender may keep at most that many bytes in flight until the
    cumulative ack passes the pre-rewind frontier.  Without it, every loss
    event re-offers the full CC window at once — under a buffer too shallow
    for ECN marking to bite, the colliding full-window bursts re-lose each
    other's packets and goodput collapses to near zero (the seed-259
    congestive-collapse draw in ``tests/test_properties.py``).  A lossless
    (PFC) fabric never rewinds, so the cap is inert on the paper's default
    configuration and all determinism goldens.
    """

    def __init__(self, size: int, min_rewind_gap: float = 0.0,
                 recovery_cap: int | None = None) -> None:
        self.size = size
        self.snd_una = 0
        self.snd_nxt = 0
        self.min_rewind_gap = min_rewind_gap
        self.recovery_cap = recovery_cap
        self._recover_until = 0         # recovery active while snd_una < this
        self._last_rewind = -float("inf")
        self.rewinds = 0

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def complete(self) -> bool:
        return self.snd_una >= self.size

    def has_pending(self) -> bool:
        return self.snd_nxt < self.size

    @property
    def in_recovery(self) -> bool:
        return self.snd_una < self._recover_until

    def peek_next(self, mtu: int) -> tuple[int, int] | None:
        if self.snd_nxt >= self.size:
            return None
        payload = min(mtu, self.size - self.snd_nxt)
        if self.recovery_cap is not None and self.in_recovery:
            allowed = self.snd_una + self.recovery_cap - self.snd_nxt
            if allowed <= 0:
                return None         # burst cap reached: wait for ack progress
            payload = min(payload, allowed)
        return self.snd_nxt, payload

    def mark_sent(self, seq: int, payload: int) -> None:
        if seq != self.snd_nxt:
            raise AssertionError(f"GBN must send in order: {seq} != {self.snd_nxt}")
        self.snd_nxt += payload

    def on_ack(self, ack_seq: int) -> int:
        newly = max(0, min(ack_seq, self.size) - self.snd_una)
        self.snd_una += newly
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        return newly

    def on_nack(self, ack_seq: int, oos_seq: int, now: float = 0.0) -> None:
        """Rewind to the receiver's expected sequence.

        ``min_rewind_gap`` suppresses the rewind storm caused by the burst
        of NACKs a single loss event produces (the real NIC rewinds once
        per loss event too).
        """
        if ack_seq >= self.snd_nxt:
            return
        if now - self._last_rewind < self.min_rewind_gap:
            return
        self._last_rewind = now
        self._recover_until = max(self._recover_until, self.snd_nxt)
        self.snd_nxt = max(ack_seq, self.snd_una)
        self.rewinds += 1

    def on_timeout(self, now: float = 0.0) -> None:
        self._last_rewind = now
        self._recover_until = max(self._recover_until, self.snd_nxt)
        self.snd_nxt = self.snd_una
        self.rewinds += 1


class IrnSender:
    """IRN-style selective repeat.

    The receiver reports the in-order frontier (``ack_seq``) plus the
    sequence of the out-of-order arrival; the sender queues exactly the
    missing byte ranges for retransmission, never rewinding delivered data.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.snd_una = 0
        self.snd_nxt = 0
        self._rtx: list[tuple[int, int]] = []   # [start, end) byte ranges
        self._requested_until = 0                # dedupe repeated NACK reports
        self._dead = 0                           # bytes presumed lost (RTO)
        self.retransmissions = 0

    @property
    def inflight(self) -> int:
        """Unacknowledged bytes believed to still be in the network.

        Bytes declared dead by a retransmission timeout no longer count
        against the window — otherwise a large loss burst would block the
        window forever (nothing can be sent, so nothing can be acked).
        """
        return max(0, self.snd_nxt - self.snd_una - self._dead)

    @property
    def complete(self) -> bool:
        return self.snd_una >= self.size

    def has_pending(self) -> bool:
        return bool(self._rtx) or self.snd_nxt < self.size

    def peek_next(self, mtu: int) -> tuple[int, int] | None:
        if self._rtx:
            start, end = self._rtx[0]
            return start, min(mtu, end - start)
        if self.snd_nxt >= self.size:
            return None
        return self.snd_nxt, min(mtu, self.size - self.snd_nxt)

    def mark_sent(self, seq: int, payload: int) -> None:
        if self._rtx and seq == self._rtx[0][0]:
            start, end = self._rtx[0]
            if start + payload >= end:
                self._rtx.pop(0)
            else:
                self._rtx[0] = (start + payload, end)
            self.retransmissions += 1
            # Retransmitted bytes are live in the network again.
            self._dead = max(0, self._dead - payload)
            return
        if seq != self.snd_nxt:
            raise AssertionError(f"unexpected send at {seq}, snd_nxt={self.snd_nxt}")
        self.snd_nxt += payload

    def on_ack(self, ack_seq: int) -> int:
        # A cumulative ack can never cover bytes not yet sent (IRN does not
        # rewind, so snd_nxt is the high-water mark of transmitted data).
        newly = max(0, min(ack_seq, self.size, self.snd_nxt) - self.snd_una)
        self.snd_una += newly
        if self._requested_until < self.snd_una:
            self._requested_until = self.snd_una
        self._dead = min(self._dead, self.snd_nxt - self.snd_una)
        # Drop retransmission ranges that the frontier has passed.
        self._rtx = [
            (max(s, self.snd_una), e) for s, e in self._rtx if e > self.snd_una
        ]
        return newly

    def on_nack(self, ack_seq: int, oos_seq: int, now: float = 0.0) -> None:
        self.on_ack(ack_seq)
        start = max(ack_seq, self._requested_until, self.snd_una)
        end = min(oos_seq, self.size)
        if end > start:
            self._rtx.append((start, end))
            self._requested_until = end

    def on_timeout(self, now: float = 0.0) -> None:
        if self.complete:
            return
        # Nothing came back for a full RTO: everything outstanding is
        # presumed lost and stops counting against the window, and earlier
        # retransmission requests are forgotten — they may themselves have
        # been lost, and the dedupe marker must not block re-requests.
        self._dead = self.snd_nxt - self.snd_una
        start = self.snd_una
        if not (self._rtx and self._rtx[0][0] == start):
            self._rtx.insert(0, (start, min(start + 1000, self.size)))
        self._requested_until = self._rtx[0][1]


class GbnReceiver:
    """In-order-only receiver: OOS data is dropped and NACKed."""

    def __init__(self) -> None:
        self.expected = 0

    def on_data(self, seq: int, payload: int) -> tuple[bool, int]:
        """Returns ``(is_nack, cumulative_ack)``."""
        if seq == self.expected:
            self.expected += payload
            return False, self.expected
        if seq > self.expected:
            return True, self.expected
        # Duplicate from a rewind: re-ack the frontier.
        if seq + payload > self.expected:
            self.expected = seq + payload
        return False, self.expected


class IrnReceiver:
    """Receiver that buffers out-of-order data (interval tracking)."""

    def __init__(self) -> None:
        self.expected = 0
        self._intervals: list[tuple[int, int]] = []   # disjoint, sorted

    def on_data(self, seq: int, payload: int) -> tuple[bool, int]:
        """Returns ``(is_nack, cumulative_ack)``; NACK signals a gap."""
        end = seq + payload
        is_gap = seq > self.expected
        self._insert(seq, end)
        self._advance()
        return is_gap, self.expected

    def first_hole_end(self) -> int | None:
        """End of the first missing range: [expected, first buffered byte).

        This is what the NACK reports so the sender retransmits exactly
        the hole (the real IRN conveys it via a SACK bitmap).
        """
        if not self._intervals:
            return None
        return self._intervals[0][0]

    def _insert(self, start: int, end: int) -> None:
        merged: list[tuple[int, int]] = []
        placed = False
        for s, e in self._intervals:
            if e < start:
                merged.append((s, e))
            elif end < s:
                if not placed:
                    merged.append((start, end))
                    placed = True
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        if not placed:
            merged.append((start, end))
        self._intervals = merged

    def _advance(self) -> None:
        while self._intervals and self._intervals[0][0] <= self.expected:
            s, e = self._intervals.pop(0)
            if e > self.expected:
                self.expected = e


def make_sender(mode: str, size: int, min_rewind_gap: float = 0.0,
                recovery_cap: int | None = None):
    if mode == "gbn":
        return GbnSender(size, min_rewind_gap=min_rewind_gap,
                         recovery_cap=recovery_cap)
    if mode == "irn":
        return IrnSender(size)
    raise ValueError(f"unknown transport mode {mode!r}")


def make_receiver(mode: str):
    if mode == "gbn":
        return GbnReceiver()
    if mode == "irn":
        return IrnReceiver()
    raise ValueError(f"unknown transport mode {mode!r}")
