"""Packets and INT (in-network telemetry) hop records.

Mirrors Figure 7 of the paper: each data packet carries an INT stack; each
switch appends one :class:`IntHop` when the packet is emitted from its egress
port, recording the port bandwidth ``B``, a timestamp ``ts``, the cumulative
transmitted bytes ``tx_bytes``, and the instantaneous queue length ``qlen``.
The receiver copies the stack onto the ACK so the sender sees per-hop load.

``rx_bytes`` (cumulative bytes *enqueued* at the port) is an extension used
only by the HPCC-rxRate design-choice variant (Figure 6).
"""

from __future__ import annotations

import enum
from typing import Optional


class PacketType(enum.IntEnum):
    DATA = 0
    ACK = 1
    NACK = 2
    CNP = 3       # DCQCN congestion notification packet
    PAUSE = 4     # PFC pause frame (link-local)
    RESUME = 5    # PFC resume frame (link-local)


# Wire-size constants, bytes.  A RoCEv2 data packet carries Eth+IP+UDP+BTH
# (~48B of headers); the HPCC INT stack adds up to 42B (Section 5.1, the
# paper's worst-case accounting); control packets are minimum-size frames.
BASE_HEADER = 48
INT_OVERHEAD = 42
ACK_SIZE = 60
CNP_SIZE = 60
PFC_FRAME_SIZE = 64


class IntHop:
    """One switch's telemetry record, appended at packet emission."""

    __slots__ = ("bandwidth", "ts", "tx_bytes", "qlen", "rx_bytes")

    def __init__(
        self,
        bandwidth: float,
        ts: float,
        tx_bytes: int,
        qlen: int,
        rx_bytes: int = 0,
    ) -> None:
        self.bandwidth = bandwidth    # egress port rate, bytes/ns
        self.ts = ts                  # emission timestamp, ns
        self.tx_bytes = tx_bytes      # cumulative bytes emitted by the port
        self.qlen = qlen              # instantaneous egress queue bytes
        self.rx_bytes = rx_bytes      # cumulative bytes enqueued (extension)

    def copy(self) -> "IntHop":
        return IntHop(self.bandwidth, self.ts, self.tx_bytes, self.qlen, self.rx_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntHop(B={self.bandwidth:.3f}B/ns ts={self.ts:.0f} "
            f"tx={self.tx_bytes} q={self.qlen})"
        )


class Packet:
    """A simulated packet.

    ``seq`` is a byte offset (RoCE-style), ``payload`` the number of payload
    bytes, and ``wire_size`` the bytes that occupy links.  ``ack_seq`` is the
    cumulative acknowledgement carried by ACK/NACK packets.
    """

    __slots__ = (
        "ptype",
        "flow_id",
        "src",
        "dst",
        "seq",
        "payload",
        "header",
        "ecn",
        "int_hops",
        "ack_seq",
        "ts_tx",
        "priority",
        "pause_priority",
        "hop_count",
        "_ingress_ref",
    )

    def __init__(
        self,
        ptype: PacketType,
        flow_id: int,
        src: int,
        dst: int,
        seq: int = 0,
        payload: int = 0,
        header: int = BASE_HEADER,
        priority: int = 0,
    ) -> None:
        self.ptype = ptype
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload = payload
        self.header = header
        self.ecn = False
        self.int_hops: Optional[list[IntHop]] = None
        self.ack_seq = 0
        self.ts_tx = 0.0            # sender timestamp, echoed for RTT (TIMELY)
        self.priority = priority
        self.pause_priority = 0     # which priority a PAUSE/RESUME targets
        self.hop_count = 0
        self._ingress_ref = None    # (switch-local) ingress accounting token

    @property
    def wire_size(self) -> int:
        return self.payload + self.header

    def add_int_hop(self, hop: IntHop) -> None:
        if self.int_hops is None:
            self.int_hops = []
        self.int_hops.append(hop)
        self.hop_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.ptype.name} flow={self.flow_id} seq={self.seq} "
            f"payload={self.payload} {self.src}->{self.dst})"
        )


def make_data_packet(
    flow_id: int,
    src: int,
    dst: int,
    seq: int,
    payload: int,
    int_enabled: bool,
    now: float,
) -> Packet:
    """Build a data packet, reserving INT header space when INT is on."""
    header = BASE_HEADER + (INT_OVERHEAD if int_enabled else 0)
    pkt = Packet(PacketType.DATA, flow_id, src, dst, seq=seq, payload=payload, header=header)
    if int_enabled:
        pkt.int_hops = []
    pkt.ts_tx = now
    return pkt


def make_ack(data: Packet, ack_seq: int, now: float, nack: bool = False) -> Packet:
    """Build the ACK (or NACK) for a received data packet.

    Copies the INT stack and the ECN mark back to the sender, and echoes the
    sender timestamp for RTT measurement.
    """
    ptype = PacketType.NACK if nack else PacketType.ACK
    header = ACK_SIZE + (INT_OVERHEAD if data.int_hops is not None else 0)
    ack = Packet(ptype, data.flow_id, data.dst, data.src, seq=data.seq, header=header)
    ack.ack_seq = ack_seq
    ack.ecn = data.ecn
    ack.ts_tx = data.ts_tx
    if data.int_hops is not None:
        ack.int_hops = [h.copy() for h in data.int_hops]
    return ack


def make_cnp(flow_id: int, src: int, dst: int) -> Packet:
    """Build a DCQCN congestion-notification packet (receiver -> sender)."""
    return Packet(PacketType.CNP, flow_id, src, dst, header=CNP_SIZE)


def make_pause(priority: int, pause: bool) -> Packet:
    """Build a link-local PFC pause/resume frame."""
    ptype = PacketType.PAUSE if pause else PacketType.RESUME
    pkt = Packet(ptype, flow_id=-1, src=-1, dst=-1, header=PFC_FRAME_SIZE)
    pkt.pause_priority = priority
    return pkt
