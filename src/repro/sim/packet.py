"""Packets and INT (in-network telemetry) hop records.

Mirrors Figure 7 of the paper: each data packet carries an INT stack; each
switch appends one :class:`IntHop` when the packet is emitted from its egress
port, recording the port bandwidth ``B``, a timestamp ``ts``, the cumulative
transmitted bytes ``tx_bytes``, and the instantaneous queue length ``qlen``.
The receiver moves the stack onto the ACK so the sender sees per-hop load.

``rx_bytes`` (cumulative bytes *enqueued* at the port) is an extension used
only by the HPCC-rxRate design-choice variant (Figure 6).

Allocation discipline
---------------------
Steady-state forwarding allocates (almost) nothing: consumed packets and
hop records go back to module-level freelists (:func:`recycle_packet`,
:func:`recycle_hops`, drawn from by the ``make_*`` factories and
:func:`new_hop`), and :func:`make_ack` *moves* the INT stack from the data
packet to the ACK instead of copying it.  The ownership rules:

* a packet handed to ``EgressPort.enqueue`` belongs to the network until
  the consuming device's ``receive`` runs; the consumer recycles it,
* ``ack.int_hops`` (and the hop records in it) die when the sender-side
  NIC finishes its CC callbacks — CC algorithms must copy any INT state
  they keep across ACKs (``core/hpcc.py`` does),
* test code that builds packets directly via :class:`Packet` and never
  recycles them opts out of pooling entirely.
"""

from __future__ import annotations

import enum
from typing import Optional


class PacketType(enum.IntEnum):
    DATA = 0
    ACK = 1
    NACK = 2
    CNP = 3       # DCQCN congestion notification packet
    PAUSE = 4     # PFC pause frame (link-local)
    RESUME = 5    # PFC resume frame (link-local)


# Wire-size constants, bytes.  A RoCEv2 data packet carries Eth+IP+UDP+BTH
# (~48B of headers); the HPCC INT stack adds up to 42B (Section 5.1, the
# paper's worst-case accounting); control packets are minimum-size frames.
BASE_HEADER = 48
INT_OVERHEAD = 42
ACK_SIZE = 60
CNP_SIZE = 60
PFC_FRAME_SIZE = 64


class IntHop:
    """One switch's telemetry record, appended at packet emission."""

    __slots__ = ("bandwidth", "ts", "tx_bytes", "qlen", "rx_bytes")

    def __init__(
        self,
        bandwidth: float,
        ts: float,
        tx_bytes: int,
        qlen: int,
        rx_bytes: int = 0,
    ) -> None:
        self.bandwidth = bandwidth    # egress port rate, bytes/ns
        self.ts = ts                  # emission timestamp, ns
        self.tx_bytes = tx_bytes      # cumulative bytes emitted by the port
        self.qlen = qlen              # instantaneous egress queue bytes
        self.rx_bytes = rx_bytes      # cumulative bytes enqueued (extension)

    def copy(self) -> "IntHop":
        return IntHop(self.bandwidth, self.ts, self.tx_bytes, self.qlen, self.rx_bytes)

    def copy_from(self, other: "IntHop") -> None:
        """Overwrite this record in place (allocation-free snapshotting)."""
        self.bandwidth = other.bandwidth
        self.ts = other.ts
        self.tx_bytes = other.tx_bytes
        self.qlen = other.qlen
        self.rx_bytes = other.rx_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntHop(B={self.bandwidth:.3f}B/ns ts={self.ts:.0f} "
            f"tx={self.tx_bytes} q={self.qlen})"
        )


class Packet:
    """A simulated packet.

    ``seq`` is a byte offset (RoCE-style), ``payload`` the number of payload
    bytes, and ``wire_size`` the bytes that occupy links (``payload +
    header``, materialized at construction — links and buffers read it a
    handful of times per hop).  ``ack_seq`` is the cumulative
    acknowledgement carried by ACK/NACK packets.
    """

    __slots__ = (
        "ptype",
        "flow_id",
        "src",
        "dst",
        "seq",
        "payload",
        "header",
        "wire_size",
        "ecn",
        "int_hops",
        "ack_seq",
        "ts_tx",
        "priority",
        "pause_priority",
        "hop_count",
        "_ingress_ref",
    )

    def __init__(
        self,
        ptype: PacketType,
        flow_id: int,
        src: int,
        dst: int,
        seq: int = 0,
        payload: int = 0,
        header: int = BASE_HEADER,
        priority: int = 0,
    ) -> None:
        self.ptype = ptype
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload = payload
        self.header = header
        self.wire_size = payload + header
        self.ecn = False
        self.int_hops: Optional[list[IntHop]] = None
        self.ack_seq = 0
        self.ts_tx = 0.0            # sender timestamp, echoed for RTT (TIMELY)
        self.priority = priority
        self.pause_priority = 0     # which priority a PAUSE/RESUME targets
        self.hop_count = 0
        self._ingress_ref = None    # (switch-local) ingress accounting token

    def add_int_hop(self, hop: IntHop) -> None:
        if self.int_hops is None:
            self.int_hops = []
        self.int_hops.append(hop)
        self.hop_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.ptype.name} flow={self.flow_id} seq={self.seq} "
            f"payload={self.payload} {self.src}->{self.dst})"
        )


# -- freelists ----------------------------------------------------------------

_packet_pool: list[Packet] = []
_hop_pool: list[IntHop] = []
_PACKET_POOL_CAP = 8192
_HOP_POOL_CAP = 16384


def recycle_packet(pkt: Packet) -> None:
    """Return a consumed packet to the freelist.

    Callers must be the packet's final owner (see the ownership rules in
    the module docstring).  A still-populated INT stack is dropped rather
    than recycled — use :func:`recycle_hops` first when the hop records
    are known dead too.
    """
    if len(_packet_pool) >= _PACKET_POOL_CAP:
        return
    hops = pkt.int_hops
    if hops:                       # non-empty stack: hop ownership unknown
        pkt.int_hops = None
    pkt._ingress_ref = None
    _packet_pool.append(pkt)


def recycle_hops(pkt: Packet) -> None:
    """Return a packet's dead INT hop records to the freelist."""
    hops = pkt.int_hops
    if hops:
        if len(_hop_pool) < _HOP_POOL_CAP:
            _hop_pool.extend(hops)
        hops.clear()


def new_hop(
    bandwidth: float, ts: float, tx_bytes: int, qlen: int, rx_bytes: int = 0
) -> IntHop:
    """Pool-aware :class:`IntHop` constructor (the switch emission path)."""
    pool = _hop_pool
    if pool:
        hop = pool.pop()
        hop.bandwidth = bandwidth
        hop.ts = ts
        hop.tx_bytes = tx_bytes
        hop.qlen = qlen
        hop.rx_bytes = rx_bytes
        return hop
    return IntHop(bandwidth, ts, tx_bytes, qlen, rx_bytes)


def _new_packet(
    ptype: PacketType,
    flow_id: int,
    src: int,
    dst: int,
    seq: int,
    payload: int,
    header: int,
) -> Packet:
    """Pool-aware packet constructor: every field is (re)initialized."""
    pool = _packet_pool
    if not pool:
        return Packet(
            ptype, flow_id, src, dst, seq=seq, payload=payload, header=header
        )
    pkt = pool.pop()
    pkt.ptype = ptype
    pkt.flow_id = flow_id
    pkt.src = src
    pkt.dst = dst
    pkt.seq = seq
    pkt.payload = payload
    pkt.header = header
    pkt.wire_size = payload + header
    pkt.ecn = False
    pkt.ack_seq = 0
    pkt.ts_tx = 0.0
    pkt.priority = 0
    pkt.pause_priority = 0
    pkt.hop_count = 0
    # int_hops is None or an empty (cleared) list from the previous life;
    # _ingress_ref was cleared at recycle time.
    return pkt


def make_data_packet(
    flow_id: int,
    src: int,
    dst: int,
    seq: int,
    payload: int,
    int_enabled: bool,
    now: float,
) -> Packet:
    """Build a data packet, reserving INT header space when INT is on."""
    header = BASE_HEADER + (INT_OVERHEAD if int_enabled else 0)
    pkt = _new_packet(PacketType.DATA, flow_id, src, dst, seq, payload, header)
    if int_enabled:
        if pkt.int_hops is None:
            pkt.int_hops = []
    else:
        pkt.int_hops = None
    pkt.ts_tx = now
    return pkt


def make_ack(data: Packet, ack_seq: int, now: float, nack: bool = False) -> Packet:
    """Build the ACK (or NACK) for a received data packet.

    *Moves* the INT stack (the data packet is dead once its ACK exists)
    and copies the ECN mark back to the sender, and echoes the sender
    timestamp for RTT measurement.
    """
    ptype = PacketType.NACK if nack else PacketType.ACK
    hops = data.int_hops
    header = ACK_SIZE + (INT_OVERHEAD if hops is not None else 0)
    ack = _new_packet(ptype, data.flow_id, data.dst, data.src, data.seq, 0, header)
    ack.ack_seq = ack_seq
    ack.ecn = data.ecn
    ack.ts_tx = data.ts_tx
    if hops is not None:
        ack.int_hops = hops
        data.int_hops = None
    else:
        ack.int_hops = None        # a pooled packet may carry an empty list
    return ack


def make_cnp(flow_id: int, src: int, dst: int) -> Packet:
    """Build a DCQCN congestion-notification packet (receiver -> sender)."""
    pkt = _new_packet(PacketType.CNP, flow_id, src, dst, 0, 0, CNP_SIZE)
    pkt.int_hops = None
    return pkt


def make_pause(priority: int, pause: bool) -> Packet:
    """Build a link-local PFC pause/resume frame."""
    ptype = PacketType.PAUSE if pause else PacketType.RESUME
    pkt = _new_packet(ptype, -1, -1, -1, 0, 0, PFC_FRAME_SIZE)
    pkt.int_hops = None
    pkt.pause_priority = priority
    return pkt
