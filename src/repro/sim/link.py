"""Point-to-point links.

A link joins one egress port on each of two devices.  Serialization happens
at the ports; the link contributes only propagation delay and hands the
packet to the peer device's ``receive``.
"""

from __future__ import annotations

from .engine import Simulator
from .packet import Packet, recycle_hops, recycle_packet
from .queues import EgressPort


class Link:
    """Full-duplex point-to-point link between two (device, port) pairs."""

    def __init__(
        self,
        sim: Simulator,
        dev_a,
        port_a: EgressPort,
        dev_b,
        port_b: EgressPort,
        prop_delay: float,
    ) -> None:
        if prop_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay}")
        self.sim = sim
        self.dev_a = dev_a
        self.port_a = port_a
        self.dev_b = dev_b
        self.port_b = port_b
        self.prop_delay = prop_delay
        self.up = True
        self.packets_lost_down = 0
        port_a.link = self
        port_b.link = self

    def transmit(self, pkt: Packet, from_port: EgressPort, ser_delay: float) -> None:
        """Schedule arrival at the peer: remaining serialization + propagation.

        Called at serialization *start* (the port fuses its completion
        callback away when nothing needs it), so one scheduled event covers
        the serialize/propagate/deliver chain.  A downed link (failure
        injection) silently discards traffic, as a cut fiber would;
        ``packets_lost_down`` counts the casualties.  The up/down check
        consequently also happens at serialization start — one
        serialization time (~80ns at 100Gbps) earlier than the old
        end-of-serialization check, indistinguishable at the millisecond
        timescales failures are injected at.
        """
        if not self.up:
            self.packets_lost_down += 1
            recycle_hops(pkt)
            recycle_packet(pkt)
            return
        if from_port is self.port_a:
            dest_dev, dest_port = self.dev_b, self.port_b.port_id
        elif from_port is self.port_b:
            dest_dev, dest_port = self.dev_a, self.port_a.port_id
        else:  # pragma: no cover - wiring bug
            raise AssertionError("packet emitted from a port not on this link")
        # dest_dev.receive is looked up per packet on purpose: tracers
        # monkeypatch it on the instance after wiring.  The arrival time is
        # computed as (now + ser) + prop — the same float rounding as the
        # old two-event serialize-done -> propagate chain — so the fusion
        # is bit-identical, not just approximately equal.
        sim = self.sim
        sim.at(
            (sim.now + ser_delay) + self.prop_delay, dest_dev.receive, pkt, dest_port
        )
