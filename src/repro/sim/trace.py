"""Opt-in packet event tracing (the ns-3 ASCII-trace equivalent).

Attach a :class:`PacketTracer` to a network to record per-packet events —
send, receive, ACK, drop, PFC — with timestamps, for debugging CC
behaviour at packet granularity or feeding external analysis.  Tracing is
off unless attached, so the hot path stays clean.

>>> tracer = PacketTracer.attach(net)           # doctest: +SKIP
>>> net.run_until_done(deadline=1e6)            # doctest: +SKIP
>>> tracer.events[0]                            # doctest: +SKIP
TraceEvent(t=0.0, kind='send', flow_id=1, seq=0, size=1000, node=0)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .packet import Packet, PacketType


@dataclass(frozen=True)
class TraceEvent:
    t: float
    kind: str           # 'send' | 'recv' | 'ack' | 'nack' | 'cnp' | 'drop' | 'pause' | 'resume'
    flow_id: int
    seq: int
    size: int
    node: int

    def as_line(self) -> str:
        return (f"{self.t:.1f} {self.kind} flow={self.flow_id} "
                f"seq={self.seq} size={self.size} node={self.node}")


_KIND_BY_TYPE = {
    PacketType.DATA: "recv",
    PacketType.ACK: "ack",
    PacketType.NACK: "nack",
    PacketType.CNP: "cnp",
    PacketType.PAUSE: "pause",
    PacketType.RESUME: "resume",
}


@dataclass
class PacketTracer:
    """Records packet events from every NIC plus drops from the metrics hub.

    Use :meth:`attach` — it wraps the NIC receive/emit paths and the
    metrics drop hook without the simulator knowing tracing exists.
    """

    events: list[TraceEvent] = field(default_factory=list)
    max_events: int | None = None

    @classmethod
    def attach(cls, net, max_events: int | None = None) -> "PacketTracer":
        tracer = cls(max_events=max_events)
        sim = net.sim
        for host_id, nic in net.nics.items():
            tracer._wrap_nic(nic, sim)
        original_drop = net.metrics.record_drop

        def record_drop(pkt, device_id):
            tracer._record(sim.now, "drop", pkt, device_id)
            original_drop(pkt, device_id)

        net.metrics.record_drop = record_drop
        return tracer

    # -- recording -------------------------------------------------------------

    def _record(self, now: float, kind: str, pkt: Packet, node: int) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            return
        self.events.append(TraceEvent(
            t=now, kind=kind, flow_id=pkt.flow_id, seq=pkt.seq,
            size=pkt.wire_size, node=node,
        ))

    def _wrap_nic(self, nic, sim) -> None:
        original_receive = nic.receive

        def receive(pkt, in_port):
            kind = _KIND_BY_TYPE.get(pkt.ptype, "recv")
            self._record(sim.now, kind, pkt, nic.node_id)
            original_receive(pkt, in_port)

        nic.receive = receive

        original_send = nic._send_data

        def send_data(flow, seq, payload, now):
            original_send(flow, seq, payload, now)
            fake = Packet(PacketType.DATA, flow.spec.flow_id,
                          nic.node_id, flow.spec.dst,
                          seq=seq, payload=payload)
            self._record(now, "send", fake, nic.node_id)

        nic._send_data = send_data

    # -- querying --------------------------------------------------------------

    def for_flow(self, flow_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.flow_id == flow_id]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def write(self, path: str | Path) -> int:
        """Dump the trace as one line per event; returns the line count."""
        lines = [e.as_line() for e in self.events]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)

    def to_jsonl(self, path: str | Path, run_id: str = "packet-trace") -> int:
        """Export in the ``repro.obs`` telemetry schema; returns the
        event count.

        Each trace event becomes an ``event`` record named
        ``trace.<kind>`` with the packet fields as labels, so packet
        traces land in the same tooling format as run telemetry
        (``hpcc-repro tele summarize`` reads both).  The timebase is
        the *sim* clock — ``t`` is sim-seconds and ``sim_ns`` the raw
        stamp — which the meta header declares via
        ``labels["timebase"]``.
        """
        from ..obs.schema import meta_record

        meta = meta_record(
            run_id, {"timebase": "sim", "source": "PacketTracer"}
        )
        lines = [json.dumps(meta, separators=(",", ":"), sort_keys=True)]
        for event in self.events:
            record = {
                "kind": "event",
                "name": f"trace.{event.kind}",
                "t": event.t / 1e9,
                "sim_ns": event.t,
                "run_id": run_id,
                "labels": {"flow": event.flow_id, "seq": event.seq,
                           "size": event.size, "node": event.node},
            }
            lines.append(json.dumps(record, separators=(",", ":"),
                                    sort_keys=True))
        Path(path).write_text("\n".join(lines) + "\n")
        return len(self.events)
