"""Priority flow control (PFC, IEEE 802.1Qbb).

A lossless RoCEv2 fabric pauses the upstream transmitter when an ingress
queue grows past a threshold.  The paper configures a *dynamic* threshold:
"PFC is triggered when an ingress queue consumes more than 11% of the free
buffer" (Section 5.1).  Pauses propagate: a paused egress port backs up its
own ingress queues, which can pause the next hop upstream — the pause trees
measured in Figure 1.

This module holds the pause decision logic (:class:`PfcController`, one per
switch) and the pause bookkeeping (:class:`PauseTracker`, one per network)
used by ``repro.metrics.pfcstats`` to reproduce Figure 1 and the pause-time
bars of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PfcConfig:
    """PFC trigger configuration.

    ``dynamic_alpha`` is the fraction of the currently-free shared buffer an
    ingress (port, priority) may hold before XOFF is sent.  XON is sent once
    usage falls below ``xon_fraction`` of the XOFF threshold.
    """

    enabled: bool = True
    dynamic_alpha: float = 0.11
    xon_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.dynamic_alpha <= 0:
            raise ValueError(f"dynamic_alpha must be positive, got {self.dynamic_alpha}")
        if not 0.0 < self.xon_fraction <= 1.0:
            raise ValueError(f"xon_fraction must be in (0, 1], got {self.xon_fraction}")


@dataclass
class PauseInterval:
    """One contiguous interval during which an egress port was paused."""

    device: int
    port: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PauseTracker:
    """Records every pause interval across the network."""

    intervals: list[PauseInterval] = field(default_factory=list)
    _open: dict[tuple[int, int], float] = field(default_factory=dict)
    pause_frames_sent: int = 0
    resume_frames_sent: int = 0

    def on_paused(self, device: int, port: int, now: float) -> None:
        self._open.setdefault((device, port), now)

    def on_resumed(self, device: int, port: int, now: float) -> None:
        start = self._open.pop((device, port), None)
        if start is not None:
            self.intervals.append(PauseInterval(device, port, start, now))

    def finalize(self, now: float) -> None:
        """Close any pauses still open at the end of the run."""
        for (device, port), start in list(self._open.items()):
            self.intervals.append(PauseInterval(device, port, start, now))
        self._open.clear()

    def total_pause_time(self, devices: set[int] | None = None) -> float:
        return sum(
            iv.duration
            for iv in self.intervals
            if devices is None or iv.device in devices
        )

    def pause_count(self) -> int:
        return len(self.intervals)


class PfcController:
    """Per-switch PFC state machine.

    The owning switch calls :meth:`on_ingress_change` after every ingress
    admission or release; the controller decides whether to send PAUSE or
    RESUME frames on the corresponding input port.
    """

    def __init__(self, switch, config: PfcConfig, tracker: PauseTracker | None) -> None:
        self.switch = switch
        self.config = config
        self.tracker = tracker
        self._pausing: set[tuple[int, int]] = set()
        # PfcConfig is frozen: snapshot the knobs the per-packet path reads
        # (on_ingress_change runs twice per forwarded packet).
        self._enabled = config.enabled
        self._alpha = config.dynamic_alpha
        self._xon_fraction = config.xon_fraction

    def xoff_threshold(self) -> float:
        """Current XOFF threshold in bytes (depends on free buffer)."""
        free = self.switch.buffer.free_bytes
        return self._alpha * free

    def on_ingress_change(self, in_port: int, priority: int) -> None:
        if not self._enabled:
            return
        buffer = self.switch.buffer
        usage = buffer.ingress_usage(in_port, priority)
        threshold = self._alpha * buffer.free_bytes
        key = (in_port, priority)
        if key not in self._pausing:
            if usage > threshold:
                self._pausing.add(key)
                self.switch.send_pause(in_port, priority, pause=True)
                if self.tracker is not None:
                    self.tracker.pause_frames_sent += 1
        else:
            if usage < threshold * self._xon_fraction:
                self._pausing.discard(key)
                self.switch.send_pause(in_port, priority, pause=False)
                if self.tracker is not None:
                    self.tracker.resume_frames_sent += 1

    def is_pausing(self, in_port: int, priority: int = 0) -> bool:
        return (in_port, priority) in self._pausing
