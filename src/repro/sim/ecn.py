"""RED/WRED-style ECN marking.

DCQCN and DCTCP rely on switches marking packets when the egress queue
exceeds configured thresholds (the ``Kmin``/``Kmax`` knobs swept in
Figure 3).  Marking uses the instantaneous queue length: below ``kmin``
nothing is marked, above ``kmax`` everything is marked, and in between the
marking probability ramps linearly up to ``pmax``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class EcnConfig:
    """ECN marking thresholds, in bytes."""

    kmin: int
    kmax: int
    pmax: float = 0.2

    def __post_init__(self) -> None:
        if self.kmin < 0 or self.kmax < self.kmin:
            raise ValueError(f"invalid ECN thresholds kmin={self.kmin} kmax={self.kmax}")
        if not 0.0 <= self.pmax <= 1.0:
            raise ValueError(f"pmax must be a probability, got {self.pmax}")


@dataclass(frozen=True)
class EcnPolicy:
    """Rate-relative ECN thresholds.

    The paper scales ``Kmin``/``Kmax`` proportionally to link bandwidth
    (Section 5.1), e.g. DCQCN uses 100KB/400KB at 25Gbps.  ``for_rate``
    yields the concrete :class:`EcnConfig` of a port.
    """

    kmin: int          # bytes at the reference rate
    kmax: int
    pmax: float
    ref_rate: float    # bytes/ns

    def for_rate(self, rate: float) -> EcnConfig:
        factor = rate / self.ref_rate
        return EcnConfig(int(self.kmin * factor), int(self.kmax * factor), self.pmax)


class EcnMarker:
    """Stateless-per-packet marking decision with a private RNG stream."""

    def __init__(self, config: EcnConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = random.Random(seed)

    def should_mark(self, qlen_bytes: int) -> bool:
        cfg = self.config
        if qlen_bytes <= cfg.kmin:
            return False
        if qlen_bytes >= cfg.kmax:
            return True
        if cfg.kmax == cfg.kmin:
            return True
        prob = cfg.pmax * (qlen_bytes - cfg.kmin) / (cfg.kmax - cfg.kmin)
        return self._rng.random() < prob

    def marking_probability(self, qlen_bytes: int) -> float:
        """The marking probability at a given queue length (for tests)."""
        cfg = self.config
        if qlen_bytes <= cfg.kmin:
            return 0.0
        if qlen_bytes >= cfg.kmax:
            return 1.0
        return cfg.pmax * (qlen_bytes - cfg.kmin) / (cfg.kmax - cfg.kmin)
