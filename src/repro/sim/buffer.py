"""Shared switch-buffer accounting.

Commodity switching ASICs pool packet memory across all ports.  Admission
control and PFC thresholds are computed against this shared pool:

* in **lossless** mode (PFC on), packets are only dropped on hard pool
  overflow — PFC is expected to prevent that, and the drop counter flags a
  mis-configured headroom;
* in **lossy** mode (go-back-N / IRN without PFC, Figure 12), each egress
  queue is capped by a *dynamic threshold*: ``alpha x free buffer``
  (footnote 6 of the paper uses ``alpha = 1``).

Every admitted packet is accounted against its ingress (port, priority) —
which PFC watches — and its egress port — which the dynamic threshold
watches — until it is emitted downstream.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class BufferConfig:
    total_bytes: int
    lossy: bool = False
    dynamic_alpha: float = 1.0   # egress dynamic threshold (lossy mode only)

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError(f"buffer must be positive, got {self.total_bytes}")
        if self.dynamic_alpha <= 0:
            raise ValueError(f"dynamic_alpha must be positive, got {self.dynamic_alpha}")


class SharedBuffer:
    """Byte-accurate shared-pool accounting for one switch."""

    def __init__(self, config: BufferConfig) -> None:
        self.config = config
        self.used = 0
        self._ingress: dict[tuple[int, int], int] = defaultdict(int)
        self._egress: dict[int, int] = defaultdict(int)
        self.drops = 0
        self.peak_used = 0
        # BufferConfig is frozen: snapshot what the per-packet path reads.
        self._total = config.total_bytes
        self._lossy = config.lossy
        self._alpha = config.dynamic_alpha

    @property
    def free_bytes(self) -> int:
        free = self._total - self.used
        return free if free > 0 else 0

    def ingress_usage(self, in_port: int, priority: int = 0) -> int:
        return self._ingress[(in_port, priority)]

    def egress_usage(self, out_port: int) -> int:
        return self._egress[out_port]

    def egress_limit(self) -> float:
        """Dynamic-threshold cap for any one egress queue (lossy mode)."""
        return self._alpha * self.free_bytes

    def admits(self, out_port: int, size: int) -> bool:
        """Would a packet of ``size`` bytes bound for ``out_port`` be accepted?"""
        if self.used + size > self._total:
            return False
        if self._lossy and self._egress[out_port] + size > self.egress_limit():
            return False
        return True

    def occupy(self, in_port: int, out_port: int, priority: int, size: int) -> bool:
        """Admit and account a packet; returns False (and counts a drop) if refused."""
        if not self.admits(out_port, size):
            self.drops += 1
            return False
        self.used += size
        if self.used > self.peak_used:
            self.peak_used = self.used
        self._ingress[(in_port, priority)] += size
        self._egress[out_port] += size
        return True

    def release(self, in_port: int, out_port: int, priority: int, size: int) -> None:
        self.used -= size
        self._ingress[(in_port, priority)] -= size
        self._egress[out_port] -= size
        if self.used < 0 or self._ingress[(in_port, priority)] < 0:
            raise AssertionError("buffer accounting went negative")
