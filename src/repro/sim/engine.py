"""Discrete-event simulation engine.

This is the substrate the whole reproduction runs on, playing the role ns-3
plays in the paper.  It is a calendar queue built on ``heapq``, tuned so the
hot loop never executes Python-level comparison or wrapper code:

* a scheduled event is a plain 4-slot list ``[time, seq, fn, args]`` — heap
  sift comparisons resolve on the ``(float, int)`` prefix entirely in C
  (``seq`` is unique, so ``fn`` is never compared),
* time is a float in nanoseconds (``repro.sim.units``); ties are broken by
  the monotonically increasing ``seq`` so runs are deterministic,
* cancellation tombstones the entry in place (``entry[2] = None``) via
  :meth:`Simulator.cancel`; the pop loop skips tombstones.

The entry list doubles as the cancellation handle: ``schedule``/``at``
return it, and ``sim.cancel(entry)`` is a no-op when the event already ran
or was already cancelled.

Event-count contract
--------------------
``events_processed`` counts *logical* simulation events: callbacks
delivered to simulation code.  Internal bookkeeping wakeups (a
:class:`Timer` deferring itself to a pushed-back deadline) and
optimization artifacts (an egress port fusing away a serialize-done
callback nobody listens to) are compensated so the counter is invariant
to those optimizations.  The golden determinism fixtures pin this counter
across engine rewrites, so treat it as ABI.

Telemetry hook
--------------
:meth:`Simulator.run` is a thin wrapper over the :meth:`Simulator._run`
loop body.  When a probe is attached (``sim.telemetry``, see
:mod:`repro.obs.probes`) the wrapper times the whole call and reports
the wall/event/sim-time deltas; when none is (the default), dispatch is
a single ``None`` check per ``run()`` call — the hot loops themselves
carry no instrumentation either way, which is what keeps the off-path
bit-identical and the measured overhead under the budget enforced by
``benchmarks/bench_telemetry_overhead.py``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(10.0, out.append, "a")
    >>> _ = sim.schedule(5.0, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    __slots__ = ("now", "_heap", "_seq", "_stopped", "_live",
                 "events_processed", "telemetry")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[list] = []
        self._seq: int = 0
        self._stopped: bool = False
        self._live: int = 0
        self.events_processed: int = 0
        self.telemetry = None        # optional probe; see module docstring

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now.

        Returns the heap entry, which doubles as a handle for
        :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        entry = [self.now + delay, seq, fn, args]
        self._live += 1
        heappush(self._heap, entry)
        return entry

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before now={self.now}")
        self._seq = seq = self._seq + 1
        entry = [time, seq, fn, args]
        self._live += 1
        heappush(self._heap, entry)
        return entry

    def cancel(self, entry: list) -> None:
        """Tombstone a scheduled entry; no-op if it already ran/cancelled."""
        if entry[2] is not None:
            entry[2] = None
            entry[3] = None          # drop arg references early
            self._live -= 1

    @staticmethod
    def is_scheduled(entry: list | None) -> bool:
        """True when the entry is still queued (not run, not cancelled)."""
        return entry is not None and entry[2] is not None

    def stop(self) -> None:
        """Make :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        Maintained as a live counter (updated on schedule/cancel/pop), so
        reading it is O(1) even with millions of queued events.
        """
        return self._live

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
        return heap[0][0] if heap else None

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events in time order.

        Stops when the queue drains, when the next event is later than
        ``until`` (the clock is then advanced to ``until``), after
        ``max_events`` events, or when :meth:`stop` is called.

        The hot loops accumulate ``events_processed`` and the live count
        in locals and flush them on exit, so reading those attributes from
        *inside* a callback sees values that can lag by the events this
        ``run`` call already dispatched.  Nothing in the simulation reads
        them mid-run; read them between ``run`` calls.
        """
        probe = self.telemetry
        if probe is None:
            self._run(until, max_events)
            return
        started = perf_counter()
        events0 = self.events_processed
        sim0 = self.now
        try:
            self._run(until, max_events)
        finally:
            probe.record_run(self, perf_counter() - started,
                             self.events_processed - events0,
                             self.now - sim0)

    def _run(self, until: float | None = None,
             max_events: int | None = None) -> None:
        """The :meth:`run` loop body, telemetry dispatch stripped."""
        self._stopped = False
        heap = self._heap
        pop = heappop
        if max_events is not None:
            # Rare path (tests/debugging): exact per-event accounting.
            processed = 0
            while heap and not self._stopped:
                entry = pop(heap)
                fn = entry[2]
                if fn is None:
                    continue
                if until is not None and entry[0] > until:
                    heappush(heap, entry)
                    self.now = until
                    return
                entry[2] = None
                self._live -= 1
                self.now = entry[0]
                self.events_processed += 1
                fn(*entry[3])
                processed += 1
                if processed >= max_events:
                    return
            if until is not None and self.now < until:
                self.now = until
            return
        # Hot loops: minimal per-event work.  A callback's entry is
        # consumed before it runs, so a cancel() from inside it is a
        # no-op on the live counter; the compensating +-1 adjustments
        # (Timer deferrals, fused port completions) hit the attributes
        # directly and commute with the deferred flush.
        done = 0
        try:
            if until is None:
                while heap:
                    entry = pop(heap)
                    fn = entry[2]
                    if fn is None:
                        continue
                    entry[2] = None
                    done += 1
                    self.now = entry[0]
                    fn(*entry[3])
                    if self._stopped:
                        return
            else:
                while heap:
                    entry = pop(heap)
                    fn = entry[2]
                    if fn is None:
                        continue
                    if entry[0] > until:
                        heappush(heap, entry)
                        self.now = until
                        return
                    entry[2] = None
                    done += 1
                    self.now = entry[0]
                    fn(*entry[3])
                    if self._stopped:
                        break
                if self.now < until:
                    self.now = until
        finally:
            self._live -= done
            self.events_processed += done


class Timer:
    """A re-armable deadline timer with lazy rescheduling.

    Built for the NIC's RTO pattern: re-armed on every ACK, almost always
    pushed *later*, and it almost never actually fires.  The eager
    implementation (cancel + reschedule per ACK) floods the calendar queue
    with tombstones — ~40k dead entries per 125k live in the 7-flow star
    profile.  Here re-arming to a later deadline is a single attribute
    write: the already-scheduled wakeup defers itself when it fires early.

    Deferral wakeups are engine bookkeeping, not simulation events, so
    they are compensated out of ``events_processed`` (see the event-count
    contract in the module docstring): a timer contributes exactly one
    processed event per actual firing, the same as an eagerly managed
    event, and in the same tick.
    """

    __slots__ = ("_sim", "_fn", "_args", "_deadline", "_entry")

    def __init__(self, sim: Simulator, fn: Callable[..., Any], *args: Any) -> None:
        self._sim = sim
        self._fn = fn
        self._args = args
        self._deadline: float | None = None
        self._entry: list | None = None

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def deadline(self) -> float | None:
        return self._deadline

    def arm(self, delay: float) -> None:
        """(Re-)arm to fire ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.arm_at(self._sim.now + delay)

    def arm_at(self, time: float) -> None:
        """(Re-)arm to fire at absolute time ``time``."""
        sim = self._sim
        if time < sim.now:
            raise SimulationError(f"cannot arm at {time} before now={sim.now}")
        self._deadline = time
        entry = self._entry
        if entry is not None and entry[2] is not None:
            if entry[0] <= time:
                return           # pending wakeup will defer to the new deadline
            sim.cancel(entry)    # re-armed earlier: must wake sooner (rare)
        self._entry = sim.at(time, self._service)

    def cancel(self) -> None:
        """Disarm.  Tombstones the pending wakeup so a drained run does not
        keep processing no-op service events."""
        self._deadline = None
        entry = self._entry
        if entry is not None:
            self._sim.cancel(entry)
            self._entry = None

    def _service(self) -> None:
        sim = self._sim
        self._entry = None
        deadline = self._deadline
        if deadline is None or deadline > sim.now:
            # Deferred (or disarmed after the wakeup was popped): internal
            # bookkeeping, not a delivered simulation event.
            sim.events_processed -= 1
            if deadline is not None:
                self._entry = sim.at(deadline, self._service)
            return
        self._deadline = None
        self._fn(*self._args)


class PeriodicTask:
    """Re-schedules a callback every ``interval`` ns until cancelled.

    Used for metric sampling and CC timers (e.g. DCQCN's rate-increase
    timer).  The callback may call :meth:`cancel` from inside itself.
    :meth:`reset` (DCQCN re-starts the increase timer on every CNP) uses
    the same lazy-deferral trick as :class:`Timer`, so resetting is O(1)
    and leaves no tombstone behind.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: float | None = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self._cancelled = False
        delay = interval if start_delay is None else start_delay
        self._deadline = sim.now + delay
        self._entry = sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        sim = self.sim
        self._entry = None
        if self._cancelled:
            return
        if self._deadline > sim.now:
            # A reset() pushed the next firing later: defer silently (see
            # the event-count contract in the module docstring).
            sim.events_processed -= 1
            self._entry = sim.at(self._deadline, self._fire)
            return
        self.fn(*self.args)
        if not self._cancelled:
            self._deadline = sim.now + self.interval
            self._entry = sim.schedule(self.interval, self._fire)

    def cancel(self) -> None:
        self._cancelled = True
        entry = self._entry
        if entry is not None:
            self.sim.cancel(entry)
            self._entry = None

    def reset(self, interval: float | None = None) -> None:
        """Restart the period from now, optionally with a new interval.

        Raises :class:`SimulationError` on a cancelled task: silently
        resurrecting a cancelled timer (the old behaviour) let a late
        ``reset`` — e.g. a CNP racing a flow teardown — bring a dead
        flow's timer back to life.  Callers that want restart-after-cancel
        semantics should build a fresh task instead.
        """
        if self._cancelled:
            raise SimulationError("reset() on a cancelled PeriodicTask")
        if interval is not None:
            if interval <= 0:
                raise SimulationError(f"non-positive interval {interval}")
            self.interval = interval
        self._deadline = deadline = self.sim.now + self.interval
        entry = self._entry
        if entry is not None and entry[2] is not None:
            if entry[0] <= deadline:
                return           # pending firing will defer itself
            self.sim.cancel(entry)
        self._entry = self.sim.schedule(self.interval, self._fire)
